//! # clognet-fabric
//!
//! A second-level, inter-chip interconnect sitting above the per-chip
//! NoCs, for multi-chip / chiplet scenarios (DESIGN.md §13). The fabric
//! moves encapsulated on-chip [`Packet`]s between chips over directed
//! links with:
//!
//! * a package **topology** — point-to-point [`FabricTopology::Pair`],
//!   a [`FabricTopology::Ring`] routed shortest-direction (ties go
//!   clockwise), or a fully-connected [`FabricTopology::All`] package;
//! * per-directed-link **bandwidth** in flits/cycle: the head-of-queue
//!   message serializes onto the link at that rate before it departs;
//! * per-hop **latency** in cycles, modeled as a delay pipe between
//!   serialization and handoff;
//! * finite **link-controller queues** with hop-by-hop back-pressure: a
//!   full downstream queue (or a full chip-ingress queue) stalls the
//!   head of the upstream pipe, head-of-line, until space frees.
//!
//! Request-class and reply-class traffic ride two independent link
//! *planes* with separately configurable width and latency — the
//! headline experiment degrades the reply plane alone. Everything is
//! deterministic: links tick in fixed index order, queues are FIFO, and
//! the whole state snapshots byte-stably.

use clognet_proto::snap::{self, SnapError, SnapReader, SnapWriter};
use clognet_proto::{Cycle, FabricConfig, FabricTopology, NodeId, Packet, TrafficClass};
use std::collections::VecDeque;

/// Extra flits prepended to every fabric message for the encapsulation
/// header (origin chip/node and sequencing metadata).
pub const HEADER_FLITS: u32 = 1;

/// An on-chip packet encapsulated for inter-chip transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricMsg {
    /// Chip the message entered the fabric on.
    pub src_chip: usize,
    /// Chip the message is addressed to.
    pub dst_chip: usize,
    /// The node on the *origin* chip the eventual reply must return to
    /// (carried in the header; on-chip `NodeId`s are per-chip).
    pub origin: NodeId,
    /// The encapsulated packet.
    pub pkt: Packet,
    /// Serialized size on a fabric link, in fabric flits.
    pub flits: u32,
}

impl FabricMsg {
    /// Encapsulate a packet: fabric size = packet flits + header.
    pub fn new(src_chip: usize, dst_chip: usize, origin: NodeId, pkt: Packet) -> Self {
        let flits = u32::from(pkt.flits.max(1)) + HEADER_FLITS;
        FabricMsg {
            src_chip,
            dst_chip,
            origin,
            pkt,
            flits,
        }
    }
}

/// One directed link: a finite FIFO of waiting messages, the
/// serialization state of the head, and the in-flight latency pipe.
#[derive(Debug, Clone, Default)]
struct Link {
    queue: VecDeque<FabricMsg>,
    /// Flits of the head message still to serialize (0 = not started).
    head_left: u32,
    /// Messages in flight on the wire, with absolute arrival cycles
    /// (monotone, FIFO).
    pipe: VecDeque<(Cycle, FabricMsg)>,
    /// Total flits serialized onto this link.
    cum_flits: u64,
    /// Cycles the pipe head spent stalled on a full downstream queue.
    blocked_cycles: u64,
}

/// A point-in-time view of one directed link, for telemetry and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStat {
    /// Source chip of the directed link.
    pub from: usize,
    /// Destination chip of the directed link.
    pub to: usize,
    /// Messages waiting in the link-controller queue.
    pub queued: usize,
    /// Messages in flight on the wire.
    pub piped: usize,
    /// Total flits serialized onto the link so far.
    pub cum_flits: u64,
    /// Total cycles the link head spent blocked on back-pressure.
    pub blocked_cycles: u64,
}

/// One traffic plane (request or reply): all directed links of the
/// topology at one width/latency, plus per-chip ingress queues.
#[derive(Debug, Clone)]
struct Plane {
    width: u32,
    hop_latency: u32,
    queue_pkts: usize,
    links: Vec<Link>,
    /// Per-chip bounded queues of messages that completed their last
    /// hop and await injection into the chip's NoC.
    arrivals: Vec<VecDeque<FabricMsg>>,
    /// Messages handed off to `arrivals` so far.
    delivered: u64,
}

/// The inter-chip network: two independent link planes over one
/// topology.
#[derive(Debug, Clone)]
pub struct FabricNetwork {
    topology: FabricTopology,
    chips: usize,
    request: Plane,
    reply: Plane,
}

/// Number of directed links the topology needs.
fn n_links(topology: FabricTopology, chips: usize) -> usize {
    match topology {
        FabricTopology::Pair => 2,
        FabricTopology::Ring => 2 * chips,
        FabricTopology::All => chips * (chips - 1),
    }
}

/// Endpoints `(from, to)` of directed link `li`.
fn link_endpoints(topology: FabricTopology, chips: usize, li: usize) -> (usize, usize) {
    match topology {
        FabricTopology::Pair => (li, 1 - li),
        FabricTopology::Ring => {
            let from = li / 2;
            let to = if li.is_multiple_of(2) {
                (from + 1) % chips // clockwise
            } else {
                (from + chips - 1) % chips // counter-clockwise
            };
            (from, to)
        }
        FabricTopology::All => {
            let from = li / (chips - 1);
            let r = li % (chips - 1);
            let to = if r < from { r } else { r + 1 };
            (from, to)
        }
    }
}

/// The outgoing link a message at `at` takes toward `dst` (minimal
/// routing; ring ties go clockwise).
fn next_link(topology: FabricTopology, chips: usize, at: usize, dst: usize) -> usize {
    debug_assert_ne!(at, dst, "message already home");
    match topology {
        FabricTopology::Pair => at,
        FabricTopology::Ring => {
            let cw = (dst + chips - at) % chips;
            let ccw = (at + chips - dst) % chips;
            if cw <= ccw {
                2 * at
            } else {
                2 * at + 1
            }
        }
        FabricTopology::All => at * (chips - 1) + if dst < at { dst } else { dst - 1 },
    }
}

impl Plane {
    fn new(width: u32, hop_latency: u32, queue_pkts: usize, links: usize, chips: usize) -> Self {
        Plane {
            width,
            hop_latency,
            queue_pkts,
            links: vec![Link::default(); links],
            arrivals: vec![VecDeque::new(); chips],
            delivered: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.links
            .iter()
            .all(|l| l.queue.is_empty() && l.pipe.is_empty())
            && self.arrivals.iter().all(VecDeque::is_empty)
    }

    fn tick(&mut self, topology: FabricTopology, chips: usize, now: Cycle) {
        // Phase 1 — handoff: in fixed link order, move due pipe heads to
        // their next hop (or the destination chip's ingress queue). A
        // full downstream queue blocks the head (and everything behind
        // it) until space frees: hop-by-hop back-pressure.
        for li in 0..self.links.len() {
            while let Some(&(arrival, ref head)) = self.links[li].pipe.front() {
                if arrival > now {
                    break;
                }
                let (_, to) = link_endpoints(topology, chips, li);
                let dst = head.dst_chip;
                if dst == to {
                    if self.arrivals[to].len() >= self.queue_pkts {
                        self.links[li].blocked_cycles += 1;
                        break;
                    }
                    let (_, msg) = self.links[li].pipe.pop_front().expect("front checked");
                    self.arrivals[to].push_back(msg);
                    self.delivered += 1;
                } else {
                    let next = next_link(topology, chips, to, dst);
                    if self.links[next].queue.len() >= self.queue_pkts {
                        self.links[li].blocked_cycles += 1;
                        break;
                    }
                    let (_, msg) = self.links[li].pipe.pop_front().expect("front checked");
                    self.links[next].queue.push_back(msg);
                }
            }
        }
        // Phase 2 — serialization: each link pushes up to `width` flits
        // of its queue onto the wire; a message whose last flit leaves
        // enters the latency pipe.
        for link in &mut self.links {
            let mut budget = self.width;
            while budget > 0 {
                let Some(head) = link.queue.front() else {
                    break;
                };
                if link.head_left == 0 {
                    link.head_left = head.flits.max(1);
                }
                let take = budget.min(link.head_left);
                link.head_left -= take;
                link.cum_flits += u64::from(take);
                budget -= take;
                if link.head_left == 0 {
                    let msg = link.queue.pop_front().expect("front checked");
                    link.pipe
                        .push_back((now + Cycle::from(self.hop_latency), msg));
                }
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.links.len());
        for link in &self.links {
            w.usize(link.queue.len());
            for m in &link.queue {
                save_msg(w, m);
            }
            w.u32(link.head_left);
            w.usize(link.pipe.len());
            for (arrival, m) in &link.pipe {
                w.u64(*arrival);
                save_msg(w, m);
            }
            w.u64(link.cum_flits);
            w.u64(link.blocked_cycles);
        }
        w.usize(self.arrivals.len());
        for q in &self.arrivals {
            w.usize(q.len());
            for m in q {
                save_msg(w, m);
            }
        }
        w.u64(self.delivered);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.usize()? != self.links.len() {
            return Err(SnapError::Corrupt("fabric link arrangement mismatch"));
        }
        for link in &mut self.links {
            let qn = r.usize()?;
            link.queue.clear();
            for _ in 0..qn {
                link.queue.push_back(load_msg(r)?);
            }
            link.head_left = r.u32()?;
            let pn = r.usize()?;
            link.pipe.clear();
            for _ in 0..pn {
                let arrival = r.u64()?;
                link.pipe.push_back((arrival, load_msg(r)?));
            }
            link.cum_flits = r.u64()?;
            link.blocked_cycles = r.u64()?;
        }
        if r.usize()? != self.arrivals.len() {
            return Err(SnapError::Corrupt("fabric chip arrangement mismatch"));
        }
        for q in &mut self.arrivals {
            let n = r.usize()?;
            q.clear();
            for _ in 0..n {
                q.push_back(load_msg(r)?);
            }
        }
        self.delivered = r.u64()?;
        Ok(())
    }
}

fn save_msg(w: &mut SnapWriter, m: &FabricMsg) {
    w.usize(m.src_chip);
    w.usize(m.dst_chip);
    w.u16(m.origin.0);
    snap::save_packet(w, &m.pkt);
    w.u32(m.flits);
}

fn load_msg(r: &mut SnapReader<'_>) -> Result<FabricMsg, SnapError> {
    Ok(FabricMsg {
        src_chip: r.usize()?,
        dst_chip: r.usize()?,
        origin: NodeId(r.u16()?),
        pkt: snap::load_packet(r)?,
        flits: r.u32()?,
    })
}

impl FabricNetwork {
    /// Build an empty fabric for the configuration.
    ///
    /// # Panics
    ///
    /// Panics on fewer than two chips or a `Pair` topology with a chip
    /// count other than two — callers validate configs up front (see
    /// `clognet_core::validate_fabric`).
    pub fn new(cfg: &FabricConfig) -> Self {
        assert!(cfg.chips >= 2, "a fabric needs at least two chips");
        assert!(
            cfg.topology != FabricTopology::Pair || cfg.chips == 2,
            "pair topology is exactly two chips"
        );
        let links = n_links(cfg.topology, cfg.chips);
        FabricNetwork {
            topology: cfg.topology,
            chips: cfg.chips,
            request: Plane::new(
                cfg.link_flits,
                cfg.hop_latency,
                cfg.queue_pkts,
                links,
                cfg.chips,
            ),
            reply: Plane::new(
                cfg.reply_link_flits,
                cfg.reply_hop_latency,
                cfg.queue_pkts,
                links,
                cfg.chips,
            ),
        }
    }

    fn plane(&self, class: TrafficClass) -> &Plane {
        match class {
            TrafficClass::Request => &self.request,
            TrafficClass::Reply => &self.reply,
        }
    }

    fn plane_mut(&mut self, class: TrafficClass) -> &mut Plane {
        match class {
            TrafficClass::Request => &mut self.request,
            TrafficClass::Reply => &mut self.reply,
        }
    }

    /// Number of chips the fabric joins.
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// Whether the first-hop link out of `src_chip` toward `dst_chip`
    /// can accept another message this cycle.
    pub fn can_send(&self, class: TrafficClass, src_chip: usize, dst_chip: usize) -> bool {
        let li = next_link(self.topology, self.chips, src_chip, dst_chip);
        let plane = self.plane(class);
        plane.links[li].queue.len() < plane.queue_pkts
    }

    /// Enqueue a message on its first-hop link. Returns `false` (and
    /// leaves the message with the caller) when the link queue is full —
    /// the chip-boundary adapter's egress stall.
    pub fn try_send(&mut self, class: TrafficClass, msg: FabricMsg) -> bool {
        debug_assert!(msg.src_chip < self.chips && msg.dst_chip < self.chips);
        debug_assert_ne!(msg.src_chip, msg.dst_chip);
        let li = next_link(self.topology, self.chips, msg.src_chip, msg.dst_chip);
        let plane = self.plane_mut(class);
        if plane.links[li].queue.len() >= plane.queue_pkts {
            return false;
        }
        plane.links[li].queue.push_back(msg);
        true
    }

    /// The oldest message delivered to `chip` on `class`, if any,
    /// without removing it.
    pub fn peek_arrival(&self, class: TrafficClass, chip: usize) -> Option<&FabricMsg> {
        self.plane(class).arrivals[chip].front()
    }

    /// Remove and return the oldest message delivered to `chip`.
    pub fn pop_arrival(&mut self, class: TrafficClass, chip: usize) -> Option<FabricMsg> {
        self.plane_mut(class).arrivals[chip].pop_front()
    }

    /// Advance both planes one cycle: deliver due messages (hop-by-hop,
    /// with back-pressure), then serialize link heads.
    pub fn tick(&mut self, now: Cycle) {
        self.request.tick(self.topology, self.chips, now);
        self.reply.tick(self.topology, self.chips, now);
    }

    /// Whether no message is queued, in flight, or awaiting pickup —
    /// the fast-forward gate.
    pub fn is_empty(&self) -> bool {
        self.request.is_empty() && self.reply.is_empty()
    }

    /// Messages handed off to chip ingress queues so far, per plane
    /// `(request, reply)`.
    pub fn delivered(&self) -> (u64, u64) {
        (self.request.delivered, self.reply.delivered)
    }

    /// Number of directed links per plane.
    pub fn links_per_plane(&self) -> usize {
        self.request.links.len()
    }

    /// Point-in-time stats of directed link `li` on `class`.
    pub fn link_stat(&self, class: TrafficClass, li: usize) -> LinkStat {
        let (from, to) = link_endpoints(self.topology, self.chips, li);
        let link = &self.plane(class).links[li];
        LinkStat {
            from,
            to,
            queued: link.queue.len(),
            piped: link.pipe.len(),
            cum_flits: link.cum_flits,
            blocked_cycles: link.blocked_cycles,
        }
    }

    /// Aggregate `(cum_flits, blocked_cycles)` over all links of `class`.
    pub fn plane_totals(&self, class: TrafficClass) -> (u64, u64) {
        let plane = self.plane(class);
        plane
            .links
            .iter()
            .fold((0, 0), |(f, b), l| (f + l.cum_flits, b + l.blocked_cycles))
    }

    /// Serialize the full fabric state (no header; the caller owns the
    /// enclosing stream).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.chips);
        self.request.save_state(w);
        self.reply.save_state(w);
    }

    /// Restore state written by [`save_state`](Self::save_state) into a
    /// fabric built from the same configuration.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.usize()? != self.chips {
            return Err(SnapError::Corrupt("fabric chip count mismatch"));
        }
        self.request.load_state(r)?;
        self.reply.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clognet_proto::{Addr, MsgKind, PacketId, Priority};

    fn cfg(chips: usize, topology: FabricTopology) -> FabricConfig {
        FabricConfig {
            chips,
            topology,
            ..FabricConfig::default()
        }
    }

    fn msg(src: usize, dst: usize, flits: u32) -> FabricMsg {
        let pkt = Packet {
            id: PacketId(1),
            src: NodeId(0),
            dst: NodeId(1),
            kind: MsgKind::ReadReq,
            prio: Priority::Gpu,
            addr: Addr::new(0x1000),
            flits: flits as u8,
            created: 0,
            requester: NodeId(0),
            dnf: false,
        };
        FabricMsg {
            src_chip: src,
            dst_chip: dst,
            origin: NodeId(0),
            pkt,
            flits,
        }
    }

    #[test]
    fn pair_delivers_after_serialization_plus_latency() {
        let mut fab = FabricNetwork::new(&FabricConfig {
            link_flits: 2,
            hop_latency: 3,
            ..cfg(2, FabricTopology::Pair)
        });
        assert!(fab.try_send(TrafficClass::Request, msg(0, 1, 4)));
        // 4 flits at 2/cycle = 2 cycles of serialization (ticks 0,1);
        // the wire adds 3 cycles (arrival 1+3=4), handed off in the
        // phase-1 of tick(4).
        for now in 0..4 {
            fab.tick(now);
            assert!(
                fab.peek_arrival(TrafficClass::Request, 1).is_none(),
                "{now}"
            );
        }
        fab.tick(4);
        assert!(fab.pop_arrival(TrafficClass::Request, 1).is_some());
        assert!(fab.is_empty());
        assert_eq!(fab.plane_totals(TrafficClass::Request), (4, 0));
        assert_eq!(fab.delivered(), (1, 0));
    }

    #[test]
    fn planes_are_independent() {
        let mut fab = FabricNetwork::new(&FabricConfig {
            link_flits: 8,
            hop_latency: 1,
            reply_link_flits: 1,
            reply_hop_latency: 10,
            ..cfg(2, FabricTopology::Pair)
        });
        assert!(fab.try_send(TrafficClass::Request, msg(0, 1, 4)));
        assert!(fab.try_send(TrafficClass::Reply, msg(0, 1, 4)));
        fab.tick(0);
        fab.tick(1);
        // Request plane: serialized in 1 cycle, arrives at tick(1).
        assert!(fab.pop_arrival(TrafficClass::Request, 1).is_some());
        // Reply plane at 1 flit/cycle is still serializing.
        assert!(fab.peek_arrival(TrafficClass::Reply, 1).is_none());
        for now in 2..14 {
            fab.tick(now);
        }
        assert!(fab.pop_arrival(TrafficClass::Reply, 1).is_some());
    }

    #[test]
    fn full_queue_rejects_and_backpressure_counts() {
        let mut fab = FabricNetwork::new(&FabricConfig {
            link_flits: 4,
            hop_latency: 1,
            queue_pkts: 2,
            ..cfg(2, FabricTopology::Pair)
        });
        assert!(fab.try_send(TrafficClass::Request, msg(0, 1, 2)));
        assert!(fab.try_send(TrafficClass::Request, msg(0, 1, 2)));
        // Link queue full: the adapter must hold the third message.
        assert!(!fab.can_send(TrafficClass::Request, 0, 1));
        assert!(!fab.try_send(TrafficClass::Request, msg(0, 1, 2)));
        // Let both through, then jam the ingress queue by not popping:
        // queue_pkts bounds arrivals too.
        for now in 0..20 {
            fab.tick(now);
            while fab.try_send(TrafficClass::Request, msg(0, 1, 2)) {}
        }
        let stat = fab.link_stat(TrafficClass::Request, 0);
        assert_eq!((stat.from, stat.to), (0, 1));
        assert!(stat.blocked_cycles > 0, "ingress jam must back-pressure");
        assert_eq!(
            fab.plane(TrafficClass::Request).arrivals[1].len(),
            2,
            "arrivals bounded by queue depth"
        );
    }

    #[test]
    fn ring_routes_shortest_direction_with_clockwise_ties() {
        // 4-chip ring: 0→1 clockwise (distance 1 vs 3), 0→3 counter
        // (1 vs 3), 0→2 tie → clockwise.
        assert_eq!(next_link(FabricTopology::Ring, 4, 0, 1), 0);
        assert_eq!(next_link(FabricTopology::Ring, 4, 0, 3), 1);
        assert_eq!(next_link(FabricTopology::Ring, 4, 0, 2), 0);
        // Multi-hop delivery: 0→2 takes two clockwise hops.
        let mut fab = FabricNetwork::new(&FabricConfig {
            link_flits: 4,
            hop_latency: 1,
            ..cfg(4, FabricTopology::Ring)
        });
        assert!(fab.try_send(TrafficClass::Request, msg(0, 2, 2)));
        let mut arrived_at = None;
        for now in 0..12 {
            fab.tick(now);
            if fab.peek_arrival(TrafficClass::Request, 2).is_some() {
                arrived_at = Some(now);
                break;
            }
        }
        // Hop 1: serialize tick 0, wire → chip-1 queue in tick 1's
        // handoff phase; hop 2 re-serializes that same tick (handoff
        // precedes serialization) and arrives at tick 2.
        assert_eq!(arrived_at, Some(2));
        for c in [0, 1, 3] {
            assert!(fab.peek_arrival(TrafficClass::Request, c).is_none());
        }
    }

    #[test]
    fn all_topology_is_single_hop_between_every_pair() {
        let chips = 4;
        for a in 0..chips {
            for b in 0..chips {
                if a == b {
                    continue;
                }
                let li = next_link(FabricTopology::All, chips, a, b);
                assert_eq!(link_endpoints(FabricTopology::All, chips, li), (a, b));
            }
        }
    }

    #[test]
    fn state_round_trips_mid_flight() {
        let mut fab = FabricNetwork::new(&FabricConfig {
            link_flits: 1,
            hop_latency: 5,
            ..cfg(3, FabricTopology::Ring)
        });
        assert!(fab.try_send(TrafficClass::Request, msg(0, 2, 3)));
        assert!(fab.try_send(TrafficClass::Reply, msg(2, 0, 7)));
        for now in 0..4 {
            fab.tick(now);
        }
        let mut w = SnapWriter::new();
        fab.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = FabricNetwork::new(&FabricConfig {
            link_flits: 1,
            hop_latency: 5,
            ..cfg(3, FabricTopology::Ring)
        });
        let mut r = SnapReader::raw(&bytes);
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();
        // Continuing both must produce identical arrival streams.
        for now in 4..40 {
            fab.tick(now);
            restored.tick(now);
            for chip in 0..3 {
                for class in [TrafficClass::Request, TrafficClass::Reply] {
                    assert_eq!(
                        fab.pop_arrival(class, chip),
                        restored.pop_arrival(class, chip)
                    );
                }
            }
        }
        assert!(fab.is_empty() && restored.is_empty());
    }

    #[test]
    fn wrong_arrangement_is_rejected() {
        let fab = FabricNetwork::new(&cfg(2, FabricTopology::Pair));
        let mut w = SnapWriter::new();
        fab.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut other = FabricNetwork::new(&cfg(3, FabricTopology::Ring));
        let mut r = SnapReader::raw(&bytes);
        assert!(matches!(
            other.load_state(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_chip_fabric_panics() {
        FabricNetwork::new(&cfg(1, FabricTopology::Ring));
    }
}
