//! The GPU subsystem: SIMT cores with warps, private (or clustered) L1
//! caches, MSHRs, the Delegated-Replies Forwarded Request Queue, and the
//! Realistic-Probing predictor/prober.
//!
//! Each core runs `warps_per_core` warps; a warp alternates
//! `compute_per_mem` compute instructions with one memory instruction
//! drawn from its benchmark stream. Up to `issue_width` warps issue per
//! cycle (two GTO schedulers in Table I), which is what makes the cores
//! latency-tolerant and bandwidth-hungry.
//!
//! The subsystem is network-agnostic: `tick` returns [`GpuOut`] messages
//! bounded by a per-core outbox budget, and the system feeds packets
//! back via `deliver`. Remote requests (FRQ entries) are served *before*
//! local warps each cycle — the deadlock-avoidance priority of
//! Section IV.

use crate::cluster::{Cluster, ClusterMode};
use crate::msg::{GpuIn, GpuOut};
use clognet_cache::{MshrFile, MshrOutcome, SetAssocCache};
use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{Addr, CoreId, CtaSched, Cycle, FxHashMap, GpuConfig, L1Org, LineAddr, Scheme};
use clognet_workloads::{GpuProfile, GpuStream, MemAccess};
use std::collections::VecDeque;

/// Per-core counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpuCoreStats {
    /// Warp instructions retired.
    pub retired: u64,
    /// Memory instructions issued.
    pub mem_ops: u64,
    /// Cycles a ready memory instruction could not issue (ports, MSHRs,
    /// or outbox budget).
    pub mem_stall_cycles: u64,
    /// Delegated replies served with an L1 hit.
    pub delegated_hits: u64,
    /// Delegated replies attached to an outstanding miss (delayed hit).
    pub delegated_delayed: u64,
    /// Delegated replies that missed (re-sent to the LLC with DNF).
    pub delegated_misses: u64,
    /// FRQ entries that arrived while another entry for the same line
    /// was queued (the paper's 4.8% merge-opportunity statistic).
    pub frq_same_line: u64,
    /// RP probes sent.
    pub probes_sent: u64,
    /// RP probes answered with data by this core.
    pub probe_hits_served: u64,
    /// RP probes this core answered negatively.
    pub probe_misses_served: u64,
    /// Primary read misses that went straight to the LLC.
    pub llc_reads: u64,
    /// Write-throughs sent.
    pub writes: u64,
    /// L1 flushes (kernel boundaries).
    pub flushes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpState {
    /// Executing compute instructions; 0 left means the memory
    /// instruction is next.
    Compute(u32),
    /// Blocked on an outstanding read.
    WaitMem,
}

#[derive(Debug)]
struct Warp {
    state: WarpState,
    pending: Option<MemAccess>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// Wake a local warp.
    Warp(u16),
    /// Forward the line to a remote core (delayed delegated hit).
    Remote(CoreId),
}

#[derive(Debug, Clone, Copy)]
enum FrqEntry {
    Delegated { line: LineAddr, requester: CoreId },
    Probe { line: LineAddr, from: CoreId },
    Fetch { line: LineAddr, from: CoreId },
}

#[derive(Debug, Clone, Default)]
struct ProbeWait {
    /// Probe (and fetch) responses still expected.
    outstanding: usize,
    /// Data already arrived.
    satisfied: bool,
    /// A fetch was dispatched to a confirmed hitter.
    fetch_sent: bool,
    /// Probe targets not yet sent (outbox budget ran out).
    to_send: Vec<CoreId>,
}

#[derive(Debug)]
struct Core {
    warps: Vec<Warp>,
    stream: GpuStream,
    mshr: MshrFile<Target>,
    frq: VecDeque<FrqEntry>,
    probe_wait: FxHashMap<LineAddr, ProbeWait>,
    predictor: Vec<u8>,
    probe_rr: usize,
    /// RP: misses seen (drives epsilon re-probing so the predictor can
    /// re-learn after cold-start failures).
    probe_seq: u64,
    /// RP: global probe-confidence score. Benchmarks where probing keeps
    /// failing (no findable remote copies) throttle themselves back to
    /// baseline behavior — the "best-performing configuration" knob.
    probe_score: i32,
    /// RP: cores that recently supplied data to us (probe steering).
    suppliers: VecDeque<CoreId>,
    next_flush: Option<Cycle>,
    stats: GpuCoreStats,
}

/// The whole GPU side of the chip.
#[derive(Debug)]
pub struct GpuSubsystem {
    cfg: GpuConfig,
    scheme: Scheme,
    org: L1Org,
    /// Ablation: support the delayed-hit FRQ outcome (default true).
    delayed_hits: bool,
    cores: Vec<Core>,
    l1s: Vec<SetAssocCache<()>>,
    clusters: Vec<Cluster>,
    /// Per-core L1 port uses this cycle (private mode).
    port_used: Vec<u8>,
    /// Scratch: probe-wait lines pending a deferred flush (RP only),
    /// reused across ticks so the per-core service loop stays
    /// allocation-free.
    flush_lines: Vec<LineAddr>,
}

const PREDICTOR_ENTRIES: usize = 1024;

impl GpuSubsystem {
    /// Build `n_cores` GPU cores all running `profile` (the paper runs
    /// one GPU benchmark at a time across all cores).
    pub fn new(
        cfg: GpuConfig,
        scheme: Scheme,
        org: L1Org,
        cta: CtaSched,
        profile: GpuProfile,
        n_cores: usize,
        seed: u64,
    ) -> Self {
        let profile = profile.with_cta_sched(cta);
        let cores = (0..n_cores)
            .map(|i| {
                let id = CoreId(i as u16);
                Core {
                    warps: (0..cfg.warps_per_core)
                        .map(|_| Warp {
                            state: WarpState::Compute(0),
                            pending: None,
                        })
                        .collect(),
                    stream: GpuStream::new(profile.clone(), id, n_cores, seed),
                    mshr: MshrFile::new(cfg.mshrs, 16),
                    frq: VecDeque::new(),
                    probe_wait: FxHashMap::default(),
                    predictor: vec![2u8; PREDICTOR_ENTRIES],
                    probe_rr: i, // de-correlate probe targets across cores
                    probe_seq: i as u64,
                    probe_score: 24,
                    suppliers: VecDeque::new(),
                    next_flush: cfg
                        .flush_interval
                        .map(|f| f + (i as u64 * f) / n_cores as u64),
                    stats: GpuCoreStats::default(),
                }
            })
            .collect();
        let l1s = (0..n_cores).map(|_| SetAssocCache::new(cfg.l1)).collect();
        let clusters = if org == L1Org::Private {
            Vec::new()
        } else {
            let n_clusters = n_cores.div_ceil(cfg.cluster_cores);
            (0..n_clusters)
                .map(|_| {
                    Cluster::new(
                        cfg.cluster_slices,
                        cfg.l1,
                        org == L1Org::DynEB,
                        cfg.dyneb_epoch,
                    )
                })
                .collect()
        };
        GpuSubsystem {
            scheme,
            org,
            delayed_hits: true,
            cores,
            l1s,
            clusters,
            port_used: vec![0; n_cores],
            flush_lines: Vec::new(),
            cfg,
        }
    }

    /// Ablation: disable the delayed-hit outcome (hits to outstanding
    /// lines become remote misses).
    pub fn set_delayed_hits(&mut self, enabled: bool) {
        self.delayed_hits = enabled;
    }

    /// Swap the delegation scheme in place. Warm-started comparisons
    /// share one warmup and apply each variant's scheme before the
    /// measurement window; in-flight probe bookkeeping stays valid
    /// because probe replies are handled scheme-independently on
    /// delivery.
    pub fn set_scheme(&mut self, scheme: Scheme) {
        self.scheme = scheme;
    }

    /// Serialize all mutable state. Config, scheme, organization and
    /// benchmark identity come from construction; per-cycle scratch
    /// (`port_used`, `flush_lines`) is reset at every tick and skipped.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.bool(self.delayed_hits);
        w.usize(self.cores.len());
        for c in &self.cores {
            w.usize(c.warps.len());
            for warp in &c.warps {
                match warp.state {
                    WarpState::Compute(left) => {
                        w.u8(0);
                        w.u32(left);
                    }
                    WarpState::WaitMem => w.u8(1),
                }
                match warp.pending {
                    Some(a) => {
                        w.bool(true);
                        w.u64(a.addr.0);
                        w.bool(a.write);
                    }
                    None => w.bool(false),
                }
            }
            c.stream.save_state(w);
            c.mshr.save_state(w, |w, t| match *t {
                Target::Warp(i) => {
                    w.u8(0);
                    w.u16(i);
                }
                Target::Remote(core) => {
                    w.u8(1);
                    w.u16(core.0);
                }
            });
            w.usize(c.frq.len());
            for e in &c.frq {
                match *e {
                    FrqEntry::Delegated { line, requester } => {
                        w.u8(0);
                        w.u64(line.0);
                        w.u16(requester.0);
                    }
                    FrqEntry::Probe { line, from } => {
                        w.u8(1);
                        w.u64(line.0);
                        w.u16(from.0);
                    }
                    FrqEntry::Fetch { line, from } => {
                        w.u8(2);
                        w.u64(line.0);
                        w.u16(from.0);
                    }
                }
            }
            let mut lines: Vec<LineAddr> = c.probe_wait.keys().copied().collect();
            lines.sort_unstable();
            w.usize(lines.len());
            for line in lines {
                let p = &c.probe_wait[&line];
                w.u64(line.0);
                w.usize(p.outstanding);
                w.bool(p.satisfied);
                w.bool(p.fetch_sent);
                w.usize(p.to_send.len());
                for t in &p.to_send {
                    w.u16(t.0);
                }
            }
            w.bytes(&c.predictor);
            w.usize(c.probe_rr);
            w.u64(c.probe_seq);
            w.i32(c.probe_score);
            w.usize(c.suppliers.len());
            for s in &c.suppliers {
                w.u16(s.0);
            }
            w.opt_u64(c.next_flush);
            let s = &c.stats;
            for v in [
                s.retired,
                s.mem_ops,
                s.mem_stall_cycles,
                s.delegated_hits,
                s.delegated_delayed,
                s.delegated_misses,
                s.frq_same_line,
                s.probes_sent,
                s.probe_hits_served,
                s.probe_misses_served,
                s.llc_reads,
                s.writes,
                s.flushes,
            ] {
                w.u64(v);
            }
        }
        w.usize(self.l1s.len());
        for l1 in &self.l1s {
            l1.save_state(w, |_, ()| {});
        }
        w.usize(self.clusters.len());
        for cl in &self.clusters {
            cl.save_state(w);
        }
    }

    /// Overlay state captured by [`GpuSubsystem::save_state`] onto a
    /// subsystem built with the same config/profile.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.delayed_hits = r.bool()?;
        if r.usize()? != self.cores.len() {
            return Err(SnapError::Corrupt("gpu core count mismatch"));
        }
        for c in &mut self.cores {
            if r.usize()? != c.warps.len() {
                return Err(SnapError::Corrupt("gpu warp count mismatch"));
            }
            for warp in &mut c.warps {
                warp.state = match r.u8()? {
                    0 => WarpState::Compute(r.u32()?),
                    1 => WarpState::WaitMem,
                    t => {
                        return Err(SnapError::BadTag {
                            what: "warp state",
                            tag: t as u64,
                        })
                    }
                };
                warp.pending = if r.bool()? {
                    Some(MemAccess {
                        addr: Addr(r.u64()?),
                        write: r.bool()?,
                    })
                } else {
                    None
                };
            }
            c.stream.load_state(r)?;
            c.mshr.load_state(r, |r| {
                Ok(match r.u8()? {
                    0 => Target::Warp(r.u16()?),
                    1 => Target::Remote(CoreId(r.u16()?)),
                    t => {
                        return Err(SnapError::BadTag {
                            what: "mshr target",
                            tag: t as u64,
                        })
                    }
                })
            })?;
            c.frq.clear();
            for _ in 0..r.usize()? {
                let tag = r.u8()?;
                let line = LineAddr(r.u64()?);
                let core = CoreId(r.u16()?);
                c.frq.push_back(match tag {
                    0 => FrqEntry::Delegated {
                        line,
                        requester: core,
                    },
                    1 => FrqEntry::Probe { line, from: core },
                    2 => FrqEntry::Fetch { line, from: core },
                    t => {
                        return Err(SnapError::BadTag {
                            what: "frq entry",
                            tag: t as u64,
                        })
                    }
                });
            }
            c.probe_wait.clear();
            for _ in 0..r.usize()? {
                let line = LineAddr(r.u64()?);
                let outstanding = r.usize()?;
                let satisfied = r.bool()?;
                let fetch_sent = r.bool()?;
                let n_send = r.usize()?;
                if n_send > self.l1s.len() {
                    return Err(SnapError::Corrupt("probe targets exceed core count"));
                }
                let mut to_send = Vec::with_capacity(n_send);
                for _ in 0..n_send {
                    to_send.push(CoreId(r.u16()?));
                }
                c.probe_wait.insert(
                    line,
                    ProbeWait {
                        outstanding,
                        satisfied,
                        fetch_sent,
                        to_send,
                    },
                );
            }
            c.predictor = r.bytes()?;
            if c.predictor.len() != PREDICTOR_ENTRIES {
                return Err(SnapError::Corrupt("predictor size mismatch"));
            }
            c.probe_rr = r.usize()?;
            c.probe_seq = r.u64()?;
            c.probe_score = r.i32()?;
            c.suppliers.clear();
            for _ in 0..r.usize()? {
                c.suppliers.push_back(CoreId(r.u16()?));
            }
            c.next_flush = r.opt_u64()?;
            c.stats = GpuCoreStats {
                retired: r.u64()?,
                mem_ops: r.u64()?,
                mem_stall_cycles: r.u64()?,
                delegated_hits: r.u64()?,
                delegated_delayed: r.u64()?,
                delegated_misses: r.u64()?,
                frq_same_line: r.u64()?,
                probes_sent: r.u64()?,
                probe_hits_served: r.u64()?,
                probe_misses_served: r.u64()?,
                llc_reads: r.u64()?,
                writes: r.u64()?,
                flushes: r.u64()?,
            };
        }
        if r.usize()? != self.l1s.len() {
            return Err(SnapError::Corrupt("gpu l1 count mismatch"));
        }
        for l1 in &mut self.l1s {
            l1.load_state(r, |_| Ok(()))?;
        }
        if r.usize()? != self.clusters.len() {
            return Err(SnapError::Corrupt("gpu cluster count mismatch"));
        }
        for cl in &mut self.clusters {
            cl.load_state(r)?;
        }
        Ok(())
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Per-core statistics.
    pub fn stats(&self, core: CoreId) -> GpuCoreStats {
        self.cores[core.index()].stats
    }

    /// Zero every core's counters (warmup exclusion); caches, MSHRs and
    /// FRQs keep their state.
    pub fn reset_stats(&mut self) {
        for c in &mut self.cores {
            c.stats = GpuCoreStats::default();
        }
        for l1 in &mut self.l1s {
            l1.reset_stats();
        }
    }

    /// Total warp instructions retired (the GPU IPC numerator).
    pub fn total_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.stats.retired).sum()
    }

    /// Aggregate delegation outcomes over all cores:
    /// `(remote hits, delayed hits, remote misses / DNF bounces)` — the
    /// per-epoch outcome series the telemetry sampler differences.
    pub fn delegation_outcomes(&self) -> (u64, u64, u64) {
        self.cores.iter().fold((0, 0, 0), |(h, d, m), c| {
            (
                h + c.stats.delegated_hits,
                d + c.stats.delegated_delayed,
                m + c.stats.delegated_misses,
            )
        })
    }

    /// L1 tag-array stats aggregated over cores (private mode) or
    /// cluster slices (shared mode).
    pub fn l1_hits_misses(&self) -> (u64, u64) {
        let mut h = 0;
        let mut m = 0;
        for c in &self.l1s {
            h += c.stats().hits;
            m += c.stats().misses;
        }
        // Shared-slice accesses are recorded in the slices themselves;
        // fold them in through the cores' mem_ops minus private counts is
        // unnecessary — the cluster slices are separate SetAssocCaches
        // whose stats are inaccessible here, so private counters suffice
        // for the Private org; shared orgs report through mem_ops.
        (h, m)
    }

    /// Does the FRQ of `core` have room for another delegated reply or
    /// probe? The system must check before delivering
    /// [`GpuIn::Delegated`] / [`GpuIn::ProbeReq`].
    pub fn frq_has_space(&self, core: CoreId) -> bool {
        self.cores[core.index()].frq.len() < self.cfg.frq_entries
    }

    /// Oracle: is `line` resident in any L1 other than `requester`'s?
    /// (The Fig.-2 inter-core-locality measurement.)
    pub fn remote_l1_has(&self, requester: CoreId, line: LineAddr) -> bool {
        match self.org {
            L1Org::Private => self
                .l1s
                .iter()
                .enumerate()
                .any(|(i, l1)| i != requester.index() && l1.probe(line)),
            _ => {
                let my_cluster = requester.index() / self.cfg.cluster_cores;
                self.clusters
                    .iter()
                    .enumerate()
                    .any(|(ci, cl)| ci != my_cluster && cl.probe(line))
                    || self
                        .l1s
                        .iter()
                        .enumerate()
                        .any(|(i, l1)| i != requester.index() && l1.probe(line))
            }
        }
    }

    fn cluster_of(&self, core: CoreId) -> usize {
        core.index() / self.cfg.cluster_cores
    }

    /// Is `core` currently using its cluster's shared slices?
    fn uses_shared(&self, core: CoreId) -> bool {
        match self.org {
            L1Org::Private => false,
            L1Org::DcL1 => true,
            L1Org::DynEB => self.clusters[self.cluster_of(core)].mode() == ClusterMode::Shared,
        }
    }

    /// Claim an L1 port for `core` / `line`; returns false on a
    /// structural port stall.
    fn claim_port(&mut self, core: CoreId, line: LineAddr) -> bool {
        if self.uses_shared(core) {
            let cl = self.cluster_of(core);
            self.clusters[cl].claim_port(line).is_some()
        } else {
            let u = &mut self.port_used[core.index()];
            if (*u as usize) < self.cfg.l1_ports {
                *u += 1;
                let ci = self.cluster_of(core);
                if let Some(cl) = self.clusters.get_mut(ci) {
                    cl.note_private_served();
                }
                true
            } else {
                false
            }
        }
    }

    /// L1 lookup with LRU update (port must already be claimed).
    fn l1_lookup(&mut self, core: CoreId, line: LineAddr) -> bool {
        if self.uses_shared(core) {
            let cl = self.cluster_of(core);
            let s = self.clusters[cl].slice_of(line);
            self.clusters[cl].access(s, line)
        } else {
            self.l1s[core.index()].access(line)
        }
    }

    /// Side-effect-free presence check.
    fn l1_probe(&self, core: CoreId, line: LineAddr) -> bool {
        if self.uses_shared(core) {
            self.clusters[self.cluster_of(core)].probe(line)
        } else {
            self.l1s[core.index()].probe(line)
        }
    }

    fn l1_fill(&mut self, core: CoreId, line: LineAddr) {
        if self.uses_shared(core) {
            let cl = self.cluster_of(core);
            self.clusters[cl].fill(line);
        } else {
            self.l1s[core.index()].fill(line, ());
        }
    }

    fn l1_invalidate(&mut self, core: CoreId, line: LineAddr) {
        if self.uses_shared(core) {
            let cl = self.cluster_of(core);
            self.clusters[cl].invalidate(line);
        } else {
            self.l1s[core.index()].invalidate(line);
        }
    }

    fn predictor_ix(line: LineAddr) -> usize {
        let x = line.0 >> 4;
        ((x ^ (x >> 10) ^ (x >> 20)) as usize) % PREDICTOR_ENTRIES
    }

    /// The earliest future cycle at which [`Self::tick`] could change
    /// observable state absent new input, assuming nonzero outbox
    /// budgets (the system only fast-forwards when every outbox is
    /// empty, so budgets are at their maximum).
    ///
    /// `Some(now)` means same-cycle work: a warp can issue a memory
    /// instruction, an FRQ entry or deferred probe is queued, or a
    /// flush / DynEB epoch boundary is due. `Some(t > now)` is a timed
    /// horizon (next kernel flush, DynEB epoch end, or the pure-compute
    /// countdown below). `None` means nothing will ever happen without
    /// a delivery.
    ///
    /// A core whose only runnable warps are mid-compute counts down
    /// deterministically — every such warp decrements and retires once
    /// per cycle — so the countdown is a *timed horizon* (`now +
    /// min(left)`), not same-cycle work, provided the arbitration is
    /// trivial: no more computing warps than `issue_width` (all are
    /// guaranteed an issue slot every cycle) and no warp stuck on a
    /// stalled memory retry (whose `mem_stall_cycles` accounting
    /// depends on issue order once slots run out).
    /// [`Self::advance`] integrates the skipped decrements and retires.
    ///
    /// A warp holding a pending read contributes no work only when the
    /// per-cycle retry provably mutates nothing: the line misses, and
    /// either the MSHR file is full (the retry bails before claiming a
    /// port) or the line's entry has a full target list — the latter
    /// only under [`L1Org::Private`], because with clusters present the
    /// port claim bumps DynEB's served counter even on a failed retry.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        let mut bump = |t: Cycle| match horizon {
            Some(h) if h <= t => {}
            _ => horizon = Some(t),
        };
        for cl in &self.clusters {
            if let Some(e) = cl.next_epoch_end() {
                if e <= now {
                    return Some(now);
                }
                bump(e);
            }
        }
        for (i, core) in self.cores.iter().enumerate() {
            if let Some(at) = core.next_flush {
                if at <= now {
                    return Some(now);
                }
                bump(at);
            }
            if !core.frq.is_empty() {
                return Some(now);
            }
            if core
                .probe_wait
                .values()
                .any(|w| !w.to_send.is_empty() && !w.satisfied)
            {
                return Some(now);
            }
            let id = CoreId(i as u16);
            let mut computing = 0usize;
            let mut min_left = u32::MAX;
            let mut stalled = false;
            for w in &core.warps {
                match w.state {
                    WarpState::WaitMem => {}
                    WarpState::Compute(left) if left > 0 => {
                        computing += 1;
                        min_left = min_left.min(left);
                    }
                    WarpState::Compute(_) => {
                        let Some(access) = w.pending else {
                            // Would draw the next access this cycle.
                            return Some(now);
                        };
                        if access.write {
                            return Some(now);
                        }
                        let line = access.addr.line(self.cfg.l1.line_bytes as u64);
                        if self.l1_probe(id, line) {
                            return Some(now);
                        }
                        if core.mshr.contains(line) {
                            if core.mshr.can_merge(line) || self.org != L1Org::Private {
                                return Some(now);
                            }
                        } else if core.mshr.available() > 0 {
                            return Some(now);
                        }
                        // Provably stalled: the retry mutates nothing.
                        stalled = true;
                    }
                }
            }
            if computing > 0 {
                if computing > self.cfg.issue_width || stalled {
                    return Some(now);
                }
                bump(now + u64::from(min_left));
            }
        }
        horizon
    }

    /// Integrate `span` skipped cycles into per-cycle accumulators. Only
    /// valid after [`Self::next_event`] reported no work before
    /// `now + span`: over such a span the per-cycle side effects are
    /// (a) the one `mem_stall_cycles` increment a core takes whenever
    /// at least one warp retries a provably-stalled memory instruction,
    /// and (b) one decrement + retire per computing warp (next_event
    /// guarantees every computing warp had an issue slot and that
    /// `span <= min(left)` for its core).
    pub fn advance(&mut self, span: u64) {
        for core in &mut self.cores {
            if core.warps.iter().any(|w| w.pending.is_some()) {
                core.stats.mem_stall_cycles += span;
            }
            let mut retired = 0;
            for w in &mut core.warps {
                if let WarpState::Compute(left) = w.state {
                    if left > 0 {
                        debug_assert!(u64::from(left) >= span, "overshot compute countdown");
                        w.state = WarpState::Compute(left - span as u32);
                        retired += span;
                    }
                }
            }
            core.stats.retired += retired;
        }
    }

    /// Advance every core one cycle. `budget[i]` bounds how many new
    /// *locally-initiated* messages core `i` may emit (its request-side
    /// outbox space); `remote_budget[i]` independently bounds remote
    /// (FRQ) service outputs. The separation is essential: coupling
    /// remote service to local congestion recreates exactly the circular
    /// wait the paper's remote-over-local priority is designed to break.
    pub fn tick(
        &mut self,
        now: Cycle,
        budget: &[usize],
        remote_budget: &[usize],
        out: &mut Vec<(CoreId, GpuOut)>,
    ) {
        self.port_used.iter_mut().for_each(|u| *u = 0);
        for cl in &mut self.clusters {
            cl.begin_cycle();
        }
        // DynEB adaptation at epoch boundaries. A mode switch flushes
        // the affected caches, so the cores must also announce a flush —
        // otherwise the LLC keeps stale core pointers and delegations
        // bounce as remote misses.
        for ci in 0..self.clusters.len() {
            if self.clusters[ci].maybe_adapt(now) {
                self.clusters[ci].flush();
                let lo = ci * self.cfg.cluster_cores;
                let hi = ((ci + 1) * self.cfg.cluster_cores).min(self.l1s.len());
                for l1 in &mut self.l1s[lo..hi] {
                    l1.flush();
                }
                for core in lo..hi.min(self.cores.len()) {
                    out.push((CoreId(core as u16), GpuOut::Flushed));
                }
            }
        }
        for i in 0..self.cores.len() {
            let mut b = budget[i];
            let mut rb = remote_budget[i];
            self.tick_core(i, now, &mut b, &mut rb, out);
        }
    }

    fn tick_core(
        &mut self,
        i: usize,
        now: Cycle,
        budget: &mut usize,
        remote_budget: &mut usize,
        out: &mut Vec<(CoreId, GpuOut)>,
    ) {
        let id = CoreId(i as u16);
        // Kernel-boundary flush (software coherence).
        if let Some(at) = self.cores[i].next_flush {
            if now >= at && *budget > 0 {
                if self.uses_shared(id) {
                    let cl = self.cluster_of(id);
                    self.clusters[cl].flush();
                } else {
                    self.l1s[i].flush();
                }
                self.cores[i].next_flush =
                    Some(at + self.cfg.flush_interval.expect("flush scheduled"));
                self.cores[i].stats.flushes += 1;
                out.push((id, GpuOut::Flushed));
                *budget -= 1;
            }
        }
        // 1. Remote service (FRQ) — strictly before local issue, on its
        //    own budget (reply-lane outbox space). Under a shared L1 the
        //    slices are the scarce resource, so remote service is paced
        //    to one entry per cycle to avoid starving local warps.
        let mut frq_served = 0usize;
        let frq_cap = if self.uses_shared(id) { 1 } else { usize::MAX };
        while *remote_budget > 0 && frq_served < frq_cap {
            frq_served += 1;
            let Some(&entry) = self.cores[i].frq.front() else {
                break;
            };
            let line = match entry {
                FrqEntry::Delegated { line, .. }
                | FrqEntry::Probe { line, .. }
                | FrqEntry::Fetch { line, .. } => line,
            };
            // Private L1s serve remote requests through their ports;
            // shared slices expose a dedicated snoop port (paced to one
            // remote request per cycle above).
            if !self.uses_shared(id) && !self.claim_port(id, line) {
                break; // port stall: retry next cycle
            }
            self.cores[i].frq.pop_front();
            match entry {
                FrqEntry::Delegated { line, requester } => {
                    if self.l1_lookup(id, line) {
                        self.cores[i].stats.delegated_hits += 1;
                        out.push((
                            id,
                            GpuOut::CoreReply {
                                to: requester,
                                line,
                            },
                        ));
                        *remote_budget -= 1;
                    } else if self.delayed_hits && self.cores[i].mshr.contains(line) {
                        // Delayed hit: forward when the miss returns.
                        match self.cores[i].mshr.allocate(line, Target::Remote(requester)) {
                            MshrOutcome::Merged => {
                                self.cores[i].stats.delegated_delayed += 1;
                            }
                            _ => {
                                // Target list full: treat as remote miss.
                                self.cores[i].stats.delegated_misses += 1;
                                out.push((
                                    id,
                                    GpuOut::LlcRead {
                                        line,
                                        dnf: true,
                                        requester,
                                    },
                                ));
                                *remote_budget -= 1;
                            }
                        }
                    } else {
                        // Remote miss: bounce to the LLC with DNF set.
                        self.cores[i].stats.delegated_misses += 1;
                        out.push((
                            id,
                            GpuOut::LlcRead {
                                line,
                                dnf: true,
                                requester,
                            },
                        ));
                        *remote_budget -= 1;
                    }
                }
                FrqEntry::Probe { line, from } => {
                    if self.l1_probe(id, line) {
                        self.cores[i].stats.probe_hits_served += 1;
                        out.push((id, GpuOut::ProbeHitAck { to: from, line }));
                    } else {
                        self.cores[i].stats.probe_misses_served += 1;
                        out.push((id, GpuOut::ProbeMiss { to: from, line }));
                    }
                    *remote_budget -= 1;
                }
                FrqEntry::Fetch { line, from } => {
                    if self.l1_probe(id, line) {
                        out.push((id, GpuOut::CoreReply { to: from, line }));
                    } else {
                        // Evicted between the probe and the fetch.
                        out.push((id, GpuOut::ProbeMiss { to: from, line }));
                    }
                    *remote_budget -= 1;
                }
            }
        }
        // 2. Flush deferred probe targets as budget allows.
        if matches!(self.scheme, Scheme::RealisticProbing { .. }) {
            let mut lines = std::mem::take(&mut self.flush_lines);
            lines.clear();
            lines.extend(
                self.cores[i]
                    .probe_wait
                    .iter()
                    .filter(|(_, w)| !w.to_send.is_empty() && !w.satisfied)
                    .map(|(&l, _)| l),
            );
            // Visit lines in a canonical order: hash-map iteration order
            // depends on insertion history, which a snapshot restore
            // cannot reproduce, and under a tight budget the visit order
            // decides which line's probes go out first.
            lines.sort_unstable();
            for &line in &lines {
                if *budget == 0 {
                    break;
                }
                let w = self.cores[i].probe_wait.get_mut(&line).expect("listed");
                while *budget > 0 {
                    let Some(t) = w.to_send.pop() else { break };
                    w.outstanding += 1;
                    out.push((id, GpuOut::Probe { to: t, line }));
                    *budget -= 1;
                }
                self.cores[i].stats.probes_sent += 1; // approximate batch count
            }
            self.flush_lines = lines;
        }
        // 3. Local warp issue (up to issue_width).
        let mut issued = 0;
        let n_warps = self.cores[i].warps.len();
        let mut stalled_mem = false;
        for w in 0..n_warps {
            if issued >= self.cfg.issue_width {
                break;
            }
            match self.cores[i].warps[w].state {
                WarpState::WaitMem => continue,
                WarpState::Compute(left) if left > 0 => {
                    self.cores[i].warps[w].state = WarpState::Compute(left - 1);
                    self.cores[i].stats.retired += 1;
                    issued += 1;
                }
                WarpState::Compute(_) => {
                    // Memory instruction is next.
                    if self.cores[i].warps[w].pending.is_none() {
                        let a = self.cores[i].stream.next_access();
                        self.cores[i].warps[w].pending = Some(a);
                    }
                    let access = self.cores[i].warps[w].pending.expect("set above");
                    match self.try_mem(i, w, access, budget, out) {
                        true => issued += 1,
                        false => stalled_mem = true,
                    }
                }
            }
        }
        if stalled_mem {
            self.cores[i].stats.mem_stall_cycles += 1;
        }
    }

    /// Attempt the memory instruction of warp `w`; returns true if it
    /// issued (retiring one instruction).
    fn try_mem(
        &mut self,
        i: usize,
        w: usize,
        access: MemAccess,
        budget: &mut usize,
        out: &mut Vec<(CoreId, GpuOut)>,
    ) -> bool {
        let id = CoreId(i as u16);
        let line = access.addr.line(self.cfg.l1.line_bytes as u64);
        let cpm = self.cores[i].stream.compute_per_mem();
        if access.write {
            // Write-through, write-evict, no-allocate; fire-and-forget.
            if *budget == 0 || !self.claim_port(id, line) {
                return false;
            }
            self.l1_invalidate(id, line);
            out.push((id, GpuOut::LlcWrite { line }));
            *budget -= 1;
            let c = &mut self.cores[i];
            c.stats.writes += 1;
            c.stats.mem_ops += 1;
            c.stats.retired += 1;
            c.warps[w].pending = None;
            c.warps[w].state = WarpState::Compute(cpm);
            return true;
        }
        // Read. Probe first so a structurally-stalled retry does not
        // pollute hit/miss statistics or burn an L1 port every cycle.
        let hit = self.l1_probe(id, line);
        let merged = !hit && self.cores[i].mshr.contains(line);
        if !hit && !merged {
            // A request must go out: check resources before committing.
            if *budget == 0 || self.cores[i].mshr.available() == 0 {
                return false;
            }
        }
        if !self.claim_port(id, line) {
            return false;
        }
        if merged {
            // Hit to an outstanding line: merges into the MSHR without
            // touching the tag array (GPGPU-sim's "hit_reserved" — not a
            // demand miss, so it does not distort the miss rate).
            match self.cores[i].mshr.allocate(line, Target::Warp(w as u16)) {
                MshrOutcome::Merged => {
                    let c = &mut self.cores[i];
                    c.stats.mem_ops += 1;
                    c.stats.retired += 1;
                    c.warps[w].pending = None;
                    c.warps[w].state = WarpState::WaitMem;
                    return true;
                }
                // Target list full: structural stall, retry next cycle.
                _ => return false,
            }
        }
        if self.l1_lookup(id, line) {
            let c = &mut self.cores[i];
            c.stats.mem_ops += 1;
            c.stats.retired += 1;
            c.warps[w].pending = None;
            c.warps[w].state = WarpState::Compute(cpm);
            return true;
        }
        match self.cores[i].mshr.allocate(line, Target::Warp(w as u16)) {
            MshrOutcome::Merged => {
                let c = &mut self.cores[i];
                c.stats.mem_ops += 1;
                c.stats.retired += 1;
                c.warps[w].pending = None;
                c.warps[w].state = WarpState::WaitMem;
                true
            }
            MshrOutcome::Primary => {
                // RP: predict-and-probe; otherwise straight to the LLC.
                let mut probed = false;
                if let Scheme::RealisticProbing { fanout } = self.scheme {
                    let fanout = fanout.min(self.cores.len() - 1);
                    let ix = Self::predictor_ix(line);
                    self.cores[i].probe_seq += 1;
                    // Epsilon exploration: occasionally probe even for
                    // predicted-private regions so the predictor can
                    // recover once remote caches warm up.
                    let confident =
                        self.cores[i].predictor[ix] >= 2 && self.cores[i].probe_score > 4;
                    let explore = self.cores[i].probe_seq.is_multiple_of(64);
                    if fanout > 0 && *budget > 0 && (confident || explore) {
                        let n = self.cores.len();
                        // Probe CTA-adjacent cores first (round-robin CTA
                        // scheduling puts stencil neighbors on adjacent
                        // SMs), then recent suppliers, then rotate; send
                        // what the outbox allows now, defer the rest.
                        let mut targets: Vec<CoreId> = Vec::with_capacity(fanout);
                        for d in [1usize, n - 1] {
                            if targets.len() < fanout {
                                targets.push(CoreId(((i + d) % n) as u16));
                            }
                        }
                        for &s in &self.cores[i].suppliers {
                            if targets.len() == fanout {
                                break;
                            }
                            if s.index() != i && !targets.contains(&s) {
                                targets.push(s);
                            }
                        }
                        let start = self.cores[i].probe_rr;
                        self.cores[i].probe_rr = (start + 1) % n;
                        let mut t = start;
                        while targets.len() < fanout {
                            t = (t + 1) % n;
                            let c = CoreId(t as u16);
                            if t != i && !targets.contains(&c) {
                                targets.push(c);
                            }
                        }
                        let send_now = targets.len().min(*budget);
                        let deferred: Vec<CoreId> = targets.split_off(send_now);
                        let sent = targets.len();
                        for c in targets {
                            out.push((id, GpuOut::Probe { to: c, line }));
                        }
                        self.cores[i].stats.probes_sent += sent as u64;
                        *budget -= sent;
                        self.cores[i].probe_wait.insert(
                            line,
                            ProbeWait {
                                outstanding: sent,
                                satisfied: false,
                                fetch_sent: false,
                                to_send: deferred,
                            },
                        );
                        probed = true;
                    }
                }
                if !probed {
                    out.push((
                        id,
                        GpuOut::LlcRead {
                            line,
                            dnf: false,
                            requester: id,
                        },
                    ));
                    self.cores[i].stats.llc_reads += 1;
                    *budget -= 1;
                }
                let c = &mut self.cores[i];
                c.stats.mem_ops += 1;
                c.stats.retired += 1;
                c.warps[w].pending = None;
                c.warps[w].state = WarpState::WaitMem;
                true
            }
            MshrOutcome::NoEntry | MshrOutcome::NoTarget => false,
        }
    }

    /// Deliver a message to `core`; any responses are appended to `out`.
    ///
    /// # Panics
    ///
    /// Panics if a [`GpuIn::Delegated`] or [`GpuIn::ProbeReq`] arrives
    /// while the FRQ is full (the system must gate on
    /// [`Self::frq_has_space`]).
    pub fn deliver(&mut self, core: CoreId, msg: GpuIn, out: &mut Vec<(CoreId, GpuOut)>) {
        let i = core.index();
        match msg {
            GpuIn::Data { line, from } => {
                self.l1_fill(core, line);
                if let Some(supplier) = from {
                    let c = &mut self.cores[i];
                    c.suppliers.retain(|&s| s != supplier);
                    c.suppliers.push_front(supplier);
                    c.suppliers.truncate(8);
                }
                // RP bookkeeping: data may satisfy a probe burst.
                if let Some(pw) = self.cores[i].probe_wait.get_mut(&line) {
                    pw.satisfied = true;
                    pw.to_send.clear();
                    let ix = Self::predictor_ix(line);
                    let p = &mut self.cores[i].predictor[ix];
                    *p = (*p + 1).min(3);
                    if self.cores[i].probe_wait[&line].outstanding == 0 {
                        self.cores[i].probe_wait.remove(&line);
                    }
                }
                let cpm = self.cores[i].stream.compute_per_mem();
                for t in self.cores[i].mshr.complete(line) {
                    match t {
                        Target::Warp(w) => {
                            self.cores[i].warps[w as usize].state = WarpState::Compute(cpm);
                        }
                        Target::Remote(requester) => {
                            self.cores[i].stats.delegated_hits += 1;
                            out.push((
                                core,
                                GpuOut::CoreReply {
                                    to: requester,
                                    line,
                                },
                            ));
                        }
                    }
                }
            }
            GpuIn::WriteAck { .. } => {}
            GpuIn::Delegated { line, requester } => {
                assert!(
                    self.frq_has_space(core),
                    "FRQ overflow at {core}: gate deliveries on frq_has_space"
                );
                if self.cores[i]
                    .frq
                    .iter()
                    .any(|e| matches!(e, FrqEntry::Delegated { line: l, .. } if *l == line))
                {
                    self.cores[i].stats.frq_same_line += 1;
                }
                self.cores[i]
                    .frq
                    .push_back(FrqEntry::Delegated { line, requester });
            }
            GpuIn::ProbeReq { from, line } => {
                assert!(
                    self.frq_has_space(core),
                    "FRQ overflow at {core}: gate deliveries on frq_has_space"
                );
                self.cores[i].frq.push_back(FrqEntry::Probe { line, from });
            }
            GpuIn::FetchReq { from, line } => {
                assert!(
                    self.frq_has_space(core),
                    "FRQ overflow at {core}: gate deliveries on frq_has_space"
                );
                self.cores[i].frq.push_back(FrqEntry::Fetch { line, from });
            }
            GpuIn::ProbeHitReply { from, line } => {
                let Some(w) = self.cores[i].probe_wait.get_mut(&line) else {
                    return;
                };
                w.outstanding -= 1;
                if !w.satisfied && !w.fetch_sent {
                    // Fetch from the first confirmed hitter; ignore the
                    // later acks. No more probes needed either.
                    w.fetch_sent = true;
                    w.outstanding += 1; // the fetch response
                    w.to_send.clear();
                    let ix = Self::predictor_ix(line);
                    let p = &mut self.cores[i].predictor[ix];
                    *p = (*p + 1).min(3);
                    self.cores[i].probe_score = (self.cores[i].probe_score + 8).min(64);
                    out.push((core, GpuOut::Fetch { to: from, line }));
                } else if w.outstanding == 0 {
                    let satisfied = w.satisfied;
                    let fetch_sent = w.fetch_sent;
                    self.cores[i].probe_wait.remove(&line);
                    if !satisfied && !fetch_sent {
                        unreachable!("hit ack implies a fetch or data");
                    }
                }
            }
            GpuIn::ProbeMissReply { line } => {
                let Some(pw) = self.cores[i].probe_wait.get_mut(&line) else {
                    return;
                };
                pw.outstanding -= 1;
                if pw.outstanding == 0 && pw.to_send.is_empty() {
                    let satisfied = pw.satisfied;
                    self.cores[i].probe_wait.remove(&line);
                    if !satisfied {
                        // Every probe missed (or the fetch bounced):
                        // fall back to the LLC.
                        let ix = Self::predictor_ix(line);
                        let p = &mut self.cores[i].predictor[ix];
                        *p = p.saturating_sub(1);
                        self.cores[i].probe_score = (self.cores[i].probe_score - 1).max(0);
                        self.cores[i].stats.llc_reads += 1;
                        out.push((
                            core,
                            GpuOut::LlcRead {
                                line,
                                dnf: false,
                                requester: core,
                            },
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clognet_workloads::gpu_benchmark;

    fn subsystem(scheme: Scheme, org: L1Org) -> GpuSubsystem {
        let cfg = GpuConfig {
            flush_interval: None,
            ..GpuConfig::default()
        };
        GpuSubsystem::new(
            cfg,
            scheme,
            org,
            CtaSched::RoundRobin,
            gpu_benchmark("HS").unwrap(),
            8,
            42,
        )
    }

    fn run_cycles(
        g: &mut GpuSubsystem,
        cycles: u64,
        mut on_out: impl FnMut(&mut GpuSubsystem, Vec<(CoreId, GpuOut)>, Cycle),
    ) {
        let budget = vec![8usize; g.n_cores()];
        for now in 0..cycles {
            let mut out = Vec::new();
            g.tick(now, &budget, &budget, &mut out);
            on_out(g, out, now);
        }
    }

    /// A zero-latency perfect memory: every LlcRead returns data next
    /// call.
    fn perfect_memory(g: &mut GpuSubsystem, out: Vec<(CoreId, GpuOut)>, _now: Cycle) {
        let mut replies = Vec::new();
        for (core, o) in out {
            if let GpuOut::LlcRead {
                line, requester, ..
            } = o
            {
                let _ = core;
                replies.push((requester, line));
            }
        }
        let mut sink = Vec::new();
        for (to, line) in replies {
            g.deliver(to, GpuIn::Data { line, from: None }, &mut sink);
        }
        // Serve any forwards produced by delivery.
        for (core, o) in sink {
            let _ = (core, o);
        }
    }

    #[test]
    fn warps_make_progress_with_perfect_memory() {
        let mut g = subsystem(Scheme::Baseline, L1Org::Private);
        run_cycles(&mut g, 2000, perfect_memory);
        let retired = g.total_retired();
        // 8 cores x up to 2 IPC x 2000 cycles = 32000 max.
        assert!(retired > 8_000, "retired {retired}");
        assert!(retired <= 32_000);
    }

    #[test]
    fn stalls_without_any_memory_replies() {
        let mut g = subsystem(Scheme::Baseline, L1Org::Private);
        run_cycles(&mut g, 3000, |_, _, _| {});
        // All warps eventually block on memory (or MSHRs fill).
        let s = g.stats(CoreId(0));
        assert!(s.mem_stall_cycles > 0 || s.retired < 3000 * 2);
        let before = g.total_retired();
        let budget = vec![8usize; g.n_cores()];
        let mut out = Vec::new();
        g.tick(3000, &budget, &budget, &mut out);
        assert_eq!(g.total_retired(), before, "no progress when starved");
    }

    #[test]
    fn read_miss_emits_one_llc_read_with_merging() {
        let mut g = subsystem(Scheme::Baseline, L1Org::Private);
        let budget = vec![64usize; g.n_cores()];
        let mut reads = 0;
        let mut lines = std::collections::HashSet::new();
        for now in 0..50 {
            let mut out = Vec::new();
            g.tick(now, &budget, &budget, &mut out);
            for (_c, o) in out {
                if let GpuOut::LlcRead { line, .. } = o {
                    reads += 1;
                    lines.insert(line);
                }
            }
        }
        assert!(reads > 0);
        // Merging: outstanding lines are unique per core; with 8 cores
        // sharing hot lines, some duplication across cores is expected
        // but within a core reads == unique lines. Aggregate sanity:
        assert!(
            lines.len() * 8 >= reads,
            "MSHR merging broken: {reads} reads, {} lines",
            lines.len()
        );
    }

    #[test]
    fn delegated_hit_produces_core_reply() {
        let mut g = subsystem(Scheme::DelegatedReplies, L1Org::Private);
        // Warm core 0's L1 with a line.
        let line = LineAddr(0x4000_0000_0000 / 128);
        let mut out = Vec::new();
        g.deliver(CoreId(0), GpuIn::Data { line, from: None }, &mut out);
        assert!(g.l1_probe(CoreId(0), line));
        // Delegate a reply for core 3 to core 0.
        g.deliver(
            CoreId(0),
            GpuIn::Delegated {
                line,
                requester: CoreId(3),
            },
            &mut out,
        );
        let budget = vec![8usize; g.n_cores()];
        let mut out = Vec::new();
        g.tick(0, &budget, &budget, &mut out);
        assert!(
            out.iter().any(|(c, o)| *c == CoreId(0)
                && *o
                    == GpuOut::CoreReply {
                        to: CoreId(3),
                        line
                    }),
            "no CoreReply in {out:?}"
        );
        assert_eq!(g.stats(CoreId(0)).delegated_hits, 1);
    }

    #[test]
    fn delegated_miss_bounces_to_llc_with_dnf() {
        let mut g = subsystem(Scheme::DelegatedReplies, L1Org::Private);
        let line = LineAddr(12345);
        let mut out = Vec::new();
        g.deliver(
            CoreId(1),
            GpuIn::Delegated {
                line,
                requester: CoreId(5),
            },
            &mut out,
        );
        let budget = vec![8usize; g.n_cores()];
        let mut out = Vec::new();
        g.tick(0, &budget, &budget, &mut out);
        assert!(
            out.iter().any(|(c, o)| *c == CoreId(1)
                && *o
                    == GpuOut::LlcRead {
                        line,
                        dnf: true,
                        requester: CoreId(5)
                    }),
            "no DNF resend in {out:?}"
        );
        assert_eq!(g.stats(CoreId(1)).delegated_misses, 1);
    }

    #[test]
    fn delegated_delayed_hit_forwards_on_fill() {
        let mut g = subsystem(Scheme::DelegatedReplies, L1Org::Private);
        // Create an outstanding miss on core 0 by running it without
        // memory until it issues reads.
        let budget = vec![8usize; g.n_cores()];
        let mut first_line = None;
        for now in 0..50 {
            let mut out = Vec::new();
            g.tick(now, &budget, &budget, &mut out);
            for (c, o) in out {
                if c == CoreId(0) {
                    if let GpuOut::LlcRead { line, .. } = o {
                        first_line.get_or_insert(line);
                    }
                }
            }
            if first_line.is_some() {
                break;
            }
        }
        let line = first_line.expect("core 0 issued a read");
        // Delegate that same line to core 0 while its miss is in flight.
        let mut out = Vec::new();
        g.deliver(
            CoreId(0),
            GpuIn::Delegated {
                line,
                requester: CoreId(7),
            },
            &mut out,
        );
        let mut out = Vec::new();
        g.tick(100, &budget, &budget, &mut out);
        assert_eq!(g.stats(CoreId(0)).delegated_delayed, 1);
        // Now the data arrives: the forward must go out.
        let mut out = Vec::new();
        g.deliver(CoreId(0), GpuIn::Data { line, from: None }, &mut out);
        assert!(
            out.iter().any(|(c, o)| *c == CoreId(0)
                && *o
                    == GpuOut::CoreReply {
                        to: CoreId(7),
                        line
                    }),
            "delayed forward missing: {out:?}"
        );
    }

    #[test]
    fn frq_capacity_is_enforced() {
        let mut g = subsystem(Scheme::DelegatedReplies, L1Org::Private);
        let mut out = Vec::new();
        for k in 0..8 {
            assert!(g.frq_has_space(CoreId(2)));
            g.deliver(
                CoreId(2),
                GpuIn::Delegated {
                    line: LineAddr(k),
                    requester: CoreId(0),
                },
                &mut out,
            );
        }
        assert!(!g.frq_has_space(CoreId(2)));
    }

    #[test]
    fn rp_probes_fan_out_and_fall_back() {
        let mut g = subsystem(Scheme::RealisticProbing { fanout: 4 }, L1Org::Private);
        let budget = vec![16usize; g.n_cores()];
        // Collect first probe burst from any core.
        let mut probes: Vec<(CoreId, CoreId, LineAddr)> = Vec::new();
        for now in 0..50 {
            let mut out = Vec::new();
            g.tick(now, &budget, &budget, &mut out);
            for (c, o) in out {
                if let GpuOut::Probe { to, line } = o {
                    probes.push((c, to, line));
                }
            }
            if !probes.is_empty() {
                break;
            }
        }
        assert!(!probes.is_empty(), "no probes under RP");
        let (prober, _, line) = probes[0];
        let burst: Vec<_> = probes
            .iter()
            .filter(|(c, _, l)| *c == prober && *l == line)
            .collect();
        assert_eq!(burst.len(), 4, "fanout respected");
        assert!(burst.iter().all(|(c, to, _)| to != c));
        // All probes miss -> fallback LlcRead.
        let mut fallback = Vec::new();
        for k in 0..4 {
            let mut out = Vec::new();
            g.deliver(prober, GpuIn::ProbeMissReply { line }, &mut out);
            if k == 3 {
                fallback = out;
            } else {
                assert!(out.is_empty(), "early fallback");
            }
        }
        assert!(
            fallback.iter().any(|(c, o)| *c == prober
                && matches!(o, GpuOut::LlcRead { line: l, dnf: false, .. } if *l == line)),
            "no fallback in {fallback:?}"
        );
    }

    #[test]
    fn probe_request_served_from_frq() {
        let mut g = subsystem(Scheme::RealisticProbing { fanout: 4 }, L1Org::Private);
        let line = LineAddr(0x4000_0000_0000 / 128);
        let mut out = Vec::new();
        g.deliver(CoreId(0), GpuIn::Data { line, from: None }, &mut out);
        g.deliver(
            CoreId(0),
            GpuIn::ProbeReq {
                from: CoreId(4),
                line,
            },
            &mut out,
        );
        g.deliver(
            CoreId(0),
            GpuIn::ProbeReq {
                from: CoreId(5),
                line: LineAddr(999_999),
            },
            &mut out,
        );
        let budget = vec![8usize; g.n_cores()];
        let mut out = Vec::new();
        g.tick(0, &budget, &budget, &mut out);
        assert!(out.contains(&(
            CoreId(0),
            GpuOut::ProbeHitAck {
                to: CoreId(4),
                line
            }
        )));
        assert!(out.contains(&(
            CoreId(0),
            GpuOut::ProbeMiss {
                to: CoreId(5),
                line: LineAddr(999_999)
            }
        )));
        // The confirmed hitter transfers the data on a fetch.
        let mut out = Vec::new();
        g.deliver(
            CoreId(0),
            GpuIn::FetchReq {
                from: CoreId(4),
                line,
            },
            &mut out,
        );
        let mut out = Vec::new();
        g.tick(1, &budget, &budget, &mut out);
        assert!(out.contains(&(
            CoreId(0),
            GpuOut::CoreReply {
                to: CoreId(4),
                line
            }
        )));
    }

    #[test]
    fn writes_are_write_through_and_evict() {
        let mut g = subsystem(Scheme::Baseline, L1Org::Private);
        let budget = vec![32usize; g.n_cores()];
        let mut wrote = false;
        for now in 0..2000 {
            let mut out = Vec::new();
            g.tick(now, &budget, &budget, &mut out);
            for (c, o) in &out {
                if let GpuOut::LlcWrite { line } = o {
                    wrote = true;
                    assert!(!g.l1_probe(*c, *line), "write must evict the L1 copy");
                }
            }
            perfect_memory(&mut g, out, now);
            if wrote {
                break;
            }
        }
        assert!(wrote, "HS has a 10% write share; 2000 cycles must write");
    }

    #[test]
    fn kernel_flush_emits_flushed_and_empties_l1() {
        let cfg = GpuConfig {
            flush_interval: Some(100),
            ..GpuConfig::default()
        };
        let mut g = GpuSubsystem::new(
            cfg,
            Scheme::DelegatedReplies,
            L1Org::Private,
            CtaSched::RoundRobin,
            gpu_benchmark("NN").unwrap(),
            4,
            1,
        );
        let budget = vec![8usize; 4];
        let mut flushed = Vec::new();
        for now in 0..500 {
            let mut out = Vec::new();
            g.tick(now, &budget, &budget, &mut out);
            for (c, o) in &out {
                if *o == GpuOut::Flushed {
                    flushed.push(*c);
                }
            }
            perfect_memory(&mut g, out, now);
        }
        assert!(
            !flushed.is_empty(),
            "no flushes in 500 cycles at interval 100"
        );
        assert!(g.stats(CoreId(0)).flushes >= 1);
    }

    #[test]
    fn shared_org_serializes_hot_line() {
        // All cores of one cluster hammering one line: DC-L1 serves at
        // most 1 access/cycle for it, private serves cluster-wide.
        let hot = LineAddr(0x4000_0000_0000 / 128);
        let mk = |org| {
            let cfg = GpuConfig {
                flush_interval: None,
                ..GpuConfig::default()
            };
            let mut g = GpuSubsystem::new(
                cfg,
                Scheme::Baseline,
                org,
                CtaSched::RoundRobin,
                gpu_benchmark("NN").unwrap(),
                8,
                3,
            );
            let mut out = Vec::new();
            for c in 0..8 {
                g.deliver(
                    CoreId(c),
                    GpuIn::Data {
                        line: hot,
                        from: None,
                    },
                    &mut out,
                );
            }
            g
        };
        let mut shared = mk(L1Org::DcL1);
        let mut private = mk(L1Org::Private);
        // Count L1 port grants for the hot line over some cycles.
        let mut grants_shared = 0;
        let mut grants_private = 0;
        for _ in 0..100 {
            shared.port_used.iter_mut().for_each(|u| *u = 0);
            for cl in &mut shared.clusters {
                cl.begin_cycle();
            }
            private.port_used.iter_mut().for_each(|u| *u = 0);
            for c in 0..8 {
                if shared.claim_port(CoreId(c), hot) {
                    grants_shared += 1;
                }
                if private.claim_port(CoreId(c), hot) {
                    grants_private += 1;
                }
            }
        }
        assert_eq!(grants_shared, 100, "one slice port per cycle");
        assert_eq!(grants_private, 800, "private L1s all proceed");
    }

    #[test]
    fn delayed_hits_ablation_turns_them_into_remote_misses() {
        let mut g = subsystem(Scheme::DelegatedReplies, L1Org::Private);
        g.set_delayed_hits(false);
        // Create an outstanding miss on core 0.
        let budget = vec![8usize; g.n_cores()];
        let mut line = None;
        for now in 0..50 {
            let mut out = Vec::new();
            g.tick(now, &budget, &budget, &mut out);
            for (c, o) in out {
                if c == CoreId(0) {
                    if let GpuOut::LlcRead { line: l, .. } = o {
                        line.get_or_insert(l);
                    }
                }
            }
            if line.is_some() {
                break;
            }
        }
        let line = line.expect("core 0 issued a read");
        let mut out = Vec::new();
        g.deliver(
            CoreId(0),
            GpuIn::Delegated {
                line,
                requester: CoreId(7),
            },
            &mut out,
        );
        let mut out = Vec::new();
        g.tick(100, &budget, &budget, &mut out);
        assert_eq!(g.stats(CoreId(0)).delegated_delayed, 0);
        assert_eq!(g.stats(CoreId(0)).delegated_misses, 1);
        assert!(out.iter().any(|(c, o)| *c == CoreId(0)
            && matches!(o, GpuOut::LlcRead { dnf: true, requester, .. } if *requester == CoreId(7))));
    }

    #[test]
    fn deferred_probe_targets_flush_over_cycles() {
        // A probe burst bigger than the cycle budget must trickle out
        // over later cycles instead of being dropped.
        let mut g = subsystem(Scheme::RealisticProbing { fanout: 6 }, L1Org::Private);
        // Tiny budget: one message per cycle.
        let budget = vec![1usize; g.n_cores()];
        let mut probes = 0;
        for now in 0..400 {
            let mut out = Vec::new();
            g.tick(now, &budget, &budget, &mut out);
            probes += out
                .iter()
                .filter(|(c, o)| *c == CoreId(0) && matches!(o, GpuOut::Probe { .. }))
                .count();
        }
        assert!(
            probes >= 6,
            "deferred probes never flushed: only {probes} sent"
        );
    }

    #[test]
    fn probe_confidence_throttles_hopeless_probing() {
        // Feed core 0 nothing but probe failures; its global confidence
        // must collapse and probing must (mostly) stop.
        let mut g = subsystem(Scheme::RealisticProbing { fanout: 2 }, L1Org::Private);
        let budget = vec![16usize; g.n_cores()];
        let mut outstanding: Vec<(CoreId, LineAddr)> = Vec::new();
        let mut sent_late = 0usize;
        for now in 0..6_000u64 {
            let mut out = Vec::new();
            g.tick(now, &budget, &budget, &mut out);
            let mut sink = Vec::new();
            for (c, o) in out {
                match o {
                    GpuOut::Probe { line, .. } => {
                        outstanding.push((c, line));
                        if now > 4_000 {
                            sent_late += 1;
                        }
                    }
                    GpuOut::LlcRead {
                        line, requester, ..
                    } => {
                        // Perfect memory keeps the cores alive.
                        g.deliver(requester, GpuIn::Data { line, from: None }, &mut sink);
                    }
                    _ => {}
                }
            }
            // Every probe misses.
            for (c, line) in outstanding.drain(..) {
                g.deliver(c, GpuIn::ProbeMissReply { line }, &mut sink);
                g.deliver(c, GpuIn::ProbeMissReply { line }, &mut sink);
                for (cc, oo) in sink.drain(..) {
                    if let GpuOut::LlcRead { line, .. } = oo {
                        let mut s2 = Vec::new();
                        g.deliver(cc, GpuIn::Data { line, from: None }, &mut s2);
                    }
                }
            }
        }
        // Only the epsilon trickle (1/64 misses) may still probe.
        let total: u64 = (0..8).map(|i| g.stats(CoreId(i)).probes_sent).sum();
        assert!(total > 0, "never probed at all");
        assert!(
            sent_late < 200,
            "throttle failed: {sent_late} probes after confidence collapse"
        );
    }

    #[test]
    fn dyneb_clusters_adapt_at_epochs() {
        let cfg = GpuConfig {
            flush_interval: None,
            dyneb_epoch: 64,
            ..GpuConfig::default()
        };
        let mut g = GpuSubsystem::new(
            cfg,
            Scheme::Baseline,
            L1Org::DynEB,
            CtaSched::RoundRobin,
            gpu_benchmark("NN").unwrap(),
            8,
            5,
        );
        // Run with perfect memory long enough to cross several epochs;
        // the cluster must settle into SOME mode and keep retiring.
        let budget = vec![8usize; 8];
        for now in 0..2_000 {
            let mut out = Vec::new();
            g.tick(now, &budget, &budget, &mut out);
            perfect_memory(&mut g, out, now);
        }
        assert!(g.total_retired() > 2_000, "DynEB stalled the cores");
    }

    #[test]
    fn quiescent_ticks_equal_advance_integration() {
        // Starve two identical GPUs until next_event stops reporting
        // same-cycle work, then walk one through 500 dead cycles while
        // the other integrates them with advance(): stats must match.
        let mut a = subsystem(Scheme::Baseline, L1Org::Private);
        let mut b = subsystem(Scheme::Baseline, L1Org::Private);
        let budget = vec![16usize; a.n_cores()];
        let mut out = Vec::new();
        let mut now = 0u64;
        while a.next_event(now) == Some(now) {
            out.clear();
            a.tick(now, &budget, &budget, &mut out);
            out.clear();
            b.tick(now, &budget, &budget, &mut out);
            now += 1;
            assert!(now < 10_000, "starved GPU never quiesced");
        }
        assert_eq!(a.next_event(now), None, "no flush scheduled, no horizon");
        for t in now..now + 500 {
            out.clear();
            a.tick(t, &budget, &budget, &mut out);
            assert!(out.is_empty(), "quiescent GPU emitted {out:?}");
        }
        b.advance(500);
        for i in 0..a.n_cores() {
            let c = CoreId(i as u16);
            assert_eq!(a.stats(c), b.stats(c), "core {i} diverged");
        }
        assert_eq!(a.next_event(now + 500), None, "still quiescent");
    }

    #[test]
    fn next_event_reports_flush_and_epoch_horizons() {
        // Kernel flushes and DynEB epoch ends are timed horizons that
        // fast-forward must clamp to.
        let cfg = GpuConfig {
            flush_interval: Some(1000),
            ..GpuConfig::default()
        };
        let g = GpuSubsystem::new(
            cfg,
            Scheme::Baseline,
            L1Org::Private,
            CtaSched::RoundRobin,
            gpu_benchmark("HS").unwrap(),
            4,
            7,
        );
        // Fresh cores have same-cycle work (warps want to issue).
        assert_eq!(g.next_event(0), Some(0));
        let cfg = GpuConfig {
            flush_interval: None,
            dyneb_epoch: 64,
            ..GpuConfig::default()
        };
        let mut g = GpuSubsystem::new(
            cfg,
            Scheme::Baseline,
            L1Org::DynEB,
            CtaSched::RoundRobin,
            gpu_benchmark("HS").unwrap(),
            4,
            7,
        );
        let budget = vec![16usize; 4];
        let mut out = Vec::new();
        let mut now = 0u64;
        while g.next_event(now) == Some(now) {
            out.clear();
            g.tick(now, &budget, &budget, &mut out);
            now += 1;
            assert!(now < 10_000, "starved GPU never quiesced");
        }
        // A DynEB cluster always has a bounded horizon: at the latest
        // its epoch end (a lingering pure-compute countdown may report
        // an even earlier cycle, but never one past the boundary).
        let h = g.next_event(now).expect("DynEB keeps a horizon");
        assert!(h > now);
        let boundary = (now / 64 + 1) * 64;
        assert!(h <= boundary, "horizon {h} skips the epoch end {boundary}");
    }

    #[test]
    fn dcl1_dedups_shared_capacity() {
        // Fill the same shared lines via all cores; the cluster stores
        // each once, while private mode stores 8 copies.
        let cfg = GpuConfig {
            flush_interval: None,
            ..GpuConfig::default()
        };
        let mut g = GpuSubsystem::new(
            cfg,
            Scheme::Baseline,
            L1Org::DcL1,
            CtaSched::RoundRobin,
            gpu_benchmark("SC").unwrap(),
            8,
            3,
        );
        let mut out = Vec::new();
        for c in 0..8 {
            for l in 0..100u64 {
                g.deliver(
                    CoreId(c),
                    GpuIn::Data {
                        line: LineAddr(l),
                        from: None,
                    },
                    &mut out,
                );
            }
        }
        let total: usize = g
            .clusters
            .iter()
            .map(|cl| (0..100u64).filter(|&l| cl.probe(LineAddr(l))).count())
            .sum();
        assert_eq!(total, 100, "each line stored once in the cluster");
    }
}
