//! # clognet-gpu
//!
//! The GPU side of the heterogeneous chip: SIMT cores running synthetic
//! benchmark streams, private or clustered (DC-L1 / DynEB) L1 caches,
//! MSHRs with cross-core forwarding targets, the Delegated-Replies
//! Forwarded Request Queue (FRQ) with remote-over-local priority, and
//! the Realistic-Probing predictor and prober.
//!
//! The subsystem is network-agnostic: it speaks [`GpuOut`] / [`GpuIn`]
//! messages and is wired to the NoC by `clognet-core`.
//!
//! ## Example
//!
//! ```
//! use clognet_gpu::{GpuSubsystem, GpuIn, GpuOut};
//! use clognet_proto::{CoreId, CtaSched, GpuConfig, L1Org, Scheme};
//! use clognet_workloads::gpu_benchmark;
//!
//! let mut gpu = GpuSubsystem::new(
//!     GpuConfig::default(),
//!     Scheme::DelegatedReplies,
//!     L1Org::Private,
//!     CtaSched::RoundRobin,
//!     gpu_benchmark("HS").expect("Table II"),
//!     40,
//!     42,
//! );
//! let budget = vec![8; 40];
//! let mut out = Vec::new();
//! gpu.tick(0, &budget, &budget, &mut out); // cores start issuing reads
//! ```

pub mod cluster;
pub mod msg;
pub mod subsystem;

pub use cluster::{Cluster, ClusterMode};
pub use msg::{GpuIn, GpuOut};
pub use subsystem::{GpuCoreStats, GpuSubsystem};
