//! Shared-L1 clusters: DC-L1 and DynEB (Fig. 15).
//!
//! DC-L1 (Ibrahim+ HPCA'21) statically shares one L1 of
//! `cluster_slices` address-interleaved slices among `cluster_cores`
//! GPU cores. Sharing deduplicates shared data (higher effective
//! capacity — good for SC, LUD) but serializes bursts to the same hot
//! line at the slice's single port (the NN/2DCON pathology the paper
//! describes).
//!
//! DynEB (Ibrahim+ PACT'20) samples shared vs private organization in
//! alternating epochs and commits to whichever served more accesses,
//! re-sampling periodically.

use clognet_cache::SetAssocCache;
use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{CacheGeometry, Cycle, LineAddr};

/// Current organization of a DynEB cluster (DC-L1 is always `Shared`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterMode {
    /// Cores use the shared address-interleaved slices.
    Shared,
    /// Cores fall back to their private L1s.
    Private,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Initial alternating measurement (epoch index 0..4).
    Sampling(u8),
    /// Committed to the better mode until the next re-sample.
    Committed(u8),
}

/// One cluster of cores sharing L1 slices.
#[derive(Debug)]
pub struct Cluster {
    slices: Vec<SetAssocCache<()>>,
    /// Port uses per slice this cycle (1 port per slice).
    used: Vec<u8>,
    mode: ClusterMode,
    dynamic: bool,
    phase: Phase,
    epoch_len: u64,
    epoch_end: Cycle,
    served_this_epoch: u64,
    served_shared: u64,
    served_private: u64,
    /// Mode switches performed (stats).
    pub switches: u64,
}

impl Cluster {
    /// Build a cluster with `slices` slices of `slice_geom` each.
    /// `dynamic` enables DynEB adaptation (otherwise static DC-L1).
    pub fn new(slices: usize, slice_geom: CacheGeometry, dynamic: bool, epoch_len: u64) -> Self {
        Cluster {
            slices: (0..slices)
                .map(|_| SetAssocCache::new(slice_geom))
                .collect(),
            used: vec![0; slices],
            mode: ClusterMode::Shared,
            dynamic,
            phase: Phase::Sampling(0),
            epoch_len,
            epoch_end: epoch_len,
            served_this_epoch: 0,
            served_shared: 0,
            served_private: 0,
            switches: 0,
        }
    }

    /// Current organization.
    pub fn mode(&self) -> ClusterMode {
        self.mode
    }

    /// Serialize the cluster's mutable state (slice tag arrays plus the
    /// DynEB phase machine). `used` is per-cycle scratch reset by
    /// [`Cluster::begin_cycle`] and is not part of the state.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.slices.len());
        for s in &self.slices {
            s.save_state(w, |_, ()| {});
        }
        w.u8(match self.mode {
            ClusterMode::Shared => 0,
            ClusterMode::Private => 1,
        });
        match self.phase {
            Phase::Sampling(i) => {
                w.u8(0);
                w.u8(i);
            }
            Phase::Committed(age) => {
                w.u8(1);
                w.u8(age);
            }
        }
        w.u64(self.epoch_end);
        w.u64(self.served_this_epoch);
        w.u64(self.served_shared);
        w.u64(self.served_private);
        w.u64(self.switches);
    }

    /// Overlay state captured by [`Cluster::save_state`] onto a cluster
    /// built with the same geometry.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.usize()? != self.slices.len() {
            return Err(SnapError::Corrupt("cluster slice count mismatch"));
        }
        for s in &mut self.slices {
            s.load_state(r, |_| Ok(()))?;
        }
        self.mode = match r.u8()? {
            0 => ClusterMode::Shared,
            1 => ClusterMode::Private,
            t => {
                return Err(SnapError::BadTag {
                    what: "cluster mode",
                    tag: t as u64,
                })
            }
        };
        self.phase = match r.u8()? {
            0 => Phase::Sampling(r.u8()?),
            1 => Phase::Committed(r.u8()?),
            t => {
                return Err(SnapError::BadTag {
                    what: "cluster phase",
                    tag: t as u64,
                })
            }
        };
        self.epoch_end = r.u64()?;
        self.served_this_epoch = r.u64()?;
        self.served_shared = r.u64()?;
        self.served_private = r.u64()?;
        self.switches = r.u64()?;
        Ok(())
    }

    /// The slice index a line maps to.
    pub fn slice_of(&self, line: LineAddr) -> usize {
        // Mix upper bits so hot consecutive lines spread over slices.
        let x = line.0 ^ (line.0 >> 5);
        (x % self.slices.len() as u64) as usize
    }

    /// Reset per-cycle port usage.
    pub fn begin_cycle(&mut self) {
        self.used.iter_mut().for_each(|u| *u = 0);
    }

    /// Try to claim the local port of the slice holding `line`. Returns
    /// the slice index on success; `None` means a port-serialization
    /// stall — the shared-L1 pathology: eight cores share four
    /// single-ported slices (remote-request service uses a separate
    /// snoop port).
    pub fn claim_port(&mut self, line: LineAddr) -> Option<usize> {
        let s = self.slice_of(line);
        if self.used[s] >= 1 {
            return None;
        }
        self.used[s] += 1;
        self.served_this_epoch += 1;
        Some(s)
    }

    /// Access the shared slice (LRU lookup).
    pub fn access(&mut self, slice: usize, line: LineAddr) -> bool {
        self.slices[slice].access(line)
    }

    /// Probe without side effects.
    pub fn probe(&self, line: LineAddr) -> bool {
        self.slices[self.slice_of(line)].probe(line)
    }

    /// Fill after a miss returns.
    pub fn fill(&mut self, line: LineAddr) {
        let s = self.slice_of(line);
        self.slices[s].fill(line, ());
    }

    /// Invalidate a line (write-evict).
    pub fn invalidate(&mut self, line: LineAddr) {
        let s = self.slice_of(line);
        self.slices[s].invalidate(line);
    }

    /// Flush all slices; returns lines dropped.
    pub fn flush(&mut self) -> usize {
        self.slices.iter_mut().map(|s| s.flush()).sum()
    }

    /// Count an access served in private mode (DynEB bookkeeping).
    pub fn note_private_served(&mut self) {
        self.served_this_epoch += 1;
    }

    /// The next cycle at which [`Self::maybe_adapt`] mutates state, or
    /// `None` for static (DC-L1) clusters. DynEB clusters advance their
    /// phase machine at every epoch boundary even with zero traffic, so
    /// the fast-forward engine must never skip past this cycle.
    pub fn next_epoch_end(&self) -> Option<Cycle> {
        self.dynamic.then_some(self.epoch_end)
    }

    /// Advance DynEB epochs; returns `true` when the cluster switched
    /// organization (the caller must flush the affected caches).
    pub fn maybe_adapt(&mut self, now: Cycle) -> bool {
        if !self.dynamic || now < self.epoch_end {
            return false;
        }
        let served = self.served_this_epoch;
        self.served_this_epoch = 0;
        self.epoch_end = now + self.epoch_len;
        let prev = self.mode;
        match self.phase {
            Phase::Sampling(i) => {
                match self.mode {
                    ClusterMode::Shared => self.served_shared = served,
                    ClusterMode::Private => self.served_private = served,
                }
                if i >= 1 {
                    // One epoch of each organization measured: commit to
                    // the one that served more accesses (DynEB's
                    // effective-bandwidth criterion).
                    self.mode = if self.served_shared >= self.served_private {
                        ClusterMode::Shared
                    } else {
                        ClusterMode::Private
                    };
                    self.phase = Phase::Committed(0);
                } else {
                    self.mode = match self.mode {
                        ClusterMode::Shared => ClusterMode::Private,
                        ClusterMode::Private => ClusterMode::Shared,
                    };
                    self.phase = Phase::Sampling(i + 1);
                }
            }
            Phase::Committed(age) => {
                if age >= 60 {
                    // Periodic re-sample (rare: switching costs a flush).
                    self.served_shared = 0;
                    self.served_private = 0;
                    self.phase = Phase::Sampling(0);
                    self.mode = ClusterMode::Shared;
                } else {
                    self.phase = Phase::Committed(age + 1);
                }
            }
        }
        if self.mode != prev {
            self.switches += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry {
            capacity_bytes: 48 * 1024,
            ways: 4,
            line_bytes: 128,
        }
    }

    #[test]
    fn slice_port_serializes_same_line() {
        let mut c = Cluster::new(4, geom(), false, 4096);
        c.begin_cycle();
        let line = LineAddr(77);
        assert!(c.claim_port(line).is_some());
        // Second access to the same slice in the same cycle stalls.
        assert!(c.claim_port(line).is_none(), "hot-line serialization");
        c.begin_cycle();
        assert!(c.claim_port(line).is_some());
    }

    #[test]
    fn different_slices_proceed_in_parallel() {
        let mut c = Cluster::new(4, geom(), false, 4096);
        c.begin_cycle();
        let l0 = LineAddr(0);
        let mut claimed = 1;
        assert!(c.claim_port(l0).is_some());
        for i in 1..64u64 {
            if c.slice_of(LineAddr(i)) != c.slice_of(l0) && c.claim_port(LineAddr(i)).is_some() {
                claimed += 1;
                if claimed == 4 {
                    break;
                }
            }
        }
        assert_eq!(claimed, 4, "all four slices usable per cycle");
    }

    #[test]
    fn fill_then_access_hits() {
        let mut c = Cluster::new(4, geom(), false, 4096);
        c.fill(LineAddr(5));
        assert!(c.probe(LineAddr(5)));
        let s = c.slice_of(LineAddr(5));
        assert!(c.access(s, LineAddr(5)));
        c.invalidate(LineAddr(5));
        assert!(!c.probe(LineAddr(5)));
    }

    #[test]
    fn static_cluster_never_adapts() {
        let mut c = Cluster::new(4, geom(), false, 100);
        for now in (0..10_000).step_by(100) {
            assert!(!c.maybe_adapt(now));
            assert_eq!(c.mode(), ClusterMode::Shared);
        }
    }

    #[test]
    fn dyneb_samples_then_commits() {
        let mut c = Cluster::new(4, geom(), true, 100);
        // Shared epochs serve poorly; private epochs serve well.
        let mut modes = Vec::new();
        for e in 0..4u64 {
            let now = (e + 1) * 100;
            let served = match c.mode() {
                ClusterMode::Shared => 10,
                ClusterMode::Private => 1000,
            };
            c.served_this_epoch = served;
            c.maybe_adapt(now);
            modes.push(c.mode());
        }
        // After the two sampling epochs it must commit to Private.
        assert_eq!(*modes.last().unwrap(), ClusterMode::Private);
        assert!(c.switches >= 1);
    }

    #[test]
    fn flush_drops_lines() {
        let mut c = Cluster::new(2, geom(), false, 100);
        c.fill(LineAddr(1));
        c.fill(LineAddr(2));
        assert_eq!(c.flush(), 2);
        assert!(!c.probe(LineAddr(1)));
    }
}
