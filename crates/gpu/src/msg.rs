//! Messages between the GPU subsystem and the rest of the system.
//!
//! The GPU crate is network-agnostic: it emits [`GpuOut`] values and
//! consumes [`GpuIn`] values; the system assembler (clognet-core) turns
//! them into packets on the right physical network.

use clognet_proto::{CoreId, LineAddr};

/// A message a GPU core wants to send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuOut {
    /// Read request to the line's home LLC slice. `requester` is the core
    /// that must receive the data — normally the sender itself, but for a
    /// remote-miss resend it is the original requester and `dnf` is set
    /// so the LLC answers directly (Section IV).
    LlcRead {
        /// Line to fetch.
        line: LineAddr,
        /// Do-Not-Forward: LLC must not delegate this reply again.
        dnf: bool,
        /// Core the data must reach.
        requester: CoreId,
    },
    /// Write-through store to the home LLC slice.
    LlcWrite {
        /// Line being stored.
        line: LineAddr,
    },
    /// Cache-line transfer to another GPU core (a served delegated reply
    /// or RP probe hit).
    CoreReply {
        /// Receiving core.
        to: CoreId,
        /// Line carried.
        line: LineAddr,
    },
    /// RP: probe another core's L1.
    Probe {
        /// Probed core.
        to: CoreId,
        /// Line sought.
        line: LineAddr,
    },
    /// RP: negative probe/fetch response.
    ProbeMiss {
        /// The prober.
        to: CoreId,
        /// Line that missed.
        line: LineAddr,
    },
    /// RP: positive probe response ("I have it"), 1 flit. The prober
    /// follows up with a fetch to exactly one hitter.
    ProbeHitAck {
        /// The prober.
        to: CoreId,
        /// Line found.
        line: LineAddr,
    },
    /// RP: fetch the line from a confirmed hitter.
    Fetch {
        /// The hitter.
        to: CoreId,
        /// Line to transfer.
        line: LineAddr,
    },
    /// This core flushed its L1 (software coherence at a kernel
    /// boundary); the LLC must invalidate all pointers naming it.
    Flushed,
}

/// A message delivered to a GPU core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuIn {
    /// A cache line arrived (LLC reply or remote core reply).
    Data {
        /// The line.
        line: LineAddr,
        /// The supplying GPU core, when the reply came core-to-core
        /// (`None` for LLC replies). RP uses this to steer future probes
        /// at proven suppliers.
        from: Option<CoreId>,
    },
    /// Store acknowledgment from the LLC.
    WriteAck {
        /// The stored line.
        line: LineAddr,
    },
    /// A delegated reply: this core is asked to supply `line` to
    /// `requester`. Enters the FRQ (the system must check
    /// [`crate::GpuSubsystem::frq_has_space`] before delivering).
    Delegated {
        /// Line to supply.
        line: LineAddr,
        /// Core awaiting the data.
        requester: CoreId,
    },
    /// RP: another core probes our L1.
    ProbeReq {
        /// The prober.
        from: CoreId,
        /// Line sought.
        line: LineAddr,
    },
    /// RP: one of our probes (or our fetch) missed remotely.
    ProbeMissReply {
        /// Line that missed.
        line: LineAddr,
    },
    /// RP: a probe found the line at `from`.
    ProbeHitReply {
        /// The confirmed hitter.
        from: CoreId,
        /// Line found.
        line: LineAddr,
    },
    /// RP: a confirmed hitter is asked to transfer the line.
    FetchReq {
        /// The prober to send data to.
        from: CoreId,
        /// Line to transfer.
        line: LineAddr,
    },
}
