//! End-to-end cluster tests with stub handlers: consistent-hash
//! forwarding, cache replication surviving a node death, load-aware
//! delegation when the owner is saturated, heartbeat lifecycle, and
//! gossip convergence — all without dragging in `clognet-core`.

use clognet_cluster::{ClusterConfig, ClusterHandle, ClusterNode};
use clognet_proto::HashRing;
use clognet_serve::client::{Client, RetryPolicy};
use clognet_serve::json::Json;
use clognet_serve::server::{JobError, JobHandler, ServeConfig};
use clognet_serve::wire::JobSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 20,
        base_ms: 5,
        cap_ms: 50,
        seed: 1,
    }
}

/// Deterministic stub: the fingerprint mixes cycle counts and names;
/// the report renders them. Byte-identity across nodes follows from
/// determinism alone. Optionally stalls until released, to saturate a
/// queue on purpose.
struct StubHandler {
    runs: Arc<AtomicUsize>,
    stall: Option<Arc<AtomicUsize>>,
}

impl StubHandler {
    fn new() -> StubHandler {
        StubHandler {
            runs: Arc::new(AtomicUsize::new(0)),
            stall: None,
        }
    }
}

impl JobHandler for StubHandler {
    fn fingerprint(&self, spec: &JobSpec) -> Result<u64, JobError> {
        let mut fp = spec.warm.wrapping_mul(31).wrapping_add(spec.cycles);
        for b in spec.gpu.bytes().chain(spec.cpu.bytes()) {
            fp = fp.wrapping_mul(131).wrapping_add(u64::from(b));
        }
        for (k, v) in &spec.opts {
            for b in k.bytes().chain(v.bytes()) {
                fp = fp.wrapping_mul(131).wrapping_add(u64::from(b));
            }
        }
        Ok(fp)
    }

    fn run(&self, spec: &JobSpec, deadline: Instant) -> Result<String, JobError> {
        self.runs.fetch_add(1, Ordering::SeqCst);
        if let Some(release) = &self.stall {
            while release.load(Ordering::SeqCst) == 0 {
                if Instant::now() >= deadline {
                    return Err(JobError {
                        code: clognet_serve::wire::ErrorCode::Timeout,
                        message: "deadline exceeded in stub".into(),
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        Ok(format!(
            "{{\"gpu\":\"{}\",\"cpu\":\"{}\",\"cycles\":{}}}",
            spec.gpu, spec.cpu, spec.cycles
        ))
    }
}

/// A stub with the snapshot hooks wired up: the "snapshot" is a token
/// derived from the warmup prefix, and resumed runs are counted so
/// tests can prove which path executed. Reports are identical on both
/// paths, matching the real handler's byte-identity contract.
struct SnapStub {
    inner: StubHandler,
    resumed: Arc<AtomicUsize>,
    snap_len: usize,
}

impl SnapStub {
    fn new(snap_len: usize) -> SnapStub {
        SnapStub {
            inner: StubHandler::new(),
            resumed: Arc::new(AtomicUsize::new(0)),
            snap_len,
        }
    }

    fn prefix_token(spec: &JobSpec) -> Vec<u8> {
        format!("snap:{}:{}:{}", spec.gpu, spec.cpu, spec.warm).into_bytes()
    }
}

impl JobHandler for SnapStub {
    fn fingerprint(&self, spec: &JobSpec) -> Result<u64, JobError> {
        self.inner.fingerprint(spec)
    }

    fn run(&self, spec: &JobSpec, deadline: Instant) -> Result<String, JobError> {
        self.inner.run(spec, deadline)
    }

    fn snapshot_key(&self, spec: &JobSpec) -> Option<u64> {
        let mut key = spec.warm.wrapping_mul(977);
        for b in spec.gpu.bytes().chain(spec.cpu.bytes()) {
            key = key.wrapping_mul(131).wrapping_add(u64::from(b));
        }
        Some(key)
    }

    fn run_with_snapshot(
        &self,
        spec: &JobSpec,
        deadline: Instant,
    ) -> Result<(String, Option<Vec<u8>>), JobError> {
        let mut snap = Self::prefix_token(spec);
        snap.resize(snap.len().max(self.snap_len), 0);
        Ok((self.run(spec, deadline)?, Some(snap)))
    }

    fn run_from_snapshot(
        &self,
        spec: &JobSpec,
        snapshot: &[u8],
        deadline: Instant,
    ) -> Result<String, JobError> {
        assert!(
            snapshot.starts_with(&Self::prefix_token(spec)),
            "resumed from a snapshot of a different warmup prefix"
        );
        self.resumed.fetch_add(1, Ordering::SeqCst);
        self.run(spec, deadline)
    }
}

fn test_config() -> ClusterConfig {
    ClusterConfig {
        serve: ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_cap: 4,
            // Generous: stalled stub jobs are always released
            // explicitly, and the whole suite shares one core in CI —
            // a tight deadline here turns scheduler contention into a
            // spurious stub timeout.
            job_timeout: Duration::from_secs(120),
            drain_timeout: Duration::from_secs(60),
            ..ServeConfig::default()
        },
        heartbeat: Duration::from_millis(50),
        ..ClusterConfig::default()
    }
}

/// Boot `n` fully-meshed nodes on OS-assigned ports.
fn boot_mesh(n: usize, cfg: ClusterConfig) -> (Vec<String>, Vec<ClusterHandle>) {
    let nodes: Vec<ClusterNode> = (0..n)
        .map(|_| ClusterNode::bind(cfg.clone(), Arc::new(StubHandler::new())).expect("bind"))
        .collect();
    let addrs: Vec<String> = nodes.iter().map(|n| n.advertise().to_string()).collect();
    for node in &nodes {
        for addr in &addrs {
            if addr != node.advertise() {
                node.add_peer(addr);
            }
        }
    }
    let handles = nodes
        .into_iter()
        .map(|n| n.spawn().expect("spawn"))
        .collect();
    (addrs, handles)
}

fn shutdown_all(addrs: &[String], handles: Vec<ClusterHandle>) {
    for addr in addrs {
        if let Ok(mut c) = Client::connect(addr, &fast_retry()) {
            let _ = c.shutdown();
        }
    }
    for h in handles {
        h.join().expect("node exits cleanly");
    }
}

fn cluster_stats(addr: &str) -> Json {
    let mut c = Client::connect(addr, &fast_retry()).expect("connect");
    let line = c
        .request_line("{\"op\":\"cluster-stats\"}")
        .expect("cluster-stats");
    Json::parse(&line).expect("stats parse")
}

fn counter(stats: &Json, name: &str) -> u64 {
    stats
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("counter {name} missing in {stats:?}"))
}

/// A spec whose fingerprint is owned by `addrs[want]` under the
/// cluster's ring view, found by scanning cycle counts. `tag` is baked
/// into the spec's options *before* the ownership search, so distinct
/// tags give distinct jobs that are still owned by the wanted node.
fn tagged_spec_owned_by(addrs: &[String], want: usize, tag: &str) -> JobSpec {
    let ring = HashRing::with_nodes(addrs, ClusterConfig::default().vnodes);
    let stub = StubHandler::new();
    for salt in 0..10_000u64 {
        let mut spec = JobSpec::new("HS", "bodytrack");
        spec.warm = 1;
        spec.cycles = 100 + salt;
        if !tag.is_empty() {
            spec.opts.insert("tag".into(), tag.to_string());
        }
        let fp = stub.fingerprint(&spec).unwrap();
        if ring.owner(fp) == Some(addrs[want].as_str()) {
            return spec;
        }
    }
    panic!("no spec found owned by {}", addrs[want]);
}

fn spec_owned_by(addrs: &[String], want: usize) -> JobSpec {
    tagged_spec_owned_by(addrs, want, "")
}

#[test]
fn any_gateway_returns_identical_bytes_and_forwards_count() {
    let (addrs, handles) = boot_mesh(3, test_config());
    // A job owned by node 2, submitted through every node in turn.
    let spec = spec_owned_by(&addrs, 2);
    let mut reports = Vec::new();
    for addr in &addrs {
        let mut c = Client::connect(addr, &fast_retry()).unwrap();
        let r = c.submit(&spec).unwrap();
        reports.push((r.fingerprint, r.report));
    }
    assert_eq!(reports[0], reports[1], "gateway 0 vs 1");
    assert_eq!(reports[1], reports[2], "gateway 1 vs 2");

    // The first submit was via node 0 — a forced forward to the owner.
    let s0 = cluster_stats(&addrs[0]);
    assert!(counter(&s0, "forwards_out") >= 1, "node 0 forwarded");
    let s2 = cluster_stats(&addrs[2]);
    assert!(counter(&s2, "forwards_in") >= 1, "owner received forwards");
    assert_eq!(
        counter(&s2, "jobs_completed"),
        1,
        "simulated exactly once cluster-wide"
    );
    shutdown_all(&addrs, handles);
}

#[test]
fn replication_survives_owner_death() {
    let (addrs, handles) = boot_mesh(3, test_config());
    let spec = spec_owned_by(&addrs, 1);
    let fp = StubHandler::new().fingerprint(&spec).unwrap();
    let ring = HashRing::with_nodes(&addrs, ClusterConfig::default().vnodes);
    let placement: Vec<String> = ring
        .placement(fp, 2)
        .into_iter()
        .map(String::from)
        .collect();
    assert_eq!(placement[0], addrs[1]);
    let replica = placement[1].clone();

    // Gateway: a non-placement node if one exists, else the replica.
    let gateway = addrs
        .iter()
        .find(|a| !placement.contains(a))
        .unwrap_or(&replica)
        .clone();
    let first = Client::connect(&gateway, &fast_retry())
        .unwrap()
        .submit(&spec)
        .unwrap();
    assert!(!first.cache_hit);

    // The replica holds a copy (synchronous replication).
    let rs = cluster_stats(&replica);
    assert!(
        rs.get("cache_entries").and_then(Json::as_u64).unwrap() >= 1,
        "replica stored a copy: {rs:?}"
    );

    // Kill the owner outright.
    let owner_idx = addrs.iter().position(|a| *a == placement[0]).unwrap();
    let mut kept = Vec::new();
    let mut owner_handle = None;
    for (i, h) in handles.into_iter().enumerate() {
        if i == owner_idx {
            owner_handle = Some(h);
        } else {
            kept.push(h);
        }
    }
    Client::connect(&addrs[owner_idx], &fast_retry())
        .unwrap()
        .shutdown()
        .unwrap();
    owner_handle.unwrap().join().unwrap();

    // Resubmit through a survivor that is NOT the replica: the gateway
    // walks the placement chain past the dead owner and the replica
    // answers from its copy — byte-identical, zero re-simulation.
    let second_gateway = addrs
        .iter()
        .rfind(|a| **a != placement[0] && **a != replica)
        .unwrap_or(&replica)
        .clone();
    let second = Client::connect(&second_gateway, &fast_retry())
        .unwrap()
        .submit(&spec)
        .unwrap();
    assert_eq!(second.report, first.report, "bytes survive the owner");
    assert_eq!(second.fingerprint, first.fingerprint);
    assert!(second.cache_hit, "served from the replicated entry");

    let survivors: Vec<String> = addrs
        .iter()
        .filter(|a| **a != addrs[owner_idx])
        .cloned()
        .collect();
    shutdown_all(&survivors, kept);
}

/// Boot a 2-node mesh whose handlers implement the snapshot hooks,
/// returning each node's resumed-run counter.
fn boot_snap_pair(snap_len: usize) -> (Vec<String>, Vec<ClusterHandle>, Vec<Arc<AtomicUsize>>) {
    let cfg = test_config();
    let stubs: Vec<SnapStub> = (0..2).map(|_| SnapStub::new(snap_len)).collect();
    let resumed: Vec<Arc<AtomicUsize>> = stubs.iter().map(|s| Arc::clone(&s.resumed)).collect();
    let nodes: Vec<ClusterNode> = stubs
        .into_iter()
        .map(|s| ClusterNode::bind(cfg.clone(), Arc::new(s)).expect("bind"))
        .collect();
    let addrs: Vec<String> = nodes.iter().map(|n| n.advertise().to_string()).collect();
    for node in &nodes {
        for addr in &addrs {
            if addr != node.advertise() {
                node.add_peer(addr);
            }
        }
    }
    let handles = nodes
        .into_iter()
        .map(|n| n.spawn().expect("spawn"))
        .collect();
    (addrs, handles, resumed)
}

#[test]
fn warmup_snapshots_replicate_alongside_results() {
    let (addrs, handles, resumed) = boot_snap_pair(0);

    // Job A, owned and executed by node 0: its warmup snapshot is
    // cached locally and replicated to node 1 with the result.
    let spec_a = spec_owned_by(&addrs, 0);
    Client::connect(&addrs[0], &fast_retry())
        .unwrap()
        .submit(&spec_a)
        .unwrap();
    let s0 = cluster_stats(&addrs[0]);
    assert!(counter(&s0, "snap_replications_sent") >= 1, "{s0:?}");
    let s1 = cluster_stats(&addrs[1]);
    assert!(
        counter(&s1, "snaps_stored") >= 1,
        "replica holds it: {s1:?}"
    );

    // Job B: same warmup prefix, different measured window, owned by
    // node 1 — which never simulated the warmup itself, yet resumes
    // from the snapshot node 0 replicated over.
    let spec_b = spec_owned_by(&addrs, 1);
    assert_ne!(spec_a, spec_b);
    let direct = Client::connect(&addrs[1], &fast_retry())
        .unwrap()
        .submit(&spec_b)
        .unwrap();
    assert_eq!(resumed[1].load(Ordering::SeqCst), 1, "node 1 resumed");
    assert_eq!(resumed[0].load(Ordering::SeqCst), 0);
    let s1 = cluster_stats(&addrs[1]);
    assert_eq!(counter(&s1, "jobs_resumed_from_snapshot"), 1, "{s1:?}");

    // The resumed report is the same bytes every gateway serves.
    let via_peer = Client::connect(&addrs[0], &fast_retry())
        .unwrap()
        .submit(&spec_b)
        .unwrap();
    assert_eq!(via_peer.report, direct.report);
    shutdown_all(&addrs, handles);
}

#[test]
fn oversized_snapshots_are_skipped_not_replicated() {
    use clognet_serve::wire::MAX_FRAME_BYTES;
    // Snapshots whose hex form would exceed a frame stay local; the
    // result itself still replicates.
    let (addrs, handles, _) = boot_snap_pair(MAX_FRAME_BYTES / 2);
    let spec = spec_owned_by(&addrs, 0);
    Client::connect(&addrs[0], &fast_retry())
        .unwrap()
        .submit(&spec)
        .unwrap();
    let s0 = cluster_stats(&addrs[0]);
    assert!(counter(&s0, "snap_replications_skipped") >= 1, "{s0:?}");
    assert_eq!(counter(&s0, "snap_replications_sent"), 0);
    let s1 = cluster_stats(&addrs[1]);
    assert_eq!(counter(&s1, "snaps_stored"), 0, "{s1:?}");
    assert!(
        s1.get("cache_entries").and_then(Json::as_u64).unwrap() >= 1,
        "result replication unaffected: {s1:?}"
    );
    shutdown_all(&addrs, handles);
}

#[test]
fn saturated_owner_delegates_to_least_loaded_peer() {
    // Owner saturation needs a stall; build the mesh by hand so node 0
    // gets the stalling handler.
    let release = Arc::new(AtomicUsize::new(0));
    let runs0 = Arc::new(AtomicUsize::new(0));
    let cfg = {
        let mut c = test_config();
        c.serve.queue_cap = 1;
        c
    };
    let stalling = StubHandler {
        runs: Arc::clone(&runs0),
        stall: Some(Arc::clone(&release)),
    };
    let a = ClusterNode::bind(cfg.clone(), Arc::new(stalling)).unwrap();
    let b = ClusterNode::bind(cfg.clone(), Arc::new(StubHandler::new())).unwrap();
    let addrs = vec![a.advertise().to_string(), b.advertise().to_string()];
    a.add_peer(&addrs[1]);
    b.add_peer(&addrs[0]);
    let handles = vec![a.spawn().unwrap(), b.spawn().unwrap()];

    // Delegation requires the peer to be Alive — wait for heartbeats.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let s = cluster_stats(&addrs[0]);
        let alive = s
            .get("peers")
            .and_then(Json::as_arr)
            .map(|ps| {
                ps.iter()
                    .filter(|p| p.get("status").and_then(Json::as_str) == Some("alive"))
                    .count()
            })
            .unwrap_or(0);
        if alive >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "peer never turned alive: {s:?}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Saturate node 0: one job running (stalled), one queued. Jobs are
    // owned by node 0 so the forward targets it deterministically. The
    // two submits are staggered — job A must be *running* (popped off
    // the channel) before job B is sent, or B finds the one-slot
    // channel still holding A and gets delegated early instead of
    // queued; `queue_depth` counts running + queued (it only drops on
    // completion), so a full node here reads 2.
    let queue_depth = |addr: &str| {
        let mut c = Client::connect(addr, &fast_retry()).unwrap();
        let line = c.request_line("{\"op\":\"stats\"}").unwrap();
        Json::parse(&line)
            .ok()
            .and_then(|s| s.get("queue_depth").and_then(Json::as_u64))
            .unwrap_or(0)
    };
    let submit_stalled = |i: usize| {
        let spec = tagged_spec_owned_by(&addrs, 0, &format!("stall{i}"));
        let addr = addrs[0].clone();
        std::thread::spawn(move || {
            Client::connect(&addr, &fast_retry())
                .unwrap()
                .submit(&spec)
                .unwrap()
        })
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut stuck = Vec::new();
    stuck.push(submit_stalled(0));
    while runs0.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "stalled job never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    stuck.push(submit_stalled(1));
    while queue_depth(&addrs[0]) < 2 {
        assert!(Instant::now() < deadline, "queue never filled");
        std::thread::sleep(Duration::from_millis(2));
    }

    // A third owned job arrives while the queue is full: the owner
    // must delegate to node 1 rather than reject.
    let spec = tagged_spec_owned_by(&addrs, 0, "overflow");
    let r = Client::connect(&addrs[0], &fast_retry())
        .unwrap()
        .submit(&spec)
        .unwrap();
    assert!(!r.cache_hit);

    let s0 = cluster_stats(&addrs[0]);
    assert!(
        counter(&s0, "delegations_out") >= 1,
        "owner delegated: {s0:?}"
    );
    assert!(
        !s0.get("recent_delegations")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty(),
        "delegation log records the fingerprint"
    );
    let s1 = cluster_stats(&addrs[1]);
    assert!(counter(&s1, "delegations_in") >= 1, "peer executed: {s1:?}");

    release.store(1, Ordering::SeqCst);
    for t in stuck {
        t.join().unwrap();
    }
    shutdown_all(&addrs, handles);
}

#[test]
fn gossip_spreads_membership_beyond_seeds() {
    // A chain, not a mesh: B knows nobody, A seeds B, C seeds A. Within
    // a few heartbeats everyone must know everyone.
    let cfg = test_config();
    let b = ClusterNode::bind(cfg.clone(), Arc::new(StubHandler::new())).unwrap();
    let a = ClusterNode::bind(cfg.clone(), Arc::new(StubHandler::new())).unwrap();
    a.add_peer(b.advertise());
    let c = ClusterNode::bind(cfg.clone(), Arc::new(StubHandler::new())).unwrap();
    c.add_peer(a.advertise());
    let addrs = vec![
        a.advertise().to_string(),
        b.advertise().to_string(),
        c.advertise().to_string(),
    ];
    let handles = vec![a.spawn().unwrap(), b.spawn().unwrap(), c.spawn().unwrap()];

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let complete = addrs.iter().all(|addr| {
            let s = cluster_stats(addr);
            s.get("ring")
                .and_then(Json::as_arr)
                .map(|r| r.len() == 3)
                .unwrap_or(false)
        });
        if complete {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "gossip never converged: {:?}",
            addrs.iter().map(|a| cluster_stats(a)).collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    shutdown_all(&addrs, handles);
}

#[test]
fn dead_peers_leave_the_ring_and_rejoin_is_possible() {
    let mut cfg = test_config();
    cfg.heartbeat = Duration::from_millis(30);
    cfg.backoff_cap = Duration::from_millis(200);
    let (addrs, handles) = boot_mesh(2, cfg);

    // Kill node 1; node 0's heartbeats must demote it to dead and drop
    // it from the ring.
    let mut iter = handles.into_iter();
    let h0 = iter.next().unwrap();
    let h1 = iter.next().unwrap();
    Client::connect(&addrs[1], &fast_retry())
        .unwrap()
        .shutdown()
        .unwrap();
    h1.join().unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = cluster_stats(&addrs[0]);
        let ring_len = s.get("ring").and_then(Json::as_arr).unwrap().len();
        let status = s.get("peers").and_then(Json::as_arr).unwrap()[0]
            .get("status")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        if ring_len == 1 && status == "dead" {
            break;
        }
        assert!(Instant::now() < deadline, "peer never died: {s:?}");
        std::thread::sleep(Duration::from_millis(25));
    }

    // With the peer gone, node 0 owns everything and serves locally.
    let spec = spec_owned_by(&addrs, 1);
    let r = Client::connect(&addrs[0], &fast_retry())
        .unwrap()
        .submit(&spec)
        .unwrap();
    assert!(!r.report.is_empty());

    shutdown_all(&addrs[..1], vec![h0]);
}
