//! A cluster node: one simulation service sharing a sharded cache.
//!
//! Each [`ClusterNode`] is a full `clognet-serve`-style server (same
//! NDJSON wire protocol, same bounded worker pool, same
//! content-addressed cache) plus the cluster machinery:
//!
//! * **Routing** — a `run` received by any node is served from the
//!   local cache when possible, executed locally when this node owns
//!   the fingerprint on the consistent-hash ring
//!   ([`clognet_proto::HashRing`]), and otherwise forwarded to the
//!   owner (falling back through the replica set, then to local
//!   execution) with the owner's response line relayed **verbatim** —
//!   which is what keeps reports byte-identical no matter which node a
//!   client asks.
//! * **Replication** — after computing a miss, a node synchronously
//!   copies the cache entry to the fingerprint's other placement
//!   members (`replicas` successors), so a resubmission survives the
//!   owner's death. When the job produced a warmup snapshot, it rides
//!   along (`replicate-snap`), so a peer can resume a related job
//!   mid-flight instead of re-simulating the warmup.
//! * **Delegation** — an owner whose queue is full does not bounce the
//!   job back as `overloaded`; with hops remaining (`ttl > 0`) it
//!   delegates to the least-loaded alive peer, and only a saturated
//!   delegate (`ttl == 0`) rejects.
//! * **Membership** — a background heartbeat thread probes peers with
//!   `peers` frames, gossips the member list, and walks them through
//!   the [`PeerStatus`] lifecycle.
//!
//! The response a client sees is always one of the standard
//! [`clognet_serve::wire`] responses; clusters and single nodes are
//! indistinguishable on the wire except for the extra ops.

use crate::membership::{Membership, PeerView};
use clognet_bench::runner::WorkerPool;
use clognet_proto::{fingerprint_hex, FxHasher, HashRing, DEFAULT_VNODES};
use clognet_serve::client::{Client, RetryPolicy};
use clognet_serve::json::Json;
use clognet_serve::server::{serve_frames, JobHandler, ServeConfig};
use clognet_serve::wire::{
    error_response, ok_response, parse_forward, parse_peers, parse_replicate, parse_replicate_snap,
    parse_response, peers_line, peers_response, replicate_line, replicate_snap_line, run_response,
    ErrorCode, JobSpec, MAX_FRAME_BYTES,
};
use clognet_serve::{ResultCache, SnapshotCache};
use clognet_telemetry::export::{json_escape, json_f64};
use std::collections::VecDeque;
use std::hash::Hasher;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fingerprints remembered in the delegation log exposed by
/// `cluster-stats`.
const DELEGATION_LOG_CAP: usize = 32;

/// Cluster tuning knobs, wrapping the single-node [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The embedded single-node server configuration (bind address,
    /// workers, queue and cache capacity, job limits).
    pub serve: ServeConfig,
    /// The address peers should use to reach this node — its ring
    /// identity. Defaults to the bound address, which is only correct
    /// when everyone shares a loopback/LAN view of it.
    pub advertise: Option<String>,
    /// Peers to contact on startup (any subset of the cluster; gossip
    /// fills in the rest).
    pub seeds: Vec<String>,
    /// Cache copies held *besides* the owner's (1 = owner + successor).
    pub replicas: usize,
    /// Virtual nodes per member on the hash ring; every node and every
    /// ring-aware client must agree.
    pub vnodes: usize,
    /// Steady-state heartbeat probe interval.
    pub heartbeat: Duration,
    /// Consecutive probe failures before a peer turns suspect.
    pub suspect_after: u32,
    /// Consecutive probe failures before a peer turns dead (leaves the
    /// ring).
    pub dead_after: u32,
    /// Probe backoff ceiling for unresponsive peers.
    pub backoff_cap: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            serve: ServeConfig::default(),
            advertise: None,
            seeds: Vec::new(),
            replicas: 1,
            vnodes: DEFAULT_VNODES,
            heartbeat: Duration::from_millis(250),
            suspect_after: 2,
            dead_after: 4,
            backoff_cap: Duration::from_secs(2),
        }
    }
}

#[derive(Default)]
struct Counters {
    forwards_out: AtomicU64,
    forwards_in: AtomicU64,
    delegations_out: AtomicU64,
    delegations_in: AtomicU64,
    replications_sent: AtomicU64,
    replication_failures: AtomicU64,
    replicas_stored: AtomicU64,
    snap_replications_sent: AtomicU64,
    snap_replications_skipped: AtomicU64,
    snaps_stored: AtomicU64,
    jobs_resumed_from_snapshot: AtomicU64,
    forward_cache_hits: AtomicU64,
    fallback_local: AtomicU64,
    jobs_completed: AtomicU64,
}

/// A pool job: the spec, the cached warmup snapshot to resume from
/// (when the snapshot tier hit), and the wall-time deadline.
type PoolJob = (JobSpec, Option<Arc<Vec<u8>>>, Instant);
/// A pool result: the report, plus a fresh warmup snapshot to cache
/// when the handler produced one.
type PoolResult = Result<(String, Option<Vec<u8>>), clognet_serve::JobError>;

struct NodeInner {
    cfg: ClusterConfig,
    advertise: String,
    handler: Arc<dyn JobHandler>,
    pool: Mutex<Option<WorkerPool<PoolJob, PoolResult>>>,
    cache: Mutex<ResultCache>,
    snapshots: Mutex<SnapshotCache>,
    members: Mutex<Membership>,
    counters: Counters,
    recent_delegations: Mutex<VecDeque<u64>>,
    shutdown: AtomicBool,
    inflight: AtomicUsize,
    /// Connection threads currently serving a peer.
    conns: AtomicUsize,
    local_addr: SocketAddr,
}

/// A bound-but-not-yet-serving cluster node. Bind with
/// [`ClusterNode::bind`], optionally [`ClusterNode::add_peer`], then
/// block in [`ClusterNode::run`] or detach with [`ClusterNode::spawn`].
pub struct ClusterNode {
    listener: TcpListener,
    inner: Arc<NodeInner>,
}

/// Handle to a spawned cluster node thread.
pub struct ClusterHandle {
    addr: SocketAddr,
    advertise: String,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ClusterHandle {
    /// The bound address (resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node's ring identity.
    pub fn advertise(&self) -> &str {
        &self.advertise
    }

    /// Wait for the node to drain and exit.
    ///
    /// # Errors
    ///
    /// The accept loop's I/O error, if it died on one.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the node thread.
    pub fn join(self) -> io::Result<()> {
        self.thread.join().expect("cluster node thread panicked")
    }
}

impl ClusterNode {
    /// Bind the listener, start the worker pool, and seed the
    /// membership table.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(cfg: ClusterConfig, handler: Arc<dyn JobHandler>) -> io::Result<ClusterNode> {
        let listener = TcpListener::bind(&cfg.serve.addr)?;
        let local_addr = listener.local_addr()?;
        let advertise = cfg
            .advertise
            .clone()
            .unwrap_or_else(|| local_addr.to_string());
        let pool_handler = Arc::clone(&handler);
        let pool = WorkerPool::new(
            cfg.serve.workers,
            cfg.serve.queue_cap,
            move |(spec, snap, deadline): PoolJob| match snap {
                Some(bytes) => pool_handler
                    .run_from_snapshot(&spec, &bytes, deadline)
                    .map(|report| (report, None)),
                None => pool_handler.run_with_snapshot(&spec, deadline),
            },
        );
        let mut members = Membership::new(
            &advertise,
            cfg.heartbeat,
            cfg.suspect_after,
            cfg.dead_after,
            cfg.backoff_cap,
        );
        let now = Instant::now();
        for seed in &cfg.seeds {
            members.add_peer(seed, now);
        }
        let cache = ResultCache::new(cfg.serve.cache_cap);
        let snapshots = SnapshotCache::new(cfg.serve.snap_cache_cap);
        let inner = Arc::new(NodeInner {
            cfg,
            advertise,
            handler,
            pool: Mutex::new(Some(pool)),
            cache: Mutex::new(cache),
            snapshots: Mutex::new(snapshots),
            members: Mutex::new(members),
            counters: Counters::default(),
            recent_delegations: Mutex::new(VecDeque::new()),
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
            local_addr,
        });
        Ok(ClusterNode { listener, inner })
    }

    /// The bound address (resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// The node's ring identity.
    pub fn advertise(&self) -> &str {
        &self.inner.advertise
    }

    /// Add a peer after binding — how port-0 test clusters introduce
    /// members whose addresses are only known once every node is bound.
    pub fn add_peer(&self, addr: &str) {
        self.inner
            .members
            .lock()
            .expect("members lock poisoned")
            .add_peer(addr, Instant::now());
    }

    /// Accept and serve until a `shutdown` request, then drain and
    /// return. Starts the heartbeat thread; each connection gets its
    /// own thread.
    ///
    /// # Errors
    ///
    /// A fatal accept-loop I/O error.
    pub fn run(self) -> io::Result<()> {
        let hb = {
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || heartbeat_loop(&inner))
        };
        for stream in self.listener.incoming() {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break; // Woken by the shutdown self-connect.
            }
            let Ok(stream) = stream else {
                continue; // Transient accept error; keep serving.
            };
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || handle_connection(&inner, stream));
        }
        drop(self.listener); // Closed before the drain, not after.
        drain(&self.inner);
        let _ = hb.join();
        Ok(())
    }

    /// Run on a background thread; the socket is already bound, so
    /// clients and peers can connect immediately.
    ///
    /// # Errors
    ///
    /// This call itself cannot fail; the handle's `join` reports the
    /// serve loop's outcome.
    pub fn spawn(self) -> io::Result<ClusterHandle> {
        let addr = self.local_addr();
        let advertise = self.advertise().to_string();
        let thread = std::thread::spawn(move || self.run());
        Ok(ClusterHandle {
            addr,
            advertise,
            thread,
        })
    }
}

/// Grace for connection threads to flush final responses (notably the
/// `shutdown` acknowledgment, whose writer is a detached thread racing
/// process exit) before `run` returns. Mirrors `clognet-serve`.
const CONN_FLUSH_GRACE: Duration = Duration::from_millis(300);

fn drain(inner: &NodeInner) {
    let deadline = Instant::now() + inner.cfg.serve.drain_timeout;
    while inner.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let pool = inner.pool.lock().expect("pool lock poisoned").take();
    if let Some(pool) = pool {
        pool.shutdown();
    }
    let grace = Instant::now() + CONN_FLUSH_GRACE;
    while inner.conns.load(Ordering::SeqCst) > 0 && Instant::now() < grace {
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn handle_connection(inner: &Arc<NodeInner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    inner.conns.fetch_add(1, Ordering::SeqCst);
    serve_frames(read_half, stream, |line| dispatch(inner, line));
    inner.conns.fetch_sub(1, Ordering::SeqCst);
}

/// This node's instantaneous load: queued jobs per worker. Draining
/// nodes report an effectively infinite load so nobody delegates to
/// them.
fn load(inner: &NodeInner) -> f64 {
    let pool = inner.pool.lock().expect("pool lock poisoned");
    match pool.as_ref() {
        Some(p) => p.depth() as f64 / p.threads().max(1) as f64,
        None => 1e9,
    }
}

/// The ring as this node currently believes it to be.
fn ring(inner: &NodeInner) -> HashRing {
    let members = inner.members.lock().expect("members lock poisoned");
    HashRing::with_nodes(members.ring_members(), inner.cfg.vnodes)
}

/// A short, fast, fingerprint-jittered policy for node-to-node hops —
/// a dead peer must fail fast so the caller can walk the fallback
/// chain.
fn hop_policy(inner: &NodeInner, fp: u64) -> RetryPolicy {
    let mut h = FxHasher::default();
    h.write(inner.advertise.as_bytes());
    RetryPolicy {
        attempts: 2,
        base_ms: 5,
        cap_ms: 20,
        seed: h.finish(),
    }
    .for_fingerprint(fp)
}

/// One request/response exchange with a peer. `Err` is a transport
/// failure or a reply that does not decode as a protocol response;
/// `Ok` is the raw reply line, safe to relay verbatim.
fn exchange(addr: &str, line: &str, policy: &RetryPolicy) -> Result<String, String> {
    let mut client = Client::connect(addr, policy).map_err(|e| e.to_string())?;
    let reply = client.request_line(line).map_err(|e| e.to_string())?;
    parse_response(&reply)?;
    Ok(reply)
}

fn note_peer_failure(inner: &NodeInner, addr: &str) {
    inner
        .members
        .lock()
        .expect("members lock poisoned")
        .record_failure(addr, Instant::now());
}

fn dispatch(inner: &Arc<NodeInner>, line: &str) -> String {
    let parsed = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return error_response(ErrorCode::BadRequest, &format!("malformed JSON: {e}")),
    };
    match parsed.get("op").and_then(Json::as_str) {
        Some("ping") => ok_response("ping"),
        Some("run") => handle_run(inner, &parsed),
        Some("forward") => handle_forward(inner, &parsed),
        Some("replicate") => handle_replicate(inner, &parsed),
        Some("replicate-snap") => handle_replicate_snap(inner, &parsed),
        Some("peers") => handle_peers(inner, &parsed),
        Some("stats") => stats_response(inner),
        Some("cluster-stats") => cluster_stats_response(inner),
        Some("shutdown") => {
            inner.shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so it notices the flag.
            let _ = TcpStream::connect(inner.local_addr);
            ok_response("shutdown")
        }
        Some(other) => error_response(
            ErrorCode::BadRequest,
            &format!(
                "unknown op `{other}` \
                 (ping|run|forward|replicate|replicate-snap|peers|stats|cluster-stats|shutdown)"
            ),
        ),
        None => error_response(ErrorCode::BadRequest, "request missing string `op`"),
    }
}

/// Reject jobs whose cycle budget exceeds the per-job limit, exactly
/// like the single-node server.
fn admit(inner: &NodeInner, spec: &JobSpec) -> Result<(), String> {
    let budget = spec.warm.saturating_add(spec.cycles);
    if budget > inner.cfg.serve.max_job_cycles {
        return Err(error_response(
            ErrorCode::CycleLimit,
            &format!(
                "job wants {budget} cycles; per-job limit is {}",
                inner.cfg.serve.max_job_cycles
            ),
        ));
    }
    Ok(())
}

/// A `run` from a client: this node is the gateway. Serve from the
/// local cache, execute if we own the fingerprint, otherwise forward
/// along the placement chain and relay the answer verbatim.
fn handle_run(inner: &Arc<NodeInner>, request: &Json) -> String {
    if inner.shutdown.load(Ordering::SeqCst) {
        return error_response(ErrorCode::ShuttingDown, "node is draining");
    }
    let spec = match JobSpec::from_json(request) {
        Ok(s) => s,
        Err(e) => return error_response(ErrorCode::BadRequest, &e),
    };
    if let Err(reply) = admit(inner, &spec) {
        return reply;
    }
    let fp = match inner.handler.fingerprint(&spec) {
        Ok(fp) => fp,
        Err(e) => return error_response(e.code, &e.message),
    };
    let hex = fingerprint_hex(fp);
    if let Some(report) = inner.cache.lock().expect("cache lock poisoned").lookup(fp) {
        return run_response(&hex, true, &report);
    }
    let placement: Vec<String> = {
        let r = ring(inner);
        r.placement(fp, inner.cfg.replicas + 1)
            .into_iter()
            .map(String::from)
            .collect()
    };
    if placement.first().map(String::as_str) == Some(inner.advertise.as_str())
        || placement.is_empty()
    {
        return execute_local(inner, spec, fp, &hex, true);
    }
    // Not ours: walk the placement chain — owner first, then the
    // replica holders (who can answer resubmissions from their copy
    // when the owner is down).
    inner.counters.forwards_out.fetch_add(1, Ordering::Relaxed);
    let line = spec.to_forward_line(1);
    let policy = hop_policy(inner, fp);
    for target in placement.iter().filter(|a| **a != inner.advertise) {
        match exchange(target, &line, &policy) {
            Ok(reply) => return reply,
            Err(_) => note_peer_failure(inner, target),
        }
    }
    // Every remote placement member is unreachable; answering locally
    // beats failing, and the cache copy replicates back once they
    // return.
    inner
        .counters
        .fallback_local
        .fetch_add(1, Ordering::Relaxed);
    execute_local(inner, spec, fp, &hex, false)
}

/// A `forward` from a peer: cache, execute, or (if `ttl` allows)
/// delegate — never re-route by ring position, which is what bounds
/// the hop count.
fn handle_forward(inner: &Arc<NodeInner>, request: &Json) -> String {
    if inner.shutdown.load(Ordering::SeqCst) {
        return error_response(ErrorCode::ShuttingDown, "node is draining");
    }
    let frame = match parse_forward(request) {
        Ok(f) => f,
        Err(e) => return error_response(ErrorCode::BadRequest, &e),
    };
    if frame.ttl == 0 {
        inner
            .counters
            .delegations_in
            .fetch_add(1, Ordering::Relaxed);
    } else {
        inner.counters.forwards_in.fetch_add(1, Ordering::Relaxed);
    }
    if let Err(reply) = admit(inner, &frame.spec) {
        return reply;
    }
    let fp = match inner.handler.fingerprint(&frame.spec) {
        Ok(fp) => fp,
        Err(e) => return error_response(e.code, &e.message),
    };
    let hex = fingerprint_hex(fp);
    if let Some(report) = inner.cache.lock().expect("cache lock poisoned").lookup(fp) {
        inner
            .counters
            .forward_cache_hits
            .fetch_add(1, Ordering::Relaxed);
        return run_response(&hex, true, &report);
    }
    execute_local(inner, frame.spec, fp, &hex, frame.ttl > 0)
}

/// Run the job on the local pool; a full queue either delegates (one
/// hop, when allowed) or rejects with `overloaded`.
fn execute_local(
    inner: &Arc<NodeInner>,
    spec: JobSpec,
    fp: u64,
    hex: &str,
    allow_delegate: bool,
) -> String {
    // The snapshot tier: a cached warmup prefix (computed locally or
    // replicated from a peer) lets the worker resume mid-flight.
    let skey = inner.handler.snapshot_key(&spec);
    let snap = skey.and_then(|k| {
        inner
            .snapshots
            .lock()
            .expect("snapshot cache lock poisoned")
            .lookup(k)
    });
    let resumed = snap.is_some();
    let deadline = Instant::now() + inner.cfg.serve.job_timeout;
    let submitted = {
        let pool = inner.pool.lock().expect("pool lock poisoned");
        match pool.as_ref() {
            None => return error_response(ErrorCode::ShuttingDown, "node is draining"),
            Some(p) => p.try_submit((spec.clone(), snap, deadline)),
        }
    };
    let rx = match submitted {
        Ok(rx) => rx,
        Err(_) if allow_delegate => return delegate(inner, &spec, fp),
        Err(_) => {
            return error_response(
                ErrorCode::Overloaded,
                &format!(
                    "job queue full ({} waiting, {} workers); retry later",
                    inner.cfg.serve.queue_cap, inner.cfg.serve.workers
                ),
            );
        }
    };
    inner.inflight.fetch_add(1, Ordering::SeqCst);
    // Grace past the deadline so a handler that honors it always wins
    // the race against this receive timeout.
    let wait = inner.cfg.serve.job_timeout + Duration::from_secs(2);
    let outcome = rx.recv_timeout(wait);
    inner.inflight.fetch_sub(1, Ordering::SeqCst);
    match outcome {
        Ok(Ok((report, fresh_snap))) => {
            inner
                .counters
                .jobs_completed
                .fetch_add(1, Ordering::Relaxed);
            if resumed {
                inner
                    .counters
                    .jobs_resumed_from_snapshot
                    .fetch_add(1, Ordering::Relaxed);
            }
            inner
                .cache
                .lock()
                .expect("cache lock poisoned")
                .insert(fp, report.clone());
            let snap_to_share = match (skey, fresh_snap) {
                (Some(k), Some(bytes)) => {
                    let bytes = Arc::new(bytes);
                    inner
                        .snapshots
                        .lock()
                        .expect("snapshot cache lock poisoned")
                        .insert(k, Arc::clone(&bytes));
                    Some((k, bytes))
                }
                _ => None,
            };
            replicate_out(inner, fp, hex, &report, snap_to_share);
            run_response(hex, false, &report)
        }
        Ok(Err(e)) => error_response(e.code, &e.message),
        Err(_) => error_response(
            ErrorCode::Timeout,
            &format!(
                "no result within {:.1}s (per-job wall-time limit)",
                wait.as_secs_f64()
            ),
        ),
    }
}

/// Load-aware overflow: hand the job to the least-loaded alive peer
/// with `ttl = 0` (it must execute or reject — no forwarding loops).
fn delegate(inner: &Arc<NodeInner>, spec: &JobSpec, fp: u64) -> String {
    let target = inner
        .members
        .lock()
        .expect("members lock poisoned")
        .least_loaded_alive();
    let Some(target) = target else {
        return error_response(
            ErrorCode::Overloaded,
            &format!(
                "job queue full ({} waiting, {} workers) and no alive peer to delegate to",
                inner.cfg.serve.queue_cap, inner.cfg.serve.workers
            ),
        );
    };
    inner
        .counters
        .delegations_out
        .fetch_add(1, Ordering::Relaxed);
    {
        let mut log = inner
            .recent_delegations
            .lock()
            .expect("delegation log poisoned");
        if log.len() == DELEGATION_LOG_CAP {
            log.pop_front();
        }
        log.push_back(fp);
    }
    let line = spec.to_forward_line(0);
    match exchange(&target, &line, &hop_policy(inner, fp)) {
        Ok(reply) => reply,
        Err(_) => {
            note_peer_failure(inner, &target);
            error_response(
                ErrorCode::Overloaded,
                "job queue full and the delegation target did not answer; retry later",
            )
        }
    }
}

/// Synchronously copy a fresh cache entry to the fingerprint's other
/// placement members, so the report survives this node's death. When
/// the job also produced a warmup snapshot, it rides along on the same
/// connections (`replicate-snap`) — unless its hex form would not fit
/// in a frame, in which case it is simply skipped: snapshots are an
/// optimization, never required for correctness.
fn replicate_out(
    inner: &NodeInner,
    fp: u64,
    hex: &str,
    report: &str,
    snap: Option<(u64, Arc<Vec<u8>>)>,
) {
    if inner.cfg.replicas == 0 {
        return;
    }
    let targets: Vec<String> = {
        let r = ring(inner);
        r.placement(fp, inner.cfg.replicas + 1)
            .into_iter()
            .filter(|a| *a != inner.advertise)
            .map(String::from)
            .collect()
    };
    if targets.is_empty() {
        return;
    }
    let snap_line = snap.and_then(|(key, bytes)| {
        // Hex doubles the payload; leave headroom for the JSON wrapper.
        if bytes.len() * 2 + 64 > MAX_FRAME_BYTES {
            inner
                .counters
                .snap_replications_skipped
                .fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(replicate_snap_line(&fingerprint_hex(key), &bytes))
    });
    let line = replicate_line(hex, report);
    let policy = hop_policy(inner, fp);
    for target in targets {
        match exchange(&target, &line, &policy) {
            Ok(_) => {
                inner
                    .counters
                    .replications_sent
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(snap_line) = &snap_line {
                    match exchange(&target, snap_line, &policy) {
                        Ok(_) => {
                            inner
                                .counters
                                .snap_replications_sent
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            inner
                                .counters
                                .replication_failures
                                .fetch_add(1, Ordering::Relaxed);
                            note_peer_failure(inner, &target);
                        }
                    }
                }
            }
            Err(_) => {
                inner
                    .counters
                    .replication_failures
                    .fetch_add(1, Ordering::Relaxed);
                note_peer_failure(inner, &target);
            }
        }
    }
}

/// Store a replicated entry. Duplicate inserts are no-ops, so
/// replication is idempotent.
fn handle_replicate(inner: &Arc<NodeInner>, request: &Json) -> String {
    let frame = match parse_replicate(request) {
        Ok(f) => f,
        Err(e) => return error_response(ErrorCode::BadRequest, &e),
    };
    inner
        .cache
        .lock()
        .expect("cache lock poisoned")
        .insert(frame.fingerprint, frame.report);
    inner
        .counters
        .replicas_stored
        .fetch_add(1, Ordering::Relaxed);
    ok_response("replicate")
}

/// Store a replicated warmup snapshot. Duplicate inserts are no-ops,
/// so snapshot replication is idempotent too.
fn handle_replicate_snap(inner: &Arc<NodeInner>, request: &Json) -> String {
    let frame = match parse_replicate_snap(request) {
        Ok(f) => f,
        Err(e) => return error_response(ErrorCode::BadRequest, &e),
    };
    inner
        .snapshots
        .lock()
        .expect("snapshot cache lock poisoned")
        .insert(frame.key, Arc::new(frame.bytes));
    inner.counters.snaps_stored.fetch_add(1, Ordering::Relaxed);
    ok_response("replicate-snap")
}

/// Answer a heartbeat: learn the sender and its gossip, report our own
/// load and member list back.
fn handle_peers(inner: &Arc<NodeInner>, request: &Json) -> String {
    let ex = match parse_peers(request) {
        Ok(p) => p,
        Err(e) => return error_response(ErrorCode::BadRequest, &e),
    };
    let now = Instant::now();
    let known = {
        let mut m = inner.members.lock().expect("members lock poisoned");
        m.merge_known(&ex.known, now);
        if ex.from != inner.advertise {
            m.add_peer(&ex.from, now);
            m.record_success(&ex.from, ex.load, now);
        }
        m.known()
    };
    peers_response(&inner.advertise, load(inner), &known)
}

fn heartbeat_loop(inner: &Arc<NodeInner>) {
    let tick = (inner.cfg.heartbeat / 4).clamp(Duration::from_millis(5), Duration::from_millis(50));
    while !inner.shutdown.load(Ordering::SeqCst) {
        let due = inner
            .members
            .lock()
            .expect("members lock poisoned")
            .due_probes(Instant::now());
        for addr in due {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            probe(inner, &addr);
        }
        std::thread::sleep(tick);
    }
}

/// One heartbeat probe: a fresh connection, one `peers` exchange, no
/// retries (the backoff schedule lives in [`Membership`]).
fn probe(inner: &Arc<NodeInner>, addr: &str) {
    let mut h = FxHasher::default();
    h.write(inner.advertise.as_bytes());
    h.write(addr.as_bytes());
    let policy = RetryPolicy {
        attempts: 1,
        base_ms: 1,
        cap_ms: 1,
        seed: h.finish(),
    };
    // Snapshot the member list, then release before touching the pool
    // lock (for the load figure) or the network.
    let known = {
        let m = inner.members.lock().expect("members lock poisoned");
        m.known()
    };
    let line = peers_line(&inner.advertise, load(inner), &known);
    let outcome = Client::connect(addr, &policy)
        .and_then(|mut c| c.request_line(&line))
        .map_err(|e| e.to_string())
        .and_then(|reply| {
            let v = Json::parse(&reply)?;
            parse_peers(&v)
        });
    let now = Instant::now();
    let mut m = inner.members.lock().expect("members lock poisoned");
    match outcome {
        Ok(ex) => {
            m.merge_known(&ex.known, now);
            m.record_success(addr, ex.load, now);
        }
        Err(_) => m.record_failure(addr, now),
    }
}

/// The single-node `stats` surface: queue, workers, cache. The
/// cluster-wide view lives in [`cluster_stats_response`].
fn stats_response(inner: &NodeInner) -> String {
    let (depth, workers, utilization) = {
        let pool = inner.pool.lock().expect("pool lock poisoned");
        match pool.as_ref() {
            Some(p) => (p.depth(), p.threads(), p.utilization()),
            None => (0, 0, Vec::new()),
        }
    };
    let (entries, hit_rate, hits, misses) = {
        let c = inner.cache.lock().expect("cache lock poisoned");
        (c.len(), c.hit_rate(), c.hits(), c.misses())
    };
    let (snap_entries, snap_bytes, snap_hits, snap_misses) = {
        let s = inner
            .snapshots
            .lock()
            .expect("snapshot cache lock poisoned");
        (s.len(), s.bytes(), s.hits(), s.misses())
    };
    let util_arr: Vec<String> = utilization.iter().map(|&u| json_f64(u)).collect();
    format!(
        "{{\"ok\":true,\"op\":\"stats\",\"queue_depth\":{depth},\"workers\":{workers},\
         \"utilization\":[{}],\"cache_entries\":{entries},\"cache_hits\":{hits},\
         \"cache_misses\":{misses},\"cache_hit_rate\":{},\
         \"snapshot_entries\":{snap_entries},\"snapshot_bytes\":{snap_bytes},\
         \"snapshot_hits\":{snap_hits},\"snapshot_misses\":{snap_misses}}}",
        util_arr.join(","),
        json_f64(hit_rate)
    )
}

fn peer_json(p: &PeerView) -> String {
    format!(
        "{{\"addr\":\"{}\",\"status\":\"{}\",\"load\":{},\"failures\":{}}}",
        json_escape(&p.addr),
        p.status.as_str(),
        json_f64(p.load),
        p.failures
    )
}

/// The cluster-wide view: identity, ring membership, peer table,
/// routing/replication counters, and the recent delegation log.
fn cluster_stats_response(inner: &NodeInner) -> String {
    let (ring_nodes, peers) = {
        let m = inner.members.lock().expect("members lock poisoned");
        (m.ring_members(), m.snapshot())
    };
    let ring_arr: Vec<String> = ring_nodes
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect();
    let peer_arr: Vec<String> = peers.iter().map(peer_json).collect();
    let delegations: Vec<String> = inner
        .recent_delegations
        .lock()
        .expect("delegation log poisoned")
        .iter()
        .map(|fp| format!("\"{}\"", fingerprint_hex(*fp)))
        .collect();
    let c = &inner.counters;
    let (entries, hits, misses) = {
        let cache = inner.cache.lock().expect("cache lock poisoned");
        (cache.len(), cache.hits(), cache.misses())
    };
    let (snap_entries, snap_hits, snap_misses) = {
        let s = inner
            .snapshots
            .lock()
            .expect("snapshot cache lock poisoned");
        (s.len(), s.hits(), s.misses())
    };
    format!(
        "{{\"ok\":true,\"op\":\"cluster-stats\",\"self\":\"{}\",\"replicas\":{},\
         \"ring\":[{}],\"peers\":[{}],\"counters\":{{\
         \"forwards_out\":{},\"forwards_in\":{},\
         \"delegations_out\":{},\"delegations_in\":{},\
         \"replications_sent\":{},\"replication_failures\":{},\
         \"replicas_stored\":{},\"forward_cache_hits\":{},\
         \"fallback_local\":{},\"jobs_completed\":{},\
         \"snap_replications_sent\":{},\"snap_replications_skipped\":{},\
         \"snaps_stored\":{},\"jobs_resumed_from_snapshot\":{}}},\
         \"recent_delegations\":[{}],\
         \"cache_entries\":{entries},\"cache_hits\":{hits},\"cache_misses\":{misses},\
         \"snapshot_entries\":{snap_entries},\"snapshot_hits\":{snap_hits},\
         \"snapshot_misses\":{snap_misses}}}",
        json_escape(&inner.advertise),
        inner.cfg.replicas,
        ring_arr.join(","),
        peer_arr.join(","),
        c.forwards_out.load(Ordering::Relaxed),
        c.forwards_in.load(Ordering::Relaxed),
        c.delegations_out.load(Ordering::Relaxed),
        c.delegations_in.load(Ordering::Relaxed),
        c.replications_sent.load(Ordering::Relaxed),
        c.replication_failures.load(Ordering::Relaxed),
        c.replicas_stored.load(Ordering::Relaxed),
        c.forward_cache_hits.load(Ordering::Relaxed),
        c.fallback_local.load(Ordering::Relaxed),
        c.jobs_completed.load(Ordering::Relaxed),
        c.snap_replications_sent.load(Ordering::Relaxed),
        c.snap_replications_skipped.load(Ordering::Relaxed),
        c.snaps_stored.load(Ordering::Relaxed),
        c.jobs_resumed_from_snapshot.load(Ordering::Relaxed),
        delegations.join(","),
    )
}
