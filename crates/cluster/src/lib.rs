//! # clognet-cluster
//!
//! Sharded multi-node simulation service, layered on [`clognet_serve`].
//!
//! One `clognet serve` process memoizes deterministic simulation
//! reports in a content-addressed cache; this crate scales that to N
//! processes sharing **one logical cache** without a coordinator:
//!
//! * [`membership`] — static seed list plus periodic TCP
//!   heartbeat/gossip over the existing NDJSON wire protocol, with an
//!   alive/suspect/dead lifecycle and capped-backoff reprobing.
//! * Consistent-hash sharding — job fingerprints are placed on a
//!   [`clognet_proto::HashRing`] of virtual nodes; any node receiving a
//!   `submit` either serves it locally or forwards to the owner and
//!   relays the reply back verbatim.
//! * Cache replication — each computed report is synchronously copied
//!   to the fingerprint's ring successors, so resubmissions survive a
//!   node death.
//! * Load-aware delegation — a saturated owner hands the job to the
//!   least-loaded alive peer instead of bouncing `overloaded` back
//!   through the gateway.
//!
//! The invariant inherited from the single-node service holds
//! cluster-wide: **the same fingerprint yields byte-identical report
//! bytes no matter which node is asked**, across forwarded, delegated,
//! replicated, and cached answers alike.
//!
//! ## Example
//!
//! ```
//! use clognet_cluster::{ClusterConfig, ClusterNode};
//! use clognet_serve::client::{Client, RetryPolicy};
//! use clognet_serve::server::{JobError, JobHandler};
//! use clognet_serve::wire::JobSpec;
//! use std::sync::Arc;
//! use std::time::Instant;
//!
//! struct Echo;
//! impl JobHandler for Echo {
//!     fn fingerprint(&self, spec: &JobSpec) -> Result<u64, JobError> {
//!         Ok(spec.cycles)
//!     }
//!     fn run(&self, spec: &JobSpec, _deadline: Instant) -> Result<String, JobError> {
//!         Ok(format!("{{\"cycles\":{}}}", spec.cycles))
//!     }
//! }
//!
//! // Two nodes on OS-assigned ports, introduced to each other.
//! let a = ClusterNode::bind(ClusterConfig::default(), Arc::new(Echo)).unwrap();
//! let b = ClusterNode::bind(ClusterConfig::default(), Arc::new(Echo)).unwrap();
//! a.add_peer(b.advertise());
//! b.add_peer(a.advertise());
//! let (addr_a, addr_b) = (a.local_addr().to_string(), b.local_addr().to_string());
//! let (ha, hb) = (a.spawn().unwrap(), b.spawn().unwrap());
//!
//! // The same job through either gateway returns identical bytes —
//! // whichever node does not own the fingerprint forwards it.
//! let policy = RetryPolicy::default();
//! let spec = JobSpec::new("HS", "bodytrack");
//! let via_a = Client::connect(&addr_a, &policy).unwrap().submit(&spec).unwrap();
//! let via_b = Client::connect(&addr_b, &policy).unwrap().submit(&spec).unwrap();
//! assert_eq!(via_a.report, via_b.report);
//! assert_eq!(via_a.fingerprint, via_b.fingerprint);
//!
//! for addr in [&addr_a, &addr_b] {
//!     Client::connect(addr, &policy).unwrap().shutdown().unwrap();
//! }
//! ha.join().unwrap();
//! hb.join().unwrap();
//! ```

#![warn(missing_docs)]

pub mod membership;
pub mod node;

pub use membership::{Membership, PeerStatus, PeerView};
pub use node::{ClusterConfig, ClusterHandle, ClusterNode};
