//! Peer membership: static seeds, heartbeat lifecycle, gossip merge.
//!
//! Every node keeps a local table of its peers. A peer starts out
//! **suspect** — placed on the ring immediately (so routing works from
//! the first request) but not yet trusted for delegation — and is
//! promoted to **alive** by its first successful heartbeat. Repeated
//! probe failures demote it back to suspect and eventually to **dead**,
//! at which point it leaves the ring; dead peers keep being probed (at
//! a capped backoff) so a restarted node rejoins without operator
//! action.
//!
//! Probe scheduling uses capped exponential backoff with jitter drawn
//! from a [`clognet_rng::SmallRng`] seeded by the node's own address:
//! deterministic run to run, desynchronized node to node, matching the
//! client-side retry discipline of `clognet_serve::client`.

use clognet_proto::FxHasher;
use clognet_rng::{Rng, SeedableRng, SmallRng};
use std::collections::BTreeMap;
use std::hash::Hasher;
use std::time::{Duration, Instant};

/// A peer's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerStatus {
    /// Heartbeats are succeeding; eligible for delegation.
    Alive,
    /// Newly added or missing heartbeats; still on the ring.
    Suspect,
    /// Failed too many probes in a row; off the ring until it answers.
    Dead,
}

impl PeerStatus {
    /// The wire/stats spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            PeerStatus::Alive => "alive",
            PeerStatus::Suspect => "suspect",
            PeerStatus::Dead => "dead",
        }
    }
}

/// A read-only view of one peer, for stats reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerView {
    /// The peer's advertised address.
    pub addr: String,
    /// Lifecycle state.
    pub status: PeerStatus,
    /// Last reported load (queued jobs per worker).
    pub load: f64,
    /// Consecutive probe failures.
    pub failures: u32,
}

struct Peer {
    status: PeerStatus,
    load: f64,
    failures: u32,
    next_probe: Instant,
}

/// The membership table: who this node believes its peers are, what
/// state they are in, and when each is next due a heartbeat probe.
pub struct Membership {
    self_addr: String,
    peers: BTreeMap<String, Peer>,
    heartbeat: Duration,
    suspect_after: u32,
    dead_after: u32,
    backoff_cap: Duration,
    rng: SmallRng,
}

impl Membership {
    /// An empty table for the node advertising `self_addr`.
    ///
    /// `suspect_after` / `dead_after` are consecutive-failure
    /// thresholds; `heartbeat` is the steady-state probe interval and
    /// the backoff base; `backoff_cap` bounds the probe interval for
    /// dead peers.
    pub fn new(
        self_addr: &str,
        heartbeat: Duration,
        suspect_after: u32,
        dead_after: u32,
        backoff_cap: Duration,
    ) -> Membership {
        let mut h = FxHasher::default();
        h.write(self_addr.as_bytes());
        Membership {
            self_addr: self_addr.to_string(),
            peers: BTreeMap::new(),
            heartbeat,
            suspect_after: suspect_after.max(1),
            dead_after: dead_after.max(2),
            backoff_cap,
            rng: SmallRng::seed_from_u64(h.finish()),
        }
    }

    /// The node's own advertised address.
    pub fn self_addr(&self) -> &str {
        &self.self_addr
    }

    /// Add a peer (suspect until its first heartbeat answers, due for
    /// a probe immediately). Self and duplicates are no-ops; returns
    /// whether the peer was new.
    pub fn add_peer(&mut self, addr: &str, now: Instant) -> bool {
        if addr == self.self_addr || self.peers.contains_key(addr) {
            return false;
        }
        self.peers.insert(
            addr.to_string(),
            Peer {
                status: PeerStatus::Suspect,
                load: 0.0,
                failures: 0,
                next_probe: now,
            },
        );
        true
    }

    /// Gossip merge: adopt every address we have not seen before.
    pub fn merge_known(&mut self, addrs: &[String], now: Instant) {
        for a in addrs {
            self.add_peer(a, now);
        }
    }

    /// A heartbeat to `addr` answered, reporting `load`.
    pub fn record_success(&mut self, addr: &str, load: f64, now: Instant) {
        let jitter = self.jitter();
        if let Some(p) = self.peers.get_mut(addr) {
            p.status = PeerStatus::Alive;
            p.failures = 0;
            p.load = load;
            p.next_probe = now + self.heartbeat.mul_f64(jitter);
        }
    }

    /// A heartbeat to `addr` failed: bump the failure count, demote per
    /// the thresholds, and back off the next probe exponentially (cap
    /// applied, jitter applied).
    pub fn record_failure(&mut self, addr: &str, now: Instant) {
        let jitter = self.jitter();
        let (heartbeat, cap) = (self.heartbeat, self.backoff_cap);
        let (suspect_after, dead_after) = (self.suspect_after, self.dead_after);
        if let Some(p) = self.peers.get_mut(addr) {
            p.failures = p.failures.saturating_add(1);
            if p.failures >= dead_after {
                p.status = PeerStatus::Dead;
            } else if p.failures >= suspect_after {
                p.status = PeerStatus::Suspect;
            }
            let exp = heartbeat
                .saturating_mul(1u32 << p.failures.saturating_sub(1).min(16))
                .min(cap);
            p.next_probe = now + exp.mul_f64(jitter);
        }
    }

    fn jitter(&mut self) -> f64 {
        0.5 + 0.5 * self.rng.next_f64()
    }

    /// Every peer whose probe timer has expired (dead ones included —
    /// that is how a restarted node rejoins).
    pub fn due_probes(&self, now: Instant) -> Vec<String> {
        self.peers
            .iter()
            .filter(|(_, p)| p.next_probe <= now)
            .map(|(a, _)| a.clone())
            .collect()
    }

    /// The addresses that belong on the hash ring right now: self plus
    /// every non-dead peer, sorted (so all nodes build identical rings
    /// from identical beliefs).
    pub fn ring_members(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .peers
            .iter()
            .filter(|(_, p)| p.status != PeerStatus::Dead)
            .map(|(a, _)| a.clone())
            .collect();
        out.push(self.self_addr.clone());
        out.sort();
        out
    }

    /// The alive peer with the lowest reported load, if any — the
    /// delegation target for a saturated owner.
    pub fn least_loaded_alive(&self) -> Option<String> {
        self.peers
            .iter()
            .filter(|(_, p)| p.status == PeerStatus::Alive)
            .min_by(|a, b| {
                a.1.load
                    .partial_cmp(&b.1.load)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(b.0))
            })
            .map(|(a, _)| a.clone())
    }

    /// Every peer address we know (the gossip payload).
    pub fn known(&self) -> Vec<String> {
        self.peers.keys().cloned().collect()
    }

    /// A stats-ready copy of the table.
    pub fn snapshot(&self) -> Vec<PeerView> {
        self.peers
            .iter()
            .map(|(a, p)| PeerView {
                addr: a.clone(),
                status: p.status,
                load: p.load,
                failures: p.failures,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Membership {
        Membership::new(
            "127.0.0.1:9401",
            Duration::from_millis(100),
            2,
            4,
            Duration::from_secs(2),
        )
    }

    #[test]
    fn peers_start_suspect_and_on_the_ring() {
        let mut m = table();
        let now = Instant::now();
        assert!(m.add_peer("127.0.0.1:9402", now));
        assert!(!m.add_peer("127.0.0.1:9402", now), "duplicate is a no-op");
        assert!(!m.add_peer("127.0.0.1:9401", now), "self is a no-op");
        assert_eq!(m.snapshot()[0].status, PeerStatus::Suspect);
        assert_eq!(
            m.ring_members(),
            vec!["127.0.0.1:9401".to_string(), "127.0.0.1:9402".to_string()]
        );
        assert_eq!(m.due_probes(now), vec!["127.0.0.1:9402".to_string()]);
        assert_eq!(m.least_loaded_alive(), None, "suspect peers not delegable");
    }

    #[test]
    fn lifecycle_alive_suspect_dead_and_rejoin() {
        let mut m = table();
        let now = Instant::now();
        m.add_peer("p", now);
        m.record_success("p", 0.25, now);
        assert_eq!(m.snapshot()[0].status, PeerStatus::Alive);
        assert_eq!(m.least_loaded_alive().as_deref(), Some("p"));

        m.record_failure("p", now);
        assert_eq!(
            m.snapshot()[0].status,
            PeerStatus::Alive,
            "one miss is noise"
        );
        m.record_failure("p", now);
        assert_eq!(m.snapshot()[0].status, PeerStatus::Suspect);
        assert!(m.ring_members().contains(&"p".to_string()));
        m.record_failure("p", now);
        m.record_failure("p", now);
        assert_eq!(m.snapshot()[0].status, PeerStatus::Dead);
        assert!(!m.ring_members().contains(&"p".to_string()));

        // Dead peers still get probed, and one success resurrects.
        assert!(m
            .due_probes(now + Duration::from_secs(10))
            .contains(&"p".to_string()));
        m.record_success("p", 0.0, now);
        assert_eq!(m.snapshot()[0].status, PeerStatus::Alive);
        assert!(m.ring_members().contains(&"p".to_string()));
    }

    #[test]
    fn failure_backoff_grows_and_is_capped() {
        let mut m = table();
        let now = Instant::now();
        m.add_peer("p", now);
        for k in 1..=10u32 {
            m.record_failure("p", now);
            let next = m.peers["p"].next_probe - now;
            let exp = Duration::from_millis(100)
                .saturating_mul(1 << (k - 1).min(16))
                .min(Duration::from_secs(2));
            assert!(
                next >= exp.mul_f64(0.5) && next <= exp,
                "failure {k}: probe in {next:?} vs envelope {exp:?}"
            );
            if k > 5 {
                // Past the cap the envelope stops growing.
                assert!(next <= Duration::from_secs(2));
            }
        }
    }

    #[test]
    fn gossip_merge_adds_only_strangers() {
        let mut m = table();
        let now = Instant::now();
        m.add_peer("a", now);
        m.merge_known(
            &[
                "a".to_string(),
                "b".to_string(),
                "127.0.0.1:9401".to_string(),
            ],
            now,
        );
        assert_eq!(m.known(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn least_loaded_breaks_ties_by_address() {
        let mut m = table();
        let now = Instant::now();
        m.add_peer("b", now);
        m.add_peer("a", now);
        m.record_success("a", 0.5, now);
        m.record_success("b", 0.5, now);
        assert_eq!(m.least_loaded_alive().as_deref(), Some("a"));
        m.record_success("b", 0.25, now);
        assert_eq!(m.least_loaded_alive().as_deref(), Some("b"));
    }
}
