use clognet_cache::SetAssocCache;
use clognet_proto::{CacheGeometry, CoreId};
use clognet_workloads::{gpu_benchmark, GpuStream};

fn main() {
    for name in ["HS", "NN", "3DCON", "BP"] {
        let p = gpu_benchmark(name).unwrap();
        let mut s = GpuStream::new(p, CoreId(5), 40, 42);
        let mut l1: SetAssocCache<()> = SetAssocCache::new(CacheGeometry {
            capacity_bytes: 48 * 1024,
            ways: 4,
            line_bytes: 128,
        });
        let mut miss = 0;
        let mut reads = 0;
        for _ in 0..100_000 {
            let a = s.next_access();
            let line = a.addr.line(128);
            if a.write {
                l1.invalidate(line);
                continue;
            }
            reads += 1;
            if !l1.access(line) {
                miss += 1;
                l1.fill(line, ());
            }
        }
        println!(
            "{name}: ideal read miss rate {:.3} ({miss}/{reads})",
            miss as f64 / reads as f64
        );
    }
}
