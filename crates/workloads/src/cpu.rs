//! Synthetic PARSEC CPU traffic generators (the Netrace substitute).
//!
//! Netrace injects dependency-annotated CPU memory traces and translates
//! network latency into CPU performance. We model each PARSEC benchmark
//! as a deterministic generator with an intrinsic request rate
//! (the paper reports 0.013–0.084 flits/cycle/core across the CPU
//! workloads), a working-set size (which sets the L1 miss rate), a
//! dependency window (how many requests may be outstanding — small
//! windows make the benchmark latency-*sensitive*, like `vips`; large
//! windows make it latency-*tolerant*, like `dedup`), and a write share.

use crate::gpu::MemAccess;
use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{Addr, CoreId};
use clognet_rng::{Rng, SeedableRng, SmallRng};
use std::collections::VecDeque;

/// Base of the CPU data region (disjoint from all GPU regions).
const CPU_BASE: u64 = 0x0000_8000_0000;
/// Bytes reserved per CPU core.
const CPU_SPAN: u64 = 0x0000_4000_0000;
/// CPU line size.
const LINE: u64 = 64;

/// Tuning knobs describing one PARSEC benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Intrinsic memory-request rate per core (requests/cycle when never
    /// stalled). Single-flit requests make this also the request-network
    /// injection rate in flits/cycle.
    pub req_rate: f64,
    /// Working-set size in 64 B lines; sets the L1 miss rate.
    pub working_set_lines: u64,
    /// Maximum outstanding L1 misses before the core stalls. Low =
    /// latency-sensitive.
    pub window: usize,
    /// Fraction of requests that are stores.
    pub write_fraction: f64,
    /// Fraction of accesses that walk sequentially (rest are random in
    /// the working set).
    pub sequential: f64,
}

/// The PARSEC benchmarks used in Table II (medium inputs; large for
/// bodytrack and swaptions).
pub fn cpu_benchmarks() -> Vec<CpuProfile> {
    vec![
        CpuProfile {
            name: "blackscholes",
            req_rate: 0.015,
            working_set_lines: 400,
            window: 6,
            write_fraction: 0.10,
            sequential: 0.80,
        },
        CpuProfile {
            name: "bodytrack",
            req_rate: 0.030,
            working_set_lines: 10_000,
            window: 6,
            write_fraction: 0.20,
            sequential: 0.50,
        },
        CpuProfile {
            name: "canneal",
            req_rate: 0.084,
            working_set_lines: 400_000,
            window: 4,
            write_fraction: 0.10,
            sequential: 0.05,
        },
        CpuProfile {
            name: "dedup",
            req_rate: 0.070,
            working_set_lines: 60_000,
            window: 16,
            write_fraction: 0.30,
            sequential: 0.60,
        },
        CpuProfile {
            name: "ferret",
            req_rate: 0.050,
            working_set_lines: 40_000,
            window: 8,
            write_fraction: 0.20,
            sequential: 0.40,
        },
        CpuProfile {
            name: "fluidanimate",
            req_rate: 0.040,
            working_set_lines: 25_000,
            window: 8,
            write_fraction: 0.30,
            sequential: 0.50,
        },
        CpuProfile {
            name: "swaptions",
            req_rate: 0.018,
            working_set_lines: 450,
            window: 6,
            write_fraction: 0.10,
            sequential: 0.70,
        },
        CpuProfile {
            name: "vips",
            req_rate: 0.060,
            working_set_lines: 30_000,
            window: 3,
            write_fraction: 0.25,
            sequential: 0.60,
        },
        CpuProfile {
            name: "x264",
            req_rate: 0.050,
            working_set_lines: 20_000,
            window: 5,
            write_fraction: 0.30,
            sequential: 0.55,
        },
    ]
}

/// Look a benchmark up by name.
pub fn cpu_benchmark(name: &str) -> Option<CpuProfile> {
    cpu_benchmarks().into_iter().find(|p| p.name == name)
}

/// Deterministic per-core CPU access generator.
///
/// The issue draws can be *peeked* ahead of time ([`Self::peek_issue_gap`])
/// without disturbing the stream: peeked draws are buffered and replayed
/// by later [`Self::wants_issue`]/[`Self::consume_issues`] calls, so the
/// total sequence of RNG draws is identical whether or not anything ever
/// peeks. The buffer never extends past the first `true` draw — a `true`
/// is always the last buffered element — so [`Self::next_access`] (which
/// draws from the same RNG) always runs with an empty buffer, in the
/// same stream position as a never-peeked run.
#[derive(Debug, Clone)]
pub struct CpuStream {
    profile: CpuProfile,
    core: CoreId,
    rng: SmallRng,
    cursor: u64,
    lookahead: VecDeque<bool>,
}

impl CpuStream {
    /// Build the stream for `core`, deterministic in
    /// `(profile, core, seed)`.
    pub fn new(profile: CpuProfile, core: CoreId, seed: u64) -> Self {
        let rng = SmallRng::seed_from_u64(seed ^ 0xCAFE ^ ((core.index() as u64) << 40));
        CpuStream {
            profile,
            core,
            rng,
            cursor: 0,
            lookahead: VecDeque::new(),
        }
    }

    /// The benchmark profile.
    pub fn profile(&self) -> &CpuProfile {
        &self.profile
    }

    /// Should the core issue a request this cycle? (Bernoulli at the
    /// intrinsic rate; the replayer gates this on the dependency window.)
    pub fn wants_issue(&mut self) -> bool {
        match self.lookahead.pop_front() {
            Some(v) => v,
            None => self.rng.gen_bool(self.profile.req_rate),
        }
    }

    /// Cycles until the next `true` issue draw, peeking at most `cap`
    /// draws ahead. Returns the 0-based offset of the first `true`
    /// (0 = this cycle's draw), or `cap` if the next `cap` draws are all
    /// `false` — in that case the caller knows the core stays idle for
    /// at least `cap` cycles and may re-peek afterwards.
    ///
    /// Peeked draws are buffered and later replayed by
    /// [`Self::wants_issue`]/[`Self::consume_issues`]; the buffer never
    /// grows past the first `true`.
    pub fn peek_issue_gap(&mut self, cap: u64) -> u64 {
        // A `true` can only sit at the back of the buffer (extension
        // stops on the first `true`; replay pops off the front), so the
        // first-`true` scan collapses to a single back() probe — this
        // runs on every fast-forward horizon query.
        debug_assert!(
            self.lookahead.iter().rev().skip(1).all(|&v| !v),
            "lookahead holds a true before its back"
        );
        if self.lookahead.back() == Some(&true) {
            return (self.lookahead.len() as u64 - 1).min(cap);
        }
        while (self.lookahead.len() as u64) < cap {
            let v = self.rng.gen_bool(self.profile.req_rate);
            self.lookahead.push_back(v);
            if v {
                return self.lookahead.len() as u64 - 1;
            }
        }
        cap
    }

    /// Consume `n` issue draws at once (the fast-forward integral of `n`
    /// consecutive [`Self::wants_issue`] calls) and return how many were
    /// `true`.
    pub fn consume_issues(&mut self, n: u64) -> u64 {
        let mut trues = 0;
        for _ in 0..n {
            let v = match self.lookahead.pop_front() {
                Some(v) => v,
                None => self.rng.gen_bool(self.profile.req_rate),
            };
            if v {
                trues += 1;
            }
        }
        trues
    }

    /// Serialize the stream's mutable state (RNG, walk cursor, buffered
    /// lookahead draws). The profile and core identity come from
    /// construction, not the byte stream.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for s in self.rng.state() {
            w.u64(s);
        }
        w.u64(self.cursor);
        w.usize(self.lookahead.len());
        for &v in &self.lookahead {
            w.bool(v);
        }
    }

    /// Overlay state captured by [`CpuStream::save_state`] onto a stream
    /// built with the same profile/core/seed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = r.u64()?;
        }
        self.rng = SmallRng::from_state(s);
        self.cursor = r.u64()?;
        let n = r.usize()?;
        self.lookahead.clear();
        for _ in 0..n {
            self.lookahead.push_back(r.bool()?);
        }
        Ok(())
    }

    /// Generate the next access.
    pub fn next_access(&mut self) -> MemAccess {
        let ws = self.profile.working_set_lines;
        let line_off = if self.rng.gen_bool(self.profile.sequential) {
            self.cursor = (self.cursor + 1) % ws;
            self.cursor
        } else {
            self.rng.gen_range(0..ws)
        };
        let base_line = (CPU_BASE + self.core.index() as u64 * CPU_SPAN) / LINE;
        MemAccess {
            addr: Addr::new((base_line + line_off) * LINE),
            write: self.rng.gen_bool(self.profile.write_fraction),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_parsec_benchmarks() {
        let b = cpu_benchmarks();
        assert_eq!(b.len(), 9);
        let names: std::collections::HashSet<_> = b.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn rates_span_the_paper_range() {
        // Paper: CPU injection rates 0.013 to 0.084 flits/cycle.
        for p in cpu_benchmarks() {
            assert!(
                (0.013..=0.084).contains(&p.req_rate),
                "{} rate {}",
                p.name,
                p.req_rate
            );
        }
    }

    #[test]
    fn vips_is_latency_sensitive_dedup_is_not() {
        let vips = cpu_benchmark("vips").unwrap();
        let dedup = cpu_benchmark("dedup").unwrap();
        assert!(vips.window < dedup.window);
    }

    #[test]
    fn issue_rate_approximates_profile() {
        let p = cpu_benchmark("canneal").unwrap();
        let expect = p.req_rate;
        let mut s = CpuStream::new(p, CoreId(0), 9);
        let n = 200_000;
        let issued = (0..n).filter(|_| s.wants_issue()).count();
        let f = issued as f64 / n as f64;
        assert!((f - expect).abs() < 0.005, "rate {f} vs {expect}");
    }

    #[test]
    fn streams_deterministic_and_disjoint_across_cores() {
        let p = cpu_benchmark("ferret").unwrap();
        let mut a1 = CpuStream::new(p.clone(), CoreId(0), 3);
        let mut a2 = CpuStream::new(p.clone(), CoreId(0), 3);
        for _ in 0..500 {
            assert_eq!(a1.next_access(), a2.next_access());
        }
        let mut b = CpuStream::new(p, CoreId(1), 3);
        let la: std::collections::HashSet<u64> =
            (0..2000).map(|_| a1.next_access().addr.0).collect();
        let lb: std::collections::HashSet<u64> =
            (0..2000).map(|_| b.next_access().addr.0).collect();
        assert!(la.is_disjoint(&lb), "CPU cores must not share data");
    }

    #[test]
    fn peeking_never_disturbs_the_stream() {
        // A stream that peeks/consumes must produce the exact same
        // (wants_issue, next_access) sequence as a never-peeked twin.
        let p = cpu_benchmark("canneal").unwrap();
        let mut plain = CpuStream::new(p.clone(), CoreId(2), 11);
        let mut peeky = CpuStream::new(p, CoreId(2), 11);
        let mut cycle = 0u64;
        while cycle < 50_000 {
            let gap = peeky.peek_issue_gap(256);
            // Fast-forward over the idle gap in one consume...
            assert_eq!(peeky.consume_issues(gap), 0, "gap draws must be false");
            // ...while the twin walks it cycle by cycle.
            for _ in 0..gap {
                assert!(!plain.wants_issue());
            }
            cycle += gap;
            if gap == 256 {
                continue; // cap hit: no true within the window, re-peek
            }
            assert!(peeky.wants_issue(), "draw at the peeked offset is true");
            assert!(plain.wants_issue());
            assert_eq!(peeky.next_access(), plain.next_access());
            cycle += 1;
        }
    }

    #[test]
    fn peek_gap_offsets_match_wants_issue() {
        let p = cpu_benchmark("blackscholes").unwrap();
        let mut a = CpuStream::new(p.clone(), CoreId(0), 5);
        let mut b = CpuStream::new(p, CoreId(0), 5);
        for _ in 0..200 {
            let gap = a.peek_issue_gap(4096);
            for i in 0..=gap.min(4095) {
                let want = b.wants_issue();
                assert_eq!(want, i == gap, "offset {i} of gap {gap}");
                assert_eq!(a.wants_issue(), want);
            }
        }
    }

    #[test]
    fn cpu_addresses_disjoint_from_gpu_regions() {
        let p = cpu_benchmark("canneal").unwrap();
        let mut s = CpuStream::new(p, CoreId(15), 1);
        for _ in 0..5000 {
            let a = s.next_access().addr.0;
            assert!(a < 0x2000_0000_0000, "CPU address in GPU region: {a:#x}");
        }
    }
}
