//! The heterogeneous CPU–GPU workload pairings of Table II.
//!
//! Each of the 11 GPU benchmarks co-runs with 3 CPU benchmarks, giving
//! the paper's 33 heterogeneous workloads. All 16 CPU cores run the same
//! CPU benchmark in a given workload ("we allocate all CPU cores to the
//! CPU benchmark").

/// One GPU benchmark with its three CPU co-runners (Table II rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pairing {
    /// GPU benchmark name.
    pub gpu: &'static str,
    /// The three CPU co-runners.
    pub cpus: [&'static str; 3],
}

/// Table II verbatim.
pub const TABLE2: [Pairing; 11] = [
    Pairing {
        gpu: "2DCON",
        cpus: ["blackscholes", "canneal", "dedup"],
    },
    Pairing {
        gpu: "3DCON",
        cpus: ["bodytrack", "dedup", "fluidanimate"],
    },
    Pairing {
        gpu: "BT",
        cpus: ["dedup", "fluidanimate", "vips"],
    },
    Pairing {
        gpu: "SC",
        cpus: ["bodytrack", "ferret", "swaptions"],
    },
    Pairing {
        gpu: "HS",
        cpus: ["bodytrack", "ferret", "x264"],
    },
    Pairing {
        gpu: "LPS",
        cpus: ["fluidanimate", "vips", "x264"],
    },
    Pairing {
        gpu: "LUD",
        cpus: ["ferret", "blackscholes", "swaptions"],
    },
    Pairing {
        gpu: "MM",
        cpus: ["canneal", "fluidanimate", "vips"],
    },
    Pairing {
        gpu: "NN",
        cpus: ["blackscholes", "fluidanimate", "swaptions"],
    },
    Pairing {
        gpu: "SRAD",
        cpus: ["fluidanimate", "ferret", "x264"],
    },
    Pairing {
        gpu: "BP",
        cpus: ["blackscholes", "bodytrack", "ferret"],
    },
];

/// All 33 (GPU, CPU) heterogeneous workloads of the evaluation.
pub fn all_workloads() -> Vec<(&'static str, &'static str)> {
    TABLE2
        .iter()
        .flat_map(|p| p.cpus.iter().map(move |c| (p.gpu, *c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::cpu_benchmark;
    use crate::gpu::gpu_benchmark;

    #[test]
    fn thirty_three_workloads() {
        assert_eq!(all_workloads().len(), 33);
    }

    #[test]
    fn every_name_resolves() {
        for p in &TABLE2 {
            assert!(gpu_benchmark(p.gpu).is_some(), "missing GPU {}", p.gpu);
            for c in &p.cpus {
                assert!(cpu_benchmark(c).is_some(), "missing CPU {c}");
            }
        }
    }

    #[test]
    fn pairings_are_distinct_per_row() {
        for p in &TABLE2 {
            assert_ne!(p.cpus[0], p.cpus[1]);
            assert_ne!(p.cpus[1], p.cpus[2]);
            assert_ne!(p.cpus[0], p.cpus[2]);
        }
    }
}
