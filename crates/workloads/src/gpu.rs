//! Synthetic GPU benchmark generators.
//!
//! The paper's evaluation uses eleven CUDA benchmarks (Table II) drawn
//! from the CUDA SDK, GPGPU-sim, Rodinia and PolyBench. Their binaries
//! cannot run here, so each benchmark is modeled by a deterministic
//! address-stream generator parameterized to reproduce the *statistical*
//! properties the paper reports for it:
//!
//! * inter-core locality (Fig. 2: >57% of L1 misses resident in remote
//!   L1s on average; 2DCON/HS/NN above 60%),
//! * L1 miss-stream composition (Fig. 14: 3DCON/BT/LPS show many remote
//!   misses because their shared tiles exceed what the owning core's L1
//!   retains),
//! * write share (BP is write-heavy — the reason AVCP hurts it),
//! * memory intensity.
//!
//! The generator mirrors how these kernels actually touch memory. The
//! shared data set is split into **per-CTA tiles**, one per core (the
//! round-robin CTA scheduler of Table I maps consecutive CTAs to
//! consecutive SMs). An access is one of:
//!
//! * a **hot** access — Zipf over a small kernel-wide set (stencil
//!   coefficients, NN weights, MM's broadcast tiles) that every core
//!   touches;
//! * a **tile** access — uniform over the core's own tile;
//! * a **halo** access — uniform over an *adjacent core's* tile, the
//!   stencil-boundary exchange that creates the paper's inter-core
//!   locality (the neighbor holds its own tile in its L1);
//! * a **private stream** access — streaming with short-distance reuse
//!   (registers spills, thread-local arrays).

use crate::zipf::Zipf;
use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{Addr, CoreId, CtaSched};
use clognet_rng::{Rng, SeedableRng, SmallRng};

/// Base of the hot (kernel-wide) shared region.
const HOT_BASE: u64 = 0x4000_0000_0000;
/// Base of the tiled shared region.
const TILE_BASE: u64 = 0x5000_0000_0000;
/// Base of the per-core private regions.
const PRIVATE_BASE: u64 = 0x2000_0000_0000;
/// Base of the per-core output regions (kernels write their own output
/// tile; shared data is effectively read-only, as the paper notes).
const OUTPUT_BASE: u64 = 0x3000_0000_0000;
/// Bytes reserved per core for its private stream.
const PRIVATE_SPAN: u64 = 0x1_0000_0000;
/// GPU line size used for address generation.
const LINE: u64 = 128;

/// One memory operation produced by a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address (line-aligned).
    pub addr: Addr,
    /// Store (write-through) rather than load.
    pub write: bool,
}

/// Tuning knobs describing one GPU benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuProfile {
    /// Benchmark name (Table II).
    pub name: &'static str,
    /// Kernel grid dimensions (Table II; descriptive metadata).
    pub grid_dim: (u32, u32, u32),
    /// Fraction of accesses that target shared data (hot + tile + halo).
    pub shared_fraction: f64,
    /// Total tiled shared-data size in cache lines, split evenly into
    /// per-core tiles. Tiles that exceed what a core's L1 retains produce
    /// the paper's *remote miss* pattern (3DCON, BT, LPS).
    pub shared_lines: u64,
    /// Of shared accesses, the fraction going to the hot set.
    pub hot_fraction: f64,
    /// Hot-set size in lines.
    pub hot_lines: u64,
    /// Zipf exponent of hot-set popularity.
    pub zipf_s: f64,
    /// Of non-hot shared accesses, the fraction that reach into an
    /// adjacent core's tile (stencil halo exchange).
    pub halo_fraction: f64,
    /// Private working-set size in lines (streamed cyclically).
    pub private_lines: u64,
    /// Probability that a private access re-references a recently used
    /// private line instead of advancing the stream.
    pub private_reuse: f64,
    /// Fraction of accesses that are stores.
    pub write_fraction: f64,
    /// Warp compute cycles between consecutive memory operations.
    pub compute_per_mem: u32,
}

impl GpuProfile {
    /// Apply the CTA scheduling policy. Distributed (locality-aware) CTA
    /// scheduling keeps adjacent CTAs on the same SM, so halo exchanges
    /// become core-local: fewer L1 misses, but the clogging itself is not
    /// removed (Fig. 15).
    pub fn with_cta_sched(mut self, sched: CtaSched) -> Self {
        if sched == CtaSched::Distributed {
            self.halo_fraction *= 0.45;
            self.private_reuse = 1.0 - (1.0 - self.private_reuse) * 0.75;
        }
        self
    }
}

/// The eleven Table-II GPU benchmarks.
pub fn gpu_benchmarks() -> Vec<GpuProfile> {
    vec![
        GpuProfile {
            name: "2DCON",
            grid_dim: (128, 512, 1),
            shared_fraction: 0.70,
            shared_lines: 2_400,
            hot_fraction: 0.15,
            hot_lines: 64,
            zipf_s: 0.9,
            halo_fraction: 0.55,
            private_lines: 4_000,
            private_reuse: 0.70,
            write_fraction: 0.10,
            compute_per_mem: 6,
        },
        GpuProfile {
            name: "3DCON",
            grid_dim: (8, 32, 1),
            shared_fraction: 0.70,
            shared_lines: 48_000,
            hot_fraction: 0.10,
            hot_lines: 64,
            zipf_s: 0.9,
            halo_fraction: 0.50,
            private_lines: 6_000,
            private_reuse: 0.60,
            write_fraction: 0.12,
            compute_per_mem: 6,
        },
        GpuProfile {
            name: "BT",
            grid_dim: (60_000, 1, 1),
            shared_fraction: 0.55,
            shared_lines: 16_000,
            hot_fraction: 0.10,
            hot_lines: 128,
            zipf_s: 0.8,
            halo_fraction: 0.45,
            private_lines: 8_000,
            private_reuse: 0.60,
            write_fraction: 0.15,
            compute_per_mem: 8,
        },
        GpuProfile {
            name: "SC",
            grid_dim: (1_954, 1, 1),
            shared_fraction: 0.35,
            shared_lines: 1_600,
            hot_fraction: 0.50,
            hot_lines: 48,
            zipf_s: 1.0,
            halo_fraction: 0.20,
            private_lines: 3_000,
            private_reuse: 0.75,
            write_fraction: 0.20,
            compute_per_mem: 10,
        },
        GpuProfile {
            name: "HS",
            grid_dim: (342, 342, 1),
            shared_fraction: 0.80,
            shared_lines: 2_400,
            hot_fraction: 0.20,
            hot_lines: 64,
            zipf_s: 0.9,
            halo_fraction: 0.60,
            private_lines: 3_000,
            private_reuse: 0.70,
            write_fraction: 0.10,
            compute_per_mem: 5,
        },
        GpuProfile {
            name: "LPS",
            grid_dim: (63, 500, 1),
            shared_fraction: 0.55,
            shared_lines: 30_000,
            hot_fraction: 0.10,
            hot_lines: 64,
            zipf_s: 0.9,
            halo_fraction: 0.45,
            private_lines: 6_000,
            private_reuse: 0.60,
            write_fraction: 0.15,
            compute_per_mem: 7,
        },
        GpuProfile {
            name: "LUD",
            grid_dim: (127, 127, 1),
            shared_fraction: 0.40,
            shared_lines: 2_000,
            hot_fraction: 0.45,
            hot_lines: 64,
            zipf_s: 1.0,
            halo_fraction: 0.25,
            private_lines: 2_500,
            private_reuse: 0.75,
            write_fraction: 0.15,
            compute_per_mem: 9,
        },
        GpuProfile {
            name: "MM",
            grid_dim: (1_000, 2_000, 1),
            shared_fraction: 0.65,
            shared_lines: 6_000,
            hot_fraction: 0.35,
            hot_lines: 256,
            zipf_s: 0.7,
            halo_fraction: 0.30,
            private_lines: 8_000,
            private_reuse: 0.60,
            write_fraction: 0.05,
            compute_per_mem: 6,
        },
        GpuProfile {
            name: "NN",
            grid_dim: (6, 6_000, 1),
            shared_fraction: 0.80,
            shared_lines: 1_200,
            hot_fraction: 0.70,
            hot_lines: 96,
            zipf_s: 0.8,
            halo_fraction: 0.30,
            private_lines: 1_500,
            private_reuse: 0.85,
            write_fraction: 0.05,
            compute_per_mem: 12,
        },
        GpuProfile {
            name: "SRAD",
            grid_dim: (128, 128, 1),
            shared_fraction: 0.60,
            shared_lines: 4_000,
            hot_fraction: 0.15,
            hot_lines: 64,
            zipf_s: 0.9,
            halo_fraction: 0.50,
            private_lines: 5_000,
            private_reuse: 0.60,
            write_fraction: 0.20,
            compute_per_mem: 7,
        },
        GpuProfile {
            name: "BP",
            grid_dim: (1, 16_384, 1),
            shared_fraction: 0.30,
            shared_lines: 3_000,
            hot_fraction: 0.30,
            hot_lines: 64,
            zipf_s: 0.9,
            halo_fraction: 0.30,
            private_lines: 4_000,
            private_reuse: 0.65,
            write_fraction: 0.45,
            compute_per_mem: 7,
        },
    ]
}

/// Look a benchmark up by name.
pub fn gpu_benchmark(name: &str) -> Option<GpuProfile> {
    gpu_benchmarks().into_iter().find(|p| p.name == name)
}

/// Deterministic per-core address-stream generator for one benchmark.
#[derive(Debug, Clone)]
pub struct GpuStream {
    profile: GpuProfile,
    core: CoreId,
    n_cores: usize,
    tile_lines: u64,
    rng: SmallRng,
    zipf: Zipf,
    stream_pos: u64,
    /// Stencil sweep position within the tile: cores process their tiles
    /// front-to-back at similar rates, so halo accesses target the part
    /// of the neighbor's tile the neighbor touched recently.
    sweep_pos: u64,
    sweep_count: u32,
    out_pos: u64,
    recent: [u64; 16],
    recent_len: usize,
    recent_cursor: usize,
}

impl GpuStream {
    /// Build the stream for `core` of an `n_cores`-core system,
    /// deterministic in `(profile, core, n_cores, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or `n_cores` is zero.
    pub fn new(profile: GpuProfile, core: CoreId, n_cores: usize, seed: u64) -> Self {
        assert!(n_cores > 0 && core.index() < n_cores);
        let zipf = Zipf::new(profile.hot_lines as usize, profile.zipf_s);
        let tile_lines = (profile.shared_lines / n_cores as u64).max(1);
        let rng =
            SmallRng::seed_from_u64(seed ^ (core.index() as u64) << 32 ^ fxhash(profile.name));
        GpuStream {
            profile,
            core,
            n_cores,
            tile_lines,
            rng,
            zipf,
            stream_pos: 0,
            sweep_pos: 0,
            sweep_count: 0,
            out_pos: 0,
            recent: [0; 16],
            recent_len: 0,
            recent_cursor: 0,
        }
    }

    /// The benchmark profile.
    pub fn profile(&self) -> &GpuProfile {
        &self.profile
    }

    /// Lines per per-core tile.
    pub fn tile_lines(&self) -> u64 {
        self.tile_lines
    }

    /// Compute cycles a warp spends between memory operations.
    pub fn compute_per_mem(&self) -> u32 {
        self.profile.compute_per_mem
    }

    /// Serialize the stream's mutable state (RNG, stream positions and
    /// the recent-line reuse window). The profile, Zipf table and tile
    /// geometry are rebuilt from config on restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for s in self.rng.state() {
            w.u64(s);
        }
        w.u64(self.stream_pos);
        w.u64(self.sweep_pos);
        w.u32(self.sweep_count);
        w.u64(self.out_pos);
        for x in self.recent {
            w.u64(x);
        }
        w.usize(self.recent_len);
        w.usize(self.recent_cursor);
    }

    /// Overlay state captured by [`GpuStream::save_state`] onto a stream
    /// rebuilt with the same constructor arguments.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let mut s = [0u64; 4];
        for x in &mut s {
            *x = r.u64()?;
        }
        self.rng = SmallRng::from_state(s);
        self.stream_pos = r.u64()?;
        self.sweep_pos = r.u64()?;
        self.sweep_count = r.u32()?;
        self.out_pos = r.u64()?;
        for x in &mut self.recent {
            *x = r.u64()?;
        }
        self.recent_len = r.usize()?;
        self.recent_cursor = r.usize()?;
        if self.recent_len > self.recent.len() || self.recent_cursor >= self.recent.len() {
            return Err(SnapError::Corrupt("gpu stream recent window"));
        }
        Ok(())
    }

    /// Generate the next memory access of a warp on this core.
    pub fn next_access(&mut self) -> MemAccess {
        if self.rng.gen_bool(self.profile.write_fraction) {
            // Stores stream into the core's own output tile: shared data
            // is read-only (Section IV: "shared read-only data ... is
            // much more common than shared read-write data").
            self.out_pos = (self.out_pos + 1) % self.profile.private_lines;
            let line =
                (OUTPUT_BASE + self.core.index() as u64 * PRIVATE_SPAN) / LINE + self.out_pos;
            return MemAccess {
                addr: Addr::new(line * LINE),
                write: true,
            };
        }
        let write = false;
        let line = if self.rng.gen_bool(self.profile.shared_fraction) {
            if self.rng.gen_bool(self.profile.hot_fraction) {
                // Kernel-wide hot data.
                let rank = self.zipf.sample(&mut self.rng) as u64;
                HOT_BASE / LINE + rank
            } else {
                // Tile or halo access.
                let tile = if self.rng.gen_bool(self.profile.halo_fraction) {
                    // Stencil halo: an adjacent CTA tile (wrapping).
                    let delta = if self.rng.gen_bool(0.5) {
                        1
                    } else {
                        self.n_cores - 1
                    };
                    (self.core.index() + delta) % self.n_cores
                } else {
                    self.core.index()
                };
                // Wavefront sweep: accesses concentrate in a window that
                // slides through the tile, as a stencil kernel walks its
                // rows. Cores advance at similar rates, so a neighbor's
                // current window is resident in the neighbor's L1 even
                // when the whole tile is not.
                let window = 64.min(self.tile_lines);
                self.sweep_count += 1;
                if self.sweep_count >= 24 {
                    self.sweep_count = 0;
                    self.sweep_pos = (self.sweep_pos + 1) % self.tile_lines;
                }
                let off = (self.sweep_pos + self.rng.gen_range(0..window)) % self.tile_lines;
                TILE_BASE / LINE + tile as u64 * self.tile_lines + off
            }
        } else if self.recent_len > 0 && self.rng.gen_bool(self.profile.private_reuse) {
            self.recent[self.rng.gen_range(0..self.recent_len)]
        } else {
            self.stream_pos = (self.stream_pos + 1) % self.profile.private_lines;
            let line =
                (PRIVATE_BASE + self.core.index() as u64 * PRIVATE_SPAN) / LINE + self.stream_pos;
            self.recent[self.recent_cursor] = line;
            self.recent_cursor = (self.recent_cursor + 1) % self.recent.len();
            self.recent_len = (self.recent_len + 1).min(self.recent.len());
            line
        };
        MemAccess {
            addr: Addr::new(line * LINE),
            write,
        }
    }
}

fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 40;

    #[test]
    fn eleven_benchmarks_with_unique_names() {
        let b = gpu_benchmarks();
        assert_eq!(b.len(), 11);
        let names: std::collections::HashSet<_> = b.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 11);
        assert!(gpu_benchmark("HS").is_some());
        assert!(gpu_benchmark("nope").is_none());
    }

    #[test]
    fn bp_is_write_heavy() {
        let bp = gpu_benchmark("BP").unwrap();
        for other in gpu_benchmarks() {
            if other.name != "BP" {
                assert!(bp.write_fraction > other.write_fraction, "{}", other.name);
            }
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let p = gpu_benchmark("MM").unwrap();
        let mut a = GpuStream::new(p.clone(), CoreId(3), N, 42);
        let mut b = GpuStream::new(p, CoreId(3), N, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn halo_accesses_reach_adjacent_tiles_only() {
        let p = gpu_benchmark("HS").unwrap();
        let mut s = GpuStream::new(p, CoreId(5), N, 7);
        let tl = s.tile_lines();
        let base = TILE_BASE / LINE;
        for _ in 0..20_000 {
            let l = s.next_access().addr.0 / LINE;
            if (base..base + N as u64 * tl).contains(&l) {
                let tile = ((l - base) / tl) as usize;
                assert!(
                    tile == 5 || tile == 4 || tile == 6,
                    "core 5 touched tile {tile}"
                );
            }
        }
    }

    #[test]
    fn hot_set_is_shared_by_all_cores() {
        let p = gpu_benchmark("NN").unwrap();
        let hot = |core: u16| -> std::collections::HashSet<u64> {
            let mut s = GpuStream::new(gpu_benchmark("NN").unwrap(), CoreId(core), N, 7);
            (0..5000)
                .map(|_| s.next_access().addr.0 / LINE)
                .filter(|l| *l >= HOT_BASE / LINE && *l < HOT_BASE / LINE + p.hot_lines)
                .collect()
        };
        let a = hot(0);
        let b = hot(20);
        assert!(a.intersection(&b).count() > 10, "hot sets must overlap");
    }

    #[test]
    fn shared_fraction_is_respected() {
        // Reads split shared/private by `shared_fraction`; writes always
        // stream to the core's output tile.
        let p = gpu_benchmark("HS").unwrap();
        let expect = p.shared_fraction;
        let mut s = GpuStream::new(p, CoreId(0), N, 1);
        let n = 20_000;
        let (mut shared, mut reads) = (0usize, 0usize);
        for _ in 0..n {
            let a = s.next_access();
            if a.write {
                assert!(
                    (0x3000_0000_0000..0x4000_0000_0000).contains(&a.addr.0),
                    "write outside output region: {:#x}",
                    a.addr.0
                );
                continue;
            }
            reads += 1;
            if a.addr.0 >= HOT_BASE {
                shared += 1;
            }
        }
        let f = shared as f64 / reads as f64;
        assert!((f - expect).abs() < 0.03, "shared fraction {f} vs {expect}");
    }

    #[test]
    fn write_fraction_is_respected() {
        let p = gpu_benchmark("BP").unwrap();
        let expect = p.write_fraction;
        let mut s = GpuStream::new(p, CoreId(0), N, 1);
        let n = 20_000;
        let w = (0..n).filter(|_| s.next_access().write).count();
        let f = w as f64 / n as f64;
        assert!((f - expect).abs() < 0.03, "write fraction {f} vs {expect}");
    }

    #[test]
    fn addresses_are_line_aligned() {
        let p = gpu_benchmark("SRAD").unwrap();
        let mut s = GpuStream::new(p, CoreId(9), N, 5);
        for _ in 0..1000 {
            assert_eq!(s.next_access().addr.0 % LINE, 0);
        }
    }

    #[test]
    fn big_pools_have_big_tiles() {
        // 3DCON's per-core tile must exceed the 384-line L1 (the remote
        // miss driver); HS's must fit comfortably.
        let p3 = gpu_benchmark("3DCON").unwrap();
        let s3 = GpuStream::new(p3, CoreId(0), N, 1);
        assert!(s3.tile_lines() > 384, "3DCON tile {}", s3.tile_lines());
        let ph = gpu_benchmark("HS").unwrap();
        let sh = GpuStream::new(ph, CoreId(0), N, 1);
        assert!(sh.tile_lines() < 128, "HS tile {}", sh.tile_lines());
    }

    #[test]
    fn distributed_cta_reduces_halo_traffic() {
        let p = gpu_benchmark("2DCON").unwrap();
        let d = p.clone().with_cta_sched(CtaSched::Distributed);
        assert!(d.halo_fraction < p.halo_fraction);
        assert!(d.private_reuse > p.private_reuse);
        let r = p.clone().with_cta_sched(CtaSched::RoundRobin);
        assert_eq!(r, p);
    }
}
