//! Exact Zipf sampling over a finite pool via cumulative-weight
//! inversion.
//!
//! Shared-data accesses in the GPU benchmark generators follow a Zipf
//! distribution: a few hot lines (kernel-wide constants, matrix tiles,
//! stencil halos) absorb most of the shared traffic, which is what makes
//! remote L1 copies likely — the inter-core-locality engine of the paper.

use clognet_rng::Rng;
use std::sync::Arc;

/// A sampled Zipf distribution over ranks `0..n` with exponent `s`.
/// Cheap to clone (the cumulative table is shared).
#[derive(Debug, Clone)]
pub struct Zipf {
    cum: Arc<Vec<f64>>,
}

impl Zipf {
    /// Build the table for `n` items with exponent `s` (`s = 0` is
    /// uniform; larger is more skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "empty pool");
        assert!(s >= 0.0 && s.is_finite(), "bad exponent {s}");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cum.push(total);
        }
        Zipf { cum: Arc::new(cum) }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Always false (the constructor rejects empty pools); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Draw a rank in `0..len()`, rank 0 being the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cum.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        self.cum.partition_point(|&c| c < x).min(self.cum.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clognet_rng::{SeedableRng, SmallRng};

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 0.8);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let hot = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
        // With s=1 over 1000 items, top-10 mass is ~39%.
        assert!(hot as f64 / n as f64 > 0.25, "top-10 mass {hot}/{n}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.1).abs() < 0.02, "uniform bucket off: {f}");
        }
    }

    #[test]
    fn clone_shares_table() {
        let z = Zipf::new(16, 0.5);
        let z2 = z.clone();
        assert_eq!(z.len(), z2.len());
        assert!(Arc::ptr_eq(&z.cum, &z2.cum));
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn empty_pool_panics() {
        Zipf::new(0, 1.0);
    }
}
