//! # clognet-workloads
//!
//! Deterministic synthetic workload generators standing in for the
//! paper's benchmark suites (CUDA SDK / GPGPU-sim / Rodinia / PolyBench
//! on the GPU side, PARSEC via Netrace on the CPU side), parameterized
//! per benchmark to reproduce the statistical properties the paper
//! reports: inter-core locality, miss-stream composition, write share,
//! injection intensity, and latency sensitivity. See `DESIGN.md` for the
//! substitution rationale.
//!
//! ## Example
//!
//! ```
//! use clognet_workloads::{gpu_benchmark, GpuStream};
//! use clognet_proto::CoreId;
//!
//! let hs = gpu_benchmark("HS").expect("Table II benchmark");
//! let mut stream = GpuStream::new(hs, CoreId(0), 40, 42);
//! let access = stream.next_access();
//! assert_eq!(access.addr.0 % 128, 0); // line-aligned
//! ```

pub mod cpu;
pub mod gpu;
pub mod pairings;
pub mod zipf;

pub use cpu::{cpu_benchmark, cpu_benchmarks, CpuProfile, CpuStream};
pub use gpu::{gpu_benchmark, gpu_benchmarks, GpuProfile, GpuStream, MemAccess};
pub use pairings::{all_workloads, Pairing, TABLE2};
pub use zipf::Zipf;
