//! Randomized tests for the workload generators: determinism, address
//! hygiene, region separation, and statistical targets.
//!
//! Seeded with `clognet-rng` so every run explores the same cases.

use clognet_proto::{CoreId, CtaSched};
use clognet_rng::{Rng, SeedableRng, SmallRng};
use clognet_workloads::{cpu_benchmarks, gpu_benchmarks, CpuStream, GpuStream, Zipf};

/// Every GPU stream is deterministic in (bench, core, n_cores, seed)
/// and emits line-aligned addresses inside known regions.
#[test]
fn gpu_streams_deterministic_and_hygienic() {
    let mut rng = SmallRng::seed_from_u64(0x6E4_0001);
    for _case in 0..33 {
        let bench_ix = rng.gen_range(0..11usize);
        let core = rng.gen_range(0..40u16);
        let seed = rng.gen_range(0..64u64);
        let p = gpu_benchmarks()[bench_ix].clone();
        let mut a = GpuStream::new(p.clone(), CoreId(core), 40, seed);
        let mut b = GpuStream::new(p, CoreId(core), 40, seed);
        for _ in 0..300 {
            let x = a.next_access();
            let y = b.next_access();
            assert_eq!(x, y);
            assert_eq!(x.addr.0 % 128, 0, "unaligned {}", x.addr);
            // Addresses stay inside the defined regions.
            let ad = x.addr.0;
            let in_private = (0x2000_0000_0000..0x3000_0000_0000).contains(&ad);
            let in_output = (0x3000_0000_0000..0x4000_0000_0000).contains(&ad);
            let in_hot = (0x4000_0000_0000..0x5000_0000_0000).contains(&ad);
            let in_tile = (0x5000_0000_0000..0x6000_0000_0000).contains(&ad);
            assert!(in_private || in_output || in_hot || in_tile, "{ad:#x}");
            if x.write {
                assert!(in_output, "write outside output region: {ad:#x}");
            }
        }
    }
}

/// CPU streams never wander into GPU regions and respect per-core
/// separation.
#[test]
fn cpu_streams_stay_in_their_lane() {
    let mut rng = SmallRng::seed_from_u64(0x6E4_0002);
    for _case in 0..27 {
        let bench_ix = rng.gen_range(0..9usize);
        let core_a = rng.gen_range(0..16u16);
        let mut core_b = rng.gen_range(0..16u16);
        if core_a == core_b {
            core_b = (core_b + 1) % 16;
        }
        let seed = rng.gen_range(0..64u64);
        let p = cpu_benchmarks()[bench_ix].clone();
        let mut a = CpuStream::new(p.clone(), CoreId(core_a), seed);
        let mut b = CpuStream::new(p, CoreId(core_b), seed);
        let la: std::collections::HashSet<u64> = (0..500).map(|_| a.next_access().addr.0).collect();
        let lb: std::collections::HashSet<u64> = (0..500).map(|_| b.next_access().addr.0).collect();
        assert!(la.is_disjoint(&lb), "CPU cores share addresses");
        for &ad in la.iter().chain(lb.iter()) {
            assert!(ad < 0x2000_0000_0000, "CPU address in GPU region {ad:#x}");
            assert_eq!(ad % 64, 0, "unaligned CPU access");
        }
    }
}

/// Distributed CTA scheduling never increases halo traffic and never
/// decreases private reuse, for any benchmark.
#[test]
fn distributed_cta_is_locality_monotone() {
    for bench_ix in 0..11 {
        let p = gpu_benchmarks()[bench_ix].clone();
        let d = p.clone().with_cta_sched(CtaSched::Distributed);
        assert!(d.halo_fraction <= p.halo_fraction);
        assert!(d.private_reuse >= p.private_reuse);
        assert_eq!(p.clone().with_cta_sched(CtaSched::RoundRobin), p);
    }
}

/// The Zipf sampler is in-range and monotone: lower ranks are drawn at
/// least as often as (significantly) higher ranks.
#[test]
fn zipf_is_ranked() {
    let mut outer = SmallRng::seed_from_u64(0x6E4_0003);
    for _case in 0..12 {
        let n = outer.gen_range(2..200usize);
        let s = outer.gen_range(0.3..1.4);
        let z = Zipf::new(n, s);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = vec![0u32; n];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!(k < n);
            counts[k] += 1;
        }
        // Head beats deep tail (allow sampling noise by comparing rank 0
        // to the last quartile average).
        let tail_avg: f64 = counts[(3 * n / 4).max(1)..]
            .iter()
            .map(|&c| c as f64)
            .sum::<f64>()
            / (n - (3 * n / 4).max(1)) as f64;
        assert!(
            counts[0] as f64 >= tail_avg,
            "rank0 {} < tail {tail_avg}",
            counts[0]
        );
    }
}

#[test]
fn tile_partitioning_covers_all_cores() {
    // Every core's tile accesses stay inside [tile*size, (tile+1)*size)
    // for its own and adjacent tiles only — across all benchmarks.
    for p in gpu_benchmarks() {
        let n = 40usize;
        let mut s = GpuStream::new(p.clone(), CoreId(7), n, 3);
        let tl = s.tile_lines();
        let base = 0x5000_0000_0000u64 / 128;
        for _ in 0..5_000 {
            let l = s.next_access().addr.0 / 128;
            if (base..base + n as u64 * tl).contains(&l) {
                let tile = ((l - base) / tl) as usize;
                assert!(
                    [6, 7, 8].contains(&tile),
                    "{}: core 7 touched tile {tile}",
                    p.name
                );
            }
        }
    }
}
