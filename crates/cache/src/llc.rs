//! An LLC slice with Delegated-Replies core pointers.
//!
//! Each memory node owns one slice of the shared last-level cache. On
//! top of the plain tag array, every resident line carries a *core
//! pointer*: the GPU core that last accessed it (6 bits for 40 cores in
//! the paper; 0.08 mm² total). The pointer drives speculative
//! delegation: an LLC hit whose pointer names a different GPU core is
//! *delegatable* to that core.
//!
//! Pointer maintenance (Section IV, "Coherence implications"):
//! * updated to the requester on every GPU read access and fill;
//! * invalidated on writes, so later readers get the fresh copy from the
//!   LLC rather than a stale forward;
//! * invalidated en masse when a core flushes its L1 (software
//!   coherence at kernel boundaries).

use crate::set_assoc::{CacheStats, Evicted, SetAssocCache};
use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{CacheGeometry, CoreId, LineAddr};

/// The result of an LLC lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcAccess {
    /// Hit; carries the *previous* core pointer (before this access
    /// updated it) — `Some(core)` makes the reply delegatable to `core`
    /// if `core` differs from the requester.
    Hit(Option<CoreId>),
    /// Miss; the line must be fetched from DRAM.
    Miss,
}

/// One slice of the shared LLC.
#[derive(Debug, Clone)]
pub struct LlcSlice {
    cache: SetAssocCache<Option<CoreId>>,
    pointer_invalidations: u64,
}

impl LlcSlice {
    /// Build an empty slice.
    pub fn new(geom: CacheGeometry) -> Self {
        LlcSlice {
            cache: SetAssocCache::new(geom),
            pointer_invalidations: 0,
        }
    }

    /// Tag-array statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Total pointer invalidations (writes + flushes), for the
    /// coherence-overhead accounting.
    pub fn pointer_invalidations(&self) -> u64 {
        self.pointer_invalidations
    }

    /// Serialize the slice's mutable state (tag array with core
    /// pointers, plus the pointer-invalidation counter).
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.cache.save_state(w, |w, meta| match meta {
            Some(c) => {
                w.bool(true);
                w.u16(c.0);
            }
            None => w.bool(false),
        });
        w.u64(self.pointer_invalidations);
    }

    /// Overlay state captured by [`LlcSlice::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cache.load_state(r, |r| {
            Ok(if r.bool()? {
                Some(CoreId(r.u16()?))
            } else {
                None
            })
        })?;
        self.pointer_invalidations = r.u64()?;
        Ok(())
    }

    /// Read access from a GPU core: on hit, returns the previous pointer
    /// and repoints the line at `from`.
    pub fn read_gpu(&mut self, line: LineAddr, from: CoreId) -> LlcAccess {
        if self.cache.access(line) {
            let meta = self.cache.meta_mut(line).expect("hit");
            let prev = *meta;
            *meta = Some(from);
            LlcAccess::Hit(prev)
        } else {
            LlcAccess::Miss
        }
    }

    /// Read access from the CPU domain: pointers are neither consulted
    /// nor updated (Delegated Replies stays inside the GPU coherence
    /// domain).
    pub fn read_cpu(&mut self, line: LineAddr) -> LlcAccess {
        if self.cache.access(line) {
            LlcAccess::Hit(None)
        } else {
            LlcAccess::Miss
        }
    }

    /// Write-through store: updates the line (filling on miss, as the
    /// paper's allocate-on-write LLC) and invalidates the core pointer so
    /// future readers receive the fresh copy from the LLC.
    pub fn write(&mut self, line: LineAddr) -> Option<Evicted<Option<CoreId>>> {
        if self.cache.access(line) {
            let meta = self.cache.meta_mut(line).expect("hit");
            if meta.is_some() {
                self.pointer_invalidations += 1;
            }
            *meta = None;
            self.cache.mark_dirty(line);
            None
        } else {
            let ev = self.cache.fill(line, None);
            self.cache.mark_dirty(line);
            ev
        }
    }

    /// Install a line fetched from DRAM, pointing it at the requesting
    /// GPU core (or no one, for CPU fills).
    pub fn fill(
        &mut self,
        line: LineAddr,
        accessor: Option<CoreId>,
    ) -> Option<Evicted<Option<CoreId>>> {
        self.cache.fill(line, accessor)
    }

    /// Repoint a resident line (used when a remote miss bounces back with
    /// the DNF bit: the LLC answers and repoints at the requester).
    pub fn repoint(&mut self, line: LineAddr, core: CoreId) -> bool {
        match self.cache.meta_mut(line) {
            Some(meta) => {
                *meta = Some(core);
                true
            }
            None => false,
        }
    }

    /// Current pointer of a resident line (None = absent or no pointer).
    pub fn pointer(&self, line: LineAddr) -> Option<CoreId> {
        self.cache.meta(line).copied().flatten()
    }

    /// Is the line resident? (no LRU side effects)
    pub fn probe(&self, line: LineAddr) -> bool {
        self.cache.probe(line)
    }

    /// Invalidate every pointer that names `core` — called when that core
    /// flushes its L1 at a kernel boundary. Returns how many pointers
    /// were dropped.
    pub fn invalidate_pointers_of(&mut self, core: CoreId) -> usize {
        let lines: Vec<LineAddr> = self
            .cache
            .iter()
            .filter(|(_, m)| **m == Some(core))
            .map(|(l, _)| l)
            .collect();
        for l in &lines {
            if let Some(meta) = self.cache.meta_mut(*l) {
                *meta = None;
            }
        }
        self.pointer_invalidations += lines.len() as u64;
        lines.len()
    }

    /// Lines resident in this slice.
    pub fn occupancy(&self) -> usize {
        self.cache.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice() -> LlcSlice {
        LlcSlice::new(CacheGeometry {
            capacity_bytes: 8 * 1024,
            ways: 4,
            line_bytes: 128,
        })
    }

    #[test]
    fn read_updates_pointer_and_returns_previous() {
        let mut s = slice();
        s.fill(LineAddr(1), Some(CoreId(3)));
        // Core 5 reads: previous pointer (core 3) is the delegation hint.
        assert_eq!(
            s.read_gpu(LineAddr(1), CoreId(5)),
            LlcAccess::Hit(Some(CoreId(3)))
        );
        assert_eq!(s.pointer(LineAddr(1)), Some(CoreId(5)));
        // Same core re-reads: pointer names itself, not delegatable.
        assert_eq!(
            s.read_gpu(LineAddr(1), CoreId(5)),
            LlcAccess::Hit(Some(CoreId(5)))
        );
    }

    #[test]
    fn miss_reports_miss() {
        let mut s = slice();
        assert_eq!(s.read_gpu(LineAddr(9), CoreId(0)), LlcAccess::Miss);
        assert_eq!(s.read_cpu(LineAddr(9)), LlcAccess::Miss);
    }

    #[test]
    fn write_invalidates_pointer() {
        let mut s = slice();
        s.fill(LineAddr(2), Some(CoreId(7)));
        s.write(LineAddr(2));
        assert_eq!(s.pointer(LineAddr(2)), None);
        assert_eq!(s.pointer_invalidations(), 1);
        // Next reader repoints and is NOT told to delegate anywhere.
        assert_eq!(s.read_gpu(LineAddr(2), CoreId(1)), LlcAccess::Hit(None));
        assert_eq!(s.pointer(LineAddr(2)), Some(CoreId(1)));
    }

    #[test]
    fn write_miss_allocates() {
        let mut s = slice();
        s.write(LineAddr(4));
        assert!(s.probe(LineAddr(4)));
        assert_eq!(s.pointer(LineAddr(4)), None);
    }

    #[test]
    fn cpu_reads_do_not_touch_pointers() {
        let mut s = slice();
        s.fill(LineAddr(3), Some(CoreId(2)));
        assert_eq!(s.read_cpu(LineAddr(3)), LlcAccess::Hit(None));
        assert_eq!(s.pointer(LineAddr(3)), Some(CoreId(2)));
    }

    #[test]
    fn flush_invalidates_all_pointers_of_core() {
        let mut s = slice();
        s.fill(LineAddr(1), Some(CoreId(1)));
        s.fill(LineAddr(2), Some(CoreId(1)));
        s.fill(LineAddr(3), Some(CoreId(2)));
        assert_eq!(s.invalidate_pointers_of(CoreId(1)), 2);
        assert_eq!(s.pointer(LineAddr(1)), None);
        assert_eq!(s.pointer(LineAddr(2)), None);
        assert_eq!(s.pointer(LineAddr(3)), Some(CoreId(2)));
        // Lines stay resident — only the pointers die.
        assert!(s.probe(LineAddr(1)));
    }

    #[test]
    fn repoint_on_dnf() {
        let mut s = slice();
        s.fill(LineAddr(8), Some(CoreId(4)));
        assert!(s.repoint(LineAddr(8), CoreId(9)));
        assert_eq!(s.pointer(LineAddr(8)), Some(CoreId(9)));
        assert!(!s.repoint(LineAddr(99), CoreId(9)));
    }
}
