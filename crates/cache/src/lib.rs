//! # clognet-cache
//!
//! Cache-hierarchy primitives for the `clognet` simulator: a generic
//! set-associative tag array with true-LRU replacement
//! ([`SetAssocCache`]), a merging MSHR file ([`MshrFile`]), and the LLC
//! slice with per-line *core pointers* ([`LlcSlice`]) — the 6-bit
//! last-accessor hint at the heart of Delegated Replies (74.5% average
//! hit rate in the paper).
//!
//! Only tags and metadata are modeled; the simulator never stores data
//! bytes.
//!
//! ## Example
//!
//! ```
//! use clognet_cache::{LlcAccess, LlcSlice};
//! use clognet_proto::{CacheGeometry, CoreId, LineAddr};
//!
//! let mut llc = LlcSlice::new(CacheGeometry {
//!     capacity_bytes: 1024 * 1024,
//!     ways: 16,
//!     line_bytes: 128,
//! });
//! llc.fill(LineAddr(0x42), Some(CoreId(3)));
//! // Core 7 hits a line last touched by core 3: delegatable to core 3.
//! assert_eq!(llc.read_gpu(LineAddr(0x42), CoreId(7)), LlcAccess::Hit(Some(CoreId(3))));
//! ```

pub mod llc;
pub mod mshr;
pub mod set_assoc;

pub use llc::{LlcAccess, LlcSlice};
pub use mshr::{MshrFile, MshrOutcome};
pub use set_assoc::{CacheStats, Evicted, SetAssocCache};
