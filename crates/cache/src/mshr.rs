//! Miss Status Holding Registers.
//!
//! An [`MshrFile`] tracks outstanding misses per line address and merges
//! secondary misses into the primary's target list. Delegated Replies
//! interacts with MSHRs twice: a *delayed hit* at a remote L1 appends a
//! remote target to the local MSHR's list (Section IV, outcome ii), and
//! the LLC core pointers are also kept for in-flight MSHR entries.

use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{FxHashMap, LineAddr};

/// Outcome of [`MshrFile::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// New primary miss: the caller must send a request downstream.
    Primary,
    /// Merged into an existing entry: no new downstream request.
    Merged,
    /// No MSHR entry available (structural stall).
    NoEntry,
    /// Entry exists but its target list is full (structural stall).
    NoTarget,
}

/// MSHR file with `capacity` entries and `max_targets` merged targets per
/// entry.
///
/// # Example
///
/// ```
/// use clognet_cache::{MshrFile, MshrOutcome};
/// use clognet_proto::LineAddr;
///
/// let mut m: MshrFile<u32> = MshrFile::new(2, 4);
/// assert_eq!(m.allocate(LineAddr(9), 100), MshrOutcome::Primary);
/// assert_eq!(m.allocate(LineAddr(9), 101), MshrOutcome::Merged);
/// assert_eq!(m.complete(LineAddr(9)), vec![100, 101]);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile<T> {
    entries: FxHashMap<LineAddr, Vec<T>>,
    capacity: usize,
    max_targets: usize,
}

impl<T> MshrFile<T> {
    /// Create an empty file.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `max_targets` is zero.
    pub fn new(capacity: usize, max_targets: usize) -> Self {
        assert!(capacity > 0 && max_targets > 0);
        let mut entries = FxHashMap::default();
        entries.reserve(capacity);
        MshrFile {
            entries,
            capacity,
            max_targets,
        }
    }

    /// Entries in flight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No outstanding misses?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free entries.
    pub fn available(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Is a miss to `line` already outstanding?
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Would [`Self::allocate`] for `line` merge rather than stall with
    /// [`MshrOutcome::NoTarget`]? Only meaningful when the entry exists;
    /// non-mutating (used by the fast-forward quiescence check).
    pub fn can_merge(&self, line: LineAddr) -> bool {
        self.entries
            .get(&line)
            .is_some_and(|targets| targets.len() < self.max_targets)
    }

    /// Try to track a miss to `line` for `target`.
    pub fn allocate(&mut self, line: LineAddr, target: T) -> MshrOutcome {
        if let Some(targets) = self.entries.get_mut(&line) {
            if targets.len() >= self.max_targets {
                return MshrOutcome::NoTarget;
            }
            targets.push(target);
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::NoEntry;
        }
        self.entries.insert(line, vec![target]);
        MshrOutcome::Primary
    }

    /// The miss data returned: release the entry and hand back all merged
    /// targets (primary first). Returns an empty vector if no entry
    /// exists (e.g. a stray reply after a flush).
    pub fn complete(&mut self, line: LineAddr) -> Vec<T> {
        self.entries.remove(&line).unwrap_or_default()
    }

    /// Iterate outstanding lines.
    pub fn lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.entries.keys().copied()
    }

    /// Serialize outstanding entries sorted by line address (hash-map
    /// iteration order must never reach the byte stream); `target`
    /// encodes each merged target in list order.
    pub fn save_state(&self, w: &mut SnapWriter, mut target: impl FnMut(&mut SnapWriter, &T)) {
        let mut keys: Vec<LineAddr> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        w.usize(keys.len());
        for k in keys {
            w.u64(k.0);
            let targets = &self.entries[&k];
            w.usize(targets.len());
            for t in targets {
                target(w, t);
            }
        }
    }

    /// Overlay state captured by [`MshrFile::save_state`] onto a file
    /// constructed with the same capacity limits.
    pub fn load_state(
        &mut self,
        r: &mut SnapReader<'_>,
        mut target: impl FnMut(&mut SnapReader<'_>) -> Result<T, SnapError>,
    ) -> Result<(), SnapError> {
        self.entries.clear();
        let n = r.usize()?;
        if n > self.capacity {
            return Err(SnapError::Corrupt("mshr entries exceed capacity"));
        }
        for _ in 0..n {
            let line = LineAddr(r.u64()?);
            let m = r.usize()?;
            if m > self.max_targets {
                return Err(SnapError::Corrupt("mshr targets exceed limit"));
            }
            let mut v = Vec::with_capacity(m);
            for _ in 0..m {
                v.push(target(r)?);
            }
            self.entries.insert(line, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_merge() {
        let mut m: MshrFile<&str> = MshrFile::new(4, 2);
        assert_eq!(m.allocate(LineAddr(1), "a"), MshrOutcome::Primary);
        assert_eq!(m.allocate(LineAddr(1), "b"), MshrOutcome::Merged);
        assert_eq!(m.allocate(LineAddr(1), "c"), MshrOutcome::NoTarget);
        assert_eq!(m.len(), 1);
        assert_eq!(m.complete(LineAddr(1)), vec!["a", "b"]);
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_limits_entries() {
        let mut m: MshrFile<u8> = MshrFile::new(2, 8);
        assert_eq!(m.allocate(LineAddr(1), 0), MshrOutcome::Primary);
        assert_eq!(m.allocate(LineAddr(2), 0), MshrOutcome::Primary);
        assert_eq!(m.allocate(LineAddr(3), 0), MshrOutcome::NoEntry);
        // Merging into an existing entry still works at capacity.
        assert_eq!(m.allocate(LineAddr(2), 1), MshrOutcome::Merged);
        assert_eq!(m.available(), 0);
        m.complete(LineAddr(1));
        assert_eq!(m.allocate(LineAddr(3), 0), MshrOutcome::Primary);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m: MshrFile<u8> = MshrFile::new(2, 2);
        assert!(m.complete(LineAddr(42)).is_empty());
    }

    #[test]
    fn contains_and_lines() {
        let mut m: MshrFile<u8> = MshrFile::new(4, 2);
        m.allocate(LineAddr(5), 0);
        assert!(m.contains(LineAddr(5)));
        assert!(!m.contains(LineAddr(6)));
        assert_eq!(m.lines().collect::<Vec<_>>(), vec![LineAddr(5)]);
    }

    #[test]
    fn can_merge_tracks_target_space() {
        let mut m: MshrFile<u8> = MshrFile::new(4, 2);
        assert!(!m.can_merge(LineAddr(1)), "no entry yet");
        m.allocate(LineAddr(1), 0);
        assert!(m.can_merge(LineAddr(1)));
        m.allocate(LineAddr(1), 1);
        assert!(!m.can_merge(LineAddr(1)), "target list full");
        assert_eq!(m.allocate(LineAddr(1), 2), MshrOutcome::NoTarget);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _: MshrFile<u8> = MshrFile::new(0, 1);
    }
}
