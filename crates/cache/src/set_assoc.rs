//! A set-associative cache tag array with true-LRU replacement and
//! per-line metadata.
//!
//! Only tags and metadata are modeled — the simulator never materializes
//! data bytes. The structure is generic over the per-line metadata `M`
//! (the LLC attaches the Delegated-Replies core pointer through it).

use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{CacheGeometry, LineAddr};

/// One cache line's bookkeeping.
#[derive(Debug, Clone)]
struct Line<M> {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
    meta: M,
}

/// A line evicted by [`SetAssocCache::fill`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted<M> {
    /// The victim's line address.
    pub line: LineAddr,
    /// Whether it was dirty (needs writeback under a write-back policy).
    pub dirty: bool,
    /// Its metadata.
    pub meta: M,
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Fills performed.
    pub fills: u64,
    /// Evictions caused by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]` (0 when no accesses).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative tag array with LRU replacement.
///
/// # Example
///
/// ```
/// use clognet_cache::SetAssocCache;
/// use clognet_proto::{CacheGeometry, LineAddr};
///
/// let mut c: SetAssocCache<()> = SetAssocCache::new(CacheGeometry {
///     capacity_bytes: 1024,
///     ways: 2,
///     line_bytes: 64,
/// });
/// assert!(!c.access(LineAddr(1)));
/// c.fill(LineAddr(1), ());
/// assert!(c.access(LineAddr(1)));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<M> {
    geom: CacheGeometry,
    n_sets: u64,
    sets: Vec<Vec<Line<M>>>,
    stamp: u64,
    stats: CacheStats,
}

impl<M> SetAssocCache<M> {
    /// Build an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn new(geom: CacheGeometry) -> Self {
        let n_sets = geom.sets();
        SetAssocCache {
            geom,
            n_sets,
            sets: (0..n_sets).map(|_| Vec::new()).collect(),
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zero the statistics (contents untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_ix(&self, line: LineAddr) -> usize {
        (line.0 % self.n_sets) as usize
    }

    fn tag(&self, line: LineAddr) -> u64 {
        line.0 / self.n_sets
    }

    /// Is the line present? Does not touch LRU state or statistics
    /// (used for oracle inter-core-locality measurements and RP probes).
    pub fn probe(&self, line: LineAddr) -> bool {
        let tag = self.tag(line);
        self.sets[self.set_ix(line)]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Look the line up, updating LRU order and hit/miss statistics.
    /// Returns `true` on hit.
    pub fn access(&mut self, line: LineAddr) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        let tag = self.tag(line);
        let set = self.set_ix(line);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            l.last_use = stamp;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Metadata of a resident line.
    pub fn meta(&self, line: LineAddr) -> Option<&M> {
        let tag = self.tag(line);
        self.sets[self.set_ix(line)]
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| &l.meta)
    }

    /// Mutable metadata of a resident line.
    pub fn meta_mut(&mut self, line: LineAddr) -> Option<&mut M> {
        let tag = self.tag(line);
        let set = self.set_ix(line);
        self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| &mut l.meta)
    }

    /// Mark a resident line dirty (write-back policies). Returns `false`
    /// if the line is absent.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let tag = self.tag(line);
        let set = self.set_ix(line);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            l.dirty = true;
            true
        } else {
            false
        }
    }

    /// Install a line (replacing the LRU victim if the set is full) and
    /// return the victim, if any. Filling a line that is already resident
    /// refreshes its metadata and LRU position instead.
    pub fn fill(&mut self, line: LineAddr, meta: M) -> Option<Evicted<M>> {
        self.stamp += 1;
        let stamp = self.stamp;
        let tag = self.tag(line);
        let set_ix = self.set_ix(line);
        let ways = self.geom.ways as usize;
        self.stats.fills += 1;
        let set = &mut self.sets[set_ix];
        if let Some(l) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.meta = meta;
            l.last_use = stamp;
            return None;
        }
        let fresh = Line {
            tag,
            valid: true,
            dirty: false,
            last_use: stamp,
            meta,
        };
        // Reuse an invalid way first.
        if let Some(l) = set.iter_mut().find(|l| !l.valid) {
            *l = fresh;
            return None;
        }
        if set.len() < ways {
            set.push(fresh);
            return None;
        }
        // Evict true-LRU.
        let (vix, _) = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.last_use)
            .expect("non-empty set");
        let victim = std::mem::replace(&mut set[vix], fresh);
        self.stats.evictions += 1;
        Some(Evicted {
            line: LineAddr(victim.tag * self.n_sets + set_ix as u64),
            dirty: victim.dirty,
            meta: victim.meta,
        })
    }

    /// Invalidate a line; returns its metadata if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<M>
    where
        M: Default,
    {
        let tag = self.tag(line);
        let set = self.set_ix(line);
        self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| {
                l.valid = false;
                std::mem::take(&mut l.meta)
            })
    }

    /// Invalidate everything (GPU software-coherence flush at kernel
    /// boundaries). Returns the number of lines dropped.
    pub fn flush(&mut self) -> usize {
        let mut n = 0;
        for set in &mut self.sets {
            for l in set.iter_mut() {
                if l.valid {
                    l.valid = false;
                    n += 1;
                }
            }
        }
        n
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|l| l.valid)
            .count()
    }

    /// Serialize the complete mutable state: stamp, statistics, and
    /// every set's lines *in way order* (way order is the first-minimum
    /// tiebreak of LRU eviction, so it must survive a round trip).
    /// `meta` encodes each line's metadata.
    pub fn save_state(&self, w: &mut SnapWriter, mut meta: impl FnMut(&mut SnapWriter, &M)) {
        w.u64(self.stamp);
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
        w.u64(self.stats.fills);
        w.u64(self.stats.evictions);
        w.usize(self.sets.len());
        for set in &self.sets {
            w.usize(set.len());
            for l in set {
                w.u64(l.tag);
                w.bool(l.valid);
                w.bool(l.dirty);
                w.u64(l.last_use);
                meta(w, &l.meta);
            }
        }
    }

    /// Overlay state captured by [`SetAssocCache::save_state`] onto a
    /// freshly-built cache of the same geometry.
    pub fn load_state(
        &mut self,
        r: &mut SnapReader<'_>,
        mut meta: impl FnMut(&mut SnapReader<'_>) -> Result<M, SnapError>,
    ) -> Result<(), SnapError> {
        self.stamp = r.u64()?;
        self.stats = CacheStats {
            hits: r.u64()?,
            misses: r.u64()?,
            fills: r.u64()?,
            evictions: r.u64()?,
        };
        if r.usize()? != self.sets.len() {
            return Err(SnapError::Corrupt("cache set count mismatch"));
        }
        for set in &mut self.sets {
            let n = r.usize()?;
            if n > self.geom.ways as usize {
                return Err(SnapError::Corrupt("cache set wider than ways"));
            }
            set.clear();
            for _ in 0..n {
                set.push(Line {
                    tag: r.u64()?,
                    valid: r.bool()?,
                    dirty: r.bool()?,
                    last_use: r.u64()?,
                    meta: meta(r)?,
                });
            }
        }
        Ok(())
    }

    /// Iterate resident line addresses with their metadata.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &M)> + '_ {
        self.sets.iter().enumerate().flat_map(move |(six, set)| {
            set.iter()
                .filter(|l| l.valid)
                .map(move |l| (LineAddr(l.tag * self.n_sets + six as u64), &l.meta))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<u32> {
        // 2 sets x 2 ways, 64 B lines
        SetAssocCache::new(CacheGeometry {
            capacity_bytes: 256,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert!(!c.access(LineAddr(4)));
        assert!(c.fill(LineAddr(4), 7).is_none());
        assert!(c.access(LineAddr(4)));
        assert_eq!(c.meta(LineAddr(4)), Some(&7));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // set 0 holds even lines; fill two ways.
        c.fill(LineAddr(0), 0);
        c.fill(LineAddr(2), 1);
        // touch line 0 so line 2 is LRU
        assert!(c.access(LineAddr(0)));
        let ev = c.fill(LineAddr(4), 2).expect("eviction");
        assert_eq!(ev.line, LineAddr(2));
        assert!(c.probe(LineAddr(0)));
        assert!(c.probe(LineAddr(4)));
        assert!(!c.probe(LineAddr(2)));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small();
        c.fill(LineAddr(0), 0);
        c.fill(LineAddr(2), 0);
        c.fill(LineAddr(4), 0); // evicts in set 0
        assert!(!c.probe(LineAddr(1)));
        c.fill(LineAddr(1), 9); // set 1 untouched by set-0 pressure
        assert!(c.probe(LineAddr(1)));
        assert_eq!(c.occupancy(), 3);
    }

    #[test]
    fn refill_refreshes_instead_of_duplicating() {
        let mut c = small();
        c.fill(LineAddr(0), 1);
        c.fill(LineAddr(0), 2);
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.meta(LineAddr(0)), Some(&2));
    }

    #[test]
    fn invalidate_removes_and_returns_meta() {
        let mut c = small();
        c.fill(LineAddr(6), 5);
        assert_eq!(c.invalidate(LineAddr(6)), Some(5));
        assert!(!c.probe(LineAddr(6)));
        assert_eq!(c.invalidate(LineAddr(6)), None);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small();
        c.fill(LineAddr(0), 0);
        c.fill(LineAddr(1), 0);
        c.fill(LineAddr(2), 0);
        assert_eq!(c.flush(), 3);
        assert_eq!(c.occupancy(), 0);
        assert!(!c.access(LineAddr(0)));
    }

    #[test]
    fn dirty_tracked_through_eviction() {
        let mut c = small();
        c.fill(LineAddr(0), 0);
        assert!(c.mark_dirty(LineAddr(0)));
        c.fill(LineAddr(2), 0);
        c.access(LineAddr(2));
        let ev = c.fill(LineAddr(4), 0).expect("evict");
        assert_eq!(ev.line, LineAddr(0));
        assert!(ev.dirty);
    }

    #[test]
    fn victim_line_address_reconstruction() {
        let mut c = small();
        // line 10: set = 10 % 2 = 0, tag = 5
        c.fill(LineAddr(10), 3);
        c.fill(LineAddr(12), 4);
        let ev = c.fill(LineAddr(14), 5).expect("evict");
        assert_eq!(ev.line, LineAddr(10));
        assert_eq!(ev.meta, 3);
    }

    #[test]
    fn iter_lists_resident_lines() {
        let mut c = small();
        c.fill(LineAddr(3), 30);
        c.fill(LineAddr(8), 80);
        let mut got: Vec<_> = c.iter().map(|(l, &m)| (l.0, m)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![(3, 30), (8, 80)]);
    }

    #[test]
    fn non_power_of_two_sets_work() {
        // The Table-I GPU L1: 48 KB, 4-way, 128 B lines => 96 sets.
        let mut c: SetAssocCache<()> = SetAssocCache::new(CacheGeometry {
            capacity_bytes: 48 * 1024,
            ways: 4,
            line_bytes: 128,
        });
        for i in 0..384 {
            c.fill(LineAddr(i), ());
        }
        assert_eq!(c.occupancy(), 384);
        c.fill(LineAddr(1000), ());
        assert_eq!(c.occupancy(), 384, "full cache stays full");
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = small();
        c.fill(LineAddr(0), 0);
        c.access(LineAddr(0));
        c.access(LineAddr(2));
        c.access(LineAddr(4));
        assert!((c.stats().miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
