//! Randomized model-based tests: the set-associative cache against a
//! reference model, LRU ordering, and MSHR invariants.
//!
//! Seeded with `clognet-rng` so every run explores the same cases —
//! deterministic, offline-friendly property coverage.

use clognet_cache::{MshrFile, MshrOutcome, SetAssocCache};
use clognet_proto::{CacheGeometry, LineAddr};
use clognet_rng::{Rng, SeedableRng, SmallRng};
use std::collections::HashMap;

/// A trivially-correct reference: per-set vectors ordered by recency.
struct RefCache {
    sets: HashMap<u64, Vec<u64>>, // most recent last
    n_sets: u64,
    ways: usize,
}

impl RefCache {
    fn new(n_sets: u64, ways: usize) -> Self {
        RefCache {
            sets: HashMap::new(),
            n_sets,
            ways,
        }
    }

    fn access(&mut self, line: u64) -> bool {
        let set = self.sets.entry(line % self.n_sets).or_default();
        if let Some(ix) = set.iter().position(|&l| l == line) {
            let l = set.remove(ix);
            set.push(l);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, line: u64) -> Option<u64> {
        let ways = self.ways;
        let set = self.sets.entry(line % self.n_sets).or_default();
        if let Some(ix) = set.iter().position(|&l| l == line) {
            let l = set.remove(ix);
            set.push(l);
            return None;
        }
        set.push(line);
        if set.len() > ways {
            Some(set.remove(0))
        } else {
            None
        }
    }

    fn invalidate(&mut self, line: u64) -> bool {
        let set = self.sets.entry(line % self.n_sets).or_default();
        if let Some(ix) = set.iter().position(|&l| l == line) {
            set.remove(ix);
            true
        } else {
            false
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64),
    Fill(u64),
    Invalidate(u64),
    Flush,
}

/// Draw an op with the same 8:8:2:1 weighting the old proptest
/// strategy used.
fn arb_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0..19u32) {
        0..=7 => Op::Access(rng.gen_range(0..256u64)),
        8..=15 => Op::Fill(rng.gen_range(0..256u64)),
        16..=17 => Op::Invalidate(rng.gen_range(0..256u64)),
        _ => Op::Flush,
    }
}

fn arb_ops(rng: &mut SmallRng, min: usize, max: usize) -> Vec<Op> {
    let n = rng.gen_range(min..max);
    (0..n).map(|_| arb_op(rng)).collect()
}

/// The tag array agrees with the reference model on every hit/miss and
/// every eviction, under arbitrary operation sequences.
#[test]
fn matches_reference_model() {
    let mut rng = SmallRng::seed_from_u64(0xCACE_0001);
    for case in 0..40 {
        let ops = arb_ops(&mut rng, 1, 400);
        // 16 sets x 4 ways of 64 B lines.
        let geom = CacheGeometry {
            capacity_bytes: 4096,
            ways: 4,
            line_bytes: 64,
        };
        let mut dut: SetAssocCache<()> = SetAssocCache::new(geom);
        let mut reference = RefCache::new(geom.sets(), 4);
        for op in ops {
            match op {
                Op::Access(l) => {
                    assert_eq!(
                        dut.access(LineAddr(l)),
                        reference.access(l),
                        "case {case}: access {l}"
                    );
                }
                Op::Fill(l) => {
                    let ev_dut = dut.fill(LineAddr(l), ()).map(|e| e.line.0);
                    let ev_ref = reference.fill(l);
                    assert_eq!(ev_dut, ev_ref, "case {case}: fill {l}");
                }
                Op::Invalidate(l) => {
                    assert_eq!(
                        dut.invalidate(LineAddr(l)).is_some(),
                        reference.invalidate(l),
                        "case {case}: invalidate {l}"
                    );
                }
                Op::Flush => {
                    dut.flush();
                    reference.sets.clear();
                }
            }
            // Presence must agree everywhere after every step.
            for l in 0..256u64 {
                assert_eq!(
                    dut.probe(LineAddr(l)),
                    reference
                        .sets
                        .get(&(l % reference.n_sets))
                        .is_some_and(|s| s.contains(&l)),
                    "case {case}: presence of {l} diverged"
                );
            }
        }
    }
}

/// Occupancy never exceeds capacity, and hits+misses equals accesses.
#[test]
fn capacity_and_counters() {
    let mut rng = SmallRng::seed_from_u64(0xCACE_0002);
    for _case in 0..40 {
        let ops = arb_ops(&mut rng, 1, 300);
        let geom = CacheGeometry {
            capacity_bytes: 2048,
            ways: 2,
            line_bytes: 64,
        };
        let mut c: SetAssocCache<u32> = SetAssocCache::new(geom);
        let mut accesses = 0u64;
        for op in ops {
            match op {
                Op::Access(l) => {
                    c.access(LineAddr(l));
                    accesses += 1;
                }
                Op::Fill(l) => {
                    c.fill(LineAddr(l), 0);
                }
                Op::Invalidate(l) => {
                    c.invalidate(LineAddr(l));
                }
                Op::Flush => {
                    c.flush();
                }
            }
            assert!(c.occupancy() as u64 <= geom.lines());
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, accesses);
    }
}

/// MSHR: outstanding entries never exceed capacity; merged targets come
/// back in insertion order; completion empties the entry.
#[test]
fn mshr_invariants() {
    let mut rng = SmallRng::seed_from_u64(0xCACE_0003);
    for case in 0..60 {
        let n_lines = rng.gen_range(1..120usize);
        let lines: Vec<u64> = (0..n_lines).map(|_| rng.gen_range(0..16u64)).collect();
        let cap = rng.gen_range(1..8usize);
        let max_targets = rng.gen_range(1..6usize);
        let mut m: MshrFile<usize> = MshrFile::new(cap, max_targets);
        let mut model: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, l) in lines.iter().enumerate() {
            let line = LineAddr(*l);
            match m.allocate(line, i) {
                MshrOutcome::Primary => {
                    assert!(!model.contains_key(l), "case {case}");
                    assert!(model.len() < cap, "case {case}");
                    model.insert(*l, vec![i]);
                }
                MshrOutcome::Merged => {
                    let t = model.get_mut(l).expect("merged into existing");
                    assert!(t.len() < max_targets, "case {case}");
                    t.push(i);
                }
                MshrOutcome::NoEntry => {
                    assert!(model.len() >= cap, "case {case}");
                    assert!(!model.contains_key(l), "case {case}");
                }
                MshrOutcome::NoTarget => {
                    assert_eq!(model.get(l).map(Vec::len), Some(max_targets), "case {case}");
                }
            }
            assert_eq!(m.len(), model.len());
            // Occasionally complete the oldest line.
            if i % 7 == 6 {
                if let Some(&k) = model.keys().next() {
                    let got = m.complete(LineAddr(k));
                    let want = model.remove(&k).expect("tracked");
                    assert_eq!(got, want, "targets must preserve order");
                }
            }
        }
    }
}
