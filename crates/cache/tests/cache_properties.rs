//! Property-based tests: the set-associative cache against a reference
//! model, LRU ordering, and MSHR invariants.

use clognet_cache::{MshrFile, MshrOutcome, SetAssocCache};
use clognet_proto::{CacheGeometry, LineAddr};
use proptest::prelude::*;
use std::collections::HashMap;

/// A trivially-correct reference: per-set vectors ordered by recency.
struct RefCache {
    sets: HashMap<u64, Vec<u64>>, // most recent last
    n_sets: u64,
    ways: usize,
}

impl RefCache {
    fn new(n_sets: u64, ways: usize) -> Self {
        RefCache {
            sets: HashMap::new(),
            n_sets,
            ways,
        }
    }

    fn access(&mut self, line: u64) -> bool {
        let set = self.sets.entry(line % self.n_sets).or_default();
        if let Some(ix) = set.iter().position(|&l| l == line) {
            let l = set.remove(ix);
            set.push(l);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, line: u64) -> Option<u64> {
        let ways = self.ways;
        let set = self.sets.entry(line % self.n_sets).or_default();
        if let Some(ix) = set.iter().position(|&l| l == line) {
            let l = set.remove(ix);
            set.push(l);
            return None;
        }
        set.push(line);
        if set.len() > ways {
            Some(set.remove(0))
        } else {
            None
        }
    }

    fn invalidate(&mut self, line: u64) -> bool {
        let set = self.sets.entry(line % self.n_sets).or_default();
        if let Some(ix) = set.iter().position(|&l| l == line) {
            set.remove(ix);
            true
        } else {
            false
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64),
    Fill(u64),
    Invalidate(u64),
    Flush,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u64..256).prop_map(Op::Access),
        8 => (0u64..256).prop_map(Op::Fill),
        2 => (0u64..256).prop_map(Op::Invalidate),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    /// The tag array agrees with the reference model on every hit/miss
    /// and every eviction, under arbitrary operation sequences.
    #[test]
    fn matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..400)) {
        // 16 sets x 4 ways of 64 B lines.
        let geom = CacheGeometry { capacity_bytes: 4096, ways: 4, line_bytes: 64 };
        let mut dut: SetAssocCache<()> = SetAssocCache::new(geom);
        let mut reference = RefCache::new(geom.sets(), 4);
        for op in ops {
            match op {
                Op::Access(l) => {
                    prop_assert_eq!(dut.access(LineAddr(l)), reference.access(l), "access {}", l);
                }
                Op::Fill(l) => {
                    let ev_dut = dut.fill(LineAddr(l), ()).map(|e| e.line.0);
                    let ev_ref = reference.fill(l);
                    prop_assert_eq!(ev_dut, ev_ref, "fill {}", l);
                }
                Op::Invalidate(l) => {
                    prop_assert_eq!(
                        dut.invalidate(LineAddr(l)).is_some(),
                        reference.invalidate(l),
                        "invalidate {}", l
                    );
                }
                Op::Flush => {
                    dut.flush();
                    reference.sets.clear();
                }
            }
            // Presence must agree everywhere after every step.
            for l in 0..256u64 {
                prop_assert_eq!(
                    dut.probe(LineAddr(l)),
                    reference
                        .sets
                        .get(&(l % reference.n_sets))
                        .is_some_and(|s| s.contains(&l)),
                    "presence of {} diverged", l
                );
            }
        }
    }

    /// Occupancy never exceeds capacity, and hits+misses equals accesses.
    #[test]
    fn capacity_and_counters(ops in proptest::collection::vec(arb_op(), 1..300)) {
        let geom = CacheGeometry { capacity_bytes: 2048, ways: 2, line_bytes: 64 };
        let mut c: SetAssocCache<u32> = SetAssocCache::new(geom);
        let mut accesses = 0u64;
        for op in ops {
            match op {
                Op::Access(l) => {
                    c.access(LineAddr(l));
                    accesses += 1;
                }
                Op::Fill(l) => {
                    c.fill(LineAddr(l), 0);
                }
                Op::Invalidate(l) => {
                    c.invalidate(LineAddr(l));
                }
                Op::Flush => {
                    c.flush();
                }
            }
            prop_assert!(c.occupancy() as u64 <= geom.lines());
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, accesses);
    }

    /// MSHR: outstanding entries never exceed capacity; merged targets
    /// come back in insertion order; completion empties the entry.
    #[test]
    fn mshr_invariants(
        lines in proptest::collection::vec(0u64..16, 1..120),
        cap in 1usize..8,
        max_targets in 1usize..6,
    ) {
        let mut m: MshrFile<usize> = MshrFile::new(cap, max_targets);
        let mut model: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, l) in lines.iter().enumerate() {
            let line = LineAddr(*l);
            match m.allocate(line, i) {
                MshrOutcome::Primary => {
                    prop_assert!(!model.contains_key(l));
                    prop_assert!(model.len() < cap);
                    model.insert(*l, vec![i]);
                }
                MshrOutcome::Merged => {
                    let t = model.get_mut(l).expect("merged into existing");
                    prop_assert!(t.len() < max_targets);
                    t.push(i);
                }
                MshrOutcome::NoEntry => {
                    prop_assert!(model.len() >= cap);
                    prop_assert!(!model.contains_key(l));
                }
                MshrOutcome::NoTarget => {
                    prop_assert_eq!(model.get(l).map(Vec::len), Some(max_targets));
                }
            }
            prop_assert_eq!(m.len(), model.len());
            // Occasionally complete the oldest line.
            if i % 7 == 6 {
                if let Some(&k) = model.keys().next() {
                    let got = m.complete(LineAddr(k));
                    let want = model.remove(&k).expect("tracked");
                    prop_assert_eq!(got, want, "targets must preserve order");
                }
            }
        }
    }
}
