//! Thread-per-job parallel runner for independent simulations.
//!
//! Every experiment in this repo — `clognet compare`, `clognet sweep`,
//! the figure harnesses — boils down to a batch of *independent*
//! (configuration, workload, scheme) simulations whose results are then
//! laid out in a table. Each simulation is single-threaded and owns all
//! of its state, so the batch is embarrassingly parallel; the only
//! requirements are that results come back **in submission order**
//! (tables and JSON output are order-sensitive) and that running with N
//! threads is bit-identical to running with one (each job carries its
//! own seeded PRNG; threads share nothing).
//!
//! Built on `std::thread::scope` only — no external crates. Jobs are
//! claimed from a shared atomic counter (work stealing by index), so a
//! slow job never stalls the queue behind it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f` over every element of `jobs`, using up to `threads` worker
/// threads, and return the results **in input order**.
///
/// With `threads <= 1` (or a single job) everything runs inline on the
/// caller's thread — no spawns, identical behavior, easy profiling.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn run_jobs<J, R, F>(jobs: Vec<J>, threads: usize, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(f).collect();
    }
    let workers = threads.min(n);
    // Jobs move into per-slot cells so each worker can take them by
    // index; results land in matching slots, preserving input order.
    let job_slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let result_slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = job_slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("job claimed twice");
                let r = f(job);
                *result_slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("job finished without a result")
        })
        .collect()
}

/// Thread count for parallel harnesses: `CLOGNET_THREADS` if set,
/// otherwise the machine's available parallelism (1 if unknown).
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("CLOGNET_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let jobs: Vec<u64> = (0..64).collect();
        let out = run_jobs(jobs.clone(), 8, |j| {
            // Make late jobs finish first to stress ordering.
            std::thread::sleep(std::time::Duration::from_micros(64 - j));
            j * 10
        });
        assert_eq!(out, jobs.iter().map(|j| j * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let jobs: Vec<u32> = (0..40).collect();
        let seq = run_jobs(jobs.clone(), 1, |j| j.wrapping_mul(2654435761));
        let par = run_jobs(jobs, 4, |j| j.wrapping_mul(2654435761));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_job() {
        let out: Vec<u32> = run_jobs(Vec::<u32>::new(), 4, |j| j);
        assert!(out.is_empty());
        assert_eq!(run_jobs(vec![7u32], 4, |j| j + 1), vec![8]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
