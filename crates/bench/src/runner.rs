//! Thread-per-job parallel runner for independent simulations.
//!
//! Every experiment in this repo — `clognet compare`, `clognet sweep`,
//! the figure harnesses — boils down to a batch of *independent*
//! (configuration, workload, scheme) simulations whose results are then
//! laid out in a table. Each simulation is single-threaded and owns all
//! of its state, so the batch is embarrassingly parallel; the only
//! requirements are that results come back **in submission order**
//! (tables and JSON output are order-sensitive) and that running with N
//! threads is bit-identical to running with one (each job carries its
//! own seeded PRNG; threads share nothing).
//!
//! Built on `std::thread` only — no external crates. Batch jobs are
//! claimed from a shared atomic counter (work stealing by index), so a
//! slow job never stalls the queue behind it.
//!
//! Two faces share the module: [`run_jobs`] for one-shot batches
//! (`compare`, `sweep`, the figure harnesses) and [`WorkerPool`] for
//! long-lived services (`clognet-serve`) that need a bounded queue,
//! admission control, and graceful drain.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Run `f` over every element of `jobs`, using up to `threads` worker
/// threads, and return the results **in input order**.
///
/// With `threads <= 1` (or a single job) everything runs inline on the
/// caller's thread — no spawns, identical behavior, easy profiling.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn run_jobs<J, R, F>(jobs: Vec<J>, threads: usize, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    run_jobs_with_state(jobs, threads, || (), |(), j| f(j))
}

/// [`run_jobs`] with per-worker state: each worker calls `init` once
/// when it starts and threads the value through every job it claims.
///
/// This is the hook batch harnesses use to amortize a per-worker
/// resource — a scratch buffer, a network connection — across jobs
/// instead of paying its construction per job. Determinism is
/// unaffected as long as `f`'s *result* does not depend on the state's
/// history (reuse a cleared buffer, not accumulated contents): results
/// still come back in submission order whatever worker ran them.
///
/// With `threads <= 1` (or a single job) one state is built and
/// everything runs inline on the caller's thread.
///
/// # Panics
///
/// Propagates a panic from any job after the scope joins.
pub fn run_jobs_with_state<J, R, S, I, F>(jobs: Vec<J>, threads: usize, init: I, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, J) -> R + Sync,
{
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        let mut state = init();
        return jobs.into_iter().map(|j| f(&mut state, j)).collect();
    }
    let workers = threads.min(n);
    // Jobs move into per-slot cells so each worker can take them by
    // index; results land in matching slots, preserving input order.
    let job_slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let result_slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = job_slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    let r = f(&mut state, job);
                    *result_slots[i].lock().expect("result slot poisoned") = Some(r);
                }
            });
        }
    });
    result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("job finished without a result")
        })
        .collect()
}

/// A job queued into a [`WorkerPool`]: the payload plus the one-shot
/// channel its result is delivered on.
type PooledJob<J, R> = (J, mpsc::Sender<R>);

/// Rejection returned by [`WorkerPool::try_submit`] when the bounded
/// queue is full — the admission-control signal a service layers its
/// `overloaded` response on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

/// A persistent, bounded worker pool for long-lived services.
///
/// [`run_jobs`] is the batch face of this module: spawn, drain, join.
/// A service like `clognet-serve` instead needs workers that outlive
/// any one request, a **bounded** queue whose overflow is observable
/// (admission control, not back-pressure by blocking), and per-worker
/// utilization accounting. Jobs are closed over by a shared handler
/// function fixed at construction; each submission returns a one-shot
/// receiver for that job's result, so results route back to the
/// submitting connection rather than to a batch collector.
///
/// Determinism: workers share nothing but the handler, and every job
/// carries its own seeded state (a `System` is built per job), so a
/// result is a pure function of its job — identical to running the
/// same job inline, regardless of queue position or worker count.
pub struct WorkerPool<J: Send + 'static, R: Send + 'static> {
    tx: Option<mpsc::SyncSender<PooledJob<J, R>>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Jobs accepted but not yet finished (queued + running).
    depth: Arc<AtomicUsize>,
    /// Per-worker busy time in nanoseconds.
    busy_ns: Arc<Vec<AtomicU64>>,
    started: Instant,
}

impl<J: Send + 'static, R: Send + 'static> WorkerPool<J, R> {
    /// Spawn `threads` workers that run `handler` over submitted jobs;
    /// at most `queue_cap` jobs may be queued awaiting a worker (jobs
    /// already claimed by a worker do not count against the cap).
    pub fn new<F>(threads: usize, queue_cap: usize, handler: F) -> Self
    where
        F: Fn(J) -> R + Send + Sync + 'static,
    {
        let threads = threads.max(1);
        let (tx, rx) = mpsc::sync_channel::<PooledJob<J, R>>(queue_cap.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handler = Arc::new(handler);
        let depth = Arc::new(AtomicUsize::new(0));
        let busy_ns: Arc<Vec<AtomicU64>> =
            Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
        let workers = (0..threads)
            .map(|w| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let depth = Arc::clone(&depth);
                let busy_ns = Arc::clone(&busy_ns);
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only while claiming.
                    let claimed = rx.lock().expect("pool receiver poisoned").recv();
                    let Ok((job, reply)) = claimed else {
                        break; // Pool dropped its sender: drain complete.
                    };
                    let start = Instant::now();
                    let result = handler(job);
                    busy_ns[w].fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    depth.fetch_sub(1, Ordering::Relaxed);
                    // The submitter may have given up (timeout); a dead
                    // receiver is not the pool's problem.
                    let _ = reply.send(result);
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            depth,
            busy_ns,
            started: Instant::now(),
        }
    }

    /// Submit a job without blocking. On acceptance returns the
    /// receiver the result will arrive on; on a full queue returns
    /// [`QueueFull`] immediately.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when `queue_cap` jobs are already waiting.
    pub fn try_submit(&self, job: J) -> Result<mpsc::Receiver<R>, QueueFull> {
        let (reply_tx, reply_rx) = mpsc::channel();
        let tx = self.tx.as_ref().expect("pool already shut down");
        self.depth.fetch_add(1, Ordering::Relaxed);
        match tx.try_send((job, reply_tx)) {
            Ok(()) => Ok(reply_rx),
            Err(mpsc::TrySendError::Full(_)) | Err(mpsc::TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err(QueueFull)
            }
        }
    }

    /// Jobs accepted but not yet finished (queued plus running).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Per-worker utilization since the pool started: fraction of
    /// wall-clock time each worker spent executing jobs, in `[0, 1]`.
    pub fn utilization(&self) -> Vec<f64> {
        let elapsed = self.started.elapsed().as_nanos() as f64;
        self.busy_ns
            .iter()
            .map(|b| {
                if elapsed > 0.0 {
                    (b.load(Ordering::Relaxed) as f64 / elapsed).min(1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Graceful drain: stop accepting, finish every queued job, join
    /// all workers. Queued jobs still deliver their results.
    pub fn shutdown(mut self) {
        drop(self.tx.take()); // Workers exit once the queue runs dry.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Run `f` once and return its result with the wall-clock seconds it
/// took — the timing idiom every throughput leg (bench, serve smoke,
/// cluster-bench) shares.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Thread count for parallel harnesses: `CLOGNET_THREADS` if set,
/// otherwise the machine's available parallelism (1 if unknown).
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("CLOGNET_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let jobs: Vec<u64> = (0..64).collect();
        let out = run_jobs(jobs.clone(), 8, |j| {
            // Make late jobs finish first to stress ordering.
            std::thread::sleep(std::time::Duration::from_micros(64 - j));
            j * 10
        });
        assert_eq!(out, jobs.iter().map(|j| j * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let jobs: Vec<u32> = (0..40).collect();
        let seq = run_jobs(jobs.clone(), 1, |j| j.wrapping_mul(2654435761));
        let par = run_jobs(jobs, 4, |j| j.wrapping_mul(2654435761));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_job() {
        let out: Vec<u32> = run_jobs(Vec::<u32>::new(), 4, |j| j);
        assert!(out.is_empty());
        assert_eq!(run_jobs(vec![7u32], 4, |j| j + 1), vec![8]);
    }

    #[test]
    fn with_state_builds_one_state_per_worker_and_reuses_it() {
        let inits = AtomicUsize::new(0);
        let jobs: Vec<u64> = (0..32).collect();
        let out = run_jobs_with_state(
            jobs,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u64>::with_capacity(64)
            },
            |scratch, j| {
                // A well-behaved job clears the scratch rather than
                // depending on what the previous job left behind.
                scratch.clear();
                scratch.extend(0..=j);
                scratch.iter().sum::<u64>()
            },
        );
        assert_eq!(out, (0..32).map(|j| j * (j + 1) / 2).collect::<Vec<_>>());
        let built = inits.load(Ordering::Relaxed);
        assert!(
            (1..=4).contains(&built),
            "one state per worker, not per job (built {built})"
        );
    }

    #[test]
    fn with_state_inline_path_matches_parallel() {
        let jobs: Vec<u32> = (0..24).collect();
        let run = |threads| {
            run_jobs_with_state(jobs.clone(), threads, String::new, |buf: &mut String, j| {
                buf.clear();
                use std::fmt::Write;
                write!(buf, "{j:04}").unwrap();
                buf.clone()
            })
        };
        assert_eq!(run(1), run(5));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn pool_runs_jobs_and_routes_results_back() {
        let pool: WorkerPool<u64, u64> = WorkerPool::new(4, 32, |j| j * 3);
        let rxs: Vec<_> = (0..32u64)
            .map(|j| pool.try_submit(j).expect("queue has room"))
            .collect();
        for (j, rx) in rxs.into_iter().enumerate() {
            assert_eq!(rx.recv().unwrap(), j as u64 * 3);
        }
        pool.shutdown();
    }

    #[test]
    fn pool_rejects_when_queue_is_full() {
        // One worker stuck on a slow job; capacity-1 queue fills after
        // one more submission.
        let claimed = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(AtomicUsize::new(0));
        let (c, r) = (Arc::clone(&claimed), Arc::clone(&release));
        let pool: WorkerPool<u64, u64> = WorkerPool::new(1, 1, move |j| {
            if j == 0 {
                c.store(1, Ordering::SeqCst);
                while r.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            j
        });
        let first = pool.try_submit(0).expect("accepted");
        // Wait until the worker has claimed job 0, emptying the queue.
        while claimed.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let second = pool.try_submit(1).expect("queued");
        // Queue now holds job 1; the next submission must bounce.
        assert!(matches!(pool.try_submit(2), Err(QueueFull)));
        release.store(1, Ordering::SeqCst);
        assert_eq!(first.recv().unwrap(), 0);
        assert_eq!(second.recv().unwrap(), 1);
        pool.shutdown();
    }

    #[test]
    fn pool_drains_queued_jobs_on_shutdown() {
        let pool: WorkerPool<u64, u64> = WorkerPool::new(2, 64, |j| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            j + 1
        });
        let rxs: Vec<_> = (0..20u64)
            .map(|j| pool.try_submit(j).expect("queue has room"))
            .collect();
        pool.shutdown();
        // Every accepted job produced a result even though shutdown
        // raced the queue.
        for (j, rx) in rxs.into_iter().enumerate() {
            assert_eq!(rx.recv().unwrap(), j as u64 + 1);
        }
    }

    #[test]
    fn pool_reports_depth_and_utilization_shape() {
        let pool: WorkerPool<u64, u64> = WorkerPool::new(3, 8, |j| j);
        assert_eq!(pool.threads(), 3);
        let u = pool.utilization();
        assert_eq!(u.len(), 3);
        assert!(u.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let rx = pool.try_submit(9).unwrap();
        assert_eq!(rx.recv().unwrap(), 9);
        while pool.depth() > 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        pool.shutdown();
    }
}
