//! # clognet-bench
//!
//! Shared infrastructure for the experiment harnesses that regenerate
//! every table and figure of *Delegated Replies* (HPCA 2022). Each
//! figure is a separate `cargo bench` target (`harness = false`) under
//! `benches/`; running `cargo bench --workspace` reproduces the whole
//! evaluation section and prints the same rows/series the paper reports.
//!
//! Absolute numbers differ from the paper (the substrate is the clognet
//! simulator with synthetic workloads, not GPGPU-sim on a testbed); the
//! *shape* — who wins, by roughly what factor, where the crossovers fall
//! — is the reproduction target. `EXPERIMENTS.md` records
//! paper-vs-measured for every experiment.
//!
//! Run length is controlled by `CLOGNET_WARM` / `CLOGNET_RUN`
//! (cycles; defaults 10000 / 25000) so quick smoke runs and
//! high-fidelity runs use the same binaries.

use clognet_core::{Report, System};
use clognet_proto::SystemConfig;

pub mod runner;

/// Warmup cycles (statistics excluded), from `CLOGNET_WARM`.
pub fn warm_cycles() -> u64 {
    std::env::var("CLOGNET_WARM")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

/// Measured cycles, from `CLOGNET_RUN`.
pub fn run_cycles() -> u64 {
    std::env::var("CLOGNET_RUN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25_000)
}

/// Build, warm up, run, and report one workload under one configuration.
pub fn run_workload(cfg: SystemConfig, gpu: &str, cpu: &str) -> Report {
    let mut sys = System::new(cfg, gpu, cpu);
    sys.run(warm_cycles());
    sys.reset_stats();
    sys.run(run_cycles());
    sys.report()
}

/// The representative benchmark subset used by the wide sensitivity
/// sweeps (chosen to span high/low locality and read/write mixes).
pub const SENSITIVITY_BENCHES: [&str; 4] = ["HS", "3DCON", "MM", "BP"];

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Harmonic mean (the paper reports HM for some figures).
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Print a standard figure header.
pub fn banner(fig: &str, claim: &str) {
    println!();
    println!("=== {fig} ===");
    println!("paper: {claim}");
    println!(
        "(warm {} + run {} cycles per configuration)",
        warm_cycles(),
        run_cycles()
    );
}

/// Format a normalized series as a row.
pub fn row(label: &str, values: &[(String, f64)]) {
    print!("{label:<12}");
    for (name, v) in values {
        print!(" {name}={v:.3}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_hm() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn run_workload_produces_activity() {
        std::env::set_var("CLOGNET_WARM", "500");
        std::env::set_var("CLOGNET_RUN", "1500");
        let r = run_workload(SystemConfig::default(), "NN", "vips");
        assert!(r.gpu_ipc > 0.0);
        assert!(r.cycles >= 1500);
        std::env::remove_var("CLOGNET_WARM");
        std::env::remove_var("CLOGNET_RUN");
    }
}
