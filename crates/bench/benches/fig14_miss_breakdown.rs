//! Figure 14 — L1 miss breakdown under Delegated Replies: LLC-direct vs
//! remote hit vs remote miss, plus the pointer hit rate and the FRQ
//! same-line (merge-opportunity) fraction from Section IV.

use clognet_bench::{banner, run_workload};
use clognet_proto::{Scheme, SystemConfig};
use clognet_workloads::TABLE2;

fn main() {
    banner(
        "Figure 14",
        "54.8% of L1 misses forwarded to remote cores; 74.4% of those hit remotely; \
         3DCON/BT/LPS show remote misses; 4.8% of FRQ entries share a line",
    );
    println!(
        "{:<7} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "bench", "llc%", "rhit%", "rmiss%", "ptr-acc", "frq-dup"
    );
    let (mut fwd_sum, mut acc_sum, mut n) = (0.0, 0.0, 0);
    for p in TABLE2.iter() {
        let r = run_workload(
            SystemConfig::default().with_scheme(Scheme::DelegatedReplies),
            p.gpu,
            p.cpus[0],
        );
        let b = r.breakdown;
        let t = b.total().max(1) as f64;
        println!(
            "{:<7} {:>7.1}% {:>7.1}% {:>7.1}% {:>8.3} {:>7.1}%",
            p.gpu,
            b.llc_direct as f64 / t * 100.0,
            b.remote_hit as f64 / t * 100.0,
            b.remote_miss as f64 / t * 100.0,
            b.remote_hit_rate(),
            r.frq_same_line_fraction * 100.0
        );
        fwd_sum += b.forwarded_fraction();
        acc_sum += b.remote_hit_rate();
        n += 1;
    }
    println!(
        "AVG forwarded {:.1}% (paper 54.8%), remote-hit accuracy {:.3} (paper 0.744)",
        fwd_sum / n as f64 * 100.0,
        acc_sum / n as f64
    );
}
