//! Figure 19 — sensitivity of Delegated Replies to L1 size, LLC size,
//! NoC bandwidth, virtual networks, network size, and the memory-node
//! injection-buffer depth.

use clognet_bench::{banner, geomean, run_workload, SENSITIVITY_BENCHES};
use clognet_proto::{CacheGeometry, Scheme, SystemConfig, VirtualNetConfig};
use clognet_workloads::TABLE2;

fn dr_gain(mutate: impl Fn(&mut SystemConfig)) -> f64 {
    let mut ratios = Vec::new();
    for p in TABLE2
        .iter()
        .filter(|p| SENSITIVITY_BENCHES.contains(&p.gpu))
    {
        let mk = |scheme| {
            let mut cfg = SystemConfig::default().with_scheme(scheme);
            mutate(&mut cfg);
            cfg
        };
        let b = run_workload(mk(Scheme::Baseline), p.gpu, p.cpus[0]);
        let d = run_workload(mk(Scheme::DelegatedReplies), p.gpu, p.cpus[0]);
        ratios.push(d.gpu_ipc / b.gpu_ipc);
    }
    geomean(&ratios)
}

fn main() {
    banner(
        "Figure 19",
        "DR helps across the whole design space: more for small L1s and narrow NoCs, \
         insensitive to LLC size and injection-buffer depth",
    );
    println!("-- L1 size (paper: 22.9% @16KB .. 30.2% @64KB)");
    for kb in [16u64, 48, 64] {
        let g = dr_gain(|c| {
            c.gpu.l1 = CacheGeometry {
                capacity_bytes: kb * 1024,
                ways: 4,
                line_bytes: 128,
            }
        });
        println!("  L1 {kb:>2} KB: DR/base {g:.3}");
    }
    println!("-- LLC size (paper: 25.0-26.0% across sizes)");
    for mb in [4u64, 8, 16] {
        let g = dr_gain(|c| {
            c.llc.slice = CacheGeometry {
                capacity_bytes: mb * 1024 * 1024 / 8,
                ways: 16,
                line_bytes: 128,
            }
        });
        println!("  LLC {mb:>2} MB: DR/base {g:.3}");
    }
    println!("-- NoC channel width (paper: biggest gains when constrained; 13.9% even at 24B)");
    for bytes in [8u32, 16, 24] {
        let g = dr_gain(|c| c.noc.channel_bytes = bytes);
        println!("  {bytes:>2} B channels: DR/base {g:.3}");
    }
    println!("-- virtual networks on one physical network (paper: 23.4% @1VC, 26.9% @2VC)");
    for vcs in [1usize, 2] {
        let g = dr_gain(|c| {
            c.noc.virtual_nets = Some(VirtualNetConfig {
                request_vcs: vcs,
                reply_vcs: vcs,
            })
        });
        println!("  {vcs} VC per vnet: DR/base {g:.3}");
    }
    println!("-- mesh size, same node proportions (paper: stable gains)");
    for (w, h) in [(8usize, 8usize), (10, 10), (12, 12)] {
        let g = dr_gain(|c| {
            c.mesh_width = w;
            c.mesh_height = h;
            c.n_mem = h;
            c.n_cpu = 2 * h;
            c.n_gpu = w * h - 3 * h;
        });
        println!("  {w}x{h} mesh: DR/base {g:.3}");
    }
    println!("-- memory-node injection buffer (paper: insensitive)");
    for pkts in [8usize, 16, 32] {
        let g = dr_gain(|c| c.noc.mem_inj_buf_pkts = pkts);
        println!("  {pkts:>2} packets: DR/base {g:.3}");
    }
}
