//! Figure 5 — changing the NoC topology does not address clogging
//! (every topology still funnels replies through one memory-node link);
//! doubling NoC bandwidth helps but costs 2.5x area.
//! (a) GPU performance for crossbar/fbfly/dragonfly at 1x and 2x
//! bandwidth, normalized to the 1x mesh; (b) memory-node blocking rate.

use clognet_bench::{banner, geomean, run_workload};
use clognet_proto::{RoutingPolicy, SystemConfig, Topology};
use clognet_workloads::TABLE2;

fn main() {
    banner(
        "Figure 5",
        "topology changes barely move GPU perf (all stay blocked); 2x bandwidth helps",
    );
    let configs: Vec<(String, Topology, u32)> = Topology::ALL
        .iter()
        .flat_map(|&t| {
            [
                (t.label().to_string(), t, 16u32),
                (format!("{}-2x", t.label()), t, 32u32),
            ]
        })
        .collect();
    let mut base_ipc = vec![1.0; TABLE2.len()];
    println!("{:<12} {:>10} {:>10}", "config", "GPU perf", "blocked%");
    for (label, topo, width) in configs {
        let mut perf = Vec::new();
        let mut blocked = Vec::new();
        for (i, p) in TABLE2.iter().enumerate() {
            let mut cfg = SystemConfig::default();
            cfg.noc.topology = topo;
            cfg.noc.channel_bytes = width;
            if topo != Topology::Mesh {
                // Non-mesh topologies route minimally; CDR orders apply
                // to the mesh only.
                cfg.noc.routing_request = RoutingPolicy::DorXY;
                cfg.noc.routing_reply = RoutingPolicy::DorXY;
            }
            let r = run_workload(cfg, p.gpu, p.cpus[0]);
            if topo == Topology::Mesh && width == 16 {
                base_ipc[i] = r.gpu_ipc;
            }
            perf.push(r.gpu_ipc / base_ipc[i]);
            blocked.push(r.mem_blocked_rate);
        }
        println!(
            "{:<12} {:>10.3} {:>9.1}%",
            label,
            geomean(&perf),
            blocked.iter().sum::<f64>() / blocked.len() as f64 * 100.0
        );
    }
    println!("(paper: all 1x topologies ~1.0 and blocked; 2x configs clearly faster)");
}
