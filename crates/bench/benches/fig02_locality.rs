//! Figure 2 — inter-core locality: the fraction of local L1 misses whose
//! line is resident in at least one remote L1 at miss time, measured by
//! an oracle probe of all other tag arrays.

use clognet_bench::{banner, run_workload};
use clognet_proto::SystemConfig;
use clognet_workloads::TABLE2;

fn main() {
    banner(
        "Figure 2",
        "more than 57% of L1 misses are duplicated in remote L1s on average; \
         2DCON/HS/NN are highest",
    );
    println!("{:<7} {:>10} {:>10}", "bench", "locality", "L1miss");
    let mut sum = 0.0;
    for p in TABLE2.iter() {
        let r = run_workload(SystemConfig::default(), p.gpu, p.cpus[0]);
        println!(
            "{:<7} {:>9.1}% {:>9.1}%",
            p.gpu,
            r.oracle_locality * 100.0,
            r.l1_miss_rate * 100.0
        );
        sum += r.oracle_locality;
    }
    println!(
        "{:<7} {:>9.1}%   (paper: >57%)",
        "AVG",
        sum / TABLE2.len() as f64 * 100.0
    );
}
