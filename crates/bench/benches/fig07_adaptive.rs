//! Figure 7 — adaptive routing (DyXY, Footprint, HARE) versus the CDR
//! baseline. Counter-intuitively, adaptive routing does not help: the
//! request network has no unbalanced congestion to exploit, and in the
//! reply network every path from the memory nodes is clogged, so the
//! adaptive overhead is pure loss.

use clognet_bench::{banner, geomean, run_workload};
use clognet_proto::{RoutingPolicy, SystemConfig};
use clognet_workloads::TABLE2;

fn main() {
    banner("Figure 7", "adaptive routing reduces performance vs CDR");
    let policies = [
        ("CDR", None),
        ("DyXY", Some(RoutingPolicy::DyXY)),
        ("Footprint", Some(RoutingPolicy::Footprint)),
        ("HARE", Some(RoutingPolicy::Hare)),
    ];
    let mut base_ipc = vec![1.0; TABLE2.len()];
    println!("{:<10} {:>10}", "policy", "GPU perf");
    for (label, pol) in policies {
        let mut perf = Vec::new();
        for (i, p) in TABLE2.iter().enumerate() {
            let cfg = match pol {
                None => SystemConfig::default(),
                Some(pl) => SystemConfig::default().with_routing(pl, pl),
            };
            let r = run_workload(cfg, p.gpu, p.cpus[0]);
            if pol.is_none() {
                base_ipc[i] = r.gpu_ipc;
            }
            perf.push(r.gpu_ipc / base_ipc[i]);
        }
        println!("{:<10} {:>10.3}", label, geomean(&perf));
    }
    println!("(paper: adaptive schemes land below 1.0)");
}
