//! Table I — the simulated CPU-GPU architecture. Prints the active
//! configuration so every reproduction run documents its parameters.

use clognet_bench::banner;
use clognet_proto::SystemConfig;

fn main() {
    banner("Table I", "simulated CPU-GPU architecture parameters");
    let c = SystemConfig::default();
    println!(
        "GPU cores   : {} SIMT cores, {} warps/core, {} threads/warp, {} GTO schedulers",
        c.n_gpu, c.gpu.warps_per_core, c.gpu.threads_per_warp, c.gpu.issue_width
    );
    println!(
        "GPU L1      : {} KB, {}-way, LRU, {} B lines, {} MSHRs, {}-entry FRQ",
        c.gpu.l1.capacity_bytes / 1024,
        c.gpu.l1.ways,
        c.gpu.l1.line_bytes,
        c.gpu.mshrs,
        c.gpu.frq_entries
    );
    println!(
        "CPU cores   : {} cores, {} KB L1, {}-way, {} B lines, MESI-domain home-node coherence",
        c.n_cpu,
        c.cpu.l1.capacity_bytes / 1024,
        c.cpu.l1.ways,
        c.cpu.l1.line_bytes
    );
    println!(
        "Shared LLC  : {} MB total, {} MB/MC, {}-way, LRU, {} B lines",
        c.llc.slice.capacity_bytes * c.n_mem as u64 / (1024 * 1024),
        c.llc.slice.capacity_bytes / (1024 * 1024),
        c.llc.slice.ways,
        c.llc.slice.line_bytes
    );
    println!(
        "DRAM        : {} MCs, FR-FCFS (CPU priority), {} banks/MC, burst {} cy/line",
        c.n_mem, c.dram.banks, c.dram.burst
    );
    println!(
        "GDDR5       : tCL={} tRP={} tRC={} tRAS={} tRCD={} tRRD={} tCCD={} tWR={}",
        c.dram.t_cl,
        c.dram.t_rp,
        c.dram.t_rc,
        c.dram.t_ras,
        c.dram.t_rcd,
        c.dram.t_rrd,
        c.dram.t_ccd,
        c.dram.t_wr
    );
    println!(
        "NoC         : {}x{} 2D mesh, CDR routing ({}-req/{}-rep), iSLIP, CPU priority",
        c.mesh_width,
        c.mesh_height,
        c.noc.routing_request.label(),
        c.noc.routing_reply.label()
    );
    println!(
        "              {}-bit channels, {} VCs, {} flits/VC, {}-stage routers, {} pkt inj buf",
        c.noc.channel_bytes * 8,
        c.noc.vcs,
        c.noc.vc_buf_flits,
        c.noc.pipeline,
        c.noc.mem_inj_buf_pkts
    );
    // Bisection bandwidth: 8 column-cut links x 2 directions x width x 1.4GHz.
    let bisection = 2.0 * c.mesh_height as f64 * c.noc.channel_bytes as f64 * 1.4;
    println!("              bisection bandwidth {bisection:.0} GB/s (paper: 358 GB/s)");
    let layout = c.layout();
    println!("layout (Fig 1a):\n{}", layout.ascii());
}
