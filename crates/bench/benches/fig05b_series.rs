//! Figure 5b raw series — dump the per-epoch clogging signals behind
//! Figs. 5b/11/12 as CSV (one block per scheme, `#`-prefixed headers),
//! ready for external plotting: memory-node blocked fractions and
//! injection depths, reply-link utilization, delegation outcomes, and
//! GPU/CPU throughput, all on the paper's NN + canneal clogging pair.

use clognet_bench::banner;
use clognet_core::{System, TelemetryConfig};
use clognet_proto::{Scheme, SystemConfig};

fn main() {
    banner(
        "Figure 5b raw series",
        "per-epoch clogging signals as CSV, baseline vs Delegated Replies",
    );
    for scheme in [Scheme::Baseline, Scheme::DelegatedReplies] {
        let cfg = SystemConfig::default().with_scheme(scheme);
        let mut sys = System::new(cfg, "NN", "canneal");
        sys.enable_telemetry(TelemetryConfig::default());
        sys.run(20_000);
        sys.finish_telemetry();
        let t = sys.telemetry().expect("telemetry enabled");
        let episodes = t.session.episodes.episodes();
        let shed: u64 = episodes.iter().map(|e| e.flits_shed).sum();
        println!(
            "# scheme={} episodes={} blocked_cycles={} flits_shed={shed}",
            scheme.label(),
            episodes.len(),
            t.session.episodes.total_blocked_cycles(),
        );
        print!("{}", sys.export_series_csv().expect("telemetry enabled"));
    }
}
