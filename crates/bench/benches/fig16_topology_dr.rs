//! Figure 16 — Delegated Replies across NoC topologies, normalized to
//! each topology's own baseline: the benefit is topology-independent.

use clognet_bench::{banner, geomean, run_workload};
use clognet_proto::{RoutingPolicy, Scheme, SystemConfig, Topology};
use clognet_workloads::TABLE2;

fn main() {
    banner(
        "Figure 16",
        "DR gains 21.9-28.3% on fbfly/dragonfly/crossbar vs 25.8% on the mesh",
    );
    println!("{:<12} {:>10}", "topology", "DR/base");
    for topo in Topology::ALL {
        let mut ratios = Vec::new();
        for p in TABLE2.iter() {
            let mk = |scheme| {
                let mut cfg = SystemConfig::default().with_scheme(scheme);
                cfg.noc.topology = topo;
                if topo != Topology::Mesh {
                    cfg.noc.routing_request = RoutingPolicy::DorXY;
                    cfg.noc.routing_reply = RoutingPolicy::DorXY;
                }
                cfg
            };
            let b = run_workload(mk(Scheme::Baseline), p.gpu, p.cpus[0]);
            let d = run_workload(mk(Scheme::DelegatedReplies), p.gpu, p.cpus[0]);
            ratios.push(d.gpu_ipc / b.gpu_ipc);
        }
        println!("{:<12} {:>10.3}", topo.label(), geomean(&ratios));
    }
}
