//! Micro-benchmarks for the simulator substrates: router tick
//! throughput, cache lookups, DRAM scheduling, and full-system
//! cycles/second.
//!
//! Self-contained harness (no external benchmark framework, so the
//! workspace builds offline): each benchmark is warmed, then timed over
//! several runs and reported as the median ns/iter. Run with:
//!
//! ```text
//! cargo bench -p clognet-bench --features micro --bench micro
//! ```

use clognet_cache::SetAssocCache;
use clognet_core::System;
use clognet_dram::{DramController, DramRequest};
use clognet_noc::{ClassAssignment, NetParams, Network};
use clognet_proto::*;
use std::hint::black_box;
use std::time::Instant;

/// Time `f` over `iters` iterations, repeated `RUNS` times; report the
/// median run's ns/iter.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    const RUNS: usize = 5;
    for _ in 0..iters / 4 {
        f(); // warmup
    }
    let mut per_iter: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[RUNS / 2];
    let spread = (per_iter[RUNS - 1] - per_iter[0]) / median * 100.0;
    println!(
        "{name:<28} {median:>12.1} ns/iter  (spread {spread:>5.1}%, {iters} iters x {RUNS} runs)"
    );
}

fn bench_network() {
    let mut net = Network::new(NetParams {
        topology: Topology::Mesh,
        width: 8,
        height: 8,
        classes: ClassAssignment::Single(TrafficClass::Request, 2),
        vc_buf_flits: 4,
        pipeline: 4,
        routing_request: RoutingPolicy::DorYX,
        routing_reply: RoutingPolicy::DorXY,
        eject_buf_flits: 36,
        sa_iterations: 1,
    });
    let mut id = 0u64;
    bench("noc_tick_64node_mesh_loaded", 20_000, || {
        for s in [0u16, 9, 18, 27, 36, 45, 54, 63] {
            id += 1;
            let _ = net.try_inject(Packet::new(
                PacketId(id),
                NodeId(s),
                NodeId(63 - s),
                MsgKind::ReadReq,
                Priority::Gpu,
                Addr::new(id * 128),
                128,
                16,
                net.now(),
            ));
        }
        net.tick();
        for d in 0..64 {
            black_box(net.take_ejected(NodeId(d), usize::MAX));
        }
    });
}

fn bench_cache() {
    let mut l1: SetAssocCache<()> = SetAssocCache::new(CacheGeometry {
        capacity_bytes: 48 * 1024,
        ways: 4,
        line_bytes: 128,
    });
    for i in 0..384 {
        l1.fill(LineAddr(i), ());
    }
    let mut i = 0;
    bench("l1_access_hit", 2_000_000, || {
        i = (i + 7) % 384;
        black_box(l1.access(LineAddr(i)));
    });
}

fn bench_dram() {
    let mut mc = DramController::new(DramConfig::default(), 7);
    let mut t = 0u64;
    let mut now = 0;
    bench("dram_tick_loaded", 200_000, || {
        while mc.can_enqueue() {
            t += 1;
            let _ = mc.enqueue(
                DramRequest {
                    line: LineAddr(t.wrapping_mul(0x9E37_79B9)),
                    is_write: false,
                    cpu: false,
                    token: t,
                },
                now,
            );
        }
        now += 1;
        black_box(mc.tick(now));
    });
}

fn bench_system() {
    let cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    let mut sys = System::new(cfg, "HS", "bodytrack");
    sys.run(2_000); // warm
    bench("full_system_cycle_HS", 30_000, || sys.tick());
}

fn main() {
    bench_network();
    bench_cache();
    bench_dram();
    bench_system();
}
