//! Criterion micro-benchmarks for the simulator substrates: router tick
//! throughput, cache lookups, DRAM scheduling, and full-system
//! cycles/second.

use clognet_cache::SetAssocCache;
use clognet_core::System;
use clognet_dram::{DramController, DramRequest};
use clognet_noc::{ClassAssignment, NetParams, Network};
use clognet_proto::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_network(c: &mut Criterion) {
    c.bench_function("noc_tick_64node_mesh_loaded", |b| {
        let mut net = Network::new(NetParams {
            topology: Topology::Mesh,
            width: 8,
            height: 8,
            classes: ClassAssignment::Single(TrafficClass::Request, 2),
            vc_buf_flits: 4,
            pipeline: 4,
            routing_request: RoutingPolicy::DorYX,
            routing_reply: RoutingPolicy::DorXY,
            eject_buf_flits: 36,
            sa_iterations: 1,
        });
        let mut id = 0u64;
        b.iter(|| {
            for s in [0u16, 9, 18, 27, 36, 45, 54, 63] {
                id += 1;
                let _ = net.try_inject(Packet::new(
                    PacketId(id),
                    NodeId(s),
                    NodeId(63 - s),
                    MsgKind::ReadReq,
                    Priority::Gpu,
                    Addr::new(id * 128),
                    128,
                    16,
                    net.now(),
                ));
            }
            net.tick();
            for d in 0..64 {
                net.take_ejected(NodeId(d), usize::MAX);
            }
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l1_access_hit", |b| {
        let mut l1: SetAssocCache<()> = SetAssocCache::new(CacheGeometry {
            capacity_bytes: 48 * 1024,
            ways: 4,
            line_bytes: 128,
        });
        for i in 0..384 {
            l1.fill(LineAddr(i), ());
        }
        let mut i = 0;
        b.iter(|| {
            i = (i + 7) % 384;
            l1.access(LineAddr(i))
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_tick_loaded", |b| {
        let mut mc = DramController::new(DramConfig::default(), 7);
        let mut t = 0u64;
        let mut now = 0;
        b.iter(|| {
            while mc.can_enqueue() {
                t += 1;
                let _ = mc.enqueue(
                    DramRequest {
                        line: LineAddr(t.wrapping_mul(0x9E37_79B9)),
                        is_write: false,
                        cpu: false,
                        token: t,
                    },
                    now,
                );
            }
            now += 1;
            mc.tick(now)
        });
    });
}

fn bench_system(c: &mut Criterion) {
    c.bench_function("full_system_cycle_HS", |b| {
        let cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
        let mut sys = System::new(cfg, "HS", "bodytrack");
        sys.run(2_000); // warm
        b.iter(|| sys.tick());
    });
}

criterion_group!(
    benches,
    bench_network,
    bench_cache,
    bench_dram,
    bench_system
);
criterion_main!(benches);
