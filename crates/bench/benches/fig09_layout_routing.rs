//! Figure 9 — chip layout x routing-policy analysis (Section V).
//! The baseline layout with YX-XY CDR is the only configuration with
//! both good GPU and good CPU performance.

use clognet_bench::{banner, geomean, run_workload};
use clognet_proto::{LayoutKind, RoutingPolicy, SystemConfig};
use clognet_workloads::TABLE2;

fn main() {
    banner(
        "Figure 9",
        "baseline layout + YX-XY CDR gives both good GPU and CPU performance",
    );
    use RoutingPolicy::{DorXY, DorYX};
    let configs: [(&str, LayoutKind, RoutingPolicy, RoutingPolicy); 7] = [
        ("Base YX-XY", LayoutKind::Baseline, DorYX, DorXY),
        ("Base XY-XY", LayoutKind::Baseline, DorXY, DorXY),
        ("B XY-YX", LayoutKind::EdgeB, DorXY, DorYX),
        ("B XY-XY", LayoutKind::EdgeB, DorXY, DorXY),
        ("C XY-YX", LayoutKind::ClusteredC, DorXY, DorYX),
        ("C XY-XY", LayoutKind::ClusteredC, DorXY, DorXY),
        ("D XY-XY", LayoutKind::DistributedD, DorXY, DorXY),
    ];
    // Use a subset of workloads for the 7-config sweep.
    let picks: Vec<_> = TABLE2.iter().step_by(2).collect();
    let mut base: Vec<(f64, f64)> = vec![(1.0, 1.0); picks.len()];
    println!("{:<12} {:>10} {:>10}", "config", "GPU perf", "CPU perf");
    for (ci, (label, layout, req, rep)) in configs.iter().enumerate() {
        let mut gpu = Vec::new();
        let mut cpu = Vec::new();
        for (i, p) in picks.iter().enumerate() {
            let mut cfg = SystemConfig::default().with_routing(*req, *rep);
            cfg.layout = *layout;
            let r = run_workload(cfg, p.gpu, p.cpus[0]);
            if ci == 0 {
                base[i] = (r.gpu_ipc, r.cpu_performance);
            }
            gpu.push(r.gpu_ipc / base[i].0);
            cpu.push(r.cpu_performance / base[i].1);
        }
        println!(
            "{:<12} {:>10.3} {:>10.3}",
            label,
            geomean(&gpu),
            geomean(&cpu)
        );
    }
    println!("(paper: Base YX-XY = 1.0/1.0 reference; B/C trade GPU for CPU, D the reverse)");
}
