//! Table II — the heterogeneous CPU-GPU workload pairings.

use clognet_bench::banner;
use clognet_workloads::{cpu_benchmark, gpu_benchmark, TABLE2};

fn main() {
    banner("Table II", "33 heterogeneous CPU-GPU workloads");
    println!(
        "{:<7} {:<14} {:<14} {:<14} {:<14}",
        "GPU", "grid", "CPU #1", "CPU #2", "CPU #3"
    );
    for p in TABLE2.iter() {
        let g = gpu_benchmark(p.gpu).expect("Table II benchmark");
        println!(
            "{:<7} {:<14} {:<14} {:<14} {:<14}",
            p.gpu,
            format!("{:?}", g.grid_dim),
            p.cpus[0],
            p.cpus[1],
            p.cpus[2]
        );
        for c in p.cpus {
            assert!(cpu_benchmark(c).is_some());
        }
    }
}
