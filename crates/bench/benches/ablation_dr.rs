//! Ablation study of the Delegated-Replies design choices (beyond the
//! paper's figures; DESIGN.md calls these out):
//!
//! * trigger: delegate only when the reply network is blocked (the
//!   paper's design) vs delegate whenever a reply is delegatable;
//! * delayed hits: attach remote requests to in-flight MSHRs vs bounce
//!   them straight back to the LLC;
//! * FRQ depth: 2 / 8 (paper) / 32 entries;
//! * delegation rate: at most 1 vs 2 vs 4 conversions per node-cycle.

use clognet_bench::{banner, geomean, run_workload, SENSITIVITY_BENCHES};
use clognet_proto::{Scheme, SystemConfig};
use clognet_workloads::TABLE2;

fn gain(mutate: impl Fn(&mut SystemConfig)) -> f64 {
    let mut ratios = Vec::new();
    for p in TABLE2
        .iter()
        .filter(|p| SENSITIVITY_BENCHES.contains(&p.gpu))
    {
        let base = run_workload(SystemConfig::default(), p.gpu, p.cpus[0]);
        let mut cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
        mutate(&mut cfg);
        let d = run_workload(cfg, p.gpu, p.cpus[0]);
        ratios.push(d.gpu_ipc / base.gpu_ipc);
    }
    geomean(&ratios)
}

fn main() {
    banner(
        "Ablation: DR design choices",
        "the paper's design (delegate-on-block, delayed hits, 8-entry FRQ) \
         should dominate or match each ablated variant",
    );
    println!("{:<34} {:>10}", "variant", "DR/base");
    println!("{:<34} {:>10.3}", "paper design", gain(|_| {}));
    println!(
        "{:<34} {:>10.3}",
        "delegate always (no trigger)",
        gain(|c| c.dr.delegate_always = true)
    );
    println!(
        "{:<34} {:>10.3}",
        "no delayed hits (bounce to LLC)",
        gain(|c| c.dr.delayed_hits = false)
    );
    for frq in [2usize, 8, 32] {
        println!(
            "{:<34} {:>10.3}",
            format!("FRQ depth {frq}"),
            gain(move |c| c.gpu.frq_entries = frq)
        );
    }
    for rate in [1usize, 2, 4] {
        println!(
            "{:<34} {:>10.3}",
            format!("max {rate} delegations/node/cycle"),
            gain(move |c| c.dr.max_per_cycle = rate)
        );
    }
}
