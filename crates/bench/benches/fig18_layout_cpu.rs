//! Figure 18 — CPU performance improvement of Delegated Replies across
//! chip layouts: layouts B and D interleave CPU and GPU traffic, so
//! un-blocking the memory nodes matters even more there.

use clognet_bench::{banner, geomean, run_workload};
use clognet_proto::{LayoutKind, Scheme, SystemConfig};
use clognet_workloads::TABLE2;

fn main() {
    banner(
        "Figure 18",
        "DR improves CPU perf most on layouts B and D (13.4% / 20.9%) where \
         CPU-GPU interference is highest",
    );
    println!("{:<10} {:>10} {:>12}", "layout", "DR/base", "netlat ratio");
    for layout in LayoutKind::ALL {
        let (req, rep) = SystemConfig::best_routing_for(layout);
        let mut perf = Vec::new();
        let mut lat = Vec::new();
        for p in TABLE2.iter().step_by(2) {
            let mk = |scheme| {
                let mut cfg = SystemConfig::default()
                    .with_scheme(scheme)
                    .with_routing(req, rep);
                cfg.layout = layout;
                cfg
            };
            let b = run_workload(mk(Scheme::Baseline), p.gpu, p.cpus[0]);
            let d = run_workload(mk(Scheme::DelegatedReplies), p.gpu, p.cpus[0]);
            perf.push(d.cpu_performance / b.cpu_performance);
            lat.push(d.cpu_net_latency / b.cpu_net_latency);
        }
        println!(
            "{:<10} {:>10.3} {:>12.3}",
            layout.label(),
            geomean(&perf),
            geomean(&lat)
        );
    }
}
