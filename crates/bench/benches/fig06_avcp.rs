//! Figure 6 — Asymmetric VC Partitioning (AVCP): giving reply traffic
//! more VCs on a shared physical network. Ineffective, because the
//! limiting factor is the bandwidth of the clogged links, not the VC
//! count; write-heavy BP even loses (its request-side traffic starves).

use clognet_bench::{banner, harmonic_mean, run_workload};
use clognet_proto::{SystemConfig, VirtualNetConfig};
use clognet_workloads::TABLE2;

fn main() {
    banner(
        "Figure 6",
        "AVCP improves best case ~3%, HM unaffected; BP gets worse",
    );
    // Shared physical network, same aggregate VCs: symmetric 2+2 vs
    // asymmetric 1+3 (AVCP favours replies).
    let sym = VirtualNetConfig {
        request_vcs: 2,
        reply_vcs: 2,
    };
    let avcp = VirtualNetConfig {
        request_vcs: 1,
        reply_vcs: 3,
    };
    println!("{:<7} {:>10}", "bench", "AVCP/base");
    let mut ratios = Vec::new();
    for p in TABLE2.iter() {
        let mut cfg = SystemConfig::default();
        cfg.noc.virtual_nets = Some(sym);
        let base = run_workload(cfg, p.gpu, p.cpus[0]);
        let mut cfg = SystemConfig::default();
        cfg.noc.virtual_nets = Some(avcp);
        let a = run_workload(cfg, p.gpu, p.cpus[0]);
        let ratio = a.gpu_ipc / base.gpu_ipc;
        ratios.push(ratio);
        println!("{:<7} {:>10.3}", p.gpu, ratio);
    }
    println!(
        "{:<7} {:>10.3}  (paper: ~1.00)",
        "HM",
        harmonic_mean(&ratios)
    );
}
