//! Figure 12 — CPU network latency under Delegated Replies: draining the
//! memory-node injection buffers lets CPU requests enter and be
//! prioritized.

use clognet_bench::runner::{default_threads, run_jobs};
use clognet_bench::{banner, run_workload};
use clognet_proto::{Scheme, SystemConfig};
use clognet_workloads::{cpu_benchmarks, TABLE2};

fn main() {
    banner(
        "Figure 12",
        "DR reduces CPU network latency 44.2% avg (up to 59.7%)",
    );
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9}",
        "cpu bench", "base", "DR", "min", "max"
    );
    let mut jobs = Vec::new();
    for cb in cpu_benchmarks() {
        for p in TABLE2.iter().filter(|p| p.cpus.contains(&cb.name)) {
            jobs.push((SystemConfig::default(), p.gpu, cb.name));
            jobs.push((
                SystemConfig::default().with_scheme(Scheme::DelegatedReplies),
                p.gpu,
                cb.name,
            ));
        }
    }
    let reports = run_jobs(jobs, default_threads(), |(cfg, gpu, cpu)| {
        run_workload(cfg, gpu, cpu)
    });
    let mut it = reports.into_iter();
    for cb in cpu_benchmarks() {
        // Aggregate over the GPU workloads this CPU benchmark co-runs
        // with in Table II.
        let mut ratios = Vec::new();
        let mut base_lat = Vec::new();
        let mut dr_lat = Vec::new();
        for _ in TABLE2.iter().filter(|p| p.cpus.contains(&cb.name)) {
            let b = it.next().unwrap();
            let d = it.next().unwrap();
            base_lat.push(b.cpu_net_latency);
            dr_lat.push(d.cpu_net_latency);
            ratios.push(d.cpu_net_latency / b.cpu_net_latency);
        }
        if ratios.is_empty() {
            continue;
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{:<14} {:>9.1} {:>9.1} {:>9.3} {:>9.3}",
            cb.name,
            avg(&base_lat),
            avg(&dr_lat),
            ratios.iter().cloned().fold(f64::MAX, f64::min),
            ratios.iter().cloned().fold(0.0, f64::max)
        );
    }
    println!("(ratios below 1.0 = latency reduction; paper avg 0.56)");
}
