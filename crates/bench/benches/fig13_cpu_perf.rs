//! Figure 13 — CPU performance improvement: across workloads where GPU
//! traffic clogs the memory nodes, DR improves CPU performance by
//! freeing the blocked injection buffers.

use clognet_bench::runner::{default_threads, run_jobs};
use clognet_bench::{banner, run_workload};
use clognet_proto::{Scheme, SystemConfig};
use clognet_workloads::{cpu_benchmarks, TABLE2};

fn main() {
    banner(
        "Figure 13",
        "DR improves CPU performance 3.8% avg overall; 8.8% avg (up to 19.8%) on clogged workloads",
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "cpu bench", "DR/base", "min", "max"
    );
    let mut jobs = Vec::new();
    for cb in cpu_benchmarks() {
        for p in TABLE2.iter().filter(|p| p.cpus.contains(&cb.name)) {
            jobs.push((SystemConfig::default(), p.gpu, cb.name));
            jobs.push((
                SystemConfig::default().with_scheme(Scheme::DelegatedReplies),
                p.gpu,
                cb.name,
            ));
        }
    }
    let reports = run_jobs(jobs, default_threads(), |(cfg, gpu, cpu)| {
        run_workload(cfg, gpu, cpu)
    });
    let mut it = reports.into_iter();
    let mut clogged = Vec::new();
    let mut all = Vec::new();
    for cb in cpu_benchmarks() {
        let mut ratios = Vec::new();
        for _ in TABLE2.iter().filter(|p| p.cpus.contains(&cb.name)) {
            let b = it.next().unwrap();
            let d = it.next().unwrap();
            let ratio = d.cpu_performance / b.cpu_performance;
            ratios.push(ratio);
            all.push(ratio);
            if b.mem_blocked_rate > 0.3 {
                clogged.push(ratio);
            }
        }
        if ratios.is_empty() {
            continue;
        }
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>10.3}",
            cb.name,
            ratios.iter().sum::<f64>() / ratios.len() as f64,
            ratios.iter().cloned().fold(f64::MAX, f64::min),
            ratios.iter().cloned().fold(0.0, f64::max)
        );
    }
    println!(
        "AVG all workloads {:.3}; clogged (blocked>30%) {:.3} over {} workloads",
        all.iter().sum::<f64>() / all.len().max(1) as f64,
        clogged.iter().sum::<f64>() / clogged.len().max(1) as f64,
        clogged.len()
    );
}
