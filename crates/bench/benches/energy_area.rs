//! Section VII energy + Section III/IV area analysis: NoC area of the
//! baseline vs double-bandwidth mesh, the Delegated-Replies hardware
//! overhead, and dynamic/total energy per scheme.

use clognet_bench::{banner, run_workload};
use clognet_energy::{energy, DrArea, NetShape};
use clognet_proto::{Scheme, SystemConfig, Topology};
use clognet_workloads::TABLE2;

fn main() {
    banner(
        "Energy & area",
        "2x-bandwidth mesh costs 2.5x area (5.76 vs 2.27 mm2); DR adds 0.172 mm2 \
         (~5% of the 2x overhead); DR cuts total energy 13.6% (RP 7.4%), \
         NoC dynamic energy: DR -1.1%, RP +9.4%",
    );
    let mesh = |bytes| NetShape {
        topology: Topology::Mesh,
        width: 8,
        height: 8,
        channel_bytes: bytes,
        vcs: 2,
        vc_buf_flits: 4,
    };
    let base_area = 2.0 * mesh(16).area_mm2();
    let wide_area = 2.0 * mesh(32).area_mm2();
    println!("baseline dual mesh : {base_area:.2} mm2 (paper 2.27)");
    println!(
        "2x-bandwidth mesh  : {wide_area:.2} mm2 = {:.2}x (paper 5.76, 2.5x)",
        wide_area / base_area
    );
    let cfg = SystemConfig::default();
    let dr = DrArea::compute(cfg.n_gpu, cfg.n_mem, cfg.llc.slice, cfg.gpu.frq_entries);
    println!(
        "DR hardware        : pointers {:.3} + FRQs {:.3} = {:.3} mm2 ({:.1}% of the 2x increase)",
        dr.pointers_mm2,
        dr.frqs_mm2,
        dr.total_mm2(),
        dr.total_mm2() / (wide_area - base_area) * 100.0
    );
    // Energy: run a representative subset per scheme; normalize per
    // retired instruction so runtime reduction shows up.
    println!(
        "\n{:<10} {:>12} {:>12} {:>12}",
        "scheme", "dyn/instr", "total/instr", "vs base"
    );
    let mut base_total = 0.0;
    for scheme in [
        Scheme::Baseline,
        Scheme::DelegatedReplies,
        Scheme::rp_default(),
    ] {
        let mut dyn_e = 0.0;
        let mut tot_e = 0.0;
        for p in TABLE2.iter().step_by(3) {
            let r = run_workload(
                SystemConfig::default().with_scheme(scheme),
                p.gpu,
                p.cpus[0],
            );
            let rep = energy(r.flit_hops, r.channel_bytes, base_area, r.cycles);
            let instr = r.gpu_ipc * r.cycles as f64;
            dyn_e += rep.noc_dynamic_j / instr;
            tot_e += rep.total_j() / instr;
        }
        if scheme == Scheme::Baseline {
            base_total = tot_e;
        }
        println!(
            "{:<10} {:>12.3e} {:>12.3e} {:>11.1}%",
            scheme.label(),
            dyn_e,
            tot_e,
            (tot_e / base_total - 1.0) * 100.0
        );
    }
    println!("(negative = energy saved; savings come mostly from shorter execution time)");
}
