//! Figure 11 — received data rate per GPU core (flits/cycle): Delegated
//! Replies raises effective NoC bandwidth by moving reply traffic onto
//! inter-GPU links.

use clognet_bench::runner::{default_threads, run_jobs};
use clognet_bench::{banner, run_workload};
use clognet_proto::{Scheme, SystemConfig};
use clognet_workloads::TABLE2;

fn main() {
    banner(
        "Figure 11",
        "DR improves received data rate 26.5% avg (up to 70.9%); RP 11.9%",
    );
    println!(
        "{:<7} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "bench", "base", "DR", "RP", "DR/b", "RP/b"
    );
    let mut jobs = Vec::new();
    for p in TABLE2.iter() {
        jobs.push((SystemConfig::default(), p.gpu, p.cpus[0]));
        jobs.push((
            SystemConfig::default().with_scheme(Scheme::DelegatedReplies),
            p.gpu,
            p.cpus[0],
        ));
        jobs.push((
            SystemConfig::default().with_scheme(Scheme::rp_default()),
            p.gpu,
            p.cpus[0],
        ));
    }
    let reports = run_jobs(jobs, default_threads(), |(cfg, gpu, cpu)| {
        run_workload(cfg, gpu, cpu)
    });
    let mut it = reports.into_iter();
    let (mut dsum, mut rsum) = (0.0, 0.0);
    for p in TABLE2.iter() {
        let b = it.next().unwrap();
        let d = it.next().unwrap();
        let r = it.next().unwrap();
        println!(
            "{:<7} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            p.gpu,
            b.gpu_rx_rate,
            d.gpu_rx_rate,
            r.gpu_rx_rate,
            d.gpu_rx_rate / b.gpu_rx_rate,
            r.gpu_rx_rate / b.gpu_rx_rate
        );
        dsum += d.gpu_rx_rate / b.gpu_rx_rate;
        rsum += r.gpu_rx_rate / b.gpu_rx_rate;
    }
    let n = TABLE2.len() as f64;
    println!("AVG     DR/base {:.3}  RP/base {:.3}", dsum / n, rsum / n);
}
