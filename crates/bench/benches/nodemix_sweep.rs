//! Section VII node-mix sweep: vary CPU/GPU/memory-node counts on the
//! 64-node chip. Clogging — and therefore DR's benefit — grows with the
//! GPU:memory-node ratio.

use clognet_bench::{banner, geomean, run_workload, SENSITIVITY_BENCHES};
use clognet_proto::{Scheme, SystemConfig};
use clognet_workloads::TABLE2;

fn main() {
    banner(
        "Node mix (Section VII)",
        "30.5/25.8/22.6% with 8/16/24 CPUs; 38.2/30.5/10.7% with 4/8/16 memory nodes",
    );
    let mixes: [(&str, usize, usize, usize); 6] = [
        ("48G/8C/8M", 48, 8, 8),
        ("40G/16C/8M", 40, 16, 8),
        ("32G/24C/8M", 32, 24, 8),
        ("52G/8C/4M", 52, 8, 4),
        ("48G/8C/8M", 48, 8, 8),
        ("40G/8C/16M", 40, 8, 16),
    ];
    println!("{:<14} {:>10}", "mix", "DR/base");
    for (label, g, c, m) in mixes {
        let mut ratios = Vec::new();
        for p in TABLE2
            .iter()
            .filter(|p| SENSITIVITY_BENCHES.contains(&p.gpu))
        {
            let mk = |scheme| {
                let mut cfg = SystemConfig::default().with_scheme(scheme);
                cfg.n_gpu = g;
                cfg.n_cpu = c;
                cfg.n_mem = m;
                cfg
            };
            let b = run_workload(mk(Scheme::Baseline), p.gpu, p.cpus[0]);
            let d = run_workload(mk(Scheme::DelegatedReplies), p.gpu, p.cpus[0]);
            ratios.push(d.gpu_ipc / b.gpu_ipc);
        }
        println!("{:<14} {:>10.3}", label, geomean(&ratios));
    }
    println!("(fewer memory nodes / more GPU cores => more clogging => bigger DR gains)");
}
