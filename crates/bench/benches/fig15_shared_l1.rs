//! Figure 15 — Delegated Replies on top of inter-core-locality
//! optimizations: DC-L1 / DynEB shared L1s and distributed CTA
//! scheduling. Locality optimizations do not remove the clogging, so DR
//! still helps.

use clognet_bench::{banner, geomean, run_workload};
use clognet_proto::{CtaSched, L1Org, Scheme, SystemConfig};
use clognet_workloads::TABLE2;

fn main() {
    banner(
        "Figure 15",
        "DynEB+RR improves over baseline; DC-L1 helps SC/LUD but hurts NN/2DCON; \
         DR on DynEB adds 23.5% (RR) / 9.9% (distributed)",
    );
    let configs: [(&str, L1Org, CtaSched, Scheme); 7] = [
        (
            "Private",
            L1Org::Private,
            CtaSched::RoundRobin,
            Scheme::Baseline,
        ),
        ("DC-L1", L1Org::DcL1, CtaSched::RoundRobin, Scheme::Baseline),
        (
            "DynEB",
            L1Org::DynEB,
            CtaSched::RoundRobin,
            Scheme::Baseline,
        ),
        (
            "DC-L1+D",
            L1Org::DcL1,
            CtaSched::Distributed,
            Scheme::Baseline,
        ),
        (
            "DynEB+D",
            L1Org::DynEB,
            CtaSched::Distributed,
            Scheme::Baseline,
        ),
        (
            "DynEB+DR",
            L1Org::DynEB,
            CtaSched::RoundRobin,
            Scheme::DelegatedReplies,
        ),
        (
            "DynEB+D+DR",
            L1Org::DynEB,
            CtaSched::Distributed,
            Scheme::DelegatedReplies,
        ),
    ];
    let picks: Vec<_> = TABLE2.iter().collect();
    let mut base = vec![1.0; picks.len()];
    println!("{:<12} {:>10}  per-bench", "config", "GPU perf");
    for (ci, (label, org, cta, scheme)) in configs.iter().enumerate() {
        let mut perf = Vec::new();
        let mut per = String::new();
        for (i, p) in picks.iter().enumerate() {
            let mut cfg = SystemConfig::default().with_scheme(*scheme);
            cfg.l1_org = *org;
            cfg.cta_sched = *cta;
            let r = run_workload(cfg, p.gpu, p.cpus[0]);
            if ci == 0 {
                base[i] = r.gpu_ipc;
            }
            let ratio = r.gpu_ipc / base[i];
            perf.push(ratio);
            per += &format!(" {}={:.2}", p.gpu, ratio);
        }
        println!("{:<12} {:>10.3} {}", label, geomean(&perf), per);
    }
}
