//! Figure 17 — GPU performance improvement of Delegated Replies across
//! chip layouts (each normalized to that layout's own baseline with its
//! best routing policy).

use clognet_bench::{banner, geomean, run_workload};
use clognet_proto::{LayoutKind, Scheme, SystemConfig};
use clognet_workloads::TABLE2;

fn main() {
    banner(
        "Figure 17",
        "DR improves GPU performance on every layout: 25.8/25.3/29.0/27.0%",
    );
    println!("{:<10} {:>10}", "layout", "DR/base");
    for layout in LayoutKind::ALL {
        let (req, rep) = SystemConfig::best_routing_for(layout);
        let mut ratios = Vec::new();
        for p in TABLE2.iter() {
            let mk = |scheme| {
                let mut cfg = SystemConfig::default()
                    .with_scheme(scheme)
                    .with_routing(req, rep);
                cfg.layout = layout;
                cfg
            };
            let b = run_workload(mk(Scheme::Baseline), p.gpu, p.cpus[0]);
            let d = run_workload(mk(Scheme::DelegatedReplies), p.gpu, p.cpus[0]);
            ratios.push(d.gpu_ipc / b.gpu_ipc);
        }
        println!("{:<10} {:>10.3}", layout.label(), geomean(&ratios));
    }
}
