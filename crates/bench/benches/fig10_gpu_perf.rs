//! Figure 10 — the headline result: GPU performance of Delegated Replies
//! vs Realistic Probing vs the baseline, per benchmark with min/avg/max
//! over the three CPU co-runners.

use clognet_bench::runner::{default_threads, run_jobs};
use clognet_bench::{banner, geomean, run_workload};
use clognet_proto::{Scheme, SystemConfig};
use clognet_workloads::TABLE2;

fn main() {
    banner(
        "Figure 10",
        "DR improves GPU performance 25.7% avg (up to 65.9%) over baseline and \
         14.2% avg (up to 30.6%) over RP",
    );
    println!(
        "{:<7} {:>22} {:>22}",
        "bench", "DR/base (min avg max)", "RP/base (min avg max)"
    );
    // All (pair, co-runner, scheme) simulations are independent: run the
    // whole matrix through the job runner and consume results in order.
    let mut jobs = Vec::new();
    for p in TABLE2.iter() {
        for cpu in p.cpus {
            jobs.push((SystemConfig::default(), p.gpu, cpu));
            jobs.push((
                SystemConfig::default().with_scheme(Scheme::DelegatedReplies),
                p.gpu,
                cpu,
            ));
            jobs.push((
                SystemConfig::default().with_scheme(Scheme::rp_default()),
                p.gpu,
                cpu,
            ));
        }
    }
    let reports = run_jobs(jobs, default_threads(), |(cfg, gpu, cpu)| {
        run_workload(cfg, gpu, cpu)
    });
    let mut it = reports.into_iter();
    let mut dr_all = Vec::new();
    let mut rp_all = Vec::new();
    let mut req_inflation = Vec::new();
    for p in TABLE2.iter() {
        let mut dr = Vec::new();
        let mut rp = Vec::new();
        for _ in p.cpus {
            let b = it.next().unwrap();
            let d = it.next().unwrap();
            let r = it.next().unwrap();
            dr.push(d.gpu_ipc / b.gpu_ipc);
            rp.push(r.gpu_ipc / b.gpu_ipc);
            req_inflation.push(r.request_packets as f64 / b.request_packets as f64);
        }
        let stats = |v: &[f64]| {
            (
                v.iter().cloned().fold(f64::MAX, f64::min),
                v.iter().sum::<f64>() / v.len() as f64,
                v.iter().cloned().fold(0.0, f64::max),
            )
        };
        let (dmin, davg, dmax) = stats(&dr);
        let (rmin, ravg, rmax) = stats(&rp);
        println!(
            "{:<7} {:>6.3} {:>6.3} {:>6.3}   {:>6.3} {:>6.3} {:>6.3}",
            p.gpu, dmin, davg, dmax, rmin, ravg, rmax
        );
        dr_all.extend(dr);
        rp_all.extend(rp);
    }
    println!(
        "GEOMEAN DR/base {:.3} (paper 1.257)   RP/base {:.3} (paper 1.101)",
        geomean(&dr_all),
        geomean(&rp_all)
    );
    println!(
        "RP request-traffic inflation x{:.2} (paper: 5.9x)",
        req_inflation.iter().sum::<f64>() / req_inflation.len() as f64
    );
}
