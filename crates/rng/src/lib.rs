//! # clognet-rng
//!
//! A zero-dependency seeded PRNG with the minimal `rand`-style surface
//! the simulator needs: [`SmallRng`] (xoshiro256++ seeded through
//! SplitMix64), the [`Rng`] sampling trait (`gen_bool`, `gen_range`),
//! and [`SeedableRng`].
//!
//! The workspace builds in fully-offline environments, so the workload
//! generators use this crate instead of the external `rand` crate. The
//! generator is deterministic across platforms for a given seed — the
//! property every same-seed reproducibility test in the workspace
//! relies on.
//!
//! ## Example
//!
//! ```
//! use clognet_rng::{Rng, SeedableRng, SmallRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let p = rng.gen_bool(0.5);
//! let k = rng.gen_range(0..10u64);
//! let x = rng.gen_range(0.0..1.0);
//! assert!(k < 10 && (0.0..1.0).contains(&x));
//! let mut again = SmallRng::seed_from_u64(7);
//! assert_eq!(again.gen_bool(0.5), p);
//! ```

#![warn(missing_docs)]

use std::ops::Range;

/// Construction of a PRNG from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait RangeSample: Copy + PartialOrd {
    /// Draw a value in `[lo, hi)`.
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u16, u32, u64, usize);

impl RangeSample for f64 {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Uniform sampling helpers over a raw `u64` generator.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform draw from the half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample_in(self, range.start, range.end)
    }
}

/// xoshiro256++: fast, small, and statistically solid — the same
/// algorithm `rand`'s 64-bit `SmallRng` uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical xoshiro seeding routine.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl SmallRng {
    /// The raw xoshiro256++ state, for snapshot serialization.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a serialized [`SmallRng::state`]; the
    /// restored stream continues exactly where the captured one was.
    pub fn from_state(s: [u64; 4]) -> Self {
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Blanket passthrough so `&mut R` satisfies `Rng` bounds like the
/// `rand` crate's.
impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams nearly identical: {same}/64");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..17u64);
            assert!((5..17).contains(&v));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
            let f = rng.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(draw(&mut rng) < 100);
    }
}
