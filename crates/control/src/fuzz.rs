//! Seeded scenario generator for `clognet fuzz`.
//!
//! Each case is a random-but-**valid** combination of system
//! configuration, workload pairing, scheme, fabric, control policy,
//! cycle budget, and shard count — valid *by construction*, so the
//! fuzz driver never wastes a case on an up-front validation error.
//! The grammar (DESIGN.md §14) only draws from combinations every
//! engine mode supports:
//!
//! * the mesh stays 8×8 (so shard counts 1/2/4 always partition it);
//!   non-mesh topologies force `shards = 1`;
//! * multi-chip packages stay at 2 chips on the pair fabric with
//!   valid gateway counts, and never combine with `--vnets` (the
//!   gateway adapter needs physically separate networks);
//! * control thresholds are drawn from both the always-firing and the
//!   never-firing ends, so adaptive actuation is exercised in lockstep
//!   across engines.
//!
//! Determinism: one `u64` seed fully determines the case sequence
//! (xoshiro256++ behind [`SmallRng`]), so a failing case is
//! reproducible from its printed command line alone.

use clognet_proto::{
    ControlConfig, ControlPolicyKind, FabricConfig, LayoutKind, Scheme, SystemConfig, Topology,
    VirtualNetConfig,
};
use clognet_rng::{Rng, SeedableRng, SmallRng};

/// One generated fuzz case: everything a single `clognet run`
/// invocation needs, plus the shard count to cross-check.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Case index within the sequence (for progress display).
    pub index: usize,
    /// Full system configuration (scheme, fabric, control included).
    pub cfg: SystemConfig,
    /// GPU benchmark name.
    pub gpu: String,
    /// CPU benchmark name.
    pub cpu: String,
    /// Warmup cycles.
    pub warm: u64,
    /// Measured cycles.
    pub cycles: u64,
    /// Shard count for the sharded-engine legs (1 = sequential only).
    pub shards: usize,
}

impl FuzzCase {
    /// Render the case as a `clognet run` command line that rebuilds
    /// exactly this configuration — the reproducer printed when a case
    /// fails the lockstep check.
    pub fn repro_line(&self) -> String {
        let c = &self.cfg;
        let mut out = format!(
            "clognet run --gpu {} --cpu {} --warm {} --cycles {} --seed {}",
            self.gpu, self.cpu, self.warm, self.cycles, c.seed
        );
        let scheme = match c.scheme {
            Scheme::Baseline => "baseline".to_string(),
            Scheme::DelegatedReplies => "dr".to_string(),
            Scheme::RealisticProbing { fanout } => format!("rp:{fanout}"),
        };
        out.push_str(&format!(" --scheme {scheme}"));
        let layout = match c.layout {
            LayoutKind::Baseline => "a",
            LayoutKind::EdgeB => "b",
            LayoutKind::ClusteredC => "c",
            LayoutKind::DistributedD => "d",
        };
        out.push_str(&format!(" --layout {layout}"));
        if c.noc.topology != Topology::Mesh {
            let t = match c.noc.topology {
                Topology::Mesh => "mesh",
                Topology::Crossbar => "crossbar",
                Topology::FlattenedButterfly => "fbfly",
                Topology::Dragonfly => "dragonfly",
            };
            out.push_str(&format!(" --topology {t}"));
        }
        if let Some(v) = c.noc.virtual_nets {
            out.push_str(&format!(" --vnets {}+{}", v.request_vcs, v.reply_vcs));
        }
        if c.noc.mem_inj_buf_pkts != 16 {
            out.push_str(&format!(" --injbuf {}", c.noc.mem_inj_buf_pkts));
        }
        if let Some(f) = &c.fabric {
            out.push_str(&format!(
                " --chips {} --fabric-reply-latency {}",
                f.chips, f.reply_hop_latency
            ));
        }
        if let Some(ctl) = &c.control {
            let policy = match ctl.policy {
                ControlPolicyKind::NoOp => "noop",
                ControlPolicyKind::Hysteresis => "hysteresis",
            };
            out.push_str(&format!(
                " --control {policy} --control-interval {} --control-enter {} \
                 --control-exit {} --control-enter-episode {} --control-exit-episode {} \
                 --control-dwell {}",
                ctl.interval,
                ctl.enter_blocked_pm,
                ctl.exit_blocked_pm,
                ctl.enter_episode,
                ctl.exit_episode,
                ctl.dwell
            ));
        }
        if self.shards > 1 {
            out.push_str(&format!(" --shards {}", self.shards));
        }
        out
    }
}

/// Deterministic stream of fuzz cases from one seed.
#[derive(Debug)]
pub struct ScenarioGen<'a> {
    rng: SmallRng,
    gpus: &'a [&'a str],
    cpus: &'a [&'a str],
    next_index: usize,
}

impl<'a> ScenarioGen<'a> {
    /// Generator drawing workload pairings from the given benchmark
    /// name lists (both must be non-empty).
    pub fn new(seed: u64, gpus: &'a [&'a str], cpus: &'a [&'a str]) -> Self {
        assert!(!gpus.is_empty() && !cpus.is_empty());
        ScenarioGen {
            rng: SmallRng::seed_from_u64(seed ^ 0xC106_FA22_5CEA_0001),
            gpus,
            cpus,
            next_index: 0,
        }
    }

    fn pick<'b>(&mut self, list: &'b [&'b str]) -> &'b str {
        list[self.rng.gen_range(0..list.len())]
    }

    /// Draw the next case.
    #[allow(clippy::field_reassign_with_default)] // built dimension by dimension
    pub fn next_case(&mut self) -> FuzzCase {
        let rng = &mut self.rng;
        let mut cfg = SystemConfig::default();
        cfg.seed = rng.gen_range(0..u64::MAX);
        cfg.layout = match rng.gen_range(0..4u32) {
            0 => LayoutKind::Baseline,
            1 => LayoutKind::EdgeB,
            2 => LayoutKind::ClusteredC,
            _ => LayoutKind::DistributedD,
        };
        let (req, rep) = SystemConfig::best_routing_for(cfg.layout);
        cfg.noc.routing_request = req;
        cfg.noc.routing_reply = rep;
        // Mostly mesh (sharding needs it); occasionally another
        // topology, which forces the sequential engine.
        cfg.noc.topology = match rng.gen_range(0..8u32) {
            0 => Topology::Crossbar,
            1 => Topology::FlattenedButterfly,
            2 => Topology::Dragonfly,
            _ => Topology::Mesh,
        };
        cfg.scheme = match rng.gen_range(0..4u32) {
            0 => Scheme::Baseline,
            1 => Scheme::DelegatedReplies,
            2 => Scheme::rp_default(),
            _ => Scheme::RealisticProbing { fanout: 2 },
        };
        if rng.gen_bool(0.25) {
            cfg.noc.virtual_nets = Some(match rng.gen_range(0..3u32) {
                0 => VirtualNetConfig {
                    request_vcs: 1,
                    reply_vcs: 3,
                },
                1 => VirtualNetConfig {
                    request_vcs: 2,
                    reply_vcs: 2,
                },
                _ => VirtualNetConfig {
                    request_vcs: 3,
                    reply_vcs: 1,
                },
            });
        }
        // Small injection buffers make clogging (and therefore
        // adaptive actuation) likely within a short budget.
        cfg.noc.mem_inj_buf_pkts = [4usize, 8, 16][rng.gen_range(0..3usize)];
        // Multi-chip occasionally: 2 chips, pair fabric, maybe a
        // degraded reply plane. The fabric gateway adapter needs
        // physically separate request/reply networks (`validate_fabric`
        // rejects --vnets with --chips), so a package drops the shared
        // net.
        if rng.gen_bool(0.2) {
            cfg.noc.virtual_nets = None;
            let mut fab = FabricConfig::default();
            if rng.gen_bool(0.5) {
                fab.reply_hop_latency = [16u32, 40][rng.gen_range(0..2usize)];
            }
            cfg.fabric = Some(fab);
        }
        // Control: none / no-op / hysteresis, with thresholds drawn
        // from both the hair-trigger and the never-firing ends.
        match rng.gen_range(0..3u32) {
            0 => {}
            1 => cfg.control = Some(ControlConfig::noop()),
            _ => {
                let enter_blocked_pm = [1u32, 100, 400, 1001][rng.gen_range(0..4usize)];
                cfg.control = Some(ControlConfig {
                    policy: ControlPolicyKind::Hysteresis,
                    interval: [100u64, 250, 500][rng.gen_range(0..3usize)],
                    enter_blocked_pm,
                    // Hysteresis needs exit <= enter (the CLI rejects the
                    // inversion), so the draw is clamped.
                    exit_blocked_pm: [0u32, 50][rng.gen_range(0..2usize)].min(enter_blocked_pm),
                    enter_episode: [200u64, 1_000, u64::MAX][rng.gen_range(0..3usize)],
                    exit_episode: [200u64, 2_000][rng.gen_range(0..2usize)],
                    dwell: rng.gen_range(0..3u64),
                });
            }
        }
        let shards = if cfg.noc.topology == Topology::Mesh {
            [1usize, 2, 4][rng.gen_range(0..3usize)]
        } else {
            1
        };
        let case = FuzzCase {
            index: self.next_index,
            cfg,
            gpu: self.pick(self.gpus).to_string(),
            cpu: self.pick(self.cpus).to_string(),
            warm: 100 * self.rng.gen_range(2..10u64),
            cycles: 100 * self.rng.gen_range(4..20u64),
            shards,
        };
        self.next_index += 1;
        case
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GPUS: [&str; 3] = ["HS", "NN", "MM"];
    const CPUS: [&str; 3] = ["bodytrack", "canneal", "ferret"];

    #[test]
    fn same_seed_same_cases() {
        let mut a = ScenarioGen::new(7, &GPUS, &CPUS);
        let mut b = ScenarioGen::new(7, &GPUS, &CPUS);
        for _ in 0..50 {
            assert_eq!(a.next_case(), b.next_case());
        }
        let mut c = ScenarioGen::new(8, &GPUS, &CPUS);
        let diverges = (0..50).any(|_| {
            let mut a = ScenarioGen::new(7, &GPUS, &CPUS);
            a.next_case() != c.next_case()
        });
        assert!(diverges, "different seeds must diverge");
    }

    #[test]
    fn cases_are_valid_by_construction() {
        let mut g = ScenarioGen::new(1, &GPUS, &CPUS);
        for _ in 0..200 {
            let c = g.next_case();
            // Shards always partition the 8-row mesh; non-mesh
            // topologies never shard.
            assert!(c.cfg.mesh_height.is_multiple_of(c.shards) || c.shards == 1);
            if c.cfg.noc.topology != Topology::Mesh {
                assert_eq!(c.shards, 1);
            }
            if let Some(f) = &c.cfg.fabric {
                assert_eq!(f.chips, 2);
                assert!(f.gateways <= c.cfg.n_mem);
                assert!(c.cfg.noc.virtual_nets.is_none(), "fabric excludes --vnets");
            }
            assert!(c.warm >= 200 && c.cycles >= 400);
        }
    }

    #[test]
    fn repro_line_mentions_every_non_default_dimension() {
        let mut g = ScenarioGen::new(3, &GPUS, &CPUS);
        for _ in 0..100 {
            let c = g.next_case();
            let line = c.repro_line();
            assert!(line.starts_with("clognet run --gpu "));
            assert!(line.contains("--seed"));
            if c.cfg.control.is_some() {
                assert!(line.contains("--control "), "{line}");
            }
            if c.cfg.fabric.is_some() {
                assert!(line.contains("--chips 2"), "{line}");
            }
            if c.shards > 1 {
                assert!(line.contains("--shards"), "{line}");
            }
        }
    }
}
