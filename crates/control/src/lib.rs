//! Telemetry-driven adaptive control loop for the clognet simulator,
//! plus the deterministic scenario generator behind `clognet fuzz`.
//!
//! The paper's Delegated-Replies mechanism is a *static* scheme chosen
//! before the run; this crate closes the loop (ROADMAP item 4). A
//! [`Controller`] wakes at fixed decision intervals, reads a
//! [`ControlInput`] snapshot of live clogging signals (per-node blocked
//! fractions, injection-queue depths, shed delegation work), evaluates
//! its policy, and — under the hysteresis policy — walks a three-rung
//! scheme ladder:
//!
//! ```text
//!   level 0          level 1                level 2
//!   Baseline  ───►   Realistic Probing ───► Delegated Replies
//!            ◄───                     ◄───
//! ```
//!
//! Every evaluation (including holds) is appended to a [`DecisionLog`]
//! so controlled runs stay replayable: the log is part of the system
//! snapshot and round-trips through `CLOGSNAP` byte-identically.
//!
//! The controller is deliberately *pure*: it never touches the system.
//! `clognet-core` builds the input, calls [`Controller::observe`], and
//! applies the returned scheme itself. That keeps this crate free of
//! any dependency on the simulation engine, so the scenario generator
//! in [`fuzz`] can also live here.

pub mod fuzz;

use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{ControlConfig, ControlPolicyKind, Scheme};

/// One decision boundary's worth of clogging signals, sampled by the
/// engine. Counter fields are **cumulative** (monotone within a stats
/// window); the controller keeps its own previous-boundary baselines
/// and diffs, exactly like the telemetry sampler does.
#[derive(Debug, Clone, Copy)]
pub struct ControlInput<'a> {
    /// Current cycle (a multiple of the decision interval).
    pub cycle: u64,
    /// Per-memory-node cumulative cycles spent blocked (injection
    /// buffer full), in dense `MemId` order.
    pub blocked_cycles: &'a [u64],
    /// Per-memory-node instantaneous injection-queue depth in packets.
    pub inj_depth: &'a [usize],
    /// Cumulative reply flits shed from the reply network by
    /// delegation (0 until the ladder reaches Delegated Replies).
    pub shed_flits: &'a [u64],
}

/// What a decision boundary concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// No scheme change (calm, dwelling, or already at the rung the
    /// signals ask for).
    Hold,
    /// Stepped up the ladder (toward Delegated Replies).
    Escalate,
    /// Stepped down the ladder (toward Baseline).
    DeEscalate,
}

impl Action {
    /// Short human label for decision-log rendering.
    pub fn label(self) -> &'static str {
        match self {
            Action::Hold => "hold",
            Action::Escalate => "escalate",
            Action::DeEscalate => "de-escalate",
        }
    }

    fn tag(self) -> u8 {
        match self {
            Action::Hold => 0,
            Action::Escalate => 1,
            Action::DeEscalate => 2,
        }
    }

    fn from_tag(t: u8) -> Result<Self, SnapError> {
        Ok(match t {
            0 => Action::Hold,
            1 => Action::Escalate,
            2 => Action::DeEscalate,
            t => {
                return Err(SnapError::BadTag {
                    what: "control_action",
                    tag: u64::from(t),
                })
            }
        })
    }
}

/// One recorded policy evaluation: the observation that was made and
/// the action it produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Cycle of the decision boundary.
    pub cycle: u64,
    /// What the policy did.
    pub action: Action,
    /// Ladder level before the decision.
    pub from_level: u8,
    /// Ladder level after the decision (== `from_level` on a hold).
    pub to_level: u8,
    /// Hottest node's blocked fraction over the last interval, ‰.
    pub max_blocked_pm: u32,
    /// Longest per-node consecutive-hot streak, in cycles.
    pub hot_streak: u64,
    /// Deepest memory-node injection queue at the boundary, packets.
    pub max_inj_depth: u64,
    /// Reply flits shed by delegation since the previous boundary.
    pub shed_delta: u64,
}

/// Append-only, snapshot-capturable record of every decision a
/// controller made. Replaying a controlled run (same config, same
/// workload) reproduces the log byte for byte.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecisionLog {
    entries: Vec<Decision>,
}

impl DecisionLog {
    /// All decisions, oldest first.
    pub fn entries(&self) -> &[Decision] {
        &self.entries
    }

    /// Number of decisions recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no decision has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many decisions escalated the ladder.
    pub fn escalations(&self) -> usize {
        self.entries
            .iter()
            .filter(|d| d.action == Action::Escalate)
            .count()
    }

    /// How many decisions de-escalated the ladder.
    pub fn de_escalations(&self) -> usize {
        self.entries
            .iter()
            .filter(|d| d.action == Action::DeEscalate)
            .count()
    }

    /// Serialize every entry (length-prefixed, declaration order).
    pub fn save(&self, w: &mut SnapWriter) {
        w.usize(self.entries.len());
        for d in &self.entries {
            w.u64(d.cycle);
            w.u8(d.action.tag());
            w.u8(d.from_level);
            w.u8(d.to_level);
            w.u32(d.max_blocked_pm);
            w.u64(d.hot_streak);
            w.u64(d.max_inj_depth);
            w.u64(d.shed_delta);
        }
    }

    /// Decode a log written by [`DecisionLog::save`].
    ///
    /// # Errors
    ///
    /// Propagates truncation and bad action tags.
    pub fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.usize()?;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            entries.push(Decision {
                cycle: r.u64()?,
                action: Action::from_tag(r.u8()?)?,
                from_level: r.u8()?,
                to_level: r.u8()?,
                max_blocked_pm: r.u32()?,
                hot_streak: r.u64()?,
                max_inj_depth: r.u64()?,
                shed_delta: r.u64()?,
            });
        }
        Ok(DecisionLog { entries })
    }
}

/// Number of rungs on the scheme ladder.
pub const LADDER_LEVELS: u8 = 3;

/// The scheme at a given ladder level. Level 1 preserves a configured
/// RP fanout (a run that starts at `rp:8` de-escalates back to `rp:8`,
/// not to the default fanout).
pub fn ladder_scheme(level: u8, base: Scheme) -> Scheme {
    match level {
        0 => Scheme::Baseline,
        1 => match base {
            Scheme::RealisticProbing { fanout } => Scheme::RealisticProbing { fanout },
            _ => Scheme::rp_default(),
        },
        _ => Scheme::DelegatedReplies,
    }
}

/// The ladder level a static scheme corresponds to (where an adaptive
/// run starts).
pub fn ladder_level(scheme: Scheme) -> u8 {
    match scheme {
        Scheme::Baseline => 0,
        Scheme::RealisticProbing { .. } => 1,
        Scheme::DelegatedReplies => 2,
    }
}

/// The adaptive controller: a deterministic state machine evaluated at
/// every decision boundary. See DESIGN.md §14 for the full state
/// machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Controller {
    cfg: ControlConfig,
    /// Scheme the run was configured with (fixes the RP rung's fanout).
    base: Scheme,
    /// Current ladder level.
    level: u8,
    /// Decision intervals left before another scheme change is allowed.
    dwell_left: u64,
    /// Per-node consecutive-hot streak in cycles (reset to 0 the first
    /// interval a node is below the enter threshold).
    hot: Vec<u64>,
    /// Cycles every node has been continuously below the exit
    /// threshold (the sustained-calm counter gating de-escalation).
    cold: u64,
    /// Previous-boundary baselines of the cumulative input counters.
    prev_blocked: Vec<u64>,
    prev_shed: Vec<u64>,
    log: DecisionLog,
}

impl Controller {
    /// Fresh controller for a system with `n_mem` memory nodes running
    /// `base` as its configured scheme.
    pub fn new(cfg: ControlConfig, base: Scheme, n_mem: usize) -> Self {
        Controller {
            cfg,
            base,
            level: ladder_level(base),
            dwell_left: 0,
            hot: vec![0; n_mem],
            cold: 0,
            prev_blocked: vec![0; n_mem],
            prev_shed: vec![0; n_mem],
            log: DecisionLog::default(),
        }
    }

    /// The configured decision interval in cycles.
    pub fn interval(&self) -> u64 {
        self.cfg.interval.max(1)
    }

    /// Current ladder level.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// The scheme the current ladder level corresponds to.
    pub fn scheme(&self) -> Scheme {
        ladder_scheme(self.level, self.base)
    }

    /// Every decision made so far.
    pub fn log(&self) -> &DecisionLog {
        &self.log
    }

    /// The engine switched schemes *externally* (warm-start forks, the
    /// resume command's `--scheme` override): the ladder re-seats on the
    /// new scheme as its base. Streak/dwell evidence belongs to the old
    /// regime and is discarded; the decision log persists.
    pub fn rebase(&mut self, scheme: Scheme) {
        self.base = scheme;
        self.level = ladder_level(scheme);
        self.dwell_left = 0;
        self.cold = 0;
        self.hot.iter_mut().for_each(|h| *h = 0);
    }

    /// The engine zeroed its statistics counters (end of warmup): the
    /// cumulative inputs restart from zero, so the baselines must too.
    /// Streaks, dwell, and the decision log persist — control state is
    /// simulation state, not measurement state.
    pub fn on_stats_reset(&mut self) {
        self.prev_blocked.iter_mut().for_each(|v| *v = 0);
        self.prev_shed.iter_mut().for_each(|v| *v = 0);
    }

    /// Evaluate the policy at a decision boundary. Returns the scheme
    /// to switch to when the policy escalates or de-escalates, `None`
    /// on a hold. The caller (the engine) applies the switch.
    pub fn observe(&mut self, input: &ControlInput<'_>) -> Option<Scheme> {
        debug_assert_eq!(input.blocked_cycles.len(), self.prev_blocked.len());
        let interval = self.interval();
        // Per-node blocked fraction over the interval, in per-mille.
        let mut max_pm: u32 = 0;
        let mut all_cold = true;
        for (i, &blocked) in input.blocked_cycles.iter().enumerate() {
            let delta = blocked.saturating_sub(self.prev_blocked[i]);
            self.prev_blocked[i] = blocked;
            let pm = (delta.min(interval) * 1000 / interval) as u32;
            max_pm = max_pm.max(pm);
            if pm >= self.cfg.enter_blocked_pm {
                self.hot[i] += interval;
            } else {
                self.hot[i] = 0;
            }
            if pm >= self.cfg.exit_blocked_pm {
                all_cold = false;
            }
        }
        self.cold = if all_cold { self.cold + interval } else { 0 };
        let hot_streak = self.hot.iter().copied().max().unwrap_or(0);
        let max_inj = input.inj_depth.iter().copied().max().unwrap_or(0) as u64;
        let mut shed_delta = 0u64;
        for (i, &shed) in input.shed_flits.iter().enumerate() {
            shed_delta += shed.saturating_sub(self.prev_shed[i]);
            self.prev_shed[i] = shed;
        }

        let from = self.level;
        let to = match self.cfg.policy {
            ControlPolicyKind::NoOp => from,
            ControlPolicyKind::Hysteresis => {
                if self.dwell_left > 0 {
                    self.dwell_left -= 1;
                    from
                } else {
                    self.hysteresis_target(from, max_pm, hot_streak)
                }
            }
        };
        let action = match to.cmp(&from) {
            std::cmp::Ordering::Greater => Action::Escalate,
            std::cmp::Ordering::Less => Action::DeEscalate,
            std::cmp::Ordering::Equal => Action::Hold,
        };
        if action != Action::Hold {
            self.level = to;
            self.dwell_left = self.cfg.dwell;
            // A scheme change starts a new regime: demand fresh
            // evidence before the next move in either direction.
            self.cold = 0;
            self.hot.iter_mut().for_each(|h| *h = 0);
        }
        self.log.entries.push(Decision {
            cycle: input.cycle,
            action,
            from_level: from,
            to_level: to,
            max_blocked_pm: max_pm,
            hot_streak,
            max_inj_depth: max_inj,
            shed_delta,
        });
        (action != Action::Hold).then(|| self.scheme())
    }

    /// The hysteresis ladder's target level given this boundary's
    /// signals: a sustained episode jumps straight to Delegated
    /// Replies, a hot interval steps up one rung, sustained calm steps
    /// down one rung.
    fn hysteresis_target(&self, from: u8, max_pm: u32, hot_streak: u64) -> u8 {
        let top = LADDER_LEVELS - 1;
        if hot_streak >= self.cfg.enter_episode && self.cfg.enter_episode > 0 {
            return top;
        }
        if max_pm >= self.cfg.enter_blocked_pm {
            return (from + 1).min(top);
        }
        if self.cold >= self.cfg.exit_episode && max_pm < self.cfg.exit_blocked_pm {
            return from.saturating_sub(1);
        }
        from
    }

    /// Serialize the mutable controller state (everything except the
    /// config, which travels in the snapshot's `SystemConfig`). The
    /// base scheme is included: a snapshot taken after an actuation
    /// embeds the *escalated* scheme in its config, so the original
    /// base (which fixes the RP rung's fanout) would otherwise be lost.
    pub fn save_state(&self, w: &mut SnapWriter) {
        match self.base {
            Scheme::Baseline => w.u8(0),
            Scheme::DelegatedReplies => w.u8(1),
            Scheme::RealisticProbing { fanout } => {
                w.u8(2);
                w.usize(fanout);
            }
        }
        w.u8(self.level);
        w.u64(self.dwell_left);
        w.usize(self.hot.len());
        for &h in &self.hot {
            w.u64(h);
        }
        w.u64(self.cold);
        for &b in &self.prev_blocked {
            w.u64(b);
        }
        for &s in &self.prev_shed {
            w.u64(s);
        }
        self.log.save(w);
    }

    /// Restore the mutable state written by [`Controller::save_state`]
    /// into a controller built from the same config.
    ///
    /// # Errors
    ///
    /// Propagates decode errors; rejects a node count that does not
    /// match this controller's.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.base = match r.u8()? {
            0 => Scheme::Baseline,
            1 => Scheme::DelegatedReplies,
            2 => Scheme::RealisticProbing { fanout: r.usize()? },
            t => {
                return Err(SnapError::BadTag {
                    what: "control_base_scheme",
                    tag: u64::from(t),
                })
            }
        };
        self.level = r.u8()?;
        if self.level >= LADDER_LEVELS {
            return Err(SnapError::Corrupt("controller level out of range"));
        }
        self.dwell_left = r.u64()?;
        let n = r.usize()?;
        if n != self.hot.len() {
            return Err(SnapError::Corrupt("controller node count mismatch"));
        }
        for h in &mut self.hot {
            *h = r.u64()?;
        }
        self.cold = r.u64()?;
        for b in &mut self.prev_blocked {
            *b = r.u64()?;
        }
        for s in &mut self.prev_shed {
            *s = r.u64()?;
        }
        self.log = DecisionLog::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_input<'a>(
        cycle: u64,
        blocked: &'a [u64],
        inj: &'a [usize],
        shed: &'a [u64],
    ) -> ControlInput<'a> {
        ControlInput {
            cycle,
            blocked_cycles: blocked,
            inj_depth: inj,
            shed_flits: shed,
        }
    }

    fn cfg() -> ControlConfig {
        ControlConfig {
            policy: ControlPolicyKind::Hysteresis,
            interval: 100,
            enter_blocked_pm: 500,
            exit_blocked_pm: 100,
            enter_episode: 300,
            exit_episode: 200,
            dwell: 1,
        }
    }

    #[test]
    fn noop_policy_never_actuates_but_logs_every_boundary() {
        let mut c = Controller::new(ControlConfig::noop(), Scheme::Baseline, 2);
        let inj = [9usize, 9];
        let shed = [0u64, 0];
        for k in 1..=5u64 {
            let blocked = [k * 500, k * 500];
            assert_eq!(c.observe(&hot_input(k * 500, &blocked, &inj, &shed)), None);
        }
        assert_eq!(c.log().len(), 5);
        assert_eq!(c.log().escalations(), 0);
        assert_eq!(c.scheme(), Scheme::Baseline);
    }

    #[test]
    fn hysteresis_escalates_on_hot_intervals_and_dwells() {
        let mut c = Controller::new(cfg(), Scheme::Baseline, 1);
        let inj = [4usize];
        let shed = [0u64];
        // 100% blocked interval: one rung up (Baseline -> RP).
        let s = c.observe(&hot_input(100, &[100], &inj, &shed));
        assert_eq!(s, Some(Scheme::rp_default()));
        // Still fully blocked, but dwell=1 holds one boundary.
        assert_eq!(c.observe(&hot_input(200, &[200], &inj, &shed)), None);
        // Dwell expired and still hot: the next rung (RP -> DR).
        let s = c.observe(&hot_input(300, &[300], &inj, &shed));
        assert_eq!(s, Some(Scheme::DelegatedReplies));
        assert_eq!(c.level(), 2);
        assert_eq!(c.log().escalations(), 2);
    }

    #[test]
    fn hysteresis_de_escalates_only_after_sustained_calm() {
        let mut c = Controller::new(cfg(), Scheme::DelegatedReplies, 1);
        let inj = [0usize];
        let shed = [0u64];
        // Calm boundary #1 (cold = 100 < exit_episode 200): hold.
        assert_eq!(c.observe(&hot_input(100, &[0], &inj, &shed)), None);
        // Calm boundary #2 (cold = 200): step down to RP.
        let s = c.observe(&hot_input(200, &[0], &inj, &shed));
        assert_eq!(s, Some(Scheme::rp_default()));
        // Dwell holds one boundary, then another sustained-calm window
        // steps down to Baseline.
        assert_eq!(c.observe(&hot_input(300, &[0], &inj, &shed)), None);
        let s = c.observe(&hot_input(400, &[0], &inj, &shed));
        assert_eq!(s, Some(Scheme::Baseline));
        assert_eq!(c.log().de_escalations(), 2);
    }

    #[test]
    fn rp_fanout_is_preserved_on_the_middle_rung() {
        let base = Scheme::RealisticProbing { fanout: 8 };
        assert_eq!(ladder_scheme(1, base), base);
        assert_eq!(ladder_scheme(1, Scheme::Baseline), Scheme::rp_default());
        assert_eq!(ladder_level(base), 1);
    }

    #[test]
    fn thresholds_that_never_fire_never_actuate() {
        let quiet = ControlConfig {
            enter_blocked_pm: 1001, // above the 1000‰ ceiling
            enter_episode: u64::MAX,
            exit_episode: u64::MAX,
            ..cfg()
        };
        let mut c = Controller::new(quiet, Scheme::Baseline, 1);
        let inj = [16usize];
        let shed = [0u64];
        for k in 1..=10u64 {
            assert_eq!(
                c.observe(&hot_input(k * 100, &[k * 100], &inj, &shed)),
                None
            );
        }
        assert_eq!(c.log().escalations() + c.log().de_escalations(), 0);
    }

    #[test]
    fn state_round_trips_through_snap() {
        let mut c = Controller::new(cfg(), Scheme::Baseline, 2);
        let inj = [3usize, 1];
        let shed = [10u64, 0];
        for k in 1..=4u64 {
            let blocked = [k * 100, k * 40];
            c.observe(&hot_input(k * 100, &blocked, &inj, &shed));
        }
        let mut w = SnapWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();
        // The receiving controller may have been constructed from a
        // snapshot config carrying the *escalated* scheme — the saved
        // state must restore the original base regardless.
        let mut back = Controller::new(cfg(), Scheme::DelegatedReplies, 2);
        let mut r = SnapReader::raw(&bytes);
        back.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, c);
        // Re-encoding is byte-stable.
        let mut w2 = SnapWriter::new();
        back.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn rebase_reseats_the_ladder_and_keeps_the_log() {
        let mut c = Controller::new(cfg(), Scheme::Baseline, 1);
        let inj = [4usize];
        let shed = [0u64];
        c.observe(&hot_input(100, &[100], &inj, &shed)); // -> RP
        let logged = c.log().len();
        c.rebase(Scheme::DelegatedReplies);
        assert_eq!(c.level(), 2);
        assert_eq!(c.scheme(), Scheme::DelegatedReplies);
        assert_eq!(c.log().len(), logged);
    }

    #[test]
    fn stats_reset_zeroes_baselines_but_keeps_the_log() {
        let mut c = Controller::new(cfg(), Scheme::Baseline, 1);
        let inj = [2usize];
        let shed = [5u64];
        c.observe(&hot_input(100, &[80], &inj, &shed));
        let logged = c.log().len();
        c.on_stats_reset();
        // Counters restart from zero: a post-reset observation must
        // not see a negative (saturating) delta.
        c.observe(&hot_input(200, &[60], &inj, &shed));
        assert_eq!(c.log().len(), logged + 1);
        assert_eq!(c.log().entries()[logged].max_blocked_pm, 600);
    }
}
