//! Per-router state: input VC buffers, output-VC ownership, credits, and
//! the rotating iSLIP arbitration pointers.
//!
//! The switch-allocation and VC-allocation *algorithms* live in
//! [`crate::network`], which has access to the packet slab and the
//! neighbor routers; this module only defines the state they operate on.

use crate::flit::Flit;
use clognet_proto::Cycle;
use std::collections::VecDeque;

/// One virtual channel on an input port.
#[derive(Debug, Default)]
pub(crate) struct InputVc {
    /// Buffered flits, in arrival order. Packets are contiguous: the
    /// upstream output-VC ownership discipline guarantees no interleaving
    /// within one VC.
    pub buf: VecDeque<Flit>,
    /// Route + output VC allocated to the packet currently at the head
    /// (set by VA when its head flit reaches the front, cleared when its
    /// tail flit departs).
    pub alloc: Option<Alloc>,
}

/// An output allocation held by an input VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Alloc {
    /// Output port.
    pub port: u8,
    /// Output VC on that port (meaningless for ejection ports).
    pub vc: u8,
    /// True when the output port is the router's locally attached node
    /// (ejection): no output-VC ownership or credits apply, the NI eject
    /// buffer gates transfer instead.
    pub eject: bool,
}

/// Router state.
#[derive(Debug)]
pub(crate) struct Router {
    /// `inputs[port][vc]`.
    pub inputs: Vec<Vec<InputVc>>,
    /// `out_owner[port][vc]` — which (input port, input vc) currently owns
    /// the downstream VC (None = free). Ejection ports never take owners.
    pub out_owner: Vec<Vec<Option<(u8, u8)>>>,
    /// `credits[port][vc]` — free buffer slots in the downstream input VC.
    pub credits: Vec<Vec<u8>>,
    /// iSLIP grant pointer per output port (rotates over input-VC ids).
    pub grant_ptr: Vec<usize>,
    /// iSLIP accept pointer per input port (rotates over its VCs).
    pub accept_ptr: Vec<usize>,
    /// HARE: per-output-port congestion history (EWMA of free credits).
    pub hare_score: Vec<f64>,
    /// Footprint: per-output-port cycle of the last profitable adaptive
    /// use.
    pub footprint: Vec<Cycle>,
}

impl Router {
    /// Create a router with `ports` ports, `vcs` VCs per port, and
    /// `buf` flits of credit per VC towards each downstream neighbor.
    pub fn new(ports: usize, vcs: usize, buf: u8) -> Self {
        Router {
            inputs: (0..ports)
                .map(|_| (0..vcs).map(|_| InputVc::default()).collect())
                .collect(),
            out_owner: vec![vec![None; vcs]; ports],
            credits: vec![vec![buf; vcs]; ports],
            grant_ptr: vec![0; ports],
            accept_ptr: vec![0; ports],
            hare_score: vec![0.0; ports],
            footprint: vec![0; ports],
        }
    }

    /// Total free credits over the VC index range `[lo, hi)` of an
    /// output port (the DyXY congestion metric). Takes plain bounds so
    /// callers holding a `Range` don't clone it per call.
    pub fn free_credits(&self, port: usize, lo: usize, hi: usize) -> u32 {
        self.credits[port][lo..hi].iter().map(|&c| c as u32).sum()
    }

    /// Total flits buffered in this router (for quiescence checks).
    pub fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|p| p.iter())
            .map(|vc| vc.buf.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_router_is_empty_with_full_credits() {
        let r = Router::new(5, 4, 4);
        assert_eq!(r.inputs.len(), 5);
        assert_eq!(r.inputs[0].len(), 4);
        assert_eq!(r.buffered_flits(), 0);
        assert_eq!(r.free_credits(2, 0, 4), 16);
    }

    #[test]
    fn free_credits_respects_range() {
        let mut r = Router::new(5, 4, 4);
        r.credits[1][0] = 0;
        r.credits[1][1] = 2;
        assert_eq!(r.free_credits(1, 0, 2), 2);
        assert_eq!(r.free_credits(1, 2, 4), 8);
    }
}
