//! Flow-control units.
//!
//! Packets are serialized into flits at the network interface. A flit
//! references its packet through a slab slot; payload never moves, only
//! the 16-byte-channel-wide flits do.

use clognet_proto::Cycle;

/// Slab slot referencing the in-flight [`clognet_proto::Packet`].
pub(crate) type Slot = u32;

/// One flow-control unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Flit {
    /// Packet slab slot.
    pub slot: Slot,
    /// Flit index within the packet (0 = head).
    pub idx: u8,
    /// Total flits in the packet (so `idx + 1 == total` marks the tail).
    pub total: u8,
    /// Cycle at which this flit becomes eligible for switch allocation in
    /// the router currently buffering it (models the RC/VA pipeline
    /// stages).
    pub eligible: Cycle,
}

impl Flit {
    /// Head flit of its packet?
    pub fn is_head(&self) -> bool {
        self.idx == 0
    }

    /// Tail flit of its packet? (single-flit packets are both)
    pub fn is_tail(&self) -> bool {
        self.idx + 1 == self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_and_tail_flags() {
        let head = Flit {
            slot: 0,
            idx: 0,
            total: 9,
            eligible: 0,
        };
        let mid = Flit { idx: 4, ..head };
        let tail = Flit { idx: 8, ..head };
        assert!(head.is_head() && !head.is_tail());
        assert!(!mid.is_head() && !mid.is_tail());
        assert!(!tail.is_head() && tail.is_tail());
        let single = Flit {
            idx: 0,
            total: 1,
            ..head
        };
        assert!(single.is_head() && single.is_tail());
    }
}
