//! Network statistics: link utilization, packet latency, per-node
//! traffic, and injection-stall accounting.

use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{Cycle, Priority, TrafficClass};
use clognet_telemetry::Histogram;

/// Accumulated latency statistics for one (class, priority) bin.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyBin {
    /// Packets completed.
    pub count: u64,
    /// Sum of end-to-end latencies (inject → full ejection) in cycles.
    pub total_cycles: u64,
    /// Maximum observed latency.
    pub max_cycles: u64,
}

impl LatencyBin {
    fn record(&mut self, lat: Cycle) {
        self.count += 1;
        self.total_cycles += lat;
        self.max_cycles = self.max_cycles.max(lat);
    }

    /// Mean latency in cycles (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.count as f64
        }
    }
}

/// Statistics collected by a [`crate::Network`].
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// `link_flits[router][port]` — flits that traversed each output.
    pub link_flits: Vec<Vec<u64>>,
    /// Packets injected, by class.
    pub injected_pkts: [u64; 2],
    /// Flits injected, by class.
    pub injected_flits: [u64; 2],
    /// Packets fully ejected, by class.
    pub ejected_pkts: [u64; 2],
    /// Latency bins indexed by `[class][priority]`.
    pub latency: [[LatencyBin; 2]; 2],
    /// Full latency distributions indexed by `[class][priority]` —
    /// log2-bucket histograms with p50/p95/p99, the tail-latency story
    /// the mean/max-only [`LatencyBin`] cannot tell.
    pub latency_hist: [[Histogram; 2]; 2],
    /// Per-node flits received (ejected), for the Fig.-11 data-rate
    /// metric.
    pub node_rx_flits: Vec<u64>,
    /// Per-node flits sent.
    pub node_tx_flits: Vec<u64>,
    /// Per-node cycles in which the NI wanted to start a packet but no
    /// injection slot was free (clog visibility).
    pub node_inj_stall_cycles: Vec<u64>,
}

pub(crate) fn class_ix(c: TrafficClass) -> usize {
    match c {
        TrafficClass::Request => 0,
        TrafficClass::Reply => 1,
    }
}

pub(crate) fn prio_ix(p: Priority) -> usize {
    match p {
        Priority::Cpu => 0,
        Priority::Gpu => 1,
    }
}

impl NocStats {
    pub(crate) fn new(routers: usize, ports_of: impl Fn(usize) -> usize, nodes: usize) -> Self {
        NocStats {
            cycles: 0,
            link_flits: (0..routers).map(|r| vec![0; ports_of(r)]).collect(),
            injected_pkts: [0; 2],
            injected_flits: [0; 2],
            ejected_pkts: [0; 2],
            latency: Default::default(),
            latency_hist: Default::default(),
            node_rx_flits: vec![0; nodes],
            node_tx_flits: vec![0; nodes],
            node_inj_stall_cycles: vec![0; nodes],
        }
    }

    pub(crate) fn record_ejection(
        &mut self,
        class: TrafficClass,
        prio: Priority,
        latency: Cycle,
        node: usize,
        flits: u8,
    ) {
        self.ejected_pkts[class_ix(class)] += 1;
        self.latency[class_ix(class)][prio_ix(prio)].record(latency);
        self.latency_hist[class_ix(class)][prio_ix(prio)].record(latency);
        self.node_rx_flits[node] += flits as u64;
    }

    /// Serialize every counter, including the full latency histograms.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.cycles);
        w.usize(self.link_flits.len());
        for row in &self.link_flits {
            w.usize(row.len());
            for &v in row {
                w.u64(v);
            }
        }
        for arr in [
            &self.injected_pkts,
            &self.injected_flits,
            &self.ejected_pkts,
        ] {
            for &v in arr.iter() {
                w.u64(v);
            }
        }
        for row in &self.latency {
            for b in row {
                w.u64(b.count);
                w.u64(b.total_cycles);
                w.u64(b.max_cycles);
            }
        }
        for row in &self.latency_hist {
            for h in row {
                let (buckets, count, sum, min, max) = h.to_raw();
                for &b in buckets.iter() {
                    w.u64(b);
                }
                w.u64(count);
                w.u64(sum);
                w.u64(min);
                w.u64(max);
            }
        }
        for vec in [
            &self.node_rx_flits,
            &self.node_tx_flits,
            &self.node_inj_stall_cycles,
        ] {
            w.usize(vec.len());
            for &v in vec.iter() {
                w.u64(v);
            }
        }
    }

    /// Overlay counters captured by [`NocStats::save_state`] onto stats
    /// built for the same topology.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cycles = r.u64()?;
        if r.usize()? != self.link_flits.len() {
            return Err(SnapError::Corrupt("link_flits router count mismatch"));
        }
        for row in &mut self.link_flits {
            if r.usize()? != row.len() {
                return Err(SnapError::Corrupt("link_flits port count mismatch"));
            }
            for v in row {
                *v = r.u64()?;
            }
        }
        for arr in [
            &mut self.injected_pkts,
            &mut self.injected_flits,
            &mut self.ejected_pkts,
        ] {
            for v in arr.iter_mut() {
                *v = r.u64()?;
            }
        }
        for row in &mut self.latency {
            for b in row {
                b.count = r.u64()?;
                b.total_cycles = r.u64()?;
                b.max_cycles = r.u64()?;
            }
        }
        for row in &mut self.latency_hist {
            for h in row {
                let mut buckets = [0u64; 65];
                for b in buckets.iter_mut() {
                    *b = r.u64()?;
                }
                let count = r.u64()?;
                let sum = r.u64()?;
                let min = r.u64()?;
                let max = r.u64()?;
                *h = Histogram::from_raw(buckets, count, sum, min, max);
            }
        }
        for vec in [
            &mut self.node_rx_flits,
            &mut self.node_tx_flits,
            &mut self.node_inj_stall_cycles,
        ] {
            if r.usize()? != vec.len() {
                return Err(SnapError::Corrupt("node counter length mismatch"));
            }
            for v in vec.iter_mut() {
                *v = r.u64()?;
            }
        }
        Ok(())
    }

    /// Utilization of a router output link in [0, 1].
    pub fn link_utilization(&self, router: usize, port: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.link_flits[router][port] as f64 / self.cycles as f64
        }
    }

    /// Mean latency for a class/priority bin.
    pub fn mean_latency(&self, class: TrafficClass, prio: Priority) -> f64 {
        self.latency[class_ix(class)][prio_ix(prio)].mean()
    }

    /// Full latency distribution for a class/priority bin.
    pub fn latency_histogram(&self, class: TrafficClass, prio: Priority) -> &Histogram {
        &self.latency_hist[class_ix(class)][prio_ix(prio)]
    }

    /// Received data rate of a node in flits/cycle (Fig. 11 metric).
    pub fn rx_rate(&self, node: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.node_rx_flits[node] as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_bin_mean_and_max() {
        let mut b = LatencyBin::default();
        assert_eq!(b.mean(), 0.0);
        b.record(10);
        b.record(30);
        assert_eq!(b.count, 2);
        assert_eq!(b.mean(), 20.0);
        assert_eq!(b.max_cycles, 30);
    }

    #[test]
    fn record_ejection_updates_bins() {
        let mut s = NocStats::new(2, |_| 5, 4);
        s.cycles = 100;
        s.record_ejection(TrafficClass::Reply, Priority::Cpu, 42, 3, 9);
        assert_eq!(s.ejected_pkts[1], 1);
        assert_eq!(s.mean_latency(TrafficClass::Reply, Priority::Cpu), 42.0);
        let h = s.latency_histogram(TrafficClass::Reply, Priority::Cpu);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p99(), 42);
        assert_eq!(s.node_rx_flits[3], 9);
        assert!((s.rx_rate(3) - 0.09).abs() < 1e-9);
    }

    #[test]
    fn link_utilization_bounds() {
        let mut s = NocStats::new(1, |_| 3, 1);
        s.cycles = 10;
        s.link_flits[0][1] = 5;
        assert_eq!(s.link_utilization(0, 1), 0.5);
        assert_eq!(s.link_utilization(0, 0), 0.0);
    }
}
