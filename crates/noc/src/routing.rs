//! Routing functions for every topology and policy.
//!
//! Routing is *relational*: [`candidates`] returns the set of legal
//! output ports (minimal paths only), distinguishing the deadlock-free
//! *escape* port (dimension-order on the mesh) from optional adaptive
//! alternatives. The router's VC allocator picks among candidates using
//! the policy's congestion metric; VC 0 of each class is reserved for the
//! escape route so the adaptive schemes (DyXY, Footprint, HARE) remain
//! deadlock-free by Duato's criterion.

use crate::topology::{mesh_port, TopologyGraph};
use clognet_proto::{NodeId, RoutingPolicy, Topology};

/// Legal output ports for one hop, escape route first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidates {
    ports: [usize; 3],
    len: u8,
    /// Index into `ports` of the escape (dimension-order) choice.
    escape: u8,
}

impl Candidates {
    /// A single forced port (used both internally and by the network's
    /// precomputed route-table fast path, which reconstructs the
    /// candidate set from a table lookup for deterministic policies).
    pub fn single(port: usize) -> Self {
        Candidates {
            ports: [port, 0, 0],
            len: 1,
            escape: 0,
        }
    }

    fn pair(escape: usize, alt: usize) -> Self {
        Candidates {
            ports: [escape, alt, 0],
            len: 2,
            escape: 0,
        }
    }

    /// All candidate ports (escape first).
    pub fn ports(&self) -> &[usize] {
        &self.ports[..self.len as usize]
    }

    /// The escape (dimension-order) port.
    pub fn escape_port(&self) -> usize {
        self.ports[self.escape as usize]
    }

    /// Whether `port` is the escape choice.
    pub fn is_escape(&self, port: usize) -> bool {
        self.escape_port() == port
    }
}

/// Compute the legal output ports at `router` for a packet headed to
/// `dst` under `policy`.
///
/// # Panics
///
/// Panics if `dst` is not attached to the topology.
pub fn candidates(
    topo: &TopologyGraph,
    router: usize,
    dst: NodeId,
    policy: RoutingPolicy,
) -> Candidates {
    let (dst_router, dst_port) = topo.attach_of(dst);
    if router == dst_router {
        return Candidates::single(dst_port);
    }
    match topo.kind() {
        Topology::Mesh => mesh_candidates(topo, router, dst_router, policy),
        Topology::Crossbar => unreachable!("crossbar: every node is on the single router"),
        Topology::FlattenedButterfly => Candidates::single(fbfly_port(topo, router, dst_router)),
        Topology::Dragonfly => Candidates::single(dragonfly_port(topo, router, dst_router)),
    }
}

fn mesh_candidates(
    topo: &TopologyGraph,
    router: usize,
    dst_router: usize,
    policy: RoutingPolicy,
) -> Candidates {
    let (x, y) = topo.coords(router);
    let (dx, dy) = topo.coords(dst_router);
    let xport = if dx > x {
        Some(mesh_port::EAST)
    } else if dx < x {
        Some(mesh_port::WEST)
    } else {
        None
    };
    let yport = if dy > y {
        Some(mesh_port::SOUTH)
    } else if dy < y {
        Some(mesh_port::NORTH)
    } else {
        None
    };
    match (xport, yport) {
        (Some(xp), None) => Candidates::single(xp),
        (None, Some(yp)) => Candidates::single(yp),
        (Some(xp), Some(yp)) => match policy {
            RoutingPolicy::DorXY => Candidates::single(xp),
            RoutingPolicy::DorYX => Candidates::single(yp),
            // Adaptive schemes: either minimal direction; the escape
            // (VC0) route is XY dimension-order.
            RoutingPolicy::DyXY | RoutingPolicy::Footprint | RoutingPolicy::Hare => {
                Candidates::pair(xp, yp)
            }
        },
        (None, None) => unreachable!("router == dst_router handled above"),
    }
}

/// Flattened butterfly: row hop first (to the destination's column), then
/// column hop — the 2-hop analogue of XY, deadlock-free.
fn fbfly_port(topo: &TopologyGraph, router: usize, dst_router: usize) -> usize {
    let w = topo.width();
    let (x, y) = topo.coords(router);
    let (dx, dy) = topo.coords(dst_router);
    if dx != x {
        // row peer dx: ports 1..w ordered by peer x skipping self
        1 + if dx < x { dx } else { dx - 1 }
    } else {
        debug_assert_ne!(dy, y);
        w + if dy < y { dy } else { dy - 1 }
    }
}

/// Dragonfly minimal routing: intra hop to the router owning the global
/// link to the destination group, global hop, intra hop to the
/// destination router.
fn dragonfly_port(topo: &TopologyGraph, router: usize, dst_router: usize) -> usize {
    let w = topo.group_size();
    let h = topo.routers() / w;
    let global_port = w;
    let g = topo.group_of(router);
    let dg = topo.group_of(dst_router);
    let intra_port =
        |me: usize, peer: usize| -> usize { 1 + if peer < me { peer } else { peer - 1 } };
    let r = router % w;
    if g == dg {
        // final intra-group hop
        intra_port(r, dst_router % w)
    } else {
        // router in my group owning the global link to dg
        let owner = (dg + h - g - 1) % h;
        if owner == r {
            global_port
        } else {
            intra_port(r, owner)
        }
    }
}

/// The VC floor for deadlock avoidance: dragonfly packets must switch to
/// VC >= 1 for hops inside the destination group (ascending VC classes
/// break the local→global→local cycle). All other topologies/hops use
/// floor 0.
pub fn vc_floor(topo: &TopologyGraph, router: usize, dst: NodeId) -> usize {
    if topo.kind() == Topology::Dragonfly {
        let (dst_router, _) = topo.attach_of(dst);
        if topo.group_of(router) == topo.group_of(dst_router) {
            return 1;
        }
    }
    0
}

/// Number of hops a minimal route takes (for latency sanity checks and
/// the energy model).
pub fn min_hops(topo: &TopologyGraph, src: NodeId, dst: NodeId) -> usize {
    let (mut r, _) = topo.attach_of(src);
    let (dst_router, _) = topo.attach_of(dst);
    let mut hops = 0;
    while r != dst_router {
        let c = candidates(topo, r, dst, RoutingPolicy::DorXY);
        let p = c.escape_port();
        match topo.link(r, p) {
            crate::topology::PortLink::Router { router, .. } => r = router,
            other => panic!("route step hit {other:?}"),
        }
        hops += 1;
        assert!(hops <= topo.routers(), "routing loop {src}->{dst}");
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use clognet_proto::Topology;

    fn walk(topo: &TopologyGraph, src: NodeId, dst: NodeId, policy: RoutingPolicy) -> usize {
        // Follow escape ports until delivery; returns hop count.
        let (mut r, _) = topo.attach_of(src);
        let (dst_r, dst_p) = topo.attach_of(dst);
        let mut hops = 0;
        loop {
            let c = candidates(topo, r, dst, policy);
            if r == dst_r {
                assert_eq!(c.escape_port(), dst_p, "must deliver locally");
                return hops;
            }
            match topo.link(r, c.escape_port()) {
                crate::topology::PortLink::Router { router, .. } => r = router,
                other => panic!("step into {other:?}"),
            }
            hops += 1;
            assert!(hops <= 4 * topo.routers(), "loop {src}->{dst}");
        }
    }

    #[test]
    fn mesh_dor_is_minimal_everywhere() {
        let t = TopologyGraph::build(Topology::Mesh, 8, 8);
        for s in 0..64u16 {
            for d in 0..64u16 {
                if s == d {
                    continue;
                }
                let (sx, sy) = t.coords(s as usize);
                let (dx, dy) = t.coords(d as usize);
                let manhattan = sx.abs_diff(dx) + sy.abs_diff(dy);
                for pol in [RoutingPolicy::DorXY, RoutingPolicy::DorYX] {
                    assert_eq!(walk(&t, NodeId(s), NodeId(d), pol), manhattan);
                }
            }
        }
    }

    #[test]
    fn mesh_xy_and_yx_differ_on_diagonals() {
        let t = TopologyGraph::build(Topology::Mesh, 8, 8);
        // From (0,0) to (3,3): XY goes east first, YX goes south first.
        let r0 = 0;
        let dst = NodeId(3 * 8 + 3);
        assert_eq!(
            candidates(&t, r0, dst, RoutingPolicy::DorXY).escape_port(),
            mesh_port::EAST
        );
        assert_eq!(
            candidates(&t, r0, dst, RoutingPolicy::DorYX).escape_port(),
            mesh_port::SOUTH
        );
    }

    #[test]
    fn adaptive_offers_both_minimal_dims() {
        let t = TopologyGraph::build(Topology::Mesh, 8, 8);
        let c = candidates(&t, 0, NodeId(3 * 8 + 3), RoutingPolicy::DyXY);
        assert_eq!(c.ports().len(), 2);
        assert!(c.ports().contains(&mesh_port::EAST));
        assert!(c.ports().contains(&mesh_port::SOUTH));
        assert_eq!(c.escape_port(), mesh_port::EAST, "escape is XY order");
        // Aligned destinations leave no adaptivity.
        let c = candidates(&t, 0, NodeId(7), RoutingPolicy::DyXY);
        assert_eq!(c.ports().len(), 1);
    }

    #[test]
    fn fbfly_delivers_in_two_hops_max() {
        let t = TopologyGraph::build(Topology::FlattenedButterfly, 8, 8);
        for s in (0..64).step_by(7) {
            for d in 0..64 {
                if s == d {
                    continue;
                }
                let hops = walk(&t, NodeId(s as u16), NodeId(d as u16), RoutingPolicy::DorXY);
                assert!(hops <= 2, "{s}->{d} took {hops}");
            }
        }
    }

    #[test]
    fn dragonfly_delivers_in_three_hops_max() {
        let t = TopologyGraph::build(Topology::Dragonfly, 8, 8);
        for s in 0..64 {
            for d in 0..64 {
                if s == d {
                    continue;
                }
                let hops = walk(&t, NodeId(s as u16), NodeId(d as u16), RoutingPolicy::DorXY);
                assert!(hops <= 3, "{s}->{d} took {hops}");
            }
        }
    }

    #[test]
    fn dragonfly_vc_floor_rises_in_destination_group() {
        let t = TopologyGraph::build(Topology::Dragonfly, 8, 8);
        // dst node 0 is in group 0; router 1 is in group 0, router 8 not.
        assert_eq!(vc_floor(&t, 1, NodeId(0)), 1);
        assert_eq!(vc_floor(&t, 8, NodeId(0)), 0);
        // Mesh never raises the floor.
        let m = TopologyGraph::build(Topology::Mesh, 8, 8);
        assert_eq!(vc_floor(&m, 5, NodeId(60)), 0);
    }

    #[test]
    fn min_hops_matches_walk() {
        for kind in [
            Topology::Mesh,
            Topology::FlattenedButterfly,
            Topology::Dragonfly,
        ] {
            let t = TopologyGraph::build(kind, 8, 8);
            for (s, d) in [(0u16, 63u16), (5, 42), (17, 17)] {
                if s == d {
                    assert_eq!(min_hops(&t, NodeId(s), NodeId(d)), 0);
                } else {
                    assert_eq!(
                        min_hops(&t, NodeId(s), NodeId(d)),
                        walk(&t, NodeId(s), NodeId(d), RoutingPolicy::DorXY),
                        "{kind:?} {s}->{d}"
                    );
                }
            }
        }
    }
}
