//! # clognet-noc
//!
//! A cycle-level, flit-granular network-on-chip simulator in the style of
//! BookSim 2.0: wormhole flow control, virtual channels with credit-based
//! backpressure, a 4-stage router pipeline, one-iteration iSLIP switch
//! allocation with strict CPU-over-GPU priority, and four topologies
//! (mesh, crossbar, flattened butterfly, dragonfly) with dimension-order,
//! class-based deterministic (CDR), and adaptive (DyXY, Footprint, HARE)
//! routing.
//!
//! This crate is the NoC substrate for the `clognet` reproduction of
//! *Delegated Replies* (HPCA 2022). The phenomenon that paper attacks —
//! network clogging at the few memory nodes' reply links — emerges here
//! from first principles: finite VC buffers, credit stalls, and
//! many-to-few traffic.
//!
//! ## Example: request/reply networks
//!
//! ```
//! use clognet_noc::{ClassAssignment, NetParams, Network};
//! use clognet_proto::*;
//!
//! let mk = |class, vcs| NetParams {
//!     topology: Topology::Mesh,
//!     width: 8,
//!     height: 8,
//!     classes: ClassAssignment::Single(class, vcs),
//!     vc_buf_flits: 4,
//!     pipeline: 4,
//!     routing_request: RoutingPolicy::DorYX, // CDR: YX requests
//!     routing_reply: RoutingPolicy::DorXY,   // CDR: XY replies
//!     eject_buf_flits: 32,
//!     sa_iterations: 1,
//! };
//! let mut request_net = Network::new(mk(TrafficClass::Request, 2));
//! let mut reply_net = Network::new(mk(TrafficClass::Reply, 2));
//! let req = Packet::new(
//!     PacketId(0), NodeId(9), NodeId(2), MsgKind::ReadReq,
//!     Priority::Gpu, Addr::new(0x1000), 128, 16, 0,
//! );
//! request_net.try_inject(req)?;
//! for _ in 0..60 {
//!     request_net.tick();
//!     reply_net.tick();
//! }
//! assert_eq!(request_net.take_ejected(NodeId(2), 1).len(), 1);
//! # Ok::<(), Packet>(())
//! ```

mod flit;
pub mod network;
mod router;
pub mod routing;
pub mod shards;
pub mod stats;
pub mod topology;

pub use network::{ClassAssignment, NetParams, Network};
pub use shards::{ShardError, ShardPlan, ShardPool};
pub use stats::{LatencyBin, NocStats};
pub use topology::{mesh_port, PortLink, TopologyGraph};
