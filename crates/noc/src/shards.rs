//! Deterministic spatial sharding of one network across worker threads.
//!
//! A sharded [`crate::Network`] partitions the mesh into per-row router
//! groups and ticks the VA and SA/ST phases of each group on a pool of
//! persistent worker threads, with a spin barrier between phases. The
//! protocol keeps reports **byte-identical** to the sequential loop:
//!
//! - Every mutation a phase performs in place is shard-local: input VC
//!   buffers, allocations, output-VC ownership, credit decrements,
//!   iSLIP pointers, per-router link counters, and the ejection budget
//!   of the shard's own locally attached nodes. On a mesh, node `n`
//!   attaches to router `n`, so a contiguous router range owns the
//!   identical node range.
//! - Anything that crosses a shard boundary or lands in shared state —
//!   link transfers, credit returns, completed ejections (slab removal,
//!   global stats, per-node ejection queues) — is recorded in a
//!   per-shard [`ShardScratch`] during the phase and merged on the main
//!   thread *in shard order* after the barrier. Shard order equals
//!   router order, so the merged streams are exactly what the
//!   sequential loop pushes, flit for flit, and the packet-slab free
//!   list (which decides future slot assignment) evolves identically.
//! - Fast-forward composes untouched: shards run in lockstep inside one
//!   `Network::tick`, so the global `next_event`/`advance_to` horizon
//!   is trivially "all shards agree"; workers simply idle at the
//!   barrier while the clock jumps.
//!
//! The pool workers drive shard phases through a raw `*mut Network`
//! published under the barrier (release/acquire on the generation word
//! gives the happens-before edge). Each participant touches only its
//! shard's disjoint state, so there are no data races; the aliasing of
//! the enclosing struct is confined to this module and documented at
//! the single unsafe dereference.

use crate::flit::{Flit, Slot};
use crate::network::Network;
use clognet_proto::{Priority, Topology};
use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Why a shard count cannot be applied to a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError(pub String);

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ShardError {}

/// Check that `shards` partitions cleanly. Sharding is spatial (per-row
/// router groups), so more than one shard requires a mesh whose row
/// count `shards` divides evenly; `1` is valid everywhere (the
/// sequential engine).
pub fn validate(topology: Topology, height: usize, shards: usize) -> Result<(), ShardError> {
    if shards == 0 {
        return Err(ShardError("shard count must be at least 1".into()));
    }
    if shards == 1 {
        return Ok(());
    }
    if topology != Topology::Mesh {
        return Err(ShardError(format!(
            "{shards} shards require a mesh topology; {topology:?} only runs with 1 shard"
        )));
    }
    if shards > height || !height.is_multiple_of(shards) {
        return Err(ShardError(format!(
            "{shards} shards do not evenly divide the {height} mesh rows"
        )));
    }
    Ok(())
}

/// The spatial partition: shard `s` owns the contiguous router range
/// `bounds[s]..bounds[s + 1]` (and, on a mesh, the identical node
/// range).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// The trivial plan: one shard over all `routers`.
    pub fn single(routers: usize) -> Self {
        ShardPlan {
            bounds: vec![0, routers],
        }
    }

    /// Build a per-row mesh plan (or the trivial plan for `shards == 1`).
    ///
    /// # Errors
    ///
    /// Fails when [`validate`] rejects the combination.
    pub fn new(
        topology: Topology,
        width: usize,
        height: usize,
        routers: usize,
        shards: usize,
    ) -> Result<Self, ShardError> {
        validate(topology, height, shards)?;
        if shards == 1 {
            return Ok(Self::single(routers));
        }
        let rows_per = height / shards;
        Ok(ShardPlan {
            bounds: (0..=shards).map(|s| s * rows_per * width).collect(),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Router index range owned by shard `s`.
    pub fn router_range(&self, s: usize) -> std::ops::Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }
}

/// Per-shard working set for one tick phase. Everything a shard defers
/// for the in-order merge lives here, plus the SA scratch buffers that
/// used to sit directly on `Network` (cleared, never reallocated, so
/// steady-state ticks stay heap-free).
#[derive(Debug, Default)]
pub(crate) struct ShardScratch {
    /// SA requests gathered per router: (out_port, in_port, in_vc, prio).
    pub sa_requests: Vec<(usize, usize, usize, Priority)>,
    /// SA per-round grants (out, in, vc).
    pub sa_grants: Vec<(usize, usize, usize)>,
    /// SA accepted matches (in, vc, out).
    pub sa_accepted: Vec<(usize, usize, usize)>,
    /// SA: output ports already matched this cycle.
    pub sa_out_taken: Vec<bool>,
    /// SA: input ports already matched this cycle.
    pub sa_in_taken: Vec<bool>,
    /// Link transfers leaving this shard's routers (possibly into
    /// another shard); applied after the merge.
    pub transfers: Vec<(usize, usize, usize, Flit)>,
    /// Credit returns towards upstream routers (possibly in another
    /// shard); applied after the merge.
    pub credit_returns: Vec<(usize, usize, usize)>,
    /// Packets whose last flit ejected this cycle: (slot, node index).
    /// Slab removal, stats recording, and the ejection-queue push all
    /// touch shared state and happen in the merge.
    pub ejections: Vec<(Slot, usize)>,
}

/// Which tick phase the pool is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// VC allocation.
    Va,
    /// Switch allocation + switch/link traversal.
    SaSt,
}

/// Sense-reversing spin barrier: cheap per-cycle rendezvous without
/// kernel futex round-trips (a `std::sync::Barrier` parks threads,
/// which at one barrier every few microseconds dominates the tick).
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arriver releases everyone: reset the count first so
            // re-entrant waiters of the next barrier start from zero.
            self.count.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    // Oversubscribed host (CI): stop burning the core the
                    // releasing thread may need.
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Work published to the pool for one phase.
#[derive(Clone, Copy)]
struct Work {
    net: *mut Network,
    phase: Phase,
}

struct PoolShared {
    barrier: SpinBarrier,
    /// Written by the coordinating thread strictly before its start-
    /// barrier arrival; read by workers strictly after they pass it.
    /// The barrier's release/acquire pair is the happens-before edge.
    work: UnsafeCell<Work>,
    stop: AtomicBool,
}

// SAFETY: `work` is only written before / read after a barrier
// generation change (see field doc), and the `*mut Network` inside is
// only dereferenced for disjoint per-shard state under that protocol.
unsafe impl Sync for PoolShared {}
unsafe impl Send for PoolShared {}

/// A pool of persistent shard workers. One pool drives every phase of
/// one or more `Network`s (the baseline's request/reply pair shares a
/// single pool) — networks tick strictly one at a time, so the workers
/// only ever see one live `*mut Network`.
///
/// Worker `s` processes shard `s`; the coordinating thread (the caller
/// of [`ShardPool::run`]) processes shard 0 itself, so `n` shards cost
/// `n - 1` threads and the main thread never parks.
pub struct ShardPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    shards: usize,
}

impl fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardPool")
            .field("shards", &self.shards)
            .finish()
    }
}

impl ShardPool {
    /// Spawn a pool for `shards` shards (`shards - 1` worker threads).
    ///
    /// # Panics
    ///
    /// Panics if `shards < 2` (the sequential engine needs no pool).
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 2, "a pool needs at least 2 shards");
        let shared = Arc::new(PoolShared {
            barrier: SpinBarrier::new(shards),
            work: UnsafeCell::new(Work {
                net: std::ptr::null_mut(),
                phase: Phase::Va,
            }),
            stop: AtomicBool::new(false),
        });
        let workers = (1..shards)
            .map(|s| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("clognet-shard-{s}"))
                    .spawn(move || worker_loop(&shared, s))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardPool {
            shared,
            workers,
            shards,
        }
    }

    /// Shard count this pool was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Run one phase of `net` across all shards and wait for completion.
    pub(crate) fn run(&self, net: &mut Network, phase: Phase) {
        let ptr: *mut Network = net;
        // SAFETY: workers are parked at the start barrier, so nothing
        // reads `work` until this thread arrives there below.
        unsafe {
            *self.shared.work.get() = Work { net: ptr, phase };
        }
        self.shared.barrier.wait(); // release the phase
        run_shard(net, 0, phase); // coordinator takes shard 0
        self.shared.barrier.wait(); // all shards done
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Release workers from the start barrier; they observe `stop`
        // and exit without touching `work`.
        self.shared.barrier.wait();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, shard: usize) {
    loop {
        shared.barrier.wait(); // phase start
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let Work { net, phase } = unsafe { *shared.work.get() };
        // SAFETY: the coordinator published a live `&mut Network` for
        // this phase and every participant touches only its own shard's
        // disjoint state (see module docs); the reference does not
        // outlive the done barrier below.
        let net = unsafe { &mut *net };
        run_shard(net, shard, phase);
        shared.barrier.wait(); // phase done
    }
}

fn run_shard(net: &mut Network, shard: usize, phase: Phase) {
    match phase {
        Phase::Va => net.va_shard(shard),
        Phase::SaSt => net.sa_st_shard(shard),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_dividing_shard_counts() {
        for n in [1, 2, 4, 8] {
            assert!(validate(Topology::Mesh, 8, n).is_ok(), "{n} shards");
        }
    }

    #[test]
    fn validate_rejects_non_dividing_and_oversized() {
        let err = validate(Topology::Mesh, 8, 3).unwrap_err();
        assert!(err.0.contains("3 shards"), "{err}");
        assert!(err.0.contains("8 mesh rows"), "{err}");
        assert!(validate(Topology::Mesh, 8, 16).is_err());
        assert!(validate(Topology::Mesh, 8, 0).is_err());
    }

    #[test]
    fn validate_rejects_non_mesh_topologies() {
        for kind in [
            Topology::Crossbar,
            Topology::FlattenedButterfly,
            Topology::Dragonfly,
        ] {
            assert!(validate(kind, 8, 2).is_err(), "{kind:?}");
            assert!(validate(kind, 8, 1).is_ok(), "{kind:?} single shard");
        }
    }

    #[test]
    fn plan_covers_routers_contiguously() {
        let plan = ShardPlan::new(Topology::Mesh, 8, 8, 64, 4).unwrap();
        assert_eq!(plan.shards(), 4);
        let mut next = 0;
        for s in 0..4 {
            let r = plan.router_range(s);
            assert_eq!(r.start, next);
            assert_eq!(r.len(), 16, "two 8-wide rows per shard");
            next = r.end;
        }
        assert_eq!(next, 64);
    }

    #[test]
    fn spin_barrier_synchronizes_counters() {
        let barrier = Arc::new(SpinBarrier::new(4));
        let hits = Arc::new(AtomicUsize::new(0));
        let rounds = 200;
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let (b, h) = (Arc::clone(&barrier), Arc::clone(&hits));
                std::thread::spawn(move || {
                    for round in 0..rounds {
                        h.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // After the barrier every participant of this
                        // round has incremented.
                        assert!(h.load(Ordering::SeqCst) >= (round + 1) * 4);
                        b.wait();
                    }
                })
            })
            .collect();
        for round in 0..rounds {
            hits.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            assert!(hits.load(Ordering::SeqCst) >= (round + 1) * 4);
            barrier.wait();
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 4 * rounds);
    }

    #[test]
    fn pool_drops_cleanly_without_work() {
        let pool = ShardPool::new(4);
        assert_eq!(pool.shards(), 4);
        drop(pool); // workers must exit and join
    }
}
