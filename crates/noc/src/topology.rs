//! Topology graphs: mesh, crossbar, flattened butterfly, dragonfly.
//!
//! A [`TopologyGraph`] describes routers, their ports, and the links
//! between them. Port 0 of a router is by convention reserved for
//! locally attached nodes on all topologies except the crossbar (where
//! one central router hosts every node on its own port).
//!
//! Link directions are modeled explicitly: a bidirectional physical
//! channel is two opposed unidirectional links, each with its own VC
//! buffers and credits, as in BookSim.

use clognet_proto::{NodeId, RoutingPolicy, Topology};

/// What a router output port connects to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortLink {
    /// The port faces a locally attached node (injection/ejection).
    Node(NodeId),
    /// The port faces another router's input port.
    Router {
        /// Neighbor router index.
        router: usize,
        /// Input-port index on the neighbor that this link feeds.
        port: usize,
    },
    /// The port is not wired (edge of the mesh).
    Unused,
}

/// A resolved topology: the router/port/link graph plus the metadata the
/// routing functions need (mesh dimensions, dragonfly group size, ...).
#[derive(Debug, Clone)]
pub struct TopologyGraph {
    kind: Topology,
    width: usize,
    height: usize,
    /// `ports[r][p]` — what router `r`'s port `p` connects to.
    ports: Vec<Vec<PortLink>>,
    /// `node_attach[n]` — (router, port) where node `n` attaches.
    node_attach: Vec<(usize, usize)>,
    /// Dragonfly: routers per group.
    group_size: usize,
}

/// Mesh port numbering (after the local port 0).
pub mod mesh_port {
    /// Local injection/ejection port.
    pub const LOCAL: usize = 0;
    /// Towards smaller y (up).
    pub const NORTH: usize = 1;
    /// Towards larger x (right).
    pub const EAST: usize = 2;
    /// Towards larger y (down).
    pub const SOUTH: usize = 3;
    /// Towards smaller x (left).
    pub const WEST: usize = 4;
}

impl TopologyGraph {
    /// Build the graph for `kind` over a `width × height` node grid.
    ///
    /// # Panics
    ///
    /// Panics if a dragonfly cannot be formed (requires `height` groups
    /// of `width` routers with `width >= height`), or on a degenerate
    /// grid.
    pub fn build(kind: Topology, width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "degenerate grid");
        match kind {
            Topology::Mesh => Self::build_mesh(width, height),
            Topology::Crossbar => Self::build_crossbar(width * height),
            Topology::FlattenedButterfly => Self::build_fbfly(width, height),
            Topology::Dragonfly => Self::build_dragonfly(width, height),
        }
    }

    #[allow(clippy::needless_range_loop)] // r indexes ports and node_attach together
    fn build_mesh(w: usize, h: usize) -> Self {
        let n = w * h;
        let mut ports = vec![vec![PortLink::Unused; 5]; n];
        let mut node_attach = Vec::with_capacity(n);
        for r in 0..n {
            let (x, y) = (r % w, r / w);
            ports[r][mesh_port::LOCAL] = PortLink::Node(NodeId(r as u16));
            node_attach.push((r, mesh_port::LOCAL));
            if y > 0 {
                ports[r][mesh_port::NORTH] = PortLink::Router {
                    router: r - w,
                    port: mesh_port::SOUTH,
                };
            }
            if x + 1 < w {
                ports[r][mesh_port::EAST] = PortLink::Router {
                    router: r + 1,
                    port: mesh_port::WEST,
                };
            }
            if y + 1 < h {
                ports[r][mesh_port::SOUTH] = PortLink::Router {
                    router: r + w,
                    port: mesh_port::NORTH,
                };
            }
            if x > 0 {
                ports[r][mesh_port::WEST] = PortLink::Router {
                    router: r - 1,
                    port: mesh_port::EAST,
                };
            }
        }
        TopologyGraph {
            kind: Topology::Mesh,
            width: w,
            height: h,
            ports,
            node_attach,
            group_size: 0,
        }
    }

    fn build_crossbar(n: usize) -> Self {
        // One central router; node i attaches at port i.
        let ports = vec![(0..n).map(|i| PortLink::Node(NodeId(i as u16))).collect()];
        let node_attach = (0..n).map(|i| (0usize, i)).collect();
        TopologyGraph {
            kind: Topology::Crossbar,
            width: n,
            height: 1,
            ports,
            node_attach,
            group_size: 0,
        }
    }

    /// Flattened butterfly: a router per node; each router is directly
    /// linked to every other router in its row and in its column.
    /// Port layout: 0 = local, 1..w = row peers (by peer x, skipping
    /// self), w..w+h-1 = column peers (by peer y, skipping self).
    #[allow(clippy::needless_range_loop)] // r indexes ports and node_attach together
    fn build_fbfly(w: usize, h: usize) -> Self {
        let n = w * h;
        let p_per_router = 1 + (w - 1) + (h - 1);
        let mut ports = vec![vec![PortLink::Unused; p_per_router]; n];
        let mut node_attach = Vec::with_capacity(n);
        let row_port = |x: usize, peer_x: usize| -> usize {
            // ports 1..w for the w-1 row peers, ordered by peer_x
            1 + if peer_x < x { peer_x } else { peer_x - 1 }
        };
        let col_port = |y: usize, peer_y: usize, w: usize| -> usize {
            w + if peer_y < y { peer_y } else { peer_y - 1 }
        };
        for r in 0..n {
            let (x, y) = (r % w, r / w);
            ports[r][0] = PortLink::Node(NodeId(r as u16));
            node_attach.push((r, 0));
            for px in 0..w {
                if px == x {
                    continue;
                }
                ports[r][row_port(x, px)] = PortLink::Router {
                    router: y * w + px,
                    port: row_port(px, x),
                };
            }
            for py in 0..h {
                if py == y {
                    continue;
                }
                ports[r][col_port(y, py, w)] = PortLink::Router {
                    router: py * w + x,
                    port: col_port(py, y, w),
                };
            }
        }
        TopologyGraph {
            kind: Topology::FlattenedButterfly,
            width: w,
            height: h,
            ports,
            node_attach,
            group_size: 0,
        }
    }

    /// Dragonfly: `height` groups of `width` routers. Within a group the
    /// routers are fully connected; router `r` of group `g` owns one
    /// global link, connected in a palm-tree arrangement so every pair
    /// of groups is joined by exactly one global channel (requires
    /// `width + 1 >= height`).
    ///
    /// Port layout: 0 = local, 1..width = intra-group peers (by peer
    /// index, skipping self), `width` = global.
    fn build_dragonfly(w: usize, h: usize) -> Self {
        assert!(
            w >= h,
            "dragonfly needs at least as many routers per group as groups ({w} routers, {h} groups)"
        );
        let n = w * h;
        let p_per_router = 1 + (w - 1) + 1;
        let global_port = w;
        let mut ports = vec![vec![PortLink::Unused; p_per_router]; n];
        let mut node_attach = Vec::with_capacity(n);
        let intra_port =
            |r: usize, peer: usize| -> usize { 1 + if peer < r { peer } else { peer - 1 } };
        for g in 0..h {
            for r in 0..w {
                let me = g * w + r;
                ports[me][0] = PortLink::Node(NodeId(me as u16));
                node_attach.push((me, 0));
                for peer in 0..w {
                    if peer == r {
                        continue;
                    }
                    ports[me][intra_port(r, peer)] = PortLink::Router {
                        router: g * w + peer,
                        port: intra_port(peer, r),
                    };
                }
            }
        }
        // Palm-tree global wiring: router r of group g links to group
        // dg = (g + r + 1) mod h, attaching to the router in dg whose own
        // formula points back at g.
        for g in 0..h {
            for r in 0..(h - 1) {
                let me = g * w + r;
                let dg = (g + r + 1) % h;
                // peer router index r' in dg with (dg + r' + 1) % h == g
                let rp = (g + h - dg - 1) % h;
                ports[me][global_port] = PortLink::Router {
                    router: dg * w + rp,
                    port: global_port,
                };
            }
        }
        TopologyGraph {
            kind: Topology::Dragonfly,
            width: w,
            height: h,
            ports,
            node_attach,
            group_size: w,
        }
    }

    /// The topology family.
    pub fn kind(&self) -> Topology {
        self.kind
    }

    /// Grid width used to build the graph.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height used to build the graph.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of routers.
    pub fn routers(&self) -> usize {
        self.ports.len()
    }

    /// Number of attached nodes.
    pub fn nodes(&self) -> usize {
        self.node_attach.len()
    }

    /// Ports on router `r`.
    pub fn port_count(&self, r: usize) -> usize {
        self.ports[r].len()
    }

    /// What router `r` port `p` connects to.
    pub fn link(&self, r: usize, p: usize) -> PortLink {
        self.ports[r][p]
    }

    /// Where node `n` attaches: `(router, port)`.
    pub fn attach_of(&self, n: NodeId) -> (usize, usize) {
        self.node_attach[n.index()]
    }

    /// Dragonfly group of a router (`0` elsewhere).
    pub fn group_of(&self, router: usize) -> usize {
        router.checked_div(self.group_size).unwrap_or(0)
    }

    /// Dragonfly group size (0 unless dragonfly).
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Mesh coordinates of a router (row-major).
    pub fn coords(&self, router: usize) -> (usize, usize) {
        (router % self.width, router / self.width)
    }

    /// Precompute the per-(router, destination) next-hop port table for
    /// `policy`, or `None` when routing under `policy` is adaptive on
    /// this topology (more than one candidate port exists somewhere) and
    /// must stay dynamic.
    ///
    /// Layout: `table[router * nodes + dst]` holds the output-port index
    /// (`u8`; port counts never exceed the crossbar's node count). For
    /// deterministic routes the table lookup replaces the per-head-flit
    /// [`crate::routing::candidates`] evaluation in VC allocation —
    /// built once per network, read on every route computation.
    pub fn route_table(&self, policy: RoutingPolicy) -> Option<Vec<u8>> {
        let nodes = self.nodes();
        let mut table = vec![0u8; self.routers() * nodes];
        for r in 0..self.routers() {
            for n in 0..nodes {
                let c = crate::routing::candidates(self, r, NodeId(n as u16), policy);
                if c.ports().len() != 1 {
                    return None;
                }
                let p = c.escape_port();
                debug_assert!(p <= u8::MAX as usize);
                table[r * nodes + n] = p as u8;
            }
        }
        Some(table)
    }

    /// Iterate all directed router-to-router links as
    /// `(router, port, neighbor)`.
    pub fn router_links(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.ports.iter().enumerate().flat_map(|(r, ps)| {
            ps.iter().enumerate().filter_map(move |(p, l)| match l {
                PortLink::Router { router, .. } => Some((r, p, *router)),
                _ => None,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every router-to-router link must be symmetric: if r.p feeds s.q,
    /// then s.q feeds r.p.
    fn check_symmetry(t: &TopologyGraph) {
        for r in 0..t.routers() {
            for p in 0..t.port_count(r) {
                if let PortLink::Router { router: s, port: q } = t.link(r, p) {
                    match t.link(s, q) {
                        PortLink::Router { router, port } => {
                            assert_eq!((router, port), (r, p), "asymmetric link {r}.{p}<->{s}.{q}");
                        }
                        other => panic!("{r}.{p} -> {s}.{q} but reverse is {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn mesh_is_symmetric_and_complete() {
        let t = TopologyGraph::build(Topology::Mesh, 8, 8);
        assert_eq!(t.routers(), 64);
        assert_eq!(t.nodes(), 64);
        check_symmetry(&t);
        // Interior router has 4 router links; corner has 2.
        let deg = |r: usize| {
            (0..5)
                .filter(|&p| matches!(t.link(r, p), PortLink::Router { .. }))
                .count()
        };
        assert_eq!(deg(0), 2);
        assert_eq!(deg(9), 4);
    }

    #[test]
    fn crossbar_hosts_every_node() {
        let t = TopologyGraph::build(Topology::Crossbar, 8, 8);
        assert_eq!(t.routers(), 1);
        assert_eq!(t.nodes(), 64);
        for n in 0..64 {
            let (r, p) = t.attach_of(NodeId(n as u16));
            assert_eq!(r, 0);
            assert_eq!(t.link(0, p), PortLink::Node(NodeId(n as u16)));
        }
    }

    #[test]
    fn fbfly_rows_and_columns_fully_connected() {
        let t = TopologyGraph::build(Topology::FlattenedButterfly, 8, 8);
        assert_eq!(t.routers(), 64);
        check_symmetry(&t);
        // Each router reaches all 7 row peers and 7 column peers.
        for r in 0..64 {
            let mut peers: Vec<usize> = (0..t.port_count(r))
                .filter_map(|p| match t.link(r, p) {
                    PortLink::Router { router, .. } => Some(router),
                    _ => None,
                })
                .collect();
            peers.sort_unstable();
            peers.dedup();
            assert_eq!(peers.len(), 14, "router {r}");
            let (x, y) = t.coords(r);
            for peer in peers {
                let (px, py) = t.coords(peer);
                assert!(
                    px == x || py == y,
                    "router {r} linked off-row/col to {peer}"
                );
            }
        }
    }

    #[test]
    fn dragonfly_groups_fully_connected_with_global_pairs() {
        let t = TopologyGraph::build(Topology::Dragonfly, 8, 8);
        assert_eq!(t.routers(), 64);
        check_symmetry(&t);
        assert_eq!(t.group_size(), 8);
        // Every ordered pair of groups joined by exactly one global link.
        let mut pair_links = std::collections::HashMap::new();
        for (r, _p, s) in t.router_links() {
            let (gr, gs) = (t.group_of(r), t.group_of(s));
            if gr != gs {
                *pair_links.entry((gr, gs)).or_insert(0usize) += 1;
            }
        }
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert_eq!(
                        pair_links.get(&(a, b)).copied().unwrap_or(0),
                        1,
                        "groups {a}->{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn attachments_are_unique() {
        for kind in Topology::ALL {
            let t = TopologyGraph::build(kind, 8, 8);
            let mut seen = std::collections::HashSet::new();
            for n in 0..t.nodes() {
                assert!(seen.insert(t.attach_of(NodeId(n as u16))), "{kind:?}");
            }
        }
    }

    #[test]
    fn route_tables_match_dynamic_candidates() {
        use clognet_proto::RoutingPolicy;
        for kind in Topology::ALL {
            for policy in [RoutingPolicy::DorXY, RoutingPolicy::DorYX] {
                let t = TopologyGraph::build(kind, 8, 8);
                let table = t.route_table(policy).expect("DOR is deterministic");
                assert_eq!(table.len(), t.routers() * t.nodes());
                for r in 0..t.routers() {
                    for n in 0..t.nodes() {
                        let c = crate::routing::candidates(&t, r, NodeId(n as u16), policy);
                        assert_eq!(
                            table[r * t.nodes() + n] as usize,
                            c.escape_port(),
                            "{kind:?} {policy:?} router {r} dst {n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn adaptive_mesh_policies_have_no_table() {
        use clognet_proto::RoutingPolicy;
        let mesh = TopologyGraph::build(Topology::Mesh, 8, 8);
        for policy in [
            RoutingPolicy::DyXY,
            RoutingPolicy::Footprint,
            RoutingPolicy::Hare,
        ] {
            assert!(mesh.route_table(policy).is_none(), "{policy:?} on mesh");
            // Off-mesh, the same policies degenerate to single-candidate
            // routing and the table applies.
            let fb = TopologyGraph::build(Topology::FlattenedButterfly, 8, 8);
            assert!(fb.route_table(policy).is_some(), "{policy:?} on fbfly");
        }
    }

    #[test]
    fn scaled_meshes_build() {
        for (w, h) in [(10, 10), (12, 12)] {
            let t = TopologyGraph::build(Topology::Mesh, w, h);
            assert_eq!(t.routers(), w * h);
            check_symmetry(&t);
        }
    }
}
