//! The cycle-driven network: packet slab, network interfaces, and the
//! VA → SA → ST pipeline over all routers.
//!
//! One [`Network`] simulates one physical network. The baseline system
//! instantiates two (request + reply); the virtual-network configuration
//! instantiates a single shared one with per-class VC partitions.

use crate::flit::{Flit, Slot};
use crate::router::{Alloc, Router};
use crate::routing;
use crate::shards::{Phase, ShardError, ShardPlan, ShardPool, ShardScratch};
use crate::stats::{class_ix, NocStats};
use crate::topology::{PortLink, TopologyGraph};
use clognet_proto::snap::{self, SnapError, SnapReader, SnapWriter};
use clognet_proto::{Cycle, NodeId, Packet, Priority, RoutingPolicy, Topology, TrafficClass};
use std::collections::VecDeque;
use std::sync::Arc;

/// How traffic classes map onto this physical network's VCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassAssignment {
    /// The network carries a single class with `vcs` virtual channels
    /// (the baseline's physically-separate request/reply networks).
    Single(TrafficClass, usize),
    /// Both classes share the physical network on disjoint VC sets
    /// (Section VII "virtual networks"; AVCP varies the split).
    Shared {
        /// VCs for request-class traffic.
        request_vcs: usize,
        /// VCs for reply-class traffic.
        reply_vcs: usize,
    },
}

impl ClassAssignment {
    /// The VC index range for `class`, or `None` if this network does not
    /// carry it.
    pub fn vc_range(&self, class: TrafficClass) -> Option<std::ops::Range<usize>> {
        match *self {
            ClassAssignment::Single(c, v) => (c == class).then_some(0..v),
            ClassAssignment::Shared {
                request_vcs,
                reply_vcs,
            } => match class {
                TrafficClass::Request => Some(0..request_vcs),
                TrafficClass::Reply => Some(request_vcs..request_vcs + reply_vcs),
            },
        }
    }

    /// Total VCs per port.
    pub fn total_vcs(&self) -> usize {
        match *self {
            ClassAssignment::Single(_, v) => v,
            ClassAssignment::Shared {
                request_vcs,
                reply_vcs,
            } => request_vcs + reply_vcs,
        }
    }
}

/// Construction parameters for one physical network.
#[derive(Debug, Clone)]
pub struct NetParams {
    /// Topology family.
    pub topology: Topology,
    /// Node-grid width.
    pub width: usize,
    /// Node-grid height.
    pub height: usize,
    /// Class → VC mapping.
    pub classes: ClassAssignment,
    /// Buffer depth per VC, in flits.
    pub vc_buf_flits: u8,
    /// Router pipeline depth in cycles (>= 2).
    pub pipeline: u32,
    /// Routing policy for request-class packets.
    pub routing_request: RoutingPolicy,
    /// Routing policy for reply-class packets.
    pub routing_reply: RoutingPolicy,
    /// Per-node ejection (reassembly) buffer, in flits. Must hold at
    /// least one maximum-size packet.
    pub eject_buf_flits: usize,
    /// iSLIP iterations per cycle (1 = the classic single-iteration
    /// separable allocator; more iterations fill in the matching and
    /// raise crossbar utilization at higher allocator cost).
    pub sa_iterations: usize,
}

impl NetParams {
    fn policy_for(&self, class: TrafficClass) -> RoutingPolicy {
        match class {
            TrafficClass::Request => self.routing_request,
            TrafficClass::Reply => self.routing_reply,
        }
    }
}

#[derive(Debug)]
struct InjSlot {
    slot: Slot,
    next_idx: u8,
    total: u8,
}

#[derive(Debug)]
struct Ni {
    router: usize,
    port: usize,
    /// One streaming slot per VC index (only indices within a carried
    /// class's range are ever used).
    inj: Vec<Option<InjSlot>>,
    /// Per-VC: did a flit stream into the router on this VC last tick?
    progress: Vec<bool>,
    /// Round-robin pointer over injection VCs (one flit per cycle total:
    /// a node has a single physical injection channel per network,
    /// regardless of topology — the premise behind the paper's
    /// "each memory node has a single reply network link").
    inj_rr: usize,
    /// Did `try_inject` fail for this class since the last tick?
    want: [bool; 2],
    /// Flits currently held by the ejection buffer (including flits of
    /// packets already assembled but not yet taken by the node).
    eject_used: usize,
    /// Fully reassembled packets awaiting the node.
    ejected: VecDeque<Packet>,
}

#[derive(Debug, Default)]
struct PacketSlab {
    v: Vec<Option<Packet>>,
    free: Vec<u32>,
    live: usize,
}

impl PacketSlab {
    fn insert(&mut self, p: Packet) -> Slot {
        self.live += 1;
        if let Some(i) = self.free.pop() {
            self.v[i as usize] = Some(p);
            i
        } else {
            self.v.push(Some(p));
            (self.v.len() - 1) as u32
        }
    }

    fn get(&self, s: Slot) -> &Packet {
        self.v[s as usize].as_ref().expect("live packet")
    }

    fn remove(&mut self, s: Slot) -> Packet {
        self.live -= 1;
        self.free.push(s);
        self.v[s as usize].take().expect("live packet")
    }
}

/// A cycle-accurate wormhole network with virtual channels, credit-based
/// flow control, and iSLIP switch allocation with CPU priority.
///
/// # Example
///
/// ```
/// use clognet_noc::{ClassAssignment, NetParams, Network};
/// use clognet_proto::*;
///
/// let mut net = Network::new(NetParams {
///     topology: Topology::Mesh,
///     width: 4,
///     height: 4,
///     classes: ClassAssignment::Single(TrafficClass::Request, 2),
///     vc_buf_flits: 4,
///     pipeline: 4,
///     routing_request: RoutingPolicy::DorXY,
///     routing_reply: RoutingPolicy::DorXY,
///     eject_buf_flits: 32,
///     sa_iterations: 1,
/// });
/// let pkt = Packet::new(
///     PacketId(1), NodeId(0), NodeId(15), MsgKind::ReadReq,
///     Priority::Gpu, Addr::new(0x100), 128, 16, 0,
/// );
/// net.try_inject(pkt).unwrap();
/// for _ in 0..100 { net.tick(); }
/// let out = net.take_ejected(NodeId(15), usize::MAX);
/// assert_eq!(out.len(), 1);
/// ```
#[derive(Debug)]
pub struct Network {
    params: NetParams,
    topo: TopologyGraph,
    routers: Vec<Router>,
    nis: Vec<Ni>,
    packets: PacketSlab,
    now: Cycle,
    stats: NocStats,
    credit_returns: Vec<(usize, usize, usize)>,
    transfers: Vec<(usize, usize, usize, Flit)>,
    total_vcs: usize,
    stats_epoch: Cycle,
    /// Flits buffered in each router's input VCs, maintained on every
    /// push/pop. `active[r] == 0` means router `r` has nothing to do in
    /// VA/SA this cycle and the tick loop skips it entirely.
    active: Vec<u32>,
    /// Reference mode: when `false`, the idle-router fast path is
    /// disabled and every router runs VA/SA each cycle (for equivalence
    /// tests; results must be identical either way).
    idle_skip: bool,
    /// Spatial partition of the router range: one entry (all routers)
    /// for the sequential engine, per-row groups when sharded.
    plan: ShardPlan,
    /// Per-shard working sets (SA scratch + deferred cross-shard
    /// traffic), reused across cycles; `scratch.len() == plan.shards()`.
    scratch: Vec<ShardScratch>,
    /// Worker pool driving shards 1.. in parallel (`None` = sequential).
    /// Shared between sibling networks so the request/reply pair uses
    /// one set of threads.
    pool: Option<Arc<ShardPool>>,
    /// Per-slot received-flit counts for ejection reassembly, indexed by
    /// packet slot (a packet ejects at exactly one node, so one shared
    /// flat array replaces the former per-NI `HashMap<Slot, u8>`). Grows
    /// with the packet slab; a free slot's count is always zero.
    eject_counts: Vec<u8>,
    /// Per-class precomputed next-hop tables
    /// (`table[router * nodes + dst]`), present when the class's routing
    /// policy is deterministic on this topology; adaptive policies keep
    /// evaluating [`routing::candidates`] dynamically.
    route_tables: [Option<Vec<u8>>; 2],
}

impl Network {
    /// Build the network.
    ///
    /// # Panics
    ///
    /// Panics if the ejection buffer cannot hold a maximum-size packet or
    /// the VC assignment is empty.
    pub fn new(params: NetParams) -> Self {
        let total_vcs = params.classes.total_vcs();
        assert!(total_vcs > 0, "need at least one VC");
        assert!(params.pipeline >= 2, "pipeline must be at least 2 stages");
        let topo = TopologyGraph::build(params.topology, params.width, params.height);
        let routers = (0..topo.routers())
            .map(|r| Router::new(topo.port_count(r), total_vcs, params.vc_buf_flits))
            .collect();
        let nis = (0..topo.nodes())
            .map(|n| {
                let (router, port) = topo.attach_of(NodeId(n as u16));
                Ni {
                    router,
                    port,
                    inj: (0..total_vcs).map(|_| None).collect(),
                    progress: vec![false; total_vcs],
                    inj_rr: 0,
                    want: [false; 2],
                    eject_used: 0,
                    ejected: VecDeque::new(),
                }
            })
            .collect();
        let stats = NocStats::new(topo.routers(), |r| topo.port_count(r), topo.nodes());
        let n_routers = topo.routers();
        let route_tables = [
            topo.route_table(params.policy_for(TrafficClass::Request)),
            topo.route_table(params.policy_for(TrafficClass::Reply)),
        ];
        Network {
            params,
            routers,
            nis,
            packets: PacketSlab::default(),
            now: 0,
            stats,
            credit_returns: Vec::new(),
            transfers: Vec::new(),
            total_vcs,
            stats_epoch: 0,
            active: vec![0; n_routers],
            idle_skip: true,
            plan: ShardPlan::single(n_routers),
            scratch: vec![ShardScratch::default()],
            pool: None,
            eject_counts: Vec::new(),
            route_tables,
            topo,
        }
    }

    /// Toggle the idle-router fast path (on by default). Turning it off
    /// forces every router through VA/SA each cycle — a reference mode
    /// for equivalence tests; simulated behavior is identical either
    /// way, only wall-clock differs.
    pub fn set_idle_skip(&mut self, on: bool) {
        self.idle_skip = on;
    }

    /// Configure spatial sharding. `n == 1` restores the sequential
    /// engine; `n > 1` partitions the mesh into per-row router groups
    /// ticked on a dedicated worker pool with per-phase barriers.
    /// Reports are byte-identical either way (see [`crate::shards`]).
    ///
    /// # Errors
    ///
    /// Fails when `n` shards cannot partition this topology: more than
    /// one shard requires a mesh whose row count `n` divides evenly.
    pub fn set_shards(&mut self, n: usize) -> Result<(), ShardError> {
        let pool = (n > 1).then(|| Arc::new(ShardPool::new(n)));
        self.set_shards_pooled(n, pool)
    }

    /// [`Self::set_shards`] with a caller-supplied pool, so sibling
    /// physical networks (the baseline's request + reply pair) share
    /// one set of worker threads. `pool` must be built for exactly `n`
    /// shards and be `None` iff `n == 1`.
    pub fn set_shards_pooled(
        &mut self,
        n: usize,
        pool: Option<Arc<ShardPool>>,
    ) -> Result<(), ShardError> {
        let plan = ShardPlan::new(
            self.params.topology,
            self.params.width,
            self.params.height,
            self.topo.routers(),
            n,
        )?;
        assert_eq!(
            pool.as_ref().map_or(1, |p| p.shards()),
            plan.shards(),
            "pool sized for a different shard count"
        );
        self.scratch = (0..plan.shards())
            .map(|_| ShardScratch::default())
            .collect();
        self.plan = plan;
        self.pool = pool;
        Ok(())
    }

    /// Current shard count (1 = sequential engine).
    pub fn shards(&self) -> usize {
        self.plan.shards()
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The topology graph (for layout-aware statistics).
    pub fn topo(&self) -> &TopologyGraph {
        &self.topo
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Zero all statistics (warmup exclusion). The clock keeps running;
    /// latency means and rates computed afterwards cover only the
    /// post-reset window.
    pub fn reset_stats(&mut self) {
        let nodes = self.nis.len();
        let routers = self.routers.len();
        let mut fresh = NocStats::new(routers, |r| self.topo.port_count(r), nodes);
        fresh.cycles = 0;
        self.stats = fresh;
        self.stats_epoch = self.now;
    }

    /// Serialize the network's full mutable state: routers, NIs, the
    /// packet slab (including its free list, which decides future slot
    /// assignment), reassembly counters, clock and statistics. Engine
    /// configuration (idle-skip, shard plan, worker pool) is deliberately
    /// excluded: snapshots are byte-identical across engine modes and a
    /// restored network may run under a different one.
    ///
    /// # Panics
    ///
    /// Panics if called mid-tick (deferred transfers or credit returns
    /// pending) — snapshots are only defined at tick boundaries.
    pub fn save_state(&self, w: &mut SnapWriter) {
        assert!(
            self.transfers.is_empty() && self.credit_returns.is_empty(),
            "snapshot mid-tick"
        );
        w.u64(self.now);
        w.usize(self.packets.v.len());
        for p in &self.packets.v {
            match p {
                Some(p) => {
                    w.bool(true);
                    snap::save_packet(w, p);
                }
                None => w.bool(false),
            }
        }
        w.usize(self.packets.free.len());
        for &s in &self.packets.free {
            w.u32(s);
        }
        w.usize(self.packets.live);
        for r in &self.routers {
            for port in &r.inputs {
                for vc in port {
                    w.usize(vc.buf.len());
                    for f in &vc.buf {
                        w.u32(f.slot);
                        w.u8(f.idx);
                        w.u8(f.total);
                        w.u64(f.eligible);
                    }
                    match vc.alloc {
                        Some(a) => {
                            w.bool(true);
                            w.u8(a.port);
                            w.u8(a.vc);
                            w.bool(a.eject);
                        }
                        None => w.bool(false),
                    }
                }
            }
            for port in &r.out_owner {
                for o in port {
                    match o {
                        Some((i, v)) => {
                            w.bool(true);
                            w.u8(*i);
                            w.u8(*v);
                        }
                        None => w.bool(false),
                    }
                }
            }
            for port in &r.credits {
                for &c in port {
                    w.u8(c);
                }
            }
            for &g in &r.grant_ptr {
                w.usize(g);
            }
            for &a in &r.accept_ptr {
                w.usize(a);
            }
            for &h in &r.hare_score {
                w.f64(h);
            }
            for &f in &r.footprint {
                w.u64(f);
            }
        }
        for ni in &self.nis {
            for s in &ni.inj {
                match s {
                    Some(s) => {
                        w.bool(true);
                        w.u32(s.slot);
                        w.u8(s.next_idx);
                        w.u8(s.total);
                    }
                    None => w.bool(false),
                }
            }
            for &p in &ni.progress {
                w.bool(p);
            }
            w.usize(ni.inj_rr);
            w.bool(ni.want[0]);
            w.bool(ni.want[1]);
            w.usize(ni.eject_used);
            w.usize(ni.ejected.len());
            for p in &ni.ejected {
                snap::save_packet(w, p);
            }
        }
        w.bytes(&self.eject_counts);
        w.u64(self.stats_epoch);
        self.stats.save_state(w);
    }

    /// Overlay state captured by [`Network::save_state`] onto a network
    /// built with the same [`NetParams`]. The current engine mode
    /// (idle-skip, shard plan) is preserved; the idle-router activity
    /// counts are recomputed from the restored buffers.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.now = r.u64()?;
        let n = r.usize()?;
        self.packets.v.clear();
        for _ in 0..n {
            self.packets.v.push(if r.bool()? {
                Some(snap::load_packet(r)?)
            } else {
                None
            });
        }
        self.packets.free.clear();
        for _ in 0..r.usize()? {
            self.packets.free.push(r.u32()?);
        }
        self.packets.live = r.usize()?;
        let live = self.packets.v.iter().filter(|p| p.is_some()).count();
        if self.packets.live != live {
            return Err(SnapError::Corrupt("packet slab live count mismatch"));
        }
        for router in &mut self.routers {
            for port in &mut router.inputs {
                for vc in port {
                    vc.buf.clear();
                    for _ in 0..r.usize()? {
                        vc.buf.push_back(Flit {
                            slot: r.u32()?,
                            idx: r.u8()?,
                            total: r.u8()?,
                            eligible: r.u64()?,
                        });
                    }
                    vc.alloc = if r.bool()? {
                        Some(Alloc {
                            port: r.u8()?,
                            vc: r.u8()?,
                            eject: r.bool()?,
                        })
                    } else {
                        None
                    };
                }
            }
            for port in &mut router.out_owner {
                for o in port {
                    *o = if r.bool()? {
                        Some((r.u8()?, r.u8()?))
                    } else {
                        None
                    };
                }
            }
            for port in &mut router.credits {
                for c in port {
                    *c = r.u8()?;
                }
            }
            for g in &mut router.grant_ptr {
                *g = r.usize()?;
            }
            for a in &mut router.accept_ptr {
                *a = r.usize()?;
            }
            for h in &mut router.hare_score {
                *h = r.f64()?;
            }
            for f in &mut router.footprint {
                *f = r.u64()?;
            }
        }
        for ni in &mut self.nis {
            for s in &mut ni.inj {
                *s = if r.bool()? {
                    Some(InjSlot {
                        slot: r.u32()?,
                        next_idx: r.u8()?,
                        total: r.u8()?,
                    })
                } else {
                    None
                };
            }
            for p in &mut ni.progress {
                *p = r.bool()?;
            }
            ni.inj_rr = r.usize()?;
            ni.want = [r.bool()?, r.bool()?];
            ni.eject_used = r.usize()?;
            ni.ejected.clear();
            for _ in 0..r.usize()? {
                ni.ejected.push_back(snap::load_packet(r)?);
            }
        }
        self.eject_counts = r.bytes()?;
        self.stats_epoch = r.u64()?;
        self.stats.load_state(r)?;
        for (i, router) in self.routers.iter().enumerate() {
            self.active[i] = router.buffered_flits() as u32;
        }
        self.transfers.clear();
        self.credit_returns.clear();
        Ok(())
    }

    /// Packets currently inside the network (including reassembled ones
    /// not yet taken).
    pub fn in_flight(&self) -> usize {
        self.packets.live + self.nis.iter().map(|ni| ni.ejected.len()).sum::<usize>()
    }

    /// Flits buffered inside router input VCs (congestion diagnostic).
    pub fn buffered_flits(&self) -> usize {
        self.routers.iter().map(|r| r.buffered_flits()).sum()
    }

    /// Flits buffered inside one router's input VCs — the per-router VC
    /// occupancy hook the telemetry sampler reads to find hot spots.
    pub fn router_buffered_flits(&self, router: usize) -> usize {
        self.routers[router].buffered_flits()
    }

    /// Whether a new packet of (`class`, `prio`) could start streaming at
    /// `node` right now (a free injection VC in its partition exists).
    pub fn can_inject(&self, node: NodeId, class: TrafficClass, prio: Priority) -> bool {
        if self.params.classes.vc_range(class).is_none() {
            return false;
        }
        let mut slots = self.vc_partition(class, prio);
        let ni = &self.nis[node.index()];
        slots.any(|v| ni.inj[v].is_none())
    }

    /// True when `node` could not inject (`class`, `prio`) traffic: every
    /// streaming slot of the partition is busy and none of them made
    /// progress during the last tick. This is the paper's trigger for
    /// speculative delegation ("only ... when memory nodes cannot inject
    /// reply traffic into the NoC").
    pub fn inject_blocked(&self, node: NodeId, class: TrafficClass, prio: Priority) -> bool {
        if self.params.classes.vc_range(class).is_none() {
            return true;
        }
        let mut slots = self.vc_partition(class, prio);
        let ni = &self.nis[node.index()];
        slots.all(|v| ni.inj[v].is_some() && !ni.progress[v])
    }

    /// Hand a packet to the node's network interface.
    ///
    /// # Errors
    ///
    /// Returns the packet back if no injection VC of its class is free;
    /// the caller keeps it queued (this is exactly how memory-node
    /// injection buffers back up and block).
    ///
    /// # Panics
    ///
    /// Panics if this network does not carry the packet's class, or if
    /// `src == dst`.
    pub fn try_inject(&mut self, pkt: Packet) -> Result<(), Packet> {
        assert_ne!(pkt.src, pkt.dst, "self-send: {pkt}");
        let class = pkt.class();
        if self.params.classes.vc_range(class).is_none() {
            panic!("network does not carry {class}");
        }
        let mut slots = self.vc_partition(class, pkt.prio);
        let ni = &mut self.nis[pkt.src.index()];
        let Some(vc) = slots.find(|&v| ni.inj[v].is_none()) else {
            ni.want[class_ix(class)] = true;
            return Err(pkt);
        };
        self.stats.injected_pkts[class_ix(class)] += 1;
        self.stats.injected_flits[class_ix(class)] += pkt.flits as u64;
        let total = pkt.flits;
        let slot = self.packets.insert(pkt);
        ni.inj[vc] = Some(InjSlot {
            slot,
            next_idx: 0,
            total,
        });
        Ok(())
    }

    /// Take the oldest fully-reassembled packet destined to `node`, if
    /// any. Taking a packet frees its flits' worth of ejection-buffer
    /// space; a node that stops taking (a blocked memory node)
    /// back-pressures the network. This is the allocation-free primitive
    /// behind [`Self::take_ejected`]; hot loops call it directly.
    pub fn pop_ejected(&mut self, node: NodeId) -> Option<Packet> {
        let ni = &mut self.nis[node.index()];
        let p = ni.ejected.pop_front()?;
        ni.eject_used -= p.flits as usize;
        Some(p)
    }

    /// Append up to `max` fully-reassembled packets destined to `node`
    /// onto `out` (which is NOT cleared), returning how many were moved.
    /// The fill-into-caller-buffer form of [`Self::take_ejected`]: the
    /// caller reuses one buffer across cycles instead of allocating a
    /// fresh `Vec` per call.
    pub fn take_ejected_into(&mut self, node: NodeId, max: usize, out: &mut Vec<Packet>) -> usize {
        let ni = &mut self.nis[node.index()];
        let n = ni.ejected.len().min(max);
        out.reserve(n);
        for _ in 0..n {
            let p = ni.ejected.pop_front().expect("counted");
            ni.eject_used -= p.flits as usize;
            out.push(p);
        }
        n
    }

    /// Take up to `max` fully-reassembled packets destined to `node`.
    /// Convenience wrapper over [`Self::take_ejected_into`] for tests
    /// and examples; per-cycle code paths use the `_into`/`pop` variants
    /// to stay allocation-free.
    pub fn take_ejected(&mut self, node: NodeId, max: usize) -> Vec<Packet> {
        let mut out = Vec::new();
        self.take_ejected_into(node, max, &mut out);
        out
    }

    /// Append up to `max` reassembled packets at `node` onto `out`,
    /// serving CPU packets anywhere in the queue first (the
    /// memory-system CPU priority of Table I applied at the ejection
    /// interface). Returns how many were moved.
    pub fn take_ejected_cpu_first_into(
        &mut self,
        node: NodeId,
        max: usize,
        out: &mut Vec<Packet>,
    ) -> usize {
        let ni = &mut self.nis[node.index()];
        let mut n = 0;
        while n < max {
            let ix = ni
                .ejected
                .iter()
                .position(|p| p.prio == Priority::Cpu)
                .unwrap_or(0);
            let Some(p) = ni.ejected.remove(ix) else {
                break;
            };
            ni.eject_used -= p.flits as usize;
            out.push(p);
            n += 1;
        }
        n
    }

    /// Take up to `max` reassembled packets at `node`, CPU first.
    /// Convenience wrapper over [`Self::take_ejected_cpu_first_into`].
    pub fn take_ejected_cpu_first(&mut self, node: NodeId, max: usize) -> Vec<Packet> {
        let mut out = Vec::new();
        self.take_ejected_cpu_first_into(node, max, &mut out);
        out
    }

    /// Peek the first reassembled packet waiting at `node`.
    pub fn peek_ejected(&self, node: NodeId) -> Option<&Packet> {
        self.nis[node.index()].ejected.front()
    }

    /// Number of reassembled packets waiting at `node`.
    pub fn ejected_len(&self, node: NodeId) -> usize {
        self.nis[node.index()].ejected.len()
    }

    fn proc_delay(&self, class: TrafficClass) -> Cycle {
        // RC + VA occupy pipeline-2 of the pipeline stages; SA and ST
        // are explicit in the tick loop. Adaptive routing pays one extra
        // stage for the heavier route computation / switch allocation
        // (the crossbar-congestion overhead of Dally & Aoki cited by the
        // paper as the reason adaptive schemes lose to CDR).
        let adaptive = matches!(
            self.params.policy_for(class),
            RoutingPolicy::DyXY | RoutingPolicy::Footprint | RoutingPolicy::Hare
        );
        (self.params.pipeline - 2) as Cycle + Cycle::from(adaptive)
    }

    /// The VC sub-range a packet of (`class`, `prio`) may occupy.
    ///
    /// On the reply network the top VC of the class range is reserved for
    /// CPU packets (and CPU packets use only it): this is how "higher
    /// priority to CPU packets in the VC allocator" (Table I / Zhan+
    /// OSCAR) becomes effective despite FIFO VC buffers — a CPU reply is
    /// never stuck behind a wormholing GPU reply. The request network
    /// keeps shared VCs: 1-flit requests cause no wormhole head-of-line
    /// blocking worth a dedicated VC, and halving the GPU request VCs
    /// measurably hurts both classes. Dragonfly needs its second VC for
    /// deadlock avoidance, so no reservation there.
    fn vc_partition(&self, class: TrafficClass, prio: Priority) -> std::ops::Range<usize> {
        let range = self.params.classes.vc_range(class).expect("carried class");
        if class == TrafficClass::Reply
            && range.len() >= 2
            && self.params.topology != Topology::Dragonfly
        {
            match prio {
                Priority::Cpu => range.end - 1..range.end,
                Priority::Gpu => range.start..range.end - 1,
            }
        } else {
            range
        }
    }

    /// The earliest future cycle at which [`Self::tick`] could change
    /// observable state absent new injections.
    ///
    /// `Some(now)` whenever any packet is live inside the network (a
    /// flit could move every cycle) or a HARE policy is configured (its
    /// per-port credit EWMA decays every cycle even when idle, so the
    /// network never quiesces). `None` means ticking is a pure clock
    /// increment and the caller may [`Self::advance_to`] instead.
    /// Reassembled packets waiting in ejection queues do not count: they
    /// are passive until the node takes them.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        debug_assert_eq!(now, self.now, "network clock out of sync");
        let hare = matches!(self.params.routing_request, RoutingPolicy::Hare)
            || matches!(self.params.routing_reply, RoutingPolicy::Hare);
        if self.packets.live > 0 || hare {
            return Some(now);
        }
        None
    }

    /// Jump the network clock to `cycle` without ticking, integrating
    /// the skipped span into the cycle counter. Only valid when
    /// [`Self::next_event`] returned `None`: with no live packets the
    /// per-cycle work of [`Self::tick`] reduces to exactly this clock
    /// update.
    pub fn advance_to(&mut self, cycle: Cycle) {
        debug_assert!(cycle >= self.now, "clock must not run backwards");
        debug_assert_eq!(self.packets.live, 0, "advance_to with live packets");
        self.now = cycle;
        self.stats.cycles = self.now - self.stats_epoch;
    }

    /// Advance the network by one cycle.
    ///
    /// Steady-state ticks perform zero heap allocations: all per-cycle
    /// working sets (SA requests/grants/matches, link transfers, credit
    /// returns) live in per-shard scratch buffers that are drained in
    /// place, and routers with no buffered flits (`active[r] == 0`) skip
    /// VA/SA entirely.
    ///
    /// The VA and SA/ST phases run over the shard plan — inline for the
    /// sequential engine, fanned out over the worker pool when sharded
    /// — and the per-shard results merge in shard (= router) order, so
    /// both engines execute the identical state transition.
    pub fn tick(&mut self) {
        // Reset per-tick NI progress flags.
        for ni in &mut self.nis {
            ni.progress.iter_mut().for_each(|p| *p = false);
        }
        self.update_adaptive_state();
        // Pre-size the reassembly counters: slots are bounded by the
        // slab length, so the SA/ST phase (possibly parallel) indexes
        // without growing the array.
        if self.eject_counts.len() < self.packets.v.len() {
            self.eject_counts.resize(self.packets.v.len(), 0);
        }
        match self.pool.clone() {
            Some(pool) => {
                pool.run(self, Phase::Va);
                pool.run(self, Phase::SaSt);
            }
            None => {
                self.va_shard(0);
                self.sa_st_shard(0);
            }
        }
        self.merge_shards();
        // Apply link transfers (arrivals become visible next tick).
        // Drained in place: capacity is retained across cycles and
        // nothing pushes to `transfers` during the apply loop.
        for (r, p, vc, f) in self.transfers.drain(..) {
            let buf = &mut self.routers[r].inputs[p][vc].buf;
            assert!(
                buf.len() < self.params.vc_buf_flits as usize,
                "VC overflow at router {r} port {p} vc {vc}: credits violated"
            );
            buf.push_back(f);
            self.active[r] += 1;
        }
        self.ni_injection();
        // Apply credit returns (one-cycle credit latency), drained in
        // place like the transfers above.
        for (r, p, vc) in self.credit_returns.drain(..) {
            let c = &mut self.routers[r].credits[p][vc];
            *c += 1;
            assert!(
                *c <= self.params.vc_buf_flits,
                "credit overflow at router {r} port {p} vc {vc}"
            );
        }
        // Injection-stall accounting.
        for (n, ni) in self.nis.iter_mut().enumerate() {
            if ni.want.iter().any(|&w| w) {
                self.stats.node_inj_stall_cycles[n] += 1;
            }
            ni.want = [false; 2];
        }
        self.now += 1;
        self.stats.cycles = self.now - self.stats_epoch;
    }

    /// VC allocation over shard `s`'s router range. Mutates only those
    /// routers' state, so shards run this concurrently.
    pub(crate) fn va_shard(&mut self, s: usize) {
        let range = self.plan.router_range(s);
        for r in range {
            if self.idle_skip && self.active[r] == 0 {
                continue;
            }
            self.va_router(r);
        }
    }

    /// Switch allocation + traversal over shard `s`'s router range.
    /// In-place mutations stay within the shard (its routers and their
    /// locally attached NIs); everything crossing a boundary is deferred
    /// into the shard's scratch for the in-order merge.
    pub(crate) fn sa_st_shard(&mut self, s: usize) {
        let range = self.plan.router_range(s);
        let mut sc = std::mem::take(&mut self.scratch[s]);
        for r in range {
            if self.idle_skip && self.active[r] == 0 {
                continue;
            }
            self.sa_st_router(r, &mut sc);
        }
        self.scratch[s] = sc;
    }

    /// Fold the per-shard scratches back into global state, in shard
    /// order. Shard order equals router order, so the transfer, credit,
    /// and ejection streams — and with them the packet-slab free list
    /// that decides future slot assignment — are exactly what one
    /// sequential pass over all routers produces.
    fn merge_shards(&mut self) {
        for s in 0..self.scratch.len() {
            let mut sc = std::mem::take(&mut self.scratch[s]);
            for &(slot, node) in &sc.ejections {
                let pkt = self.packets.remove(slot);
                let latency = self.now - pkt.created;
                self.stats
                    .record_ejection(pkt.class(), pkt.prio, latency, node, pkt.flits);
                self.nis[node].ejected.push_back(pkt);
            }
            sc.ejections.clear();
            // The global apply buffers are empty here (drained last
            // tick); swapping donates the scratch's capacity instead of
            // copying, keeping the single-shard path free of extra work.
            if self.transfers.is_empty() {
                std::mem::swap(&mut self.transfers, &mut sc.transfers);
            } else {
                self.transfers.append(&mut sc.transfers);
            }
            if self.credit_returns.is_empty() {
                std::mem::swap(&mut self.credit_returns, &mut sc.credit_returns);
            } else {
                self.credit_returns.append(&mut sc.credit_returns);
            }
            self.scratch[s] = sc;
        }
    }

    fn update_adaptive_state(&mut self) {
        // HARE keeps an EWMA of per-port free credits; cheap enough to
        // update only when an adaptive policy is configured.
        let adaptive = matches!(self.params.routing_request, RoutingPolicy::Hare)
            || matches!(self.params.routing_reply, RoutingPolicy::Hare);
        if !adaptive {
            return;
        }
        for r in &mut self.routers {
            for p in 0..r.hare_score.len() {
                let free: u32 = r.credits[p].iter().map(|&c| c as u32).sum();
                r.hare_score[p] = 0.9 * r.hare_score[p] + 0.1 * free as f64;
            }
        }
    }

    /// VC allocation: give head flits at the front of their input VC an
    /// output port + output VC.
    fn va_router(&mut self, r: usize) {
        let n_ports = self.routers[r].inputs.len();
        for i in 0..n_ports {
            for v in 0..self.total_vcs {
                if self.routers[r].inputs[i][v].alloc.is_some() {
                    continue;
                }
                let Some(&f) = self.routers[r].inputs[i][v].buf.front() else {
                    continue;
                };
                debug_assert!(f.is_head(), "body flit at VC head without allocation");
                if f.eligible > self.now {
                    continue;
                }
                let pkt = self.packets.get(f.slot);
                let class = pkt.class();
                let prio = pkt.prio;
                let dst = pkt.dst;
                let policy = self.params.policy_for(class);
                // Deterministic policies read the precomputed next-hop
                // table; adaptive ones evaluate the routing relation per
                // head flit.
                let cand = match &self.route_tables[class_ix(class)] {
                    Some(t) => {
                        routing::Candidates::single(t[r * self.nis.len() + dst.index()] as usize)
                    }
                    None => routing::candidates(&self.topo, r, dst, policy),
                };
                if let Some(alloc) = self.choose_output(r, class, prio, dst, policy, &cand) {
                    if !alloc.eject {
                        self.routers[r].out_owner[alloc.port as usize][alloc.vc as usize] =
                            Some((i as u8, v as u8));
                    }
                    self.routers[r].inputs[i][v].alloc = Some(alloc);
                }
            }
        }
    }

    /// Pick (port, out VC) among the routing candidates according to the
    /// policy's congestion preference; `None` if nothing is free.
    #[allow(clippy::too_many_arguments)]
    fn choose_output(
        &self,
        r: usize,
        class: TrafficClass,
        prio: Priority,
        dst: NodeId,
        policy: RoutingPolicy,
        cand: &routing::Candidates,
    ) -> Option<Alloc> {
        // Ejection port: no VC ownership, gated by the NI buffer in SA.
        let first = cand.escape_port();
        if let PortLink::Node(_) = self.topo.link(r, first) {
            return Some(Alloc {
                port: first as u8,
                vc: 0,
                eject: true,
            });
        }
        let range = self.params.classes.vc_range(class).expect("carried class");
        let part = self.vc_partition(class, prio);
        let floor = routing::vc_floor(&self.topo, r, dst);
        let router = &self.routers[r];
        // Order candidates by the policy's preference. At most 3
        // candidates exist (escape + adaptive alternatives), so a stack
        // array replaces the former per-call `Vec`.
        let n_cand = cand.ports().len();
        let mut port_buf = [0usize; 3];
        port_buf[..n_cand].copy_from_slice(cand.ports());
        let ports = &mut port_buf[..n_cand];
        match policy {
            RoutingPolicy::DorXY | RoutingPolicy::DorYX => {}
            RoutingPolicy::DyXY => {
                // Most free credits first; escape wins ties.
                ports.sort_by_key(|&p| {
                    (
                        u32::MAX - router.free_credits(p, range.start, range.end),
                        !cand.is_escape(p) as u8,
                    )
                });
            }
            RoutingPolicy::Footprint => {
                // Escape first unless the adaptive port was recently
                // profitable or the escape route is out of credits.
                let escape = cand.escape_port();
                let escape_starved = router.free_credits(escape, range.start, range.end) == 0;
                ports.sort_by_key(|&p| {
                    if cand.is_escape(p) {
                        u8::from(escape_starved)
                    } else {
                        let fresh = self.now.saturating_sub(router.footprint[p]) < 64;
                        if escape_starved || fresh {
                            0
                        } else {
                            2
                        }
                    }
                });
            }
            RoutingPolicy::Hare => {
                ports.sort_by(|&a, &b| {
                    router.hare_score[b]
                        .partial_cmp(&router.hare_score[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            }
        }
        for &p in ports.iter() {
            // Escape VC (first VC of the class range) is reserved for the
            // dimension-order port under adaptive mesh policies.
            let adaptive_policy = matches!(
                policy,
                RoutingPolicy::DyXY | RoutingPolicy::Footprint | RoutingPolicy::Hare
            ) && self.topo.kind() == Topology::Mesh;
            let start_off = if adaptive_policy && !cand.is_escape(p) {
                1
            } else {
                0
            };
            let lo = (range.start + start_off.max(floor)).max(part.start);
            for vc in lo..part.end {
                if self.routers[r].out_owner[p][vc].is_none() {
                    return Some(Alloc {
                        port: p as u8,
                        vc: vc as u8,
                        eject: false,
                    });
                }
            }
        }
        None
    }

    /// Switch allocation (iterative iSLIP with strict CPU priority)
    /// followed by switch/link traversal for the winners.
    ///
    /// All working sets live in the `sa_*` buffers of the shard's
    /// scratch: cleared (not reallocated) per router, so steady-state
    /// cycles never touch the heap.
    #[allow(clippy::needless_range_loop)] // indices drive router state arrays
    fn sa_st_router(&mut self, r: usize, sc: &mut ShardScratch) {
        let n_ports = self.routers[r].inputs.len();
        // Gather requests: (out_port, in_port, in_vc, prio).
        sc.sa_requests.clear();
        for i in 0..n_ports {
            for v in 0..self.total_vcs {
                let ivc = &self.routers[r].inputs[i][v];
                let Some(alloc) = ivc.alloc else { continue };
                let Some(&f) = ivc.buf.front() else { continue };
                if f.eligible > self.now {
                    continue;
                }
                let ok = if alloc.eject {
                    let node = match self.topo.link(r, alloc.port as usize) {
                        PortLink::Node(n) => n,
                        other => panic!("eject alloc to {other:?}"),
                    };
                    let ni = &self.nis[node.index()];
                    // Head flits reserve the whole packet's reassembly
                    // space up front so interleaved partial packets can
                    // never wedge the ejection buffer.
                    if f.is_head() {
                        ni.eject_used + f.total as usize <= self.params.eject_buf_flits
                    } else {
                        true
                    }
                } else {
                    self.routers[r].credits[alloc.port as usize][alloc.vc as usize] > 0
                };
                if ok {
                    let prio = self.packets.get(f.slot).prio;
                    sc.sa_requests.push((alloc.port as usize, i, v, prio));
                }
            }
        }
        if sc.sa_requests.is_empty() {
            return;
        }
        let n_out = self.routers[r].out_owner.len();
        sc.sa_out_taken.clear();
        sc.sa_out_taken.resize(n_out, false);
        sc.sa_in_taken.clear();
        sc.sa_in_taken.resize(n_ports, false);
        sc.sa_accepted.clear();
        // Iterative separable matching: each round runs a grant pass per
        // free output and an accept pass per free input; matched pairs
        // are removed and the next round fills in the matching.
        for round in 0..self.params.sa_iterations.max(1) {
            // Grant: one request per free output port (CPU first, then
            // rotating).
            sc.sa_grants.clear(); // (out, in, vc)
            for op in 0..n_out {
                if sc.sa_out_taken[op] {
                    continue;
                }
                let mut best: Option<(usize, usize, Priority, usize)> = None;
                let ptr = self.routers[r].grant_ptr[op];
                let id_space = n_ports * self.total_vcs;
                for &(o, i, v, prio) in &sc.sa_requests {
                    if o != op || sc.sa_in_taken[i] {
                        continue;
                    }
                    let id = i * self.total_vcs + v;
                    let dist = (id + id_space - ptr) % id_space;
                    let better = match best {
                        None => true,
                        Some((_, _, bp, bd)) => (prio, dist) < (bp, bd),
                    };
                    if better {
                        best = Some((i, v, prio, dist));
                    }
                }
                if let Some((i, v, _, _)) = best {
                    sc.sa_grants.push((op, i, v));
                }
            }
            if sc.sa_grants.is_empty() {
                break;
            }
            // Accept: one grant per free input port (CPU first, then
            // rotating).
            let mut progress = false;
            for i in 0..n_ports {
                if sc.sa_in_taken[i] {
                    continue;
                }
                let mut best: Option<(usize, usize, Priority, usize)> = None;
                let ptr = self.routers[r].accept_ptr[i];
                for &(op, gi, v) in &sc.sa_grants {
                    if gi != i {
                        continue;
                    }
                    let f = self.routers[r].inputs[i][v].buf.front().expect("requested");
                    let prio = self.packets.get(f.slot).prio;
                    let dist = (v + self.total_vcs - ptr) % self.total_vcs;
                    let better = match best {
                        None => true,
                        Some((_, _, bp, bd)) => (prio, dist) < (bp, bd),
                    };
                    if better {
                        best = Some((op, v, prio, dist));
                    }
                }
                if let Some((op, v, _, _)) = best {
                    sc.sa_accepted.push((i, v, op));
                    sc.sa_in_taken[i] = true;
                    sc.sa_out_taken[op] = true;
                    progress = true;
                    // iSLIP pointer updates only on first-iteration
                    // accepts (the classic desynchronization rule).
                    if round == 0 {
                        self.routers[r].grant_ptr[op] =
                            (i * self.total_vcs + v + 1) % (n_ports * self.total_vcs);
                        self.routers[r].accept_ptr[i] = (v + 1) % self.total_vcs;
                    }
                }
            }
            if !progress {
                break;
            }
        }
        // ST for the winners (indexed: traverse needs `&mut self`).
        for k in 0..sc.sa_accepted.len() {
            let (i, v, op) = sc.sa_accepted[k];
            self.traverse(r, i, v, op, sc);
        }
    }

    /// Move the head-of-VC flit of (router `r`, input `i`, VC `v`) out of
    /// output port `op`. Cross-shard effects (credit returns, link
    /// transfers, ejection finalization) are deferred into `sc`.
    fn traverse(&mut self, r: usize, i: usize, v: usize, op: usize, sc: &mut ShardScratch) {
        let alloc = self.routers[r].inputs[i][v].alloc.expect("allocated");
        debug_assert_eq!(alloc.port as usize, op);
        let f = self.routers[r].inputs[i][v]
            .buf
            .pop_front()
            .expect("requested flit");
        self.active[r] -= 1;
        self.stats.link_flits[r][op] += 1;
        // Credit return towards whoever feeds this input VC (possibly a
        // router in another shard — deferred).
        if let PortLink::Router { router: s, port: q } = self.topo.link(r, i) {
            sc.credit_returns.push((s, q, v));
        }
        let tail = f.is_tail();
        match self.topo.link(r, op) {
            PortLink::Node(node) => {
                // Ejection into the NI reassembly buffer. Space for the
                // whole packet was reserved when the head ejected; the
                // NI is locally attached, hence shard-local.
                if f.is_head() {
                    self.nis[node.index()].eject_used += f.total as usize;
                }
                let s = f.slot as usize;
                debug_assert!(s < self.eject_counts.len(), "counters pre-sized in tick");
                self.eject_counts[s] += 1;
                if self.eject_counts[s] == f.total {
                    self.eject_counts[s] = 0;
                    // Completion touches shared state (packet slab,
                    // global stats); finalized during the in-order merge.
                    sc.ejections.push((f.slot, node.index()));
                }
            }
            PortLink::Router { router: s, port: q } => {
                let out_vc = alloc.vc as usize;
                let c = &mut self.routers[r].credits[op][out_vc];
                debug_assert!(*c > 0);
                *c -= 1;
                // Footprint: taking a non-escape port while it had credit
                // marks it profitable.
                self.routers[r].footprint[op] = self.now;
                let class = self.packets.get(f.slot).class();
                let arrival = Flit {
                    eligible: self.now + 1 + self.proc_delay(class),
                    ..f
                };
                sc.transfers.push((s, q, out_vc, arrival));
                if tail {
                    self.routers[r].out_owner[op][out_vc] = None;
                }
            }
            PortLink::Unused => panic!("routed into an unwired port"),
        }
        if tail {
            self.routers[r].inputs[i][v].alloc = None;
        }
    }

    /// Stream flits from NI injection slots into the local input VCs:
    /// at most ONE flit per node per cycle — the node's single physical
    /// injection channel, whatever the topology.
    fn ni_injection(&mut self) {
        for n in 0..self.nis.len() {
            let (router, port) = (self.nis[n].router, self.nis[n].port);
            let start = self.nis[n].inj_rr;
            for k in 0..self.total_vcs {
                let vc = (start + k) % self.total_vcs;
                let Some(slot) = self.nis[n].inj[vc].as_ref() else {
                    continue;
                };
                let buf_len = self.routers[router].inputs[port][vc].buf.len();
                if buf_len >= self.params.vc_buf_flits as usize {
                    continue;
                }
                let (s, idx, total) = (slot.slot, slot.next_idx, slot.total);
                let class = self.packets.get(s).class();
                let f = Flit {
                    slot: s,
                    idx,
                    total,
                    eligible: self.now + 1 + self.proc_delay(class),
                };
                self.routers[router].inputs[port][vc].buf.push_back(f);
                self.active[router] += 1;
                self.stats.node_tx_flits[n] += 1;
                self.nis[n].progress[vc] = true;
                let slot = self.nis[n].inj[vc].as_mut().expect("checked");
                slot.next_idx += 1;
                if slot.next_idx == total {
                    self.nis[n].inj[vc] = None;
                }
                self.nis[n].inj_rr = (vc + 1) % self.total_vcs;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clognet_proto::{Addr, MsgKind, PacketId};

    fn params(topology: Topology) -> NetParams {
        NetParams {
            topology,
            width: 8,
            height: 8,
            classes: ClassAssignment::Single(TrafficClass::Request, 2),
            vc_buf_flits: 4,
            pipeline: 4,
            routing_request: RoutingPolicy::DorXY,
            routing_reply: RoutingPolicy::DorXY,
            eject_buf_flits: 32,
            sa_iterations: 1,
        }
    }

    fn mk_pkt(id: u64, src: u16, dst: u16, kind: MsgKind, now: Cycle) -> Packet {
        Packet::new(
            PacketId(id),
            NodeId(src),
            NodeId(dst),
            kind,
            Priority::Gpu,
            Addr::new(id * 128),
            128,
            16,
            now,
        )
    }

    #[test]
    fn single_packet_delivery() {
        let mut net = Network::new(params(Topology::Mesh));
        net.try_inject(mk_pkt(1, 0, 63, MsgKind::ReadReq, 0))
            .unwrap();
        for _ in 0..200 {
            net.tick();
        }
        let out = net.take_ejected(NodeId(63), usize::MAX);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, PacketId(1));
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn latency_scales_with_hops() {
        // 14-hop corner-to-corner vs 1-hop neighbor.
        let mut net = Network::new(params(Topology::Mesh));
        net.try_inject(mk_pkt(1, 0, 63, MsgKind::ReadReq, 0))
            .unwrap();
        // Single-flit packet: the injection slot frees after one tick.
        let mut second = Some(mk_pkt(2, 0, 1, MsgKind::ReadReq, 0));
        for _ in 0..300 {
            if let Some(p) = second.take() {
                second = net.try_inject(p).err();
            }
            net.tick();
        }
        assert!(second.is_none(), "second packet never injected");
        let far = net.stats().latency[0][1].max_cycles;
        assert!(net.take_ejected(NodeId(1), 1).len() == 1);
        assert!(net.take_ejected(NodeId(63), 1).len() == 1);
        // Far packet needs at least 14 hops * ~4 cycles.
        assert!(far >= 14 * 3, "far latency {far}");
        assert!(far <= 200, "far latency {far}");
    }

    #[test]
    fn multi_flit_packet_reassembles_once() {
        let mut net = Network::new(NetParams {
            classes: ClassAssignment::Single(TrafficClass::Reply, 2),
            ..params(Topology::Mesh)
        });
        net.try_inject(mk_pkt(7, 10, 53, MsgKind::ReadReply, 0))
            .unwrap();
        for _ in 0..300 {
            net.tick();
        }
        let out = net.take_ejected(NodeId(53), usize::MAX);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].flits, 9);
        assert_eq!(net.stats().node_rx_flits[53], 9);
    }

    #[test]
    fn all_topologies_deliver_all_to_all() {
        for topology in Topology::ALL {
            let mut net = Network::new(params(topology));
            let mut id = 0;
            let mut expected = vec![0usize; 64];
            for s in (0..64u16).step_by(5) {
                for d in (1..64u16).step_by(7) {
                    if s == d {
                        continue;
                    }
                    id += 1;
                    net.try_inject(mk_pkt(id, s, d, MsgKind::ReadReq, 0))
                        .unwrap_or_else(|_| panic!("{topology:?} inject"));
                    expected[d as usize] += 1;
                    // Let the NI drain so injection slots free up.
                    for _ in 0..4 {
                        net.tick();
                    }
                }
            }
            for _ in 0..2000 {
                net.tick();
            }
            for (d, &want) in expected.iter().enumerate() {
                let got = net.take_ejected(NodeId(d as u16), usize::MAX).len();
                assert_eq!(got, want, "{topology:?} node {d}");
            }
            assert_eq!(net.in_flight(), 0, "{topology:?} leftover");
        }
    }

    #[test]
    fn inject_blocked_reflects_backpressure() {
        let mut net = Network::new(NetParams {
            classes: ClassAssignment::Single(TrafficClass::Reply, 2),
            ..params(Topology::Mesh)
        });
        // Flood node 0's reply NI with far-destination 9-flit packets and
        // never let destination 63 take them; with a full pipe, injection
        // eventually blocks.
        let mut id = 0;
        let mut blocked_seen = false;
        for _ in 0..400 {
            id += 1;
            let _ = net.try_inject(mk_pkt(id, 0, 63, MsgKind::ReadReply, net.now()));
            net.tick();
            if net.inject_blocked(NodeId(0), TrafficClass::Reply, Priority::Gpu) {
                blocked_seen = true;
            }
        }
        assert!(blocked_seen, "backpressure never reached the source NI");
        // The destination's ejection buffer is full (nobody takes).
        assert!(net.ejected_len(NodeId(63)) >= 1);
    }

    #[test]
    fn take_ejected_frees_buffer_space() {
        let mut net = Network::new(NetParams {
            classes: ClassAssignment::Single(TrafficClass::Reply, 2),
            eject_buf_flits: 9,
            sa_iterations: 1,
            ..params(Topology::Mesh)
        });
        net.try_inject(mk_pkt(1, 0, 1, MsgKind::ReadReply, 0))
            .unwrap();
        let mut second = Some(mk_pkt(2, 0, 1, MsgKind::ReadReply, 0));
        for _ in 0..100 {
            if let Some(pkt) = second.take() {
                second = net.try_inject(pkt).err();
            }
            net.tick();
        }
        assert!(second.is_none(), "second packet never injected");
        // Only one packet fits in the 9-flit eject buffer.
        assert_eq!(net.ejected_len(NodeId(1)), 1);
        let got = net.take_ejected(NodeId(1), usize::MAX);
        assert_eq!(got.len(), 1);
        for _ in 0..100 {
            net.tick();
        }
        assert_eq!(net.take_ejected(NodeId(1), usize::MAX).len(), 1);
    }

    #[test]
    fn cpu_priority_wins_contention() {
        // Saturate the reply network with many-to-one 9-flit GPU replies,
        // then send occasional CPU replies along the same path; the
        // CPU-reserved VC plus strict SA priority must keep CPU latency
        // well below GPU latency.
        let mut net = Network::new(NetParams {
            classes: ClassAssignment::Single(TrafficClass::Reply, 2),
            ..params(Topology::Mesh)
        });
        let mut id = 0;
        for t in 0..1500u64 {
            for s in [0u16, 1, 2] {
                id += 1;
                let _ = net.try_inject(mk_pkt(id, s, 7, MsgKind::ReadReply, net.now()));
            }
            if t % 50 == 10 {
                id += 1;
                let mut p = mk_pkt(id, 3, 7, MsgKind::ReadReply, net.now());
                p.prio = Priority::Cpu;
                let _ = net.try_inject(p);
            }
            net.tick();
            net.take_ejected(NodeId(7), usize::MAX);
        }
        for _ in 0..1000 {
            net.tick();
            net.take_ejected(NodeId(7), usize::MAX);
        }
        let cpu = net.stats().mean_latency(TrafficClass::Reply, Priority::Cpu);
        let gpu = net.stats().mean_latency(TrafficClass::Reply, Priority::Gpu);
        assert!(cpu > 0.0 && gpu > 0.0);
        assert!(
            cpu < gpu * 0.7,
            "CPU priority too weak: cpu {cpu:.1} vs gpu {gpu:.1}"
        );
    }

    #[test]
    fn virtual_networks_carry_both_classes() {
        let mut net = Network::new(NetParams {
            classes: ClassAssignment::Shared {
                request_vcs: 2,
                reply_vcs: 2,
            },
            ..params(Topology::Mesh)
        });
        net.try_inject(mk_pkt(1, 0, 63, MsgKind::ReadReq, 0))
            .unwrap();
        net.try_inject(mk_pkt(2, 63, 0, MsgKind::ReadReply, 0))
            .unwrap();
        for _ in 0..300 {
            net.tick();
        }
        assert_eq!(net.take_ejected(NodeId(63), 9).len(), 1);
        assert_eq!(net.take_ejected(NodeId(0), 9).len(), 1);
    }

    #[test]
    fn more_islip_iterations_never_slow_delivery() {
        // Heavy many-to-many load; a 3-iteration allocator must deliver
        // everything at least as fast as the single-iteration one.
        let run = |iters: usize| -> u64 {
            let mut net = Network::new(NetParams {
                sa_iterations: iters,
                ..params(Topology::Mesh)
            });
            let mut queue: Vec<Packet> = (0..120u64)
                .map(|i| {
                    let s = (i * 7 % 64) as u16;
                    let d = (i * 13 % 64) as u16;
                    let d = if d == s { (d + 1) % 64 } else { d };
                    mk_pkt(i, s, d, MsgKind::ReadReq, 0)
                })
                .collect();
            let mut delivered = 0u64;
            for now in 0..6_000u64 {
                if let Some(p) = queue.pop() {
                    if let Err(back) = net.try_inject(p) {
                        queue.push(back);
                    }
                }
                net.tick();
                for d in 0..64 {
                    delivered += net.take_ejected(NodeId(d), usize::MAX).len() as u64;
                }
                if delivered == 120 && queue.is_empty() {
                    return now;
                }
            }
            panic!("never delivered everything with {iters} iterations");
        };
        let one = run(1);
        let three = run(3);
        assert!(
            three <= one + 8,
            "3-iteration iSLIP slower: {three} vs {one}"
        );
    }

    #[test]
    fn take_ejected_cpu_first_reorders() {
        let mut net = Network::new(NetParams {
            classes: ClassAssignment::Single(TrafficClass::Reply, 2),
            ..params(Topology::Mesh)
        });
        let mut gpu = mk_pkt(1, 0, 1, MsgKind::ReadReply, 0);
        gpu.prio = Priority::Gpu;
        let mut cpu = mk_pkt(2, 8, 1, MsgKind::ReadReply, 0);
        cpu.prio = Priority::Cpu;
        net.try_inject(gpu).unwrap();
        net.try_inject(cpu).unwrap();
        for _ in 0..200 {
            net.tick();
        }
        assert_eq!(net.ejected_len(NodeId(1)), 2);
        let got = net.take_ejected_cpu_first(NodeId(1), 2);
        assert_eq!(got[0].prio, Priority::Cpu, "CPU packet must come first");
        assert_eq!(got.len(), 2);
    }

    #[test]
    #[should_panic(expected = "does not carry")]
    fn wrong_class_injection_panics() {
        let mut net = Network::new(params(Topology::Mesh));
        let _ = net.try_inject(mk_pkt(1, 0, 1, MsgKind::ReadReply, 0));
    }

    #[test]
    fn adaptive_policies_deliver() {
        for policy in [
            RoutingPolicy::DyXY,
            RoutingPolicy::Footprint,
            RoutingPolicy::Hare,
        ] {
            let mut net = Network::new(NetParams {
                routing_request: policy,
                ..params(Topology::Mesh)
            });
            let mut id = 0;
            for s in 0..16u16 {
                for d in 48..64u16 {
                    id += 1;
                    while net
                        .try_inject(mk_pkt(id, s, d, MsgKind::ReadReq, net.now()))
                        .is_err()
                    {
                        net.tick();
                    }
                }
            }
            for _ in 0..3000 {
                net.tick();
            }
            let total: usize = (0..64)
                .map(|d| net.take_ejected(NodeId(d), usize::MAX).len())
                .sum();
            assert_eq!(total, 16 * 16, "{policy:?}");
            assert_eq!(net.in_flight(), 0, "{policy:?} stuck packets");
        }
    }

    #[test]
    fn advance_to_equals_idle_ticks() {
        // An empty network ticked for N dead cycles must be
        // indistinguishable from one that jumped its clock by N.
        let mut a = Network::new(params(Topology::Mesh));
        let mut b = Network::new(params(Topology::Mesh));
        for net in [&mut a, &mut b] {
            net.try_inject(mk_pkt(1, 0, 63, MsgKind::ReadReq, 0))
                .unwrap();
            for _ in 0..200 {
                net.tick();
            }
            // Live flits drained; the waiting ejected packet is passive.
            assert_eq!(net.next_event(net.now()), None);
        }
        for _ in 0..1000 {
            a.tick();
        }
        let to = b.now() + 1000;
        b.advance_to(to);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.stats().cycles, b.stats().cycles);
        // Resuming identical traffic produces identical outcomes.
        a.try_inject(mk_pkt(2, 5, 60, MsgKind::ReadReq, a.now()))
            .unwrap();
        b.try_inject(mk_pkt(2, 5, 60, MsgKind::ReadReq, b.now()))
            .unwrap();
        for _ in 0..300 {
            a.tick();
            b.tick();
        }
        let pa = a.take_ejected(NodeId(60), 9);
        let pb = b.take_ejected(NodeId(60), 9);
        assert_eq!(pa.len(), 1);
        assert_eq!(pa[0].id, pb[0].id);
        let la = a.stats().mean_latency(TrafficClass::Request, Priority::Gpu);
        let lb = b.stats().mean_latency(TrafficClass::Request, Priority::Gpu);
        assert_eq!(la, lb, "latency diverged after fast-forward");
    }

    #[test]
    fn hare_never_reports_quiescence() {
        let net = Network::new(NetParams {
            routing_request: RoutingPolicy::Hare,
            ..params(Topology::Mesh)
        });
        // HARE's EWMA mutates every cycle, so the horizon is always now.
        assert_eq!(net.next_event(0), Some(0));
    }

    #[test]
    fn wormhole_packets_never_interleave_within_vc() {
        // Heavy many-to-one reply traffic; ejection counts must always
        // complete exactly (the assembler panics on slot confusion, and
        // in_flight returning to zero proves no flit was lost).
        let mut net = Network::new(NetParams {
            classes: ClassAssignment::Single(TrafficClass::Reply, 2),
            ..params(Topology::Mesh)
        });
        let mut id = 0;
        let mut sent = 0;
        for _ in 0..300 {
            for s in [8u16, 16, 24, 32] {
                id += 1;
                if net
                    .try_inject(mk_pkt(id, s, 0, MsgKind::ReadReply, net.now()))
                    .is_ok()
                {
                    sent += 1;
                }
            }
            net.tick();
            // Keep draining the sink.
            net.take_ejected(NodeId(0), usize::MAX);
        }
        for _ in 0..3000 {
            net.tick();
            net.take_ejected(NodeId(0), usize::MAX);
        }
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.stats().ejected_pkts[1], sent);
    }

    fn reply_net() -> Network {
        Network::new(NetParams {
            classes: ClassAssignment::Single(TrafficClass::Reply, 2),
            ..params(Topology::Mesh)
        })
    }

    #[test]
    fn sharded_tick_is_byte_identical_to_sequential() {
        // Column traffic from the top row to the bottom row crosses
        // every shard boundary; the sharded twin must match the
        // sequential one cycle for cycle and in final statistics.
        for shards in [2, 4, 8] {
            let mut seq = reply_net();
            let mut shd = reply_net();
            shd.set_shards(shards).unwrap();
            assert_eq!(shd.shards(), shards);
            let mut id = 0;
            for t in 0..600u64 {
                if t % 3 == 0 {
                    for s in 0..8u16 {
                        id += 1;
                        let d = 63 - s;
                        let a = seq.try_inject(mk_pkt(id, s, d, MsgKind::ReadReply, seq.now()));
                        let b = shd.try_inject(mk_pkt(id, s, d, MsgKind::ReadReply, shd.now()));
                        assert_eq!(a.is_ok(), b.is_ok(), "{shards} shards cycle {t}");
                    }
                }
                seq.tick();
                shd.tick();
                assert_eq!(
                    seq.in_flight(),
                    shd.in_flight(),
                    "{shards} shards cycle {t}"
                );
                assert_eq!(
                    seq.buffered_flits(),
                    shd.buffered_flits(),
                    "{shards} shards cycle {t}"
                );
                for d in 0..64u16 {
                    let pa = seq.take_ejected(NodeId(d), usize::MAX);
                    let pb = shd.take_ejected(NodeId(d), usize::MAX);
                    assert_eq!(
                        pa.iter().map(|p| p.id).collect::<Vec<_>>(),
                        pb.iter().map(|p| p.id).collect::<Vec<_>>(),
                        "{shards} shards cycle {t} node {d}"
                    );
                }
            }
            for _ in 0..2000 {
                seq.tick();
                shd.tick();
            }
            assert_eq!(seq.in_flight(), shd.in_flight(), "{shards} shards leftover");
            assert_eq!(
                format!("{:?}", seq.stats()),
                format!("{:?}", shd.stats()),
                "{shards} shards: stats diverged"
            );
        }
    }

    #[test]
    fn boundary_credits_cross_partition_edge_same_cycle() {
        // Two shards split the 8x8 mesh between rows 3 and 4. Streaming
        // multi-flit replies in both directions across the seam makes
        // flits and the matching credit returns cross the partition
        // edge on the same cycle; the boundary routers' credit vectors
        // must match the sequential twin exactly, every cycle.
        let mut seq = reply_net();
        let mut shd = reply_net();
        shd.set_shards(2).unwrap();
        let mut id = 0;
        let mut crossings = 0u64;
        for t in 0..400u64 {
            for (s, d) in [(28u16, 36u16), (36, 28), (27, 35), (35, 27)] {
                id += 1;
                let a = seq.try_inject(mk_pkt(id, s, d, MsgKind::ReadReply, seq.now()));
                let b = shd.try_inject(mk_pkt(id, s, d, MsgKind::ReadReply, shd.now()));
                assert_eq!(a.is_ok(), b.is_ok(), "cycle {t} {s}->{d}");
            }
            seq.tick();
            shd.tick();
            // Boundary rows: the south edge of shard 0 (24..32) and the
            // north edge of shard 1 (32..40).
            for r in 24..40 {
                assert_eq!(
                    seq.routers[r].credits, shd.routers[r].credits,
                    "cycle {t} router {r} credits"
                );
                crossings += seq.stats().link_flits[r][if r < 32 {
                    mesh_port_south()
                } else {
                    mesh_port_north()
                }];
            }
            for d in [36u16, 28, 35, 27] {
                let pa = seq.take_ejected(NodeId(d), usize::MAX);
                let pb = shd.take_ejected(NodeId(d), usize::MAX);
                assert_eq!(pa.len(), pb.len(), "cycle {t} node {d}");
            }
        }
        assert!(crossings > 0, "no flit ever crossed the partition edge");
        for _ in 0..1000 {
            seq.tick();
            shd.tick();
        }
        assert_eq!(seq.in_flight(), shd.in_flight());
        assert_eq!(format!("{:?}", seq.stats()), format!("{:?}", shd.stats()));
    }

    fn mesh_port_south() -> usize {
        crate::topology::mesh_port::SOUTH
    }

    fn mesh_port_north() -> usize {
        crate::topology::mesh_port::NORTH
    }

    #[test]
    fn set_shards_rejects_bad_partitions() {
        let mut net = Network::new(params(Topology::Mesh));
        let err = net.set_shards(3).unwrap_err();
        assert!(err.0.contains("8 mesh rows"), "{err}");
        assert_eq!(
            net.shards(),
            1,
            "failed set_shards must not change the engine"
        );
        let mut xbar = Network::new(params(Topology::Crossbar));
        assert!(xbar.set_shards(2).is_err());
        assert!(xbar.set_shards(1).is_ok());
    }

    #[test]
    fn sharding_composes_with_idle_skip_off() {
        // Reference mode (every router runs VA/SA each cycle) under a
        // sharded engine must still match the plain sequential loop.
        let mut seq = reply_net();
        let mut shd = reply_net();
        shd.set_shards(4).unwrap();
        shd.set_idle_skip(false);
        for (id, (s, d)) in [(0u16, 63u16), (63, 0), (9, 54)].into_iter().enumerate() {
            seq.try_inject(mk_pkt(id as u64, s, d, MsgKind::ReadReply, 0))
                .unwrap();
            shd.try_inject(mk_pkt(id as u64, s, d, MsgKind::ReadReply, 0))
                .unwrap();
        }
        for _ in 0..500 {
            seq.tick();
            shd.tick();
        }
        assert_eq!(format!("{:?}", seq.stats()), format!("{:?}", shd.stats()));
    }
}
