//! Randomized tests for the NoC: delivery latency lower bounds, credit
//! conservation under load, class isolation on shared physical
//! networks, and CPU-priority legality.
//!
//! Seeded with `clognet-rng` so every run explores the same cases.

use clognet_noc::{routing, ClassAssignment, NetParams, Network, TopologyGraph};
use clognet_proto::*;
use clognet_rng::{Rng, SeedableRng, SmallRng};

fn params(topology: Topology, classes: ClassAssignment) -> NetParams {
    NetParams {
        topology,
        width: 8,
        height: 8,
        classes,
        vc_buf_flits: 4,
        pipeline: 4,
        routing_request: RoutingPolicy::DorYX,
        routing_reply: RoutingPolicy::DorXY,
        eject_buf_flits: 36,
        sa_iterations: 1,
    }
}

/// A lone packet's latency is at least hops * (per-hop pipeline) and,
/// on an idle network, within a small constant of it.
#[test]
fn lone_packet_latency_is_tight() {
    let mut rng = SmallRng::seed_from_u64(0x0C_0001);
    for _case in 0..48 {
        let topology = Topology::ALL[rng.gen_range(0..4usize)];
        let src = rng.gen_range(0..64u16);
        let mut dst = rng.gen_range(0..64u16);
        if src == dst {
            dst = (dst + 1) % 64;
        }
        let mut net = Network::new(params(
            topology,
            ClassAssignment::Single(TrafficClass::Request, 2),
        ));
        let pkt = Packet::new(
            PacketId(1),
            NodeId(src),
            NodeId(dst),
            MsgKind::ReadReq,
            Priority::Gpu,
            Addr::new(0x100),
            128,
            16,
            0,
        );
        net.try_inject(pkt).unwrap();
        let mut done = None;
        for now in 0..1_000 {
            net.tick();
            if !net.take_ejected(NodeId(dst), 1).is_empty() {
                done = Some(now + 1);
                break;
            }
        }
        let lat = done.expect("delivered") as usize;
        let topo = TopologyGraph::build(topology, 8, 8);
        let hops = routing::min_hops(&topo, NodeId(src), NodeId(dst));
        assert!(
            lat >= 3 * hops,
            "{topology:?} {src}->{dst}: {lat} < 3*{hops}"
        );
        assert!(
            lat <= 5 * hops + 12,
            "{topology:?} {src}->{dst}: idle latency {lat} too high for {hops} hops"
        );
    }
}

/// On a shared physical network, request-class congestion must not lose
/// reply packets (and vice versa): both classes fully deliver.
#[test]
fn shared_network_classes_both_deliver() {
    let mut rng = SmallRng::seed_from_u64(0x0C_0002);
    for _case in 0..24 {
        let req_vcs = rng.gen_range(1..3usize);
        let rep_vcs = rng.gen_range(1..3usize);
        let n_req = rng.gen_range(1..40usize);
        let n_rep = rng.gen_range(1..12usize);
        let mut net = Network::new(params(
            Topology::Mesh,
            ClassAssignment::Shared {
                request_vcs: req_vcs,
                reply_vcs: rep_vcs,
            },
        ));
        let mut queue: Vec<Packet> = Vec::new();
        for i in 0..n_req {
            queue.push(Packet::new(
                PacketId(i as u64),
                NodeId((i % 32) as u16),
                NodeId(63),
                MsgKind::ReadReq,
                Priority::Gpu,
                Addr::new(i as u64 * 128),
                128,
                16,
                0,
            ));
        }
        for i in 0..n_rep {
            queue.push(Packet::new(
                PacketId(1000 + i as u64),
                NodeId((i % 16) as u16),
                NodeId(62),
                MsgKind::ReadReply,
                Priority::Gpu,
                Addr::new(i as u64 * 128),
                128,
                16,
                0,
            ));
        }
        let (mut got_req, mut got_rep) = (0, 0);
        for _ in 0..8_000 {
            if let Some(p) = queue.pop() {
                if let Err(back) = net.try_inject(p) {
                    queue.push(back);
                }
            }
            net.tick();
            got_req += net.take_ejected(NodeId(63), usize::MAX).len();
            got_rep += net.take_ejected(NodeId(62), usize::MAX).len();
            if got_req == n_req && got_rep == n_rep {
                break;
            }
        }
        assert_eq!((got_req, got_rep), (n_req, n_rep));
        assert_eq!(net.in_flight(), 0);
    }
}

/// Link utilization statistics are physical: no link ever carries more
/// than one flit per cycle.
#[test]
fn link_utilization_is_physical() {
    let mut outer = SmallRng::seed_from_u64(0x0C_0003);
    for _case in 0..16 {
        let n_pkts = outer.gen_range(1..80usize);
        let seed = outer.gen_range(0..16u64);
        let mut net = Network::new(params(
            Topology::Mesh,
            ClassAssignment::Single(TrafficClass::Reply, 2),
        ));
        let mut state = seed.wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u16 % 64
        };
        let mut queue: Vec<Packet> = (0..n_pkts)
            .map(|i| {
                let (mut s, mut d) = (next(), next());
                if s == d {
                    d = (d + 1) % 64;
                    s = s.min(63);
                }
                Packet::new(
                    PacketId(i as u64),
                    NodeId(s),
                    NodeId(d),
                    MsgKind::ReadReply,
                    Priority::Gpu,
                    Addr::new(i as u64 * 128),
                    128,
                    16,
                    0,
                )
            })
            .collect();
        for _ in 0..4_000 {
            if let Some(p) = queue.pop() {
                if let Err(back) = net.try_inject(p) {
                    queue.push(back);
                }
            }
            net.tick();
            for d in 0..64 {
                net.take_ejected(NodeId(d), usize::MAX);
            }
        }
        let st = net.stats();
        for r in 0..64 {
            for p in 0..5 {
                let u = st.link_utilization(r, p);
                assert!((0.0..=1.0).contains(&u), "util {u} at {r}.{p}");
            }
        }
    }
}

/// CPU packets must never be starved: even under saturating GPU load, a
/// CPU packet injected later finishes within a bounded horizon.
#[test]
fn cpu_packets_are_never_starved() {
    let mut net = Network::new(params(
        Topology::Mesh,
        ClassAssignment::Single(TrafficClass::Reply, 2),
    ));
    let mut id = 0u64;
    // Saturate with GPU replies toward node 7 for a while.
    for _ in 0..500 {
        for s in [0u16, 1, 2, 8, 9] {
            id += 1;
            let _ = net.try_inject(Packet::new(
                PacketId(id),
                NodeId(s),
                NodeId(7),
                MsgKind::ReadReply,
                Priority::Gpu,
                Addr::new(id * 128),
                128,
                16,
                net.now(),
            ));
        }
        net.tick();
        net.take_ejected(NodeId(7), usize::MAX);
    }
    // Now inject one CPU reply along the saturated row.
    let mut cpu = Packet::new(
        PacketId(999_999),
        NodeId(3),
        NodeId(7),
        MsgKind::ReadReply,
        Priority::Cpu,
        Addr::new(64),
        64,
        16,
        net.now(),
    );
    cpu.prio = Priority::Cpu;
    while net.try_inject(cpu.clone()).is_err() {
        net.tick();
        net.take_ejected(NodeId(7), usize::MAX);
    }
    let start = net.now();
    loop {
        net.tick();
        if net
            .take_ejected(NodeId(7), usize::MAX)
            .iter()
            .any(|p| p.id == PacketId(999_999))
        {
            break;
        }
        assert!(net.now() - start < 2_000, "CPU packet starved");
    }
    let lat = net.now() - start;
    assert!(lat < 400, "CPU latency {lat} under GPU saturation");
}

/// The idle-router fast path is a pure optimization: with the skip
/// disabled (reference mode), identical traffic must produce identical
/// per-cycle ejections and identical final statistics.
#[test]
fn idle_skip_matches_full_iteration_reference() {
    let mut rng = SmallRng::seed_from_u64(0x0C_0005);
    let mut fast = Network::new(params(
        Topology::Mesh,
        ClassAssignment::Single(TrafficClass::Request, 2),
    ));
    let mut refr = Network::new(params(
        Topology::Mesh,
        ClassAssignment::Single(TrafficClass::Request, 2),
    ));
    refr.set_idle_skip(false);
    let mut seq = 0u64;
    for cycle in 0..3_000 {
        // Bursty traffic with quiet gaps so plenty of routers go idle.
        let burst = if cycle % 97 < 40 {
            rng.gen_range(0..6usize)
        } else {
            0
        };
        for _ in 0..burst {
            let src = rng.gen_range(0..64u16);
            let dst = rng.gen_range(0..64u16);
            if src == dst {
                continue;
            }
            seq += 1;
            let mk = || {
                Packet::new(
                    PacketId(seq),
                    NodeId(src),
                    NodeId(dst),
                    MsgKind::ReadReq,
                    Priority::Gpu,
                    Addr::new(seq * 64),
                    128,
                    16,
                    cycle,
                )
            };
            let a = fast.try_inject(mk());
            let b = refr.try_inject(mk());
            assert_eq!(a.is_ok(), b.is_ok(), "injection diverged at {cycle}");
        }
        fast.tick();
        refr.tick();
        for d in 0..64u16 {
            loop {
                let a = fast.pop_ejected(NodeId(d));
                let b = refr.pop_ejected(NodeId(d));
                assert_eq!(
                    a.as_ref().map(|p| p.id),
                    b.as_ref().map(|p| p.id),
                    "ejection diverged at cycle {cycle} node {d}"
                );
                if a.is_none() {
                    break;
                }
            }
        }
    }
    assert_eq!(fast.in_flight(), refr.in_flight());
    assert_eq!(
        format!("{:?}", fast.stats()),
        format!("{:?}", refr.stats()),
        "statistics diverged between fast path and reference"
    );
    assert!(
        fast.stats().ejected_pkts.iter().sum::<u64>() > 100,
        "test never exercised real traffic"
    );
}
