//! Asserts the tentpole perf property: `Network::tick` performs **zero
//! heap allocations in steady state**. A counting `#[global_allocator]`
//! wrapper tallies every allocation; after a warmup phase (which grows
//! the scratch buffers, VC queues, and eject buffers to their working
//! capacity) the allocation count across thousands of loaded ticks must
//! not move.
//!
//! This file holds exactly one test so no concurrently running test can
//! touch the counter mid-measurement.

use clognet_noc::{ClassAssignment, NetParams, Network};
use clognet_proto::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn params() -> NetParams {
    NetParams {
        topology: Topology::Mesh,
        width: 8,
        height: 8,
        classes: ClassAssignment::Single(TrafficClass::Request, 2),
        vc_buf_flits: 4,
        pipeline: 4,
        routing_request: RoutingPolicy::DorYX,
        routing_reply: RoutingPolicy::DorXY,
        eject_buf_flits: 36,
        sa_iterations: 1,
    }
}

#[test]
fn steady_state_tick_does_not_allocate() {
    let mut net = Network::new(params());
    let mut seq = 0u64;
    // Uniform-random-ish traffic from a cheap LCG, heavy enough to keep
    // every router busy (so the idle fast path is not what's hiding
    // allocations).
    let mut lcg = 0x2545F491_4F6CDD1Du64;
    let mut step = |net: &mut Network, count: &mut u64| {
        for _ in 0..8 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = ((lcg >> 33) % 64) as u16;
            let dst = ((lcg >> 13) % 64) as u16;
            if src == dst {
                continue;
            }
            seq += 1;
            let pkt = Packet::new(
                PacketId(seq),
                NodeId(src),
                NodeId(dst),
                MsgKind::ReadReq,
                Priority::Gpu,
                Addr::new(0x100 + seq * 64),
                128,
                16,
                0,
            );
            let _ = net.try_inject(pkt);
        }
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        net.tick();
        *count += ALLOCATIONS.load(Ordering::Relaxed) - before;
        for d in 0..64 {
            while net.pop_ejected(NodeId(d)).is_some() {}
        }
    };
    // Warmup: scratch buffers and queues reach working capacity. Long
    // enough for every Vec/VecDeque to hit its traffic-driven
    // high-water mark.
    let mut warm_allocs = 0;
    for _ in 0..8_000 {
        step(&mut net, &mut warm_allocs);
    }
    // Measure: not a single allocation inside tick from here on.
    let mut steady_allocs = 0;
    for _ in 0..3_000 {
        step(&mut net, &mut steady_allocs);
    }
    assert!(net.in_flight() > 0, "traffic load never materialized");
    assert_eq!(
        steady_allocs, 0,
        "Network::tick allocated {steady_allocs} times over 3000 steady-state cycles"
    );
}
