//! Adversarial traffic patterns: hotspot sinks, permutation storms, and
//! bursty on/off sources. The network must stay live (every packet
//! delivered, credits conserved) even when the pattern is chosen to
//! maximize head-of-line blocking and back-pressure — the regime the
//! whole paper lives in.

use clognet_noc::{ClassAssignment, NetParams, Network};
use clognet_proto::*;

fn net(classes: ClassAssignment) -> Network {
    Network::new(NetParams {
        topology: Topology::Mesh,
        width: 8,
        height: 8,
        classes,
        vc_buf_flits: 4,
        pipeline: 4,
        routing_request: RoutingPolicy::DorYX,
        routing_reply: RoutingPolicy::DorXY,
        eject_buf_flits: 36,
        sa_iterations: 1,
    })
}

fn pkt(id: u64, src: u16, dst: u16, kind: MsgKind) -> Packet {
    Packet::new(
        PacketId(id),
        NodeId(src),
        NodeId(dst),
        kind,
        Priority::Gpu,
        Addr::new(id * 128),
        128,
        16,
        0,
    )
}

/// Every node floods one hotspot with 9-flit replies; with the sink
/// draining, every packet must eventually arrive and the network must
/// fully empty.
#[test]
fn hotspot_flood_stays_live() {
    let mut n = net(ClassAssignment::Single(TrafficClass::Reply, 2));
    let hotspot = 27u16;
    let mut id = 0;
    let mut sent = 0u64;
    let mut got = 0u64;
    for _ in 0..2_000 {
        for s in (0..64u16).step_by(3) {
            if s == hotspot {
                continue;
            }
            id += 1;
            if n.try_inject(pkt(id, s, hotspot, MsgKind::ReadReply))
                .is_ok()
            {
                sent += 1;
            }
        }
        n.tick();
        got += n.take_ejected(NodeId(hotspot), usize::MAX).len() as u64;
    }
    for _ in 0..20_000 {
        n.tick();
        got += n.take_ejected(NodeId(hotspot), usize::MAX).len() as u64;
        if n.in_flight() == 0 {
            break;
        }
    }
    assert_eq!(got, sent, "hotspot lost packets");
    assert_eq!(n.in_flight(), 0, "hotspot wedged the network");
}

/// Bit-reverse permutation (a classic adversarial pattern for DOR):
/// every node sends to its bit-reversed partner simultaneously.
#[test]
fn bit_reverse_permutation_delivers() {
    let mut n = net(ClassAssignment::Single(TrafficClass::Request, 2));
    let rev = |x: u16| -> u16 {
        let mut r = 0;
        for b in 0..6 {
            r |= ((x >> b) & 1) << (5 - b);
        }
        r
    };
    let mut expected = vec![0usize; 64];
    let mut queued: Vec<Packet> = (0..64u16)
        .filter(|&s| rev(s) != s)
        .enumerate()
        .map(|(i, s)| {
            expected[rev(s) as usize] += 1;
            pkt(i as u64, s, rev(s), MsgKind::ReadReq)
        })
        .collect();
    let mut received = vec![0usize; 64];
    for _ in 0..4_000 {
        let mut still = Vec::new();
        for p in queued.drain(..) {
            if let Err(back) = n.try_inject(p) {
                still.push(back);
            }
        }
        queued = still;
        n.tick();
        for (d, r) in received.iter_mut().enumerate() {
            *r += n.take_ejected(NodeId(d as u16), usize::MAX).len();
        }
        if queued.is_empty() && n.in_flight() == 0 {
            break;
        }
    }
    assert_eq!(received, expected);
}

/// On/off bursty sources with a stalled consumer: the destination takes
/// nothing for long stretches; back-pressure must hold the packets in
/// the network and release them all once the consumer resumes.
#[test]
fn stalled_consumer_backpressure_releases_cleanly() {
    let mut n = net(ClassAssignment::Single(TrafficClass::Reply, 2));
    let dst = 63u16;
    let mut id = 0;
    let mut sent = 0u64;
    // Phase 1: sources burst while the consumer is stalled.
    for _ in 0..600 {
        for s in [0u16, 8, 16] {
            id += 1;
            if n.try_inject(pkt(id, s, dst, MsgKind::ReadReply)).is_ok() {
                sent += 1;
            }
        }
        n.tick(); // nobody calls take_ejected(dst)
    }
    assert!(n.in_flight() > 0, "nothing in flight during the stall?");
    // Phase 2: consumer resumes; everything must drain.
    let mut got = 0u64;
    for _ in 0..30_000 {
        n.tick();
        got += n.take_ejected(NodeId(dst), usize::MAX).len() as u64;
        if n.in_flight() == 0 {
            break;
        }
    }
    assert_eq!(got, sent);
    assert_eq!(n.in_flight(), 0);
}

/// Shared-network class mixing under adversarial load: 9-flit replies
/// hammer one sink while 1-flit requests cross the same column; both
/// classes complete on their disjoint VC partitions.
#[test]
fn shared_net_classes_survive_cross_pressure() {
    let mut n = net(ClassAssignment::Shared {
        request_vcs: 1,
        reply_vcs: 3,
    });
    let mut id = 0;
    let (mut sent_req, mut sent_rep) = (0u64, 0u64);
    for _ in 0..800 {
        id += 1;
        if n.try_inject(pkt(id, (id % 32) as u16, 39, MsgKind::ReadReply))
            .is_ok()
        {
            sent_rep += 1;
        }
        id += 1;
        if n.try_inject(pkt(id, 7, 56, MsgKind::ReadReq)).is_ok() {
            sent_req += 1;
        }
        n.tick();
        n.take_ejected(NodeId(39), usize::MAX);
        n.take_ejected(NodeId(56), usize::MAX);
    }
    let stats = n.stats();
    let injected = stats.injected_pkts[0] + stats.injected_pkts[1];
    assert_eq!(injected, sent_req + sent_rep);
    for _ in 0..20_000 {
        n.tick();
        n.take_ejected(NodeId(39), usize::MAX);
        n.take_ejected(NodeId(56), usize::MAX);
        if n.in_flight() == 0 {
            break;
        }
    }
    assert_eq!(n.in_flight(), 0, "shared classes deadlocked");
    let s = n.stats();
    assert_eq!(s.ejected_pkts[0], sent_req);
    assert_eq!(s.ejected_pkts[1], sent_rep);
}
