//! # clognet-telemetry
//!
//! Time-series observability for the simulator: a typed metric registry
//! (counters, gauges, log2-bucket [`Histogram`]s), an [`EpochSampler`]
//! that captures per-epoch series into bounded ring buffers, a
//! [`EpisodeDetector`] that folds memory-node blocked transitions into
//! clog episodes, and hand-rolled JSON/CSV/NDJSON writers (the
//! workspace takes no external dependencies).
//!
//! The paper's argument is temporal — clogging is a transient pile-up
//! at memory-node reply links (Figs. 5b/11/12) — so end-of-run
//! aggregates cannot show a clog forming, peaking, and draining. This
//! crate is the substrate every figure harness and the `clognet
//! timeline` command read from.
//!
//! Everything here is plain data + arithmetic: deterministic for a
//! given input sequence, so two same-seed simulations export
//! byte-identical files.

#![warn(missing_docs)]

mod episode;
pub mod export;
mod hist;
mod registry;
mod sampler;

pub use episode::{Episode, EpisodeDetector};
pub use hist::Histogram;
pub use registry::{CounterId, GaugeId, HistId, Registry};
pub use sampler::{EpochSampler, SeriesId};

/// Configuration for a telemetry session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Cycles per sampling epoch (default 500).
    pub epoch_len: u64,
    /// Maximum epochs retained per series; older epochs are evicted
    /// (bounded memory for arbitrarily long runs).
    pub ring_cap: usize,
    /// Discard clog episodes shorter than this many cycles (default 0:
    /// record every blocked interval, the historical behavior).
    pub episode_min_duration: u64,
    /// Fold a re-block within this many cycles of the node's previous
    /// exit into the same episode (default 0: never merge).
    pub episode_merge_gap: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            epoch_len: 500,
            ring_cap: 4096,
            episode_min_duration: 0,
            episode_merge_gap: 0,
        }
    }
}

/// A complete telemetry session: registry + sampler + episode detector.
///
/// Owners embed this behind an `Option<Box<Telemetry>>` so the disabled
/// path costs one branch and zero allocation per cycle.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Session configuration.
    pub config: TelemetryConfig,
    /// End-of-run scalar metrics and latency histograms.
    pub registry: Registry,
    /// Per-epoch time series.
    pub sampler: EpochSampler,
    /// Clog-episode fold over blocked enter/exit transitions.
    pub episodes: EpisodeDetector,
}

impl Telemetry {
    /// Create a session with the given config.
    pub fn new(config: TelemetryConfig) -> Self {
        Telemetry {
            config,
            registry: Registry::new(),
            sampler: EpochSampler::new(config.ring_cap),
            episodes: EpisodeDetector::with_thresholds(
                config.episode_min_duration,
                config.episode_merge_gap,
            ),
        }
    }

    /// Serialize the whole session as a JSON document.
    ///
    /// `meta` is a list of `(key, value)` strings recorded under
    /// `"meta"` (workload names, scheme, seed, ...).
    pub fn to_json(&self, meta: &[(&str, String)]) -> String {
        export::session_to_json(self, meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_epoch() {
        let c = TelemetryConfig::default();
        assert_eq!(c.epoch_len, 500);
        assert!(c.ring_cap > 0);
    }

    #[test]
    fn session_roundtrip_is_well_formed() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        let c = t.registry.counter("delegations");
        t.registry.add(c, 3);
        let s = t.sampler.series("gpu_ipc");
        t.sampler.set(s, 1.25);
        t.sampler.commit_epoch();
        t.episodes.enter(0, 100);
        t.episodes.observe_depth(0, 7);
        t.episodes.exit(0, 400);
        let json = t.to_json(&[("scheme", "baseline".into())]);
        assert!(json.contains("\"delegations\""));
        assert!(json.contains("\"gpu_ipc\""));
        assert!(json.contains("\"episodes\""));
        assert!(json.contains("\"scheme\""));
    }
}
