//! Typed metric registry: named counters, gauges, and histograms
//! behind cheap index handles.

use crate::hist::Histogram;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// A flat store of named metrics. Registration returns an id; updates
/// are O(1) vector indexing with no hashing on the hot path.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<f64>,
    hist_names: Vec<String>,
    hists: Vec<Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or look up) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(ix) = self.counter_names.iter().position(|n| n == name) {
            return CounterId(ix);
        }
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Register (or look up) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(ix) = self.gauge_names.iter().position(|n| n == name) {
            return GaugeId(ix);
        }
        self.gauge_names.push(name.to_string());
        self.gauges.push(0.0);
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or look up) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistId {
        if let Some(ix) = self.hist_names.iter().position(|n| n == name) {
            return HistId(ix);
        }
        self.hist_names.push(name.to_string());
        self.hists.push(Histogram::new());
        HistId(self.hists.len() - 1)
    }

    /// Increment a counter.
    pub fn add(&mut self, id: CounterId, by: u64) {
        self.counters[id.0] += by;
    }

    /// Read a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Set a gauge.
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0] = v;
    }

    /// Read a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0]
    }

    /// Record a sample into a histogram.
    pub fn record(&mut self, id: HistId, v: u64) {
        self.hists[id.0].record(v);
    }

    /// Read a histogram.
    pub fn hist(&self, id: HistId) -> &Histogram {
        &self.hists[id.0]
    }

    /// Mutable access to a histogram (for merging external ones in).
    pub fn hist_mut(&mut self, id: HistId) -> &mut Histogram {
        &mut self.hists[id.0]
    }

    /// Iterate `(name, value)` over all counters.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_names
            .iter()
            .map(String::as_str)
            .zip(self.counters.iter().copied())
    }

    /// Iterate `(name, value)` over all gauges.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauge_names
            .iter()
            .map(String::as_str)
            .zip(self.gauges.iter().copied())
    }

    /// Iterate `(name, histogram)` over all histograms.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hist_names
            .iter()
            .map(String::as_str)
            .zip(self.hists.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reregister_dedupes() {
        let mut r = Registry::new();
        let a = r.counter("delegations");
        let b = r.counter("delegations");
        assert_eq!(a, b);
        r.add(a, 2);
        r.add(b, 3);
        assert_eq!(r.counter_value(a), 5);
        assert_eq!(r.counters().count(), 1);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        let g = r.gauge("gpu_ipc");
        r.set(g, 1.5);
        r.set(g, 2.5);
        assert_eq!(r.gauge_value(g), 2.5);
    }

    #[test]
    fn histograms_record_through_registry() {
        let mut r = Registry::new();
        let h = r.histogram("cpu_net_latency");
        r.record(h, 10);
        r.record(h, 20);
        assert_eq!(r.hist(h).count(), 2);
        let names: Vec<_> = r.histograms().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["cpu_net_latency"]);
    }
}
