//! Hand-rolled JSON / CSV / NDJSON writers.
//!
//! The workspace takes no external dependencies, so serialization is
//! written out longhand. Output is deterministic: iteration order is
//! registration order, and floats are formatted through one shared
//! routine, so same-seed runs export byte-identical files.

use crate::episode::Episode;
use crate::registry::Registry;
use crate::sampler::EpochSampler;
use crate::Telemetry;

/// Escape a string for inclusion inside JSON quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON-legal number (non-finite values become 0).
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    format!("{v}")
}

/// Escape a CSV field: quote when it contains a comma, quote, or
/// newline; double embedded quotes.
pub fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn push_kv(out: &mut String, key: &str, value: &str, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('"');
    out.push_str(&json_escape(key));
    out.push_str("\":");
    out.push_str(value);
}

/// Serialize the registry as a JSON object with `counters`, `gauges`,
/// and `histograms` (each histogram as count/sum/min/max/mean/p50/p95/p99).
pub fn registry_to_json(reg: &Registry) -> String {
    let mut out = String::from("{\"counters\":{");
    let mut first = true;
    for (name, v) in reg.counters() {
        push_kv(&mut out, name, &v.to_string(), &mut first);
    }
    out.push_str("},\"gauges\":{");
    let mut first = true;
    for (name, v) in reg.gauges() {
        push_kv(&mut out, name, &json_f64(v), &mut first);
    }
    out.push_str("},\"histograms\":{");
    let mut first = true;
    for (name, h) in reg.histograms() {
        let body = format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            json_f64(h.mean()),
            h.p50(),
            h.p95(),
            h.p99()
        );
        push_kv(&mut out, name, &body, &mut first);
    }
    out.push_str("}}");
    out
}

/// Serialize the sampler as a JSON object: epoch bookkeeping plus a
/// `series` map of name → value array (oldest epoch first).
pub fn sampler_to_json(s: &EpochSampler, epoch_len: u64) -> String {
    let mut out = format!(
        "{{\"epoch_len\":{},\"epochs\":{},\"first_epoch\":{},\"series\":{{",
        epoch_len,
        s.epochs_committed(),
        s.first_epoch()
    );
    let mut first = true;
    for (name, values) in s.all_series() {
        let arr: Vec<String> = values.iter().map(|&v| json_f64(v)).collect();
        push_kv(&mut out, name, &format!("[{}]", arr.join(",")), &mut first);
    }
    out.push_str("}}");
    out
}

fn episode_to_json(e: &Episode) -> String {
    format!(
        "{{\"node\":{},\"start\":{},\"end\":{},\"duration\":{},\"peak_depth\":{},\"flits_shed\":{}}}",
        e.node,
        e.start,
        e.end,
        e.duration(),
        e.peak_depth,
        e.flits_shed
    )
}

/// Serialize episodes as a JSON array.
pub fn episodes_to_json(eps: &[Episode]) -> String {
    let items: Vec<String> = eps.iter().map(episode_to_json).collect();
    format!("[{}]", items.join(","))
}

/// Serialize episodes as NDJSON: one JSON object per line.
pub fn episodes_to_ndjson(eps: &[Episode]) -> String {
    let mut out = String::new();
    for e in eps {
        out.push_str(&episode_to_json(e));
        out.push('\n');
    }
    out
}

/// Serialize the sampler as CSV: an `epoch` column followed by one
/// column per series; rows are retained epochs, oldest first.
pub fn series_to_csv(s: &EpochSampler) -> String {
    let series: Vec<(String, Vec<f64>)> = s.all_series().map(|(n, v)| (n.to_string(), v)).collect();
    let mut out = String::from("epoch");
    for (name, _) in &series {
        out.push(',');
        out.push_str(&csv_escape(name));
    }
    out.push('\n');
    let rows = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    let first_epoch = s.first_epoch();
    for r in 0..rows {
        out.push_str(&(first_epoch + r as u64).to_string());
        for (_, values) in &series {
            out.push(',');
            // A series registered late is shorter; align from the end.
            let pad = rows - values.len();
            if r >= pad {
                out.push_str(&json_f64(values[r - pad]));
            }
        }
        out.push('\n');
    }
    out
}

/// Serialize a whole telemetry session (meta + registry + sampler +
/// episodes) as one JSON document.
pub fn session_to_json(t: &Telemetry, meta: &[(&str, String)]) -> String {
    let mut out = String::from("{\"meta\":{");
    let mut first = true;
    for (k, v) in meta {
        push_kv(&mut out, k, &format!("\"{}\"", json_escape(v)), &mut first);
    }
    out.push_str("},\"registry\":");
    out.push_str(&registry_to_json(&t.registry));
    out.push_str(",\"sampler\":");
    out.push_str(&sampler_to_json(&t.sampler, t.config.epoch_len));
    out.push_str(",\"episodes\":");
    out.push_str(&episodes_to_json(t.episodes.episodes()));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryConfig;

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn csv_escaping_quotes_when_needed() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn non_finite_floats_become_zero() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2");
    }

    #[test]
    fn registry_json_shape() {
        let mut r = Registry::new();
        let c = r.counter("hits");
        r.add(c, 4);
        let g = r.gauge("util");
        r.set(g, 0.25);
        let h = r.histogram("lat");
        r.record(h, 8);
        let j = registry_to_json(&r);
        assert_eq!(
            j,
            "{\"counters\":{\"hits\":4},\"gauges\":{\"util\":0.25},\
             \"histograms\":{\"lat\":{\"count\":1,\"sum\":8,\"min\":8,\"max\":8,\
             \"mean\":8,\"p50\":8,\"p95\":8,\"p99\":8}}}"
        );
    }

    #[test]
    fn csv_rows_align_by_epoch() {
        let mut s = EpochSampler::new(8);
        let a = s.series("a");
        s.set(a, 1.0);
        s.commit_epoch();
        let b = s.series("with,comma");
        s.set(a, 2.0);
        s.set(b, 9.0);
        s.commit_epoch();
        let csv = series_to_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "epoch,a,\"with,comma\"");
        assert_eq!(lines[1], "0,1,");
        assert_eq!(lines[2], "1,2,9");
    }

    #[test]
    fn ndjson_one_object_per_line() {
        let eps = vec![
            Episode {
                node: 0,
                start: 1,
                end: 5,
                peak_depth: 2,
                flits_shed: 0,
            },
            Episode {
                node: 1,
                start: 7,
                end: 9,
                peak_depth: 1,
                flits_shed: 3,
            },
        ];
        let nd = episodes_to_ndjson(&eps);
        assert_eq!(nd.lines().count(), 2);
        assert!(nd.starts_with("{\"node\":0,\"start\":1,\"end\":5,"));
    }

    #[test]
    fn session_json_is_deterministic() {
        let build = || {
            let mut t = Telemetry::new(TelemetryConfig::default());
            let c = t.registry.counter("n");
            t.registry.add(c, 1);
            let s = t.sampler.series("v");
            t.sampler.set(s, 0.5);
            t.sampler.commit_epoch();
            t.to_json(&[("k", "v\"esc".to_string())])
        };
        assert_eq!(build(), build());
        assert!(build().contains("\\\"esc"));
    }
}
