//! Epoch sampler: named per-epoch series stored in bounded ring
//! buffers.

/// Handle to a registered series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// A fixed-capacity ring of `f64` samples; old epochs are evicted once
/// the ring is full, so memory stays bounded for arbitrarily long runs.
#[derive(Debug, Clone)]
struct Ring {
    buf: Vec<f64>,
    head: usize, // index of the oldest element
    len: usize,
    cap: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::new(),
            head: 0,
            len: 0,
            cap: cap.max(1),
        }
    }

    fn push(&mut self, v: f64) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
            self.len += 1;
        } else {
            // Full: overwrite the oldest.
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
        }
    }

    fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        self.buf[(self.head + i) % self.buf.len()]
    }
}

/// Collects one value per registered series per epoch.
///
/// Usage per epoch: `set()` each series, then `commit_epoch()`. Series
/// not set in an epoch record 0.0 for it, so all series stay aligned
/// by epoch index.
#[derive(Debug, Clone)]
pub struct EpochSampler {
    names: Vec<String>,
    rings: Vec<Ring>,
    pending: Vec<f64>,
    epochs_committed: u64,
    ring_cap: usize,
}

impl EpochSampler {
    /// A sampler whose series each retain at most `ring_cap` epochs.
    pub fn new(ring_cap: usize) -> Self {
        EpochSampler {
            names: Vec::new(),
            rings: Vec::new(),
            pending: Vec::new(),
            epochs_committed: 0,
            ring_cap,
        }
    }

    /// Register (or look up) a series by name.
    pub fn series(&mut self, name: &str) -> SeriesId {
        if let Some(ix) = self.names.iter().position(|n| n == name) {
            return SeriesId(ix);
        }
        self.names.push(name.to_string());
        self.rings.push(Ring::new(self.ring_cap));
        self.pending.push(0.0);
        SeriesId(self.names.len() - 1)
    }

    /// Stage this epoch's value for a series.
    pub fn set(&mut self, id: SeriesId, v: f64) {
        self.pending[id.0] = v;
    }

    /// Seal the current epoch: push every staged value and reset the
    /// staging area to zeros.
    pub fn commit_epoch(&mut self) {
        for (ring, v) in self.rings.iter_mut().zip(self.pending.iter_mut()) {
            ring.push(*v);
            *v = 0.0;
        }
        self.epochs_committed += 1;
    }

    /// Total epochs committed (including any evicted from the rings).
    pub fn epochs_committed(&self) -> u64 {
        self.epochs_committed
    }

    /// Epochs currently retained (same for every series).
    pub fn retained(&self) -> usize {
        self.rings.first().map_or(0, |r| r.len)
    }

    /// Index of the first retained epoch (0 unless eviction happened).
    pub fn first_epoch(&self) -> u64 {
        self.epochs_committed - self.retained() as u64
    }

    /// Number of registered series.
    pub fn n_series(&self) -> usize {
        self.names.len()
    }

    /// Name of a series.
    pub fn name(&self, id: SeriesId) -> &str {
        &self.names[id.0]
    }

    /// Look up a series id by name without registering.
    pub fn find(&self, name: &str) -> Option<SeriesId> {
        self.names.iter().position(|n| n == name).map(SeriesId)
    }

    /// The retained values of a series, oldest first.
    pub fn values(&self, id: SeriesId) -> Vec<f64> {
        let ring = &self.rings[id.0];
        (0..ring.len).map(|i| ring.get(i)).collect()
    }

    /// Capture the sampler's logical state for snapshot serialization:
    /// `(epochs_committed, per-series (name, retained values oldest
    /// first, staged pending value))` in registration order. Ring
    /// internals (head position) are representation detail — a rebuilt
    /// ring with the same logical contents behaves identically.
    pub fn export_state(&self) -> (u64, Vec<(String, Vec<f64>, f64)>) {
        let series = self
            .names
            .iter()
            .zip(self.rings.iter())
            .zip(self.pending.iter())
            .map(|((n, r), &p)| (n.clone(), (0..r.len).map(|i| r.get(i)).collect(), p))
            .collect();
        (self.epochs_committed, series)
    }

    /// Overlay a state captured by [`EpochSampler::export_state`].
    /// Series are re-registered in the captured order, so positional
    /// [`SeriesId`]s handed out by an identically-ordered registration
    /// sequence stay valid.
    pub fn import_state(&mut self, epochs_committed: u64, series: Vec<(String, Vec<f64>, f64)>) {
        self.names.clear();
        self.rings.clear();
        self.pending.clear();
        for (name, values, pending) in series {
            self.names.push(name);
            let mut ring = Ring::new(self.ring_cap);
            for v in values {
                ring.push(v);
            }
            self.rings.push(ring);
            self.pending.push(pending);
        }
        self.epochs_committed = epochs_committed;
    }

    /// Iterate `(name, values)` over all series, oldest epoch first.
    pub fn all_series(&self) -> impl Iterator<Item = (&str, Vec<f64>)> {
        self.names.iter().map(String::as_str).zip(
            self.rings
                .iter()
                .map(|r| (0..r.len).map(|i| r.get(i)).collect()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_values_commit_and_reset() {
        let mut s = EpochSampler::new(16);
        let a = s.series("a");
        let b = s.series("b");
        s.set(a, 1.0);
        s.set(b, 2.0);
        s.commit_epoch();
        s.set(a, 3.0); // b left unset -> 0.0
        s.commit_epoch();
        assert_eq!(s.values(a), vec![1.0, 3.0]);
        assert_eq!(s.values(b), vec![2.0, 0.0]);
        assert_eq!(s.epochs_committed(), 2);
        assert_eq!(s.first_epoch(), 0);
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let mut s = EpochSampler::new(4);
        let a = s.series("a");
        for i in 0..10 {
            s.set(a, i as f64);
            s.commit_epoch();
        }
        assert_eq!(s.values(a), vec![6.0, 7.0, 8.0, 9.0]);
        assert_eq!(s.retained(), 4);
        assert_eq!(s.epochs_committed(), 10);
        assert_eq!(s.first_epoch(), 6);
    }

    #[test]
    fn wraparound_exact_boundary() {
        let mut s = EpochSampler::new(3);
        let a = s.series("x");
        for i in 0..3 {
            s.set(a, i as f64);
            s.commit_epoch();
        }
        assert_eq!(s.values(a), vec![0.0, 1.0, 2.0]);
        s.set(a, 3.0);
        s.commit_epoch();
        assert_eq!(s.values(a), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn series_registered_late_still_aligns_by_index() {
        let mut s = EpochSampler::new(8);
        let a = s.series("a");
        s.set(a, 5.0);
        s.commit_epoch();
        let b = s.series("b");
        s.set(b, 6.0);
        s.commit_epoch();
        // b missed epoch 0; its ring is one shorter, so callers align
        // from the end. Retention reports the longest ring.
        assert_eq!(s.values(a), vec![5.0, 0.0]);
        assert_eq!(s.values(b), vec![6.0]);
    }

    #[test]
    fn find_does_not_register() {
        let mut s = EpochSampler::new(8);
        assert!(s.find("nope").is_none());
        let a = s.series("yes");
        assert_eq!(s.find("yes"), Some(a));
        assert_eq!(s.n_series(), 1);
    }
}
