//! Log2-bucket histogram with percentile estimation.

/// A histogram over `u64` samples with power-of-two buckets.
///
/// Bucket `i` holds samples whose highest set bit is `i - 1` (bucket 0
/// holds the value 0), i.e. bucket boundaries are `0, 1, 2, 4, 8, ...`.
/// Percentiles are estimated as the upper bound of the bucket the rank
/// falls in, clamped to the tracked `[min, max]` — exact for empty and
/// single-sample histograms, and never more than 2x off otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Raw internal state for snapshot serialization:
    /// `(buckets, count, sum, min, max)`. `min` is the raw sentinel
    /// (`u64::MAX` while empty), not the clamped [`Histogram::min`].
    pub fn to_raw(&self) -> ([u64; 65], u64, u64, u64, u64) {
        (self.buckets, self.count, self.sum, self.min, self.max)
    }

    /// Rebuild a histogram from [`Histogram::to_raw`] output.
    pub fn from_raw(buckets: [u64; 65], count: u64, sum: u64, min: u64, max: u64) -> Self {
        Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`), or 0 if empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i, clamped to observed extremes.
                let upper = if i == 0 {
                    0
                } else {
                    (1u64 << (i - 1)).saturating_mul(2) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = Histogram::new();
        h.record(137);
        assert_eq!(h.p50(), 137);
        assert_eq!(h.p95(), 137);
        assert_eq!(h.p99(), 137);
        assert_eq!(h.max(), 137);
        assert_eq!(h.min(), 137);
        assert_eq!(h.mean(), 137.0);
    }

    #[test]
    fn zero_sample_lands_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in [3u64, 9, 17, 120, 4000, 4001, 4002, 65000] {
            h.record(v);
        }
        let p50 = h.p50();
        let p95 = h.p95();
        let p99 = h.p99();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max());
        assert!(p50 >= h.min());
        // Nearest-rank p50 of 8 samples is the 4th value (120), so the
        // reported quantile sits in that value's bucket (64..=127).
        assert!((64..=127).contains(&p50), "{p50}");
    }

    #[test]
    fn uniform_percentile_within_bucket_factor() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        assert!((500..=1023).contains(&p50), "{p50}");
        let p99 = h.p99();
        assert!((990..=1000).contains(&p99), "{p99}");
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        a.record(6);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.sum(), 1011);
        let empty = Histogram::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 5);
    }
}
