//! Clog-episode detector: folds per-node blocked enter/exit
//! transitions into discrete episodes.

/// One contiguous interval during which a memory node's injection
/// buffer was blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Episode {
    /// Memory node (flat index) the episode happened at.
    pub node: usize,
    /// Cycle the node entered the blocked state.
    pub start: u64,
    /// Cycle the node exited the blocked state (`end >= start`).
    pub end: u64,
    /// Deepest injection-buffer occupancy observed while blocked.
    pub peak_depth: usize,
    /// Reply flits not injected here because Delegated Replies sent
    /// the data over the request network instead (0 under baseline).
    pub flits_shed: u64,
}

impl Episode {
    /// Duration in cycles (inclusive of the entry cycle).
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// Folds `BlockedEnter`/`BlockedExit` transitions into [`Episode`]s.
///
/// The instrumented simulator calls [`enter`](Self::enter) /
/// [`exit`](Self::exit) on the transitions it already tracks for the
/// trace log, [`observe_depth`](Self::observe_depth) each blocked
/// cycle, and [`add_shed`](Self::add_shed) when a delegation avoids a
/// reply injection. [`finish`](Self::finish) closes episodes still
/// open at end of run.
///
/// Two thresholds tune what counts as one clog (both default to 0, in
/// which case the fold is the raw transition record — byte-identical
/// to the historical behavior):
///
/// * **minimum duration** — an episode shorter than this many cycles
///   is a blip, not a clog, and is discarded on exit;
/// * **merge gap** — a node that re-blocks within this many cycles of
///   its previous exit is still in the *same* clog: the new interval
///   extends the previous episode (peak depth maxed, shed summed)
///   instead of opening a fresh record.
#[derive(Debug, Clone, Default)]
pub struct EpisodeDetector {
    open: Vec<Option<Episode>>, // indexed by node
    closed: Vec<Episode>,
    min_duration: u64,
    merge_gap: u64,
    /// Per-node index of the node's most recent entry in `closed` (the
    /// merge target while the gap is still open).
    last_closed: Vec<Option<usize>>,
}

impl EpisodeDetector {
    /// An empty detector with both thresholds at 0 (record everything,
    /// merge nothing).
    pub fn new() -> Self {
        EpisodeDetector::default()
    }

    /// An empty detector with the given minimum episode duration and
    /// re-block merge gap, both in cycles.
    pub fn with_thresholds(min_duration: u64, merge_gap: u64) -> Self {
        EpisodeDetector {
            min_duration,
            merge_gap,
            ..EpisodeDetector::default()
        }
    }

    /// The configured `(min_duration, merge_gap)` thresholds.
    pub fn thresholds(&self) -> (u64, u64) {
        (self.min_duration, self.merge_gap)
    }

    fn slot(&mut self, node: usize) -> &mut Option<Episode> {
        if node >= self.open.len() {
            self.open.resize(node + 1, None);
        }
        &mut self.open[node]
    }

    /// A node entered the blocked state. A second enter without an
    /// intervening exit is ignored (idempotent).
    pub fn enter(&mut self, node: usize, now: u64) {
        let slot = self.slot(node);
        if slot.is_none() {
            *slot = Some(Episode {
                node,
                start: now,
                end: now,
                peak_depth: 0,
                flits_shed: 0,
            });
        }
    }

    /// A node exited the blocked state, closing its open episode. The
    /// interval merges into the node's previous episode when it starts
    /// within the merge gap, and is discarded when shorter than the
    /// minimum duration.
    pub fn exit(&mut self, node: usize, now: u64) {
        if let Some(mut ep) = self.slot(node).take() {
            ep.end = now.max(ep.start);
            if self.merge_gap > 0 {
                if let Some(&Some(idx)) = self.last_closed.get(node) {
                    let prev = &mut self.closed[idx];
                    if ep.start.saturating_sub(prev.end) <= self.merge_gap {
                        prev.end = ep.end.max(prev.end);
                        prev.peak_depth = prev.peak_depth.max(ep.peak_depth);
                        prev.flits_shed += ep.flits_shed;
                        return;
                    }
                }
            }
            if ep.duration() < self.min_duration {
                return;
            }
            if node >= self.last_closed.len() {
                self.last_closed.resize(node + 1, None);
            }
            self.last_closed[node] = Some(self.closed.len());
            self.closed.push(ep);
        }
    }

    /// Record the node's injection-buffer depth for this blocked cycle.
    pub fn observe_depth(&mut self, node: usize, depth: usize) {
        if let Some(ep) = self.slot(node) {
            ep.peak_depth = ep.peak_depth.max(depth);
        }
    }

    /// Credit reply flits shed by delegation during the open episode.
    pub fn add_shed(&mut self, node: usize, flits: u64) {
        if let Some(ep) = self.slot(node) {
            ep.flits_shed += flits;
        }
    }

    /// Whether the node currently has an open episode.
    pub fn is_open(&self, node: usize) -> bool {
        self.open.get(node).is_some_and(Option::is_some)
    }

    /// Close all still-open episodes at `now` (end of run).
    pub fn finish(&mut self, now: u64) {
        for node in 0..self.open.len() {
            self.exit(node, now);
        }
    }

    /// Capture `(open, closed, last_closed)` state for snapshot
    /// serialization (thresholds travel in the telemetry config).
    pub fn export_state(&self) -> (Vec<Option<Episode>>, Vec<Episode>, Vec<Option<usize>>) {
        (
            self.open.clone(),
            self.closed.clone(),
            self.last_closed.clone(),
        )
    }

    /// Overlay a state captured by [`EpisodeDetector::export_state`].
    pub fn import_state(
        &mut self,
        open: Vec<Option<Episode>>,
        closed: Vec<Episode>,
        last_closed: Vec<Option<usize>>,
    ) {
        self.open = open;
        self.closed = closed;
        self.last_closed = last_closed;
    }

    /// All closed episodes, in close order.
    pub fn episodes(&self) -> &[Episode] {
        &self.closed
    }

    /// Closed episodes at one node.
    pub fn episodes_at(&self, node: usize) -> impl Iterator<Item = &Episode> {
        self.closed.iter().filter(move |e| e.node == node)
    }

    /// Longest closed episode, if any.
    pub fn longest(&self) -> Option<&Episode> {
        self.closed.iter().max_by_key(|e| e.duration())
    }

    /// Total blocked cycles across all closed episodes.
    pub fn total_blocked_cycles(&self) -> u64 {
        self.closed.iter().map(Episode::duration).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_sequence_folds_into_episodes() {
        let mut d = EpisodeDetector::new();
        // Node 2: blocked 100..350 peaking at depth 7, shedding 12.
        d.enter(2, 100);
        d.observe_depth(2, 3);
        d.observe_depth(2, 7);
        d.add_shed(2, 12);
        d.observe_depth(2, 5);
        d.exit(2, 350);
        // Node 0 interleaved: short episode, no shedding.
        d.enter(0, 200);
        d.observe_depth(0, 2);
        d.exit(0, 210);
        // Node 2 again.
        d.enter(2, 400);
        d.exit(2, 460);

        let eps = d.episodes();
        assert_eq!(eps.len(), 3);
        assert_eq!(
            eps[0],
            Episode {
                node: 2,
                start: 100,
                end: 350,
                peak_depth: 7,
                flits_shed: 12
            }
        );
        assert_eq!(eps[0].duration(), 250);
        assert_eq!(eps[1].node, 0);
        assert_eq!(d.episodes_at(2).count(), 2);
        assert_eq!(d.total_blocked_cycles(), 250 + 10 + 60);
        assert_eq!(d.longest().unwrap().start, 100);
    }

    #[test]
    fn double_enter_is_idempotent_and_exit_without_enter_is_noop() {
        let mut d = EpisodeDetector::new();
        d.enter(1, 10);
        d.enter(1, 20); // ignored
        d.exit(1, 30);
        d.exit(1, 40); // no open episode: no-op
        assert_eq!(d.episodes().len(), 1);
        assert_eq!(d.episodes()[0].start, 10);
        assert_eq!(d.episodes()[0].end, 30);
    }

    #[test]
    fn finish_closes_open_episodes() {
        let mut d = EpisodeDetector::new();
        d.enter(3, 500);
        d.observe_depth(3, 9);
        assert!(d.is_open(3));
        d.finish(900);
        assert!(!d.is_open(3));
        assert_eq!(d.episodes().len(), 1);
        assert_eq!(d.episodes()[0].end, 900);
        assert_eq!(d.episodes()[0].peak_depth, 9);
    }

    #[test]
    fn min_duration_discards_blips() {
        let mut d = EpisodeDetector::with_thresholds(50, 0);
        d.enter(0, 100);
        d.exit(0, 120); // 20-cycle blip: dropped
        d.enter(0, 200);
        d.exit(0, 300); // 100-cycle clog: kept
        assert_eq!(d.episodes().len(), 1);
        assert_eq!(d.episodes()[0].start, 200);
    }

    #[test]
    fn merge_gap_folds_a_quick_reblock_into_one_episode() {
        let mut d = EpisodeDetector::with_thresholds(0, 30);
        d.enter(1, 100);
        d.observe_depth(1, 4);
        d.add_shed(1, 8);
        d.exit(1, 200);
        // Re-blocks 20 cycles later (within the 30-cycle gap): same clog.
        d.enter(1, 220);
        d.observe_depth(1, 9);
        d.add_shed(1, 3);
        d.exit(1, 260);
        // Re-blocks 100 cycles later (past the gap): a new episode.
        d.enter(1, 360);
        d.exit(1, 400);
        // Another node is never merged across.
        d.enter(2, 261);
        d.exit(2, 262);
        let at1: Vec<_> = d.episodes_at(1).collect();
        assert_eq!(at1.len(), 2);
        assert_eq!((at1[0].start, at1[0].end), (100, 260));
        assert_eq!(at1[0].peak_depth, 9);
        assert_eq!(at1[0].flits_shed, 11);
        assert_eq!(at1[1].start, 360);
        assert_eq!(d.episodes_at(2).count(), 1);
    }

    #[test]
    fn zero_thresholds_match_the_default_fold() {
        let script = |d: &mut EpisodeDetector| {
            d.enter(0, 10);
            d.exit(0, 11);
            d.enter(0, 12);
            d.observe_depth(0, 5);
            d.exit(0, 90);
        };
        let mut plain = EpisodeDetector::new();
        let mut tuned = EpisodeDetector::with_thresholds(0, 0);
        script(&mut plain);
        script(&mut tuned);
        assert_eq!(plain.episodes(), tuned.episodes());
        assert_eq!(plain.episodes().len(), 2);
    }

    #[test]
    fn depth_and_shed_outside_episode_are_ignored() {
        let mut d = EpisodeDetector::new();
        d.observe_depth(5, 100);
        d.add_shed(5, 100);
        assert_eq!(d.episodes().len(), 0);
        d.enter(5, 1);
        d.exit(5, 2);
        assert_eq!(d.episodes()[0].peak_depth, 0);
        assert_eq!(d.episodes()[0].flits_shed, 0);
    }
}
