use clognet_core::System;
use clognet_proto::{CoreId, Priority, Scheme, SystemConfig, TrafficClass};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args.get(1).map(|s| s.as_str()).unwrap_or("BT");
    let cfg = SystemConfig::default().with_scheme(Scheme::Baseline);
    let mut sys = System::new(cfg, bench, "dedup");
    sys.run(20_000);
    let r = sys.report();
    println!("{}", r.summary());
    println!(
        "l1miss {:.3} oracle {:.2} llcReads {}",
        r.l1_miss_rate, r.oracle_locality, r.breakdown.llc_direct
    );
    for m in sys.mems() {
        let d = m.dram_stats();
        println!(
            "mem {} req {} hits {} miss {} blocked {} q{:?} dram(r {} w {} rowhit {:.2})",
            m.id,
            m.stats.requests,
            m.stats.llc_hits,
            m.stats.llc_misses,
            m.stats.blocked_cycles,
            m.queue_depths(),
            d.reads,
            d.writes,
            d.row_hit_rate()
        );
    }
    let req = sys.nets().net(TrafficClass::Request).stats();
    let rep = sys.nets().net(TrafficClass::Reply).stats();
    println!(
        "reqInj {:?} repInj {:?} reqLat {:.0} repLat {:.0} inFlight {}",
        req.injected_pkts,
        rep.injected_pkts,
        req.mean_latency(TrafficClass::Request, Priority::Gpu),
        rep.mean_latency(TrafficClass::Reply, Priority::Gpu),
        sys.nets().in_flight()
    );
    let g = sys.gpu().stats(CoreId(0));
    println!(
        "core0 retired {} memops {} stall {} llcReads {} writes {}",
        g.retired, g.mem_ops, g.mem_stall_cycles, g.llc_reads, g.writes
    );
}
