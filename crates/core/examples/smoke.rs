use clognet_core::System;
use clognet_proto::{Scheme, SystemConfig};
use clognet_workloads::TABLE2;

fn main() {
    let warm = 10_000;
    let run = 25_000;
    println!(
        "{:<6} {:>8} {:>8} {:>8} | {:>6} {:>6} | {:>5} {:>5} {:>5}",
        "bench", "base", "DR", "RP", "DR/b", "RP/b", "blk%", "orac", "fwd%"
    );
    let mut gm = [1.0f64; 2];
    for p in TABLE2.iter() {
        let mut ipc = [0.0; 3];
        let mut extra = (0.0, 0.0, 0.0);
        for (i, scheme) in [
            Scheme::Baseline,
            Scheme::DelegatedReplies,
            Scheme::rp_default(),
        ]
        .into_iter()
        .enumerate()
        {
            let cfg = SystemConfig::default().with_scheme(scheme);
            let mut sys = System::new(cfg, p.gpu, p.cpus[0]);
            sys.run(warm);
            sys.reset_stats();
            sys.run(run);
            let r = sys.report();
            ipc[i] = r.gpu_ipc;
            if i == 0 {
                extra = (r.mem_blocked_rate, r.oracle_locality, 0.0);
            }
            if i == 1 {
                extra.2 = r.breakdown.forwarded_fraction();
            }
        }
        gm[0] *= ipc[1] / ipc[0];
        gm[1] *= ipc[2] / ipc[0];
        println!(
            "{:<6} {:>8.3} {:>8.3} {:>8.3} | {:>6.3} {:>6.3} | {:>5.2} {:>5.2} {:>5.2}",
            p.gpu,
            ipc[0],
            ipc[1],
            ipc[2],
            ipc[1] / ipc[0],
            ipc[2] / ipc[0],
            extra.0,
            extra.1,
            extra.2
        );
    }
    println!(
        "GEOMEAN DR {:.3} RP {:.3}",
        gm[0].powf(1.0 / 11.0),
        gm[1].powf(1.0 / 11.0)
    );
}
