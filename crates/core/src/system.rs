//! The full heterogeneous system: GPU subsystem + CPU subsystem +
//! memory nodes, wired through the request/reply networks, with the
//! Delegated-Replies engine at the memory nodes.
//!
//! One [`System`] simulates one heterogeneous workload (a Table-II
//! GPU/CPU pairing) under one [`SystemConfig`]. Construction is cheap;
//! `run` advances the whole chip cycle by cycle; [`System::report`]
//! extracts the figure-level metrics.

use crate::memnode::MemNode;
use crate::nets::Nets;
use crate::report::{MissBreakdown, Report};
use crate::snapshot::{self, Snapshot};
use crate::telemetry::SystemTelemetry;
use crate::trace::{Event, TraceLog};
use clognet_control::{ControlInput, Controller, DecisionLog};
use clognet_cpu::{CpuOut, CpuSubsystem};
use clognet_gpu::{GpuIn, GpuOut, GpuSubsystem};
use clognet_noc::{Network, ShardError};
use clognet_proto::snap::{self as snap, SnapError};
use clognet_proto::{
    AddressMap, CoreId, Cycle, FabricConfig, FabricInterleave, Layout, LineAddr, MsgKind, NodeId,
    NodeKind, Packet, PacketId, Priority, Scheme, SystemConfig, TrafficClass,
};
use clognet_telemetry::TelemetryConfig;
use clognet_workloads::{cpu_benchmark, gpu_benchmark};
use std::collections::VecDeque;

/// How the NoC portion of [`System::tick`] executes.
///
/// Both engines compute the identical state transition; the sharded
/// engine spreads it over a worker pool. Reports are byte-identical —
/// the engine is an execution-mode knob like fast-forward and
/// idle-skip, never part of a result's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickEngine {
    /// One thread ticks every router (the reference loop).
    Sequential,
    /// Per-row spatial shards ticked on `n` threads with a
    /// deterministic per-cycle barrier exchange of boundary flits and
    /// credits. `Sharded(1)` is equivalent to `Sequential`.
    Sharded(usize),
}

/// Validate a prospective shard count against a configuration without
/// building a system — lets front ends reject a bad `--shards` with a
/// clear message before any construction work.
///
/// # Errors
///
/// Fails when `shards` cannot partition `cfg`'s topology (more than
/// one shard requires a mesh whose row count divides evenly).
pub fn validate_shards(cfg: &SystemConfig, shards: usize) -> Result<(), ShardError> {
    clognet_noc::shards::validate(cfg.noc.topology, cfg.mesh_height, shards)
}

/// Per-node outboxes (one per class) between the cores and the NIs.
#[derive(Debug, Default)]
struct Outbox {
    request: VecDeque<Packet>,
    reply: VecDeque<Packet>,
}

const OUTBOX_CAP: usize = 16;

/// A chip's attachment point to the inter-chip fabric: which package
/// slot this chip occupies, how line addresses map to owner chips, and
/// the gateway memory nodes that carry cross-chip traffic on and off
/// chip. `None` on a plain single-chip system — every fabric branch in
/// the hot paths compiles down to one `is_some` test.
#[derive(Debug)]
pub(crate) struct FabricPort {
    /// This chip's index in the package.
    chip: usize,
    /// Total chips in the package.
    chips: usize,
    interleave: FabricInterleave,
    /// The *package* seed (identical on every chip, so all chips agree
    /// on line ownership even though per-chip address maps differ).
    seed: u64,
    /// Gateway nodes in dense `MemId` order (the first
    /// `FabricConfig::gateways` memory nodes).
    gateways: Vec<NodeId>,
    /// Outbound cross-chip requests awaiting fabric handoff, in
    /// ejection order. Bounded by `egress_cap`; a full egress
    /// back-pressures the gateway's NI (head-of-line, deterministic).
    egress: VecDeque<Packet>,
    egress_cap: usize,
}

impl FabricPort {
    /// Avalanche a line address with the package seed — the same fold
    /// the [`AddressMap`] uses, salted so chip interleaving and
    /// controller interleaving decorrelate.
    fn fold(&self, line: LineAddr) -> u64 {
        let mut x = line.0 ^ self.seed.rotate_left(17) ^ 0xC2B2_AE3D_27D4_EB4F;
        x ^= x >> 7;
        x ^= x >> 13;
        x ^= x >> 23;
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 31;
        x
    }

    /// The chip that owns `line` under the package interleaving.
    fn chip_of(&self, line: LineAddr) -> usize {
        match self.interleave {
            FabricInterleave::Modulo => (line.0 % self.chips as u64) as usize,
            FabricInterleave::Hash => (self.fold(line) % self.chips as u64) as usize,
        }
    }

    /// The gateway index `line` routes through — a pure function of the
    /// line and the package seed, so the request (on the origin chip)
    /// and its reply (returning through the owner chip) meet at the
    /// same gateway slot on both sides.
    fn gateway_index_for(&self, line: LineAddr) -> usize {
        ((self.fold(line) >> 8) % self.gateways.len() as u64) as usize
    }
}

/// The assembled chip.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    layout: Layout,
    map: AddressMap,
    nets: Nets,
    gpu: GpuSubsystem,
    cpu: CpuSubsystem,
    mems: Vec<MemNode>,
    outboxes: Vec<Outbox>,
    pkt_seq: u64,
    now: Cycle,
    gpu_bench: String,
    cpu_bench: String,
    oracle_total: u64,
    oracle_remote: u64,
    delegations_sent: u64,
    stats_epoch: Cycle,
    fast_forward: bool,
    skipped_cycles: u64,
    trace: TraceLog,
    telemetry: Option<Box<SystemTelemetry>>,
    /// Adaptive control loop (`None` unless `cfg.control` is set).
    control: Option<Box<Controller>>,
    blocked_since: Vec<Option<Cycle>>,
    /// Inter-chip fabric attachment (`None` on a plain single chip).
    port: Option<FabricPort>,
    /// Scratch buffers reused across ticks.
    gpu_out: Vec<(CoreId, GpuOut)>,
    cpu_out: Vec<(CoreId, CpuOut)>,
    gpu_budgets: Vec<usize>,
    gpu_remote_budgets: Vec<usize>,
    cpu_budgets: Vec<usize>,
    gpu_forwards: Vec<(CoreId, GpuOut)>,
    ctl_blocked: Vec<u64>,
    ctl_depth: Vec<usize>,
    ctl_shed: Vec<u64>,
}

impl System {
    /// Build a system running `gpu_bench` on all GPU cores and
    /// `cpu_bench` on all CPU cores (Table-II style).
    ///
    /// # Panics
    ///
    /// Panics if a benchmark name is unknown or the configuration is
    /// inconsistent.
    pub fn new(cfg: SystemConfig, gpu_bench: &str, cpu_bench: &str) -> Self {
        let layout = cfg.layout();
        let map = AddressMap::new(cfg.n_mem, cfg.seed);
        Self::new_prebuilt(cfg, gpu_bench, cpu_bench, layout, map)
    }

    /// Build a system from a pre-derived [`Layout`] and [`AddressMap`].
    ///
    /// Sweeps that vary a parameter which does not affect node placement
    /// or address interleaving (channel width, cache capacities, buffer
    /// depths) derive both once and clone them per point instead of
    /// re-deriving them for every (scheme, point) pair.
    ///
    /// # Panics
    ///
    /// Panics if a benchmark name is unknown, the configuration is
    /// inconsistent, or `layout`/`map` do not match `cfg` (they must
    /// come from `cfg.layout()` / `AddressMap::new(cfg.n_mem, cfg.seed)`
    /// on an equivalent configuration).
    pub fn new_prebuilt(
        cfg: SystemConfig,
        gpu_bench: &str,
        cpu_bench: &str,
        layout: Layout,
        map: AddressMap,
    ) -> Self {
        assert_eq!(
            layout.node_count(),
            cfg.nodes(),
            "prebuilt layout does not match the configuration"
        );
        let nets = Nets::new(&cfg);
        let gpu_profile =
            gpu_benchmark(gpu_bench).unwrap_or_else(|| panic!("unknown GPU benchmark {gpu_bench}"));
        let cpu_profile =
            cpu_benchmark(cpu_bench).unwrap_or_else(|| panic!("unknown CPU benchmark {cpu_bench}"));
        let gpu = GpuSubsystem::new(
            cfg.gpu.clone(),
            cfg.scheme,
            cfg.l1_org,
            cfg.cta_sched,
            gpu_profile,
            cfg.n_gpu,
            cfg.seed,
        );
        let mut gpu = gpu;
        gpu.set_delayed_hits(cfg.dr.delayed_hits);
        let cpu = CpuSubsystem::new(cfg.cpu.clone(), cpu_profile, cfg.n_cpu, cfg.seed);
        let mems = layout
            .mem_nodes()
            .enumerate()
            .map(|(i, node)| MemNode::new(&cfg, clognet_proto::MemId(i as u16), node))
            .collect();
        let outboxes = (0..layout.node_count())
            .map(|_| Outbox::default())
            .collect();
        let control = cfg
            .control
            .map(|ctl| Box::new(Controller::new(ctl, cfg.scheme, cfg.n_mem)));
        System {
            layout,
            map,
            nets,
            gpu,
            cpu,
            mems,
            outboxes,
            pkt_seq: 0,
            now: 0,
            gpu_bench: gpu_bench.to_string(),
            cpu_bench: cpu_bench.to_string(),
            oracle_total: 0,
            oracle_remote: 0,
            delegations_sent: 0,
            stats_epoch: 0,
            fast_forward: true,
            skipped_cycles: 0,
            trace: TraceLog::new(4096),
            telemetry: None,
            control,
            blocked_since: vec![None; cfg.n_mem],
            port: None,
            gpu_out: Vec::new(),
            cpu_out: Vec::new(),
            gpu_budgets: Vec::new(),
            gpu_remote_budgets: Vec::new(),
            cpu_budgets: Vec::new(),
            gpu_forwards: Vec::new(),
            ctl_blocked: Vec::new(),
            ctl_depth: Vec::new(),
            ctl_shed: Vec::new(),
            cfg,
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The resolved layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    fn next_pid(&mut self) -> PacketId {
        self.pkt_seq += 1;
        PacketId(self.pkt_seq)
    }

    fn mem_node_of(&self, line: LineAddr) -> NodeId {
        // Lines owned by another chip in the package route to this
        // chip's gateway for the line instead of a local controller.
        if let Some(port) = &self.port {
            if port.chip_of(line) != port.chip {
                return port.gateways[port.gateway_index_for(line)];
            }
        }
        let mc = self.map.controller_of(line);
        self.layout.mem_node(mc)
    }

    /// Attach this chip to an inter-chip fabric as package slot `chip`.
    /// `seed` is the *package* seed — identical on every chip so all
    /// chips agree on line ownership. Call once, before ticking.
    pub(crate) fn attach_fabric_port(&mut self, chip: usize, fc: &FabricConfig, seed: u64) {
        let gateways: Vec<NodeId> = self.layout.mem_nodes().take(fc.gateways).collect();
        assert!(
            !gateways.is_empty() && gateways.len() == fc.gateways,
            "gateway count exceeds memory nodes (validate_fabric should have rejected this)"
        );
        self.port = Some(FabricPort {
            chip,
            chips: fc.chips,
            interleave: fc.interleave,
            seed,
            gateways,
            egress: VecDeque::new(),
            egress_cap: fc.queue_pkts,
        });
    }

    /// The owner chip of `line` under the attached fabric port.
    pub(crate) fn fabric_chip_of(&self, line: LineAddr) -> usize {
        self.port
            .as_ref()
            .expect("fabric port attached")
            .chip_of(line)
    }

    /// Head of the outbound cross-chip request queue.
    pub(crate) fn peek_egress(&self) -> Option<&Packet> {
        self.port.as_ref().and_then(|p| p.egress.front())
    }

    /// Pop the outbound cross-chip request queue.
    pub(crate) fn pop_egress(&mut self) -> Option<Packet> {
        self.port.as_mut().and_then(|p| p.egress.pop_front())
    }

    /// Head of gateway `gi`'s parked cross-chip replies. On a chip with
    /// a fabric port, every reply ejected at a memory node is bound for
    /// another chip (local requesters are never memory nodes), so the
    /// reply-net ejection queue at a gateway is exactly the fabric
    /// reply staging queue.
    pub(crate) fn peek_gateway_reply(&self, gi: usize) -> Option<&Packet> {
        let gw = self.port.as_ref().expect("fabric port attached").gateways[gi];
        self.nets.net(TrafficClass::Reply).peek_ejected(gw)
    }

    /// Pop gateway `gi`'s parked cross-chip reply queue.
    pub(crate) fn pop_gateway_reply(&mut self, gi: usize) -> Option<Packet> {
        let gw = self.port.as_ref().expect("fabric port attached").gateways[gi];
        self.nets.net_mut(TrafficClass::Reply).pop_ejected(gw)
    }

    /// Inject a fabric-delivered cross-chip *request* at its gateway:
    /// the adapter re-stamps the packet as a local request from the
    /// gateway node to the line's home controller, with the gateway as
    /// requester (so the reply returns to the gateway, and delegation —
    /// which needs a GPU-core requester — is naturally suppressed).
    ///
    /// Returns the gateway index on success, `None` when gateway
    /// injection is blocked (leave the message queued and retry next
    /// cycle — fabric arrival back-pressure).
    pub(crate) fn fabric_ingress_request(&mut self, pkt: &Packet) -> Option<usize> {
        let line = pkt.addr.line(128);
        let port = self.port.as_ref().expect("fabric port attached");
        debug_assert_eq!(port.chip_of(line), port.chip, "misrouted fabric request");
        let mc = self.map.controller_of(line);
        let home = self.layout.mem_node(mc);
        // The gateway proxies both NoC legs (gateway -> home request,
        // home -> gateway reply), so it must differ from the line's
        // home controller — a self-send on either leg is illegal. At
        // most one gateway can be the home, and `validate_fabric`
        // guarantees at least two, so stepping once always resolves.
        let mut gi = port.gateway_index_for(line);
        if port.gateways[gi] == home {
            gi = (gi + 1) % port.gateways.len();
        }
        let gw = port.gateways[gi];
        if !self.nets.can_inject(gw, TrafficClass::Request, pkt.prio) {
            return None;
        }
        let mut local = pkt.clone();
        local.id = self.next_pid();
        local.src = gw;
        local.dst = home;
        local.requester = gw;
        local.created = self.now;
        self.nets
            .try_inject(local)
            .expect("can_inject checked above");
        Some(gi)
    }

    /// Inject a fabric-delivered cross-chip *reply* at this chip's
    /// gateway for the line, re-addressed to the original requester
    /// `origin`. Returns false when gateway injection is blocked.
    pub(crate) fn fabric_ingress_reply(&mut self, origin: NodeId, pkt: &Packet) -> bool {
        let line = pkt.addr.line(128);
        let port = self.port.as_ref().expect("fabric port attached");
        let gw = port.gateways[port.gateway_index_for(line)];
        if !self.nets.can_inject(gw, TrafficClass::Reply, pkt.prio) {
            return false;
        }
        let mut local = pkt.clone();
        local.id = self.next_pid();
        local.src = gw;
        local.dst = origin;
        local.requester = origin;
        local.created = self.now;
        self.nets
            .try_inject(local)
            .expect("can_inject checked above");
        true
    }

    /// Advance the whole chip by one cycle.
    pub fn tick(&mut self) {
        self.deliver_ejections();
        self.tick_gpu();
        self.tick_cpu();
        self.tick_mems();
        self.drain_outboxes();
        self.nets.tick();
        self.now += 1;
        // Telemetry epoch roll: a single branch when disabled, ring
        // pushes only on epoch boundaries when enabled.
        if let Some(t) = self.telemetry.as_deref_mut() {
            if self.now.is_multiple_of(t.epoch_len()) {
                t.roll_epoch(
                    &self.mems,
                    &self.nets,
                    &self.gpu,
                    &self.cpu,
                    self.delegations_sent,
                );
            }
        }
        // Adaptive-control decision boundary: one branch when
        // uncontrolled, a policy evaluation on interval boundaries.
        if self.control.is_some() {
            self.control_boundary();
        }
    }

    /// Evaluate the adaptive controller if `now` is a decision
    /// boundary, and apply the scheme it asks for. Fast-forward clamps
    /// its jumps to the next boundary (see `quiescent_horizon`), so the
    /// decision log is identical across engine modes.
    fn control_boundary(&mut self) {
        let Some(ctl) = self.control.as_deref() else {
            return;
        };
        if !self.now.is_multiple_of(ctl.interval()) {
            return;
        }
        // Reply flits each delegation keeps off the reply network — the
        // same accounting the telemetry shed counter uses.
        let shed_flits = u64::from(MsgKind::ReadReply.flits(128, self.cfg.noc.channel_bytes));
        self.ctl_blocked.clear();
        self.ctl_depth.clear();
        self.ctl_shed.clear();
        for m in &self.mems {
            self.ctl_blocked.push(m.stats.blocked_cycles);
            self.ctl_depth.push(m.inj_depth());
            self.ctl_shed.push(m.stats.delegations * shed_flits);
        }
        let input = ControlInput {
            cycle: self.now,
            blocked_cycles: &self.ctl_blocked,
            inj_depth: &self.ctl_depth,
            shed_flits: &self.ctl_shed,
        };
        let switched = self
            .control
            .as_deref_mut()
            .expect("checked above")
            .observe(&input);
        if let Some(scheme) = switched {
            // Applied directly rather than through `set_scheme`: an
            // external switch re-seats the ladder, the controller's own
            // actuation must not.
            self.cfg.scheme = scheme;
            self.gpu.set_scheme(scheme);
        }
    }

    /// Run for `cycles` cycles.
    ///
    /// When fast-forward is enabled (the default) and the whole chip is
    /// quiescent — no packets in flight, no queued outbox traffic, and
    /// every component reports no same-cycle work — the clock jumps
    /// straight to the earliest component event horizon instead of
    /// ticking through dead cycles. Results are bit-identical either
    /// way (see the `next_event` contract in DESIGN.md).
    pub fn run(&mut self, cycles: u64) {
        let end = self.now + cycles;
        while self.now < end {
            if self.fast_forward {
                if let Some((target, at_horizon)) = self.quiescent_horizon(end) {
                    self.advance_span(target - self.now);
                    // Landing on a component's reported horizon means
                    // that component (almost) always has same-cycle
                    // work there — tick straight away instead of
                    // paying for a quiescence check that would fail.
                    // (Ticking is always valid; at worst a re-peek
                    // horizon wastes one tick.)
                    if at_horizon && self.now < end {
                        self.tick();
                    }
                    continue;
                }
            }
            self.tick();
        }
    }

    /// Enable/disable event-horizon fast-forward (on by default).
    /// Turning it off forces the per-cycle reference loop the
    /// equivalence tests compare against.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Cycles skipped by fast-forward since construction or the last
    /// [`reset_stats`](Self::reset_stats) (warmup exclusion applies,
    /// like every other counter).
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Select the NoC tick engine. [`TickEngine::Sharded`] partitions
    /// each physical network into per-row router groups ticked on a
    /// worker pool with per-cycle barriers; reports stay byte-identical
    /// to [`TickEngine::Sequential`], and the mode composes with
    /// idle-skip and event-horizon fast-forward (shards run in lockstep
    /// inside one network tick, so the quiescence horizon is global —
    /// the clock only jumps when every shard agrees there is no work).
    ///
    /// # Errors
    ///
    /// Fails when the shard count cannot partition the topology; the
    /// current engine is left in place.
    pub fn set_tick_engine(&mut self, engine: TickEngine) -> Result<(), ShardError> {
        match engine {
            TickEngine::Sequential => self.nets.set_shards(1),
            TickEngine::Sharded(n) => self.nets.set_shards(n),
        }
    }

    /// The active tick engine.
    pub fn tick_engine(&self) -> TickEngine {
        match self.nets.shards() {
            1 => TickEngine::Sequential,
            n => TickEngine::Sharded(n),
        }
    }

    /// If the whole chip is quiescent at `self.now`, the cycle to jump
    /// to: the minimum component event horizon, clamped to the next
    /// telemetry epoch boundary and to `end`. The flag is true when the
    /// jump lands on a component horizon rather than a clamp (i.e. the
    /// landing cycle has component work). `None` when any component
    /// still has same-cycle work — the caller must tick normally.
    pub(crate) fn quiescent_horizon(&mut self, end: Cycle) -> Option<(Cycle, bool)> {
        // Undelivered packets — in flight or parked in an ejection
        // queue — queued outbox packets, and cross-chip requests
        // awaiting fabric handoff are same-cycle work.
        if self.nets.in_flight() > 0
            || self
                .outboxes
                .iter()
                .any(|ob| !ob.request.is_empty() || !ob.reply.is_empty())
            || self.port.as_ref().is_some_and(|p| !p.egress.is_empty())
        {
            return None;
        }
        let now = self.now;
        let mut horizon = Cycle::MAX;
        let mut clamp = |ev: Option<Cycle>| -> bool {
            match ev {
                Some(t) if t <= now => false,
                Some(t) => {
                    horizon = horizon.min(t);
                    true
                }
                None => true,
            }
        };
        if !clamp(self.nets.next_event(now)) || !clamp(self.gpu.next_event(now)) {
            return None;
        }
        let cpu_ev = self.cpu.next_event(now);
        if !clamp(cpu_ev) {
            return None;
        }
        for m in &self.mems {
            if !clamp(m.next_event(now)) {
                return None;
            }
        }
        let mut bound = end;
        if let Some(t) = self.telemetry.as_deref() {
            let len = t.epoch_len();
            bound = bound.min((now / len + 1) * len);
        }
        // Adaptive control evaluates at every interval boundary even
        // across dead spans — otherwise the decision log (and any
        // de-escalation driven by sustained calm) would depend on the
        // fast-forward mode.
        if let Some(c) = self.control.as_deref() {
            let len = c.interval();
            bound = bound.min((now / len + 1) * len);
        }
        let target = horizon.min(bound);
        debug_assert!(target > now, "quiescent horizon must be in the future");
        Some((target, horizon <= bound))
    }

    /// Jump the clock across `span` provably-dead cycles, integrating
    /// the skipped span into every per-cycle accumulator.
    pub(crate) fn advance_span(&mut self, span: u64) {
        debug_assert!(span > 0);
        self.cpu.advance(span);
        self.gpu.advance(span);
        self.now += span;
        self.nets.advance_to(self.now);
        self.skipped_cycles += span;
        // Memory nodes need no integration: a blocked or busy node
        // reports same-cycle work, so skipped spans never overlap
        // cycles where `blocked_cycles` (or any other per-cycle memory
        // counter) would advance.
        if let Some(t) = self.telemetry.as_deref_mut() {
            if self.now.is_multiple_of(t.epoch_len()) {
                t.roll_epoch(
                    &self.mems,
                    &self.nets,
                    &self.gpu,
                    &self.cpu,
                    self.delegations_sent,
                );
            }
        }
        if self.control.is_some() {
            self.control_boundary();
        }
    }

    /// Enable event tracing with a ring buffer of `cap` events.
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = TraceLog::new(cap);
        self.trace.set_enabled(true);
    }

    /// The event trace (empty unless [`Self::enable_trace`] was called).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Enable time-series telemetry: per-epoch sampling of clogging
    /// signals plus clog-episode detection. Off by default; when off,
    /// the cycle loop pays one branch and allocates nothing.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.telemetry = Some(Box::new(SystemTelemetry::new(cfg, self.mems.len())));
    }

    /// The telemetry state, if [`Self::enable_telemetry`] was called.
    pub fn telemetry(&self) -> Option<&SystemTelemetry> {
        self.telemetry.as_deref()
    }

    /// Seal open clog episodes and fill the metric registry from a
    /// fresh [`Report`]. Returns the populated telemetry, or `None`
    /// when telemetry was never enabled. Idempotent.
    pub fn finish_telemetry(&mut self) -> Option<&SystemTelemetry> {
        let report = self.report();
        self.finish_telemetry_with(&report);
        self.telemetry.as_deref()
    }

    /// Seal open clog episodes and fill the metric registry from a
    /// caller-supplied report — the multi-chip wrapper passes the
    /// package-level aggregate instead of this chip's own report.
    pub(crate) fn finish_telemetry_with(&mut self, report: &Report) {
        let now = self.now;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.populate_registry(report, &self.nets, now);
        }
    }

    /// Mutable telemetry access for the multi-chip wrapper (fabric
    /// series registration and per-epoch staging).
    pub(crate) fn telemetry_mut(&mut self) -> Option<&mut SystemTelemetry> {
        self.telemetry.as_deref_mut()
    }

    /// Set the cycle clock directly (multi-chip restore: the package
    /// snapshot header carries one clock shared by every chip).
    pub(crate) fn set_now(&mut self, now: Cycle) {
        self.now = now;
    }

    /// Export the whole telemetry session (registry + per-epoch series +
    /// clog episodes) as a JSON document. `None` if telemetry is off.
    pub fn export_metrics_json(&mut self) -> Option<String> {
        let scheme = format!("{:?}", self.cfg.scheme);
        let seed = self.cfg.seed;
        let gpu_bench = self.gpu_bench.clone();
        let cpu_bench = self.cpu_bench.clone();
        let cycles = self.now;
        self.finish_telemetry()?;
        let t = self.telemetry.as_deref()?;
        Some(t.session.to_json(&[
            ("gpu_bench", gpu_bench),
            ("cpu_bench", cpu_bench),
            ("scheme", scheme),
            ("seed", seed.to_string()),
            ("cycles", cycles.to_string()),
        ]))
    }

    /// Export the per-epoch series as CSV (one row per epoch). `None`
    /// if telemetry is off.
    pub fn export_series_csv(&self) -> Option<String> {
        self.telemetry
            .as_deref()
            .map(|t| clognet_telemetry::export::series_to_csv(&t.session.sampler))
    }

    /// Zero all statistics while keeping architectural state (caches,
    /// MSHRs, predictors, queues). Call after a warmup run so reports
    /// cover only the measured window — the standard methodology for
    /// sampled simulation.
    pub fn reset_stats(&mut self) {
        self.nets.reset_stats();
        self.gpu.reset_stats();
        self.cpu.reset_stats();
        for m in &mut self.mems {
            m.reset_stats();
        }
        self.oracle_total = 0;
        self.oracle_remote = 0;
        self.delegations_sent = 0;
        self.skipped_cycles = 0;
        self.stats_epoch = self.now;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.on_stats_reset();
        }
        if let Some(c) = self.control.as_deref_mut() {
            c.on_stats_reset();
        }
    }

    /// Enable/disable the NoC's idle-router fast path (on by default).
    /// Turning it off forces every router through full VA/SA each cycle —
    /// the reference mode equivalence tests compare against.
    pub fn set_noc_idle_skip(&mut self, on: bool) {
        self.nets.set_idle_skip(on);
    }

    /// Deliver everything the networks ejected to GPU/CPU endpoints.
    /// (Memory nodes pull their requests themselves, gated on blocking.)
    fn deliver_ejections(&mut self) {
        let now = self.now;
        let mut forwards = std::mem::take(&mut self.gpu_forwards);
        for node in 0..self.layout.node_count() {
            let node = NodeId(node as u16);
            match self.layout.kind_of(node) {
                NodeKind::Gpu(core) => match &mut self.nets {
                    Nets::Separate { request, reply } => {
                        drain_gpu(
                            reply,
                            node,
                            core,
                            &self.layout,
                            &mut self.gpu,
                            &mut forwards,
                        );
                        drain_gpu(
                            request,
                            node,
                            core,
                            &self.layout,
                            &mut self.gpu,
                            &mut forwards,
                        );
                    }
                    Nets::Shared(n) => {
                        drain_gpu(n, node, core, &self.layout, &mut self.gpu, &mut forwards);
                    }
                },
                NodeKind::Cpu(core) => {
                    let net = self.nets.net_mut(TrafficClass::Reply);
                    while let Some(pkt) = net.pop_ejected(node) {
                        match pkt.kind {
                            MsgKind::ReadReply => {
                                self.cpu.deliver_data(core, pkt.addr.line(64), now);
                            }
                            MsgKind::WriteAck => {
                                self.cpu.deliver_write_ack(core, pkt.addr.line(64));
                            }
                            other => panic!("CPU node got {other}"),
                        }
                    }
                }
                NodeKind::Mem(_) => {}
            }
        }
        for (core, out) in forwards.drain(..) {
            self.route_gpu_out(core, out);
        }
        self.gpu_forwards = forwards;
    }

    fn tick_gpu(&mut self) {
        self.gpu_budgets.clear();
        self.gpu_remote_budgets.clear();
        for i in 0..self.gpu.n_cores() {
            let node = self.layout.gpu_node(CoreId(i as u16));
            let ob = &self.outboxes[node.index()];
            self.gpu_budgets
                .push(OUTBOX_CAP.saturating_sub(ob.request.len().max(ob.reply.len())));
            // Remote (FRQ) service drains into the reply lane, which the
            // reply network always sinks — independent of local request
            // congestion.
            self.gpu_remote_budgets
                .push(OUTBOX_CAP.saturating_sub(ob.reply.len()));
        }
        let mut out = std::mem::take(&mut self.gpu_out);
        out.clear();
        self.gpu.tick(
            self.now,
            &self.gpu_budgets,
            &self.gpu_remote_budgets,
            &mut out,
        );
        for (core, o) in out.drain(..) {
            self.route_gpu_out(core, o);
        }
        self.gpu_out = out;
    }

    /// Turn a GPU-subsystem output into a packet in the right outbox.
    fn route_gpu_out(&mut self, core: CoreId, o: GpuOut) {
        let node = self.layout.gpu_node(core);
        match o {
            GpuOut::LlcRead {
                line,
                dnf,
                requester,
            } => {
                if dnf {
                    self.trace.push(
                        self.now,
                        Event::RemoteMiss {
                            server: core,
                            requester,
                            line,
                        },
                    );
                }
                // Oracle inter-core-locality sampling on genuine local
                // misses (Fig. 2).
                if !dnf && requester == core {
                    self.oracle_total += 1;
                    if self.gpu.remote_l1_has(core, line) {
                        self.oracle_remote += 1;
                    }
                }
                let dst = self.mem_node_of(line);
                let pid = self.next_pid();
                let mut pkt = Packet::new(
                    pid,
                    node,
                    dst,
                    MsgKind::ReadReq,
                    Priority::Gpu,
                    line.to_addr(128),
                    128,
                    self.cfg.noc.channel_bytes,
                    self.now,
                );
                pkt.dnf = dnf;
                pkt.requester = self.layout.gpu_node(requester);
                self.outboxes[node.index()].request.push_back(pkt);
            }
            GpuOut::LlcWrite { line } => {
                let dst = self.mem_node_of(line);
                let pid = self.next_pid();
                let pkt = Packet::new(
                    pid,
                    node,
                    dst,
                    MsgKind::WriteReq,
                    Priority::Gpu,
                    line.to_addr(128),
                    128,
                    self.cfg.noc.channel_bytes,
                    self.now,
                );
                self.outboxes[node.index()].request.push_back(pkt);
            }
            GpuOut::CoreReply { to, line } => {
                if self.cfg.scheme == Scheme::DelegatedReplies {
                    self.trace.push(
                        self.now,
                        Event::RemoteHit {
                            server: core,
                            requester: to,
                            line,
                        },
                    );
                }
                let dst = self.layout.gpu_node(to);
                let pid = self.next_pid();
                let pkt = Packet::new(
                    pid,
                    node,
                    dst,
                    MsgKind::ReadReply,
                    Priority::Gpu,
                    line.to_addr(128),
                    128,
                    self.cfg.noc.channel_bytes,
                    self.now,
                );
                self.outboxes[node.index()].reply.push_back(pkt);
            }
            GpuOut::Probe { to, line } => {
                let dst = self.layout.gpu_node(to);
                let pid = self.next_pid();
                let pkt = Packet::new(
                    pid,
                    node,
                    dst,
                    MsgKind::ProbeReq,
                    Priority::Gpu,
                    line.to_addr(128),
                    128,
                    self.cfg.noc.channel_bytes,
                    self.now,
                );
                self.outboxes[node.index()].request.push_back(pkt);
            }
            GpuOut::ProbeMiss { to, line } => {
                let dst = self.layout.gpu_node(to);
                let pid = self.next_pid();
                let pkt = Packet::new(
                    pid,
                    node,
                    dst,
                    MsgKind::ProbeMiss,
                    Priority::Gpu,
                    line.to_addr(128),
                    128,
                    self.cfg.noc.channel_bytes,
                    self.now,
                );
                self.outboxes[node.index()].reply.push_back(pkt);
            }
            GpuOut::ProbeHitAck { to, line } => {
                let dst = self.layout.gpu_node(to);
                let pid = self.next_pid();
                let pkt = Packet::new(
                    pid,
                    node,
                    dst,
                    MsgKind::ProbeHit,
                    Priority::Gpu,
                    line.to_addr(128),
                    128,
                    self.cfg.noc.channel_bytes,
                    self.now,
                );
                self.outboxes[node.index()].reply.push_back(pkt);
            }
            GpuOut::Fetch { to, line } => {
                let dst = self.layout.gpu_node(to);
                let pid = self.next_pid();
                let pkt = Packet::new(
                    pid,
                    node,
                    dst,
                    MsgKind::FetchReq,
                    Priority::Gpu,
                    line.to_addr(128),
                    128,
                    self.cfg.noc.channel_bytes,
                    self.now,
                );
                self.outboxes[node.index()].request.push_back(pkt);
            }
            GpuOut::Flushed => {
                // Software coherence: all pointers naming this core die.
                // Modeled as a direct (zero-traffic) operation; the cost
                // of the flush itself is the lost L1 contents.
                let mut dropped = 0;
                for m in &mut self.mems {
                    dropped += m.invalidate_pointers_of(core);
                }
                self.trace.push(
                    self.now,
                    Event::Flush {
                        core,
                        pointers: dropped,
                    },
                );
            }
        }
    }

    fn tick_cpu(&mut self) {
        self.cpu_budgets.clear();
        for i in 0..self.cpu.n_cores() {
            let node = self.layout.cpu_node(CoreId(i as u16));
            let ob = &self.outboxes[node.index()];
            self.cpu_budgets
                .push(OUTBOX_CAP.saturating_sub(ob.request.len()));
        }
        let mut out = std::mem::take(&mut self.cpu_out);
        out.clear();
        self.cpu.tick(self.now, &self.cpu_budgets, &mut out);
        for (core, o) in out.drain(..) {
            let node = self.layout.cpu_node(core);
            let (kind, line) = match o {
                CpuOut::Read { line } => (MsgKind::ReadReq, line),
                CpuOut::Write { line } => (MsgKind::WriteReq, line),
            };
            let addr = line.to_addr(64);
            let dst = self.mem_node_of(addr.line(128));
            let pid = self.next_pid();
            let pkt = Packet::new(
                pid,
                node,
                dst,
                kind,
                Priority::Cpu,
                addr,
                64,
                self.cfg.noc.channel_bytes,
                self.now,
            );
            self.outboxes[node.index()].request.push_back(pkt);
        }
        self.cpu_out = out;
    }

    fn tick_mems(&mut self) {
        let now = self.now;
        for mi in 0..self.mems.len() {
            let node = self.mems[mi].node;
            // 1. Accept requests while unblocked (up to 2 per cycle).
            //    On a fabric-attached chip, requests for lines owned by
            //    another chip divert to the fabric egress instead of the
            //    controller (they arrived here because this node is the
            //    line's gateway); diversion is NI work and does not
            //    consume the controller's accept budget, but a full
            //    egress blocks the head (deterministic back-pressure).
            let budget = self.mems[mi].accept_budget().min(2);
            let mut accepted = 0;
            while let Some(head_addr) = self
                .nets
                .net(TrafficClass::Request)
                .peek_ejected(node)
                .map(|p| p.addr)
            {
                let remote = self
                    .port
                    .as_ref()
                    .is_some_and(|p| p.chip_of(head_addr.line(128)) != p.chip);
                if remote {
                    let port = self.port.as_ref().expect("checked above");
                    if port.egress.len() >= port.egress_cap {
                        break;
                    }
                    let pkt = self
                        .nets
                        .net_mut(TrafficClass::Request)
                        .pop_ejected(node)
                        .expect("peeked");
                    self.port
                        .as_mut()
                        .expect("checked above")
                        .egress
                        .push_back(pkt);
                    continue;
                }
                if accepted >= budget {
                    break;
                }
                let pkt = self
                    .nets
                    .net_mut(TrafficClass::Request)
                    .pop_ejected(node)
                    .expect("peeked");
                let layout = &self.layout;
                self.mems[mi].process_request(&pkt, now, |n| match layout.kind_of(n) {
                    NodeKind::Gpu(c) => Some(c),
                    _ => None,
                });
                accepted += 1;
            }
            // 2. Memory-side progress.
            self.mems[mi].tick_memory(now);
            if self.trace.enabled() || self.telemetry.is_some() {
                let blocked = self.mems[mi].blocked();
                match (self.blocked_since[mi], blocked) {
                    (None, true) => {
                        self.blocked_since[mi] = Some(now);
                        self.trace.push(
                            now,
                            Event::BlockedEnter {
                                mem: self.mems[mi].id,
                            },
                        );
                        if let Some(t) = self.telemetry.as_deref_mut() {
                            t.session.episodes.enter(mi, now);
                        }
                    }
                    (Some(since), false) => {
                        self.blocked_since[mi] = None;
                        self.trace.push(
                            now,
                            Event::BlockedExit {
                                mem: self.mems[mi].id,
                                for_cycles: now - since,
                            },
                        );
                        if let Some(t) = self.telemetry.as_deref_mut() {
                            t.session.episodes.exit(mi, now);
                        }
                    }
                    _ => {}
                }
                if blocked {
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.session
                            .episodes
                            .observe_depth(mi, self.mems[mi].inj_depth());
                    }
                }
            }
            // 3. Delegation: only when GPU reply injection is blocked
            //    (Section II, "Delegated Replies" — the trigger), unless
            //    the delegate-always ablation is active.
            if self.cfg.scheme == Scheme::DelegatedReplies
                && (self.cfg.dr.delegate_always
                    || self
                        .nets
                        .inject_blocked(node, TrafficClass::Reply, Priority::Gpu))
            {
                for _ in 0..self.cfg.dr.max_per_cycle {
                    if !self
                        .nets
                        .can_inject(node, TrafficClass::Request, Priority::Gpu)
                    {
                        break;
                    }
                    let Some(r) = self.mems[mi].take_delegatable() else {
                        break;
                    };
                    let target = r.delegatable_to.expect("delegatable");
                    let dst = self.layout.gpu_node(target);
                    let pid = self.next_pid();
                    let mut pkt = Packet::new(
                        pid,
                        node,
                        dst,
                        MsgKind::DelegatedReply,
                        Priority::Gpu,
                        r.addr,
                        128,
                        self.cfg.noc.channel_bytes,
                        now,
                    );
                    pkt.requester = r.dst;
                    self.nets.try_inject(pkt).expect("can_inject checked above");
                    self.mems[mi].stats.delegations += 1;
                    self.delegations_sent += 1;
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        // Flits this delegation keeps off the clogged
                        // reply network: the GPU read reply it replaces.
                        let shed = MsgKind::ReadReply.flits(128, self.cfg.noc.channel_bytes);
                        t.session.episodes.add_shed(mi, u64::from(shed));
                    }
                    self.trace.push(
                        now,
                        Event::Delegated {
                            mem: self.mems[mi].id,
                            target,
                            requester: match self.layout.kind_of(r.dst) {
                                NodeKind::Gpu(c) => c,
                                _ => CoreId(u16::MAX),
                            },
                            line: r.addr.line(128),
                        },
                    );
                }
            }
            // 4. Inject replies: one CPU attempt (bypass), then GPU FIFO.
            let mut tried_cpu = false;
            for _ in 0..4 {
                let r = if tried_cpu {
                    self.mems[mi].next_gpu_reply()
                } else {
                    self.mems[mi].next_reply()
                };
                let Some(r) = r else { break };
                let pid = self.next_pid();
                let pkt = Packet::new(
                    pid,
                    node,
                    r.dst,
                    r.kind,
                    r.prio,
                    r.addr,
                    r.line_bytes,
                    self.cfg.noc.channel_bytes,
                    now,
                );
                match self.nets.try_inject(pkt) {
                    Ok(()) => {
                        self.mems[mi].stats.injected_replies += 1;
                    }
                    Err(_) => {
                        let was_cpu = r.prio == Priority::Cpu;
                        self.mems[mi].put_back(r);
                        if was_cpu {
                            tried_cpu = true;
                        } else {
                            break;
                        }
                    }
                }
            }
        }
    }

    fn drain_outboxes(&mut self) {
        for n in 0..self.outboxes.len() {
            while let Some(pkt) = self.outboxes[n].request.front() {
                match self.nets.try_inject(pkt.clone()) {
                    Ok(()) => {
                        self.outboxes[n].request.pop_front();
                    }
                    Err(_) => break,
                }
            }
            while let Some(pkt) = self.outboxes[n].reply.front() {
                match self.nets.try_inject(pkt.clone()) {
                    Ok(()) => {
                        self.outboxes[n].reply.pop_front();
                    }
                    Err(_) => break,
                }
            }
        }
    }

    /// The GPU subsystem (for fine-grained inspection in tests and
    /// examples).
    pub fn gpu(&self) -> &GpuSubsystem {
        &self.gpu
    }

    /// The CPU subsystem.
    pub fn cpu(&self) -> &CpuSubsystem {
        &self.cpu
    }

    /// The memory nodes.
    pub fn mems(&self) -> &[MemNode] {
        &self.mems
    }

    /// The networks.
    pub fn nets(&self) -> &Nets {
        &self.nets
    }

    /// Capture the complete system state as a versioned [`Snapshot`].
    ///
    /// Call between [`run`](Self::run) spans (never mid-tick). The
    /// snapshot embeds the config and benchmark names, so restoring
    /// needs nothing else; execution-mode knobs (fast-forward,
    /// idle-skip, the tick engine) are not captured — a snapshot taken
    /// under one mode restores into any other with byte-identical
    /// results.
    pub fn snapshot(&self) -> Snapshot {
        let mut w = snapshot::begin_snapshot(&self.cfg, &self.gpu_bench, &self.cpu_bench, self.now);
        // Multi-chip tag: false = this body is one plain chip. The
        // multi-chip wrapper writes true followed by a chip count and
        // one body per chip.
        w.bool(false);
        self.save_body(&mut w);
        Snapshot::from_bytes(w.into_bytes()).expect("just-written snapshot parses")
    }

    /// Serialize this chip's mutable state (everything after the
    /// identifying prefix and the multi-chip tag). The fabric egress
    /// section is present exactly when a port is attached — the restore
    /// side attaches ports before loading, so both sides agree.
    pub(crate) fn save_body(&self, w: &mut snap::SnapWriter) {
        w.u64(self.pkt_seq);
        w.u64(self.stats_epoch);
        w.u64(self.skipped_cycles);
        w.u64(self.oracle_total);
        w.u64(self.oracle_remote);
        w.u64(self.delegations_sent);
        w.usize(self.blocked_since.len());
        for b in &self.blocked_since {
            w.opt_u64(*b);
        }
        w.usize(self.outboxes.len());
        for ob in &self.outboxes {
            w.usize(ob.request.len());
            for p in &ob.request {
                snap::save_packet(w, p);
            }
            w.usize(ob.reply.len());
            for p in &ob.reply {
                snap::save_packet(w, p);
            }
        }
        self.gpu.save_state(w);
        self.cpu.save_state(w);
        w.usize(self.mems.len());
        for m in &self.mems {
            m.save_state(w);
        }
        self.nets.save_state(w);
        self.trace.save_state(w);
        match self.telemetry.as_deref() {
            Some(t) => {
                w.bool(true);
                t.save_state(w);
            }
            None => w.bool(false),
        }
        match self.control.as_deref() {
            Some(c) => {
                w.bool(true);
                c.save_state(w);
            }
            None => w.bool(false),
        }
        if let Some(port) = &self.port {
            w.usize(port.egress.len());
            for p in &port.egress {
                snap::save_packet(w, p);
            }
        }
    }

    /// Rebuild a system from a [`Snapshot`]: construct a fresh system
    /// from the embedded config and benchmark names, then overlay every
    /// piece of captured mutable state. The restored system starts in
    /// the default execution mode (fast-forward on, sequential engine);
    /// apply mode knobs afterwards as desired.
    ///
    /// # Errors
    ///
    /// Fails when the snapshot body is truncated, carries trailing
    /// bytes, or disagrees with the structure its own config implies.
    pub fn restore(snapshot: &Snapshot) -> Result<System, SnapError> {
        if clognet_workloads::gpu_benchmark(snapshot.gpu_bench()).is_none() {
            return Err(SnapError::Corrupt("unknown GPU benchmark in snapshot"));
        }
        if clognet_workloads::cpu_benchmark(snapshot.cpu_bench()).is_none() {
            return Err(SnapError::Corrupt("unknown CPU benchmark in snapshot"));
        }
        let mut r = snapshot::body_reader(snapshot)?;
        if r.bool()? {
            let chips = r.usize()?;
            return Err(SnapError::ChipMismatch {
                snapshot: chips,
                expected: 1,
            });
        }
        let mut sys = System::new(
            snapshot.config().clone(),
            snapshot.gpu_bench(),
            snapshot.cpu_bench(),
        );
        sys.now = snapshot.cycle();
        sys.load_body(&mut r)?;
        r.finish()?;
        Ok(sys)
    }

    /// Deserialize one chip body written by [`save_body`](Self::save_body)
    /// into a freshly-constructed system (port already attached when
    /// restoring a multi-chip package).
    pub(crate) fn load_body(&mut self, r: &mut snap::SnapReader<'_>) -> Result<(), SnapError> {
        let sys = self;
        sys.pkt_seq = r.u64()?;
        sys.stats_epoch = r.u64()?;
        sys.skipped_cycles = r.u64()?;
        sys.oracle_total = r.u64()?;
        sys.oracle_remote = r.u64()?;
        sys.delegations_sent = r.u64()?;
        if r.usize()? != sys.blocked_since.len() {
            return Err(SnapError::Corrupt("blocked_since length mismatch"));
        }
        for b in &mut sys.blocked_since {
            *b = r.opt_u64()?;
        }
        if r.usize()? != sys.outboxes.len() {
            return Err(SnapError::Corrupt("outbox count mismatch"));
        }
        for ob in &mut sys.outboxes {
            let n = r.usize()?;
            ob.request.clear();
            for _ in 0..n {
                ob.request.push_back(snap::load_packet(r)?);
            }
            let n = r.usize()?;
            ob.reply.clear();
            for _ in 0..n {
                ob.reply.push_back(snap::load_packet(r)?);
            }
        }
        sys.gpu.load_state(r)?;
        sys.cpu.load_state(r)?;
        if r.usize()? != sys.mems.len() {
            return Err(SnapError::Corrupt("memory node count mismatch"));
        }
        for m in &mut sys.mems {
            m.load_state(r)?;
        }
        sys.nets.load_state(r)?;
        sys.trace = TraceLog::load_state(r)?;
        sys.telemetry = if r.bool()? {
            Some(Box::new(SystemTelemetry::load_state(r, sys.mems.len())?))
        } else {
            None
        };
        match (r.bool()?, sys.control.as_deref_mut()) {
            (true, Some(c)) => c.load_state(r)?,
            (false, None) => {}
            _ => {
                return Err(SnapError::Corrupt(
                    "controller presence disagrees with the snapshot config",
                ))
            }
        }
        // The restored ladder level is authoritative for the active
        // scheme (the embedded config may carry either the base or an
        // escalated scheme, depending on when the snapshot was taken).
        if let Some(c) = sys.control.as_deref() {
            let scheme = c.scheme();
            if scheme != sys.cfg.scheme {
                sys.cfg.scheme = scheme;
                sys.gpu.set_scheme(scheme);
            }
        }
        if let Some(port) = &mut sys.port {
            let n = r.usize()?;
            if n > port.egress_cap {
                return Err(SnapError::Corrupt("fabric egress overflows capacity"));
            }
            port.egress.clear();
            for _ in 0..n {
                port.egress.push_back(snap::load_packet(r)?);
            }
        }
        Ok(())
    }

    /// Apply a warm-applicable sweep parameter to a running (typically
    /// just-restored) system. Only parameters that retarget live state
    /// without rebuilding structure qualify:
    ///
    /// - `injbuf` — memory-node injection-buffer capacity in packets;
    /// - `drmax` — delegations per memory node per cycle.
    ///
    /// Structural parameters (channel width, cache geometry, topology)
    /// are rejected: forking those from a shared warmup would silently
    /// diverge from a cold run.
    ///
    /// # Errors
    ///
    /// Returns a message naming the parameter when it is not
    /// warm-applicable or the value is out of range.
    pub fn apply_warm_param(&mut self, key: &str, value: u64) -> Result<(), String> {
        let v = usize::try_from(value).map_err(|_| format!("{key}={value} out of range"))?;
        match key {
            "injbuf" => {
                if v == 0 {
                    return Err("injbuf must be at least 1".into());
                }
                self.cfg.noc.mem_inj_buf_pkts = v;
                for m in &mut self.mems {
                    m.set_cap(v);
                }
                Ok(())
            }
            "drmax" => {
                self.cfg.dr.max_per_cycle = v;
                Ok(())
            }
            other => Err(format!(
                "parameter `{other}` is structural and cannot be warm-applied to a \
                 restored snapshot (warm-applicable: injbuf, drmax)"
            )),
        }
    }

    /// Switch the delegation scheme on a live system (warm-start
    /// `compare` forks one warmup into all three schemes). Safe at a
    /// run boundary: in-flight probe/delegation traffic of the old
    /// scheme is still handled on delivery, which is scheme-independent.
    pub fn set_scheme(&mut self, scheme: Scheme) {
        self.cfg.scheme = scheme;
        self.gpu.set_scheme(scheme);
        if let Some(c) = self.control.as_deref_mut() {
            c.rebase(scheme);
        }
    }

    /// The adaptive controller's decision log, when the configuration
    /// carries a control policy.
    pub fn decision_log(&self) -> Option<&DecisionLog> {
        self.control.as_deref().map(Controller::log)
    }

    /// The adaptive controller's current ladder level (`None` on an
    /// uncontrolled system).
    pub fn control_level(&self) -> Option<u8> {
        self.control.as_deref().map(Controller::level)
    }

    /// Build the figure-level report.
    pub fn report(&self) -> Report {
        let cycles = (self.now - self.stats_epoch).max(1);
        let n_gpu = self.gpu.n_cores() as f64;
        let gpu_ipc = self.gpu.total_retired() as f64 / cycles as f64;
        let rep_stats = self.nets.net(TrafficClass::Reply).stats();
        let req_stats = self.nets.net(TrafficClass::Request).stats();
        let gpu_rx_rate = self
            .layout
            .gpu_nodes()
            .map(|n| rep_stats.rx_rate(n.index()))
            .sum::<f64>()
            / n_gpu;
        let gpu_tx_rate = self
            .layout
            .gpu_nodes()
            .map(|n| req_stats.node_tx_flits[n.index()] as f64 / cycles as f64)
            .sum::<f64>()
            / n_gpu;
        let mem_blocked_rate = self
            .mems
            .iter()
            .map(|m| m.stats.blocked_cycles as f64 / cycles as f64)
            .sum::<f64>()
            / self.mems.len() as f64;
        // Busiest reply-network output link of each memory node's router.
        let reply_net = self.nets.net(TrafficClass::Reply);
        let topo = reply_net.topo();
        let mem_reply_link_util = self
            .mems
            .iter()
            .map(|m| {
                let (r, local) = topo.attach_of(m.node);
                (0..topo.port_count(r))
                    .filter(|&p| p != local)
                    .map(|p| reply_net.stats().link_utilization(r, p))
                    .fold(0.0f64, f64::max)
            })
            .sum::<f64>()
            / self.mems.len() as f64;
        let mut remote_hit = 0;
        let mut remote_miss = 0;
        let mut llc_reads = 0;
        let mut probes = 0;
        let mut frq_same = 0u64;
        let mut frq_total = 0u64;
        for i in 0..self.gpu.n_cores() {
            let s = self.gpu.stats(CoreId(i as u16));
            remote_hit += s.delegated_hits + s.delegated_delayed;
            remote_miss += s.delegated_misses;
            llc_reads += s.llc_reads;
            probes += s.probes_sent;
            frq_same += s.frq_same_line;
            frq_total += s.delegated_hits + s.delegated_delayed + s.delegated_misses;
        }
        let (l1_hits, l1_misses) = self.gpu.l1_hits_misses();
        let cpu_net_latency = req_stats.mean_latency(TrafficClass::Request, Priority::Cpu)
            + rep_stats.mean_latency(TrafficClass::Reply, Priority::Cpu);
        Report {
            cycles,
            gpu_bench: self.gpu_bench.clone(),
            cpu_bench: self.cpu_bench.clone(),
            gpu_ipc,
            cpu_performance: self.cpu.mean_performance(),
            cpu_mem_latency: self.cpu.mean_read_latency(),
            cpu_net_latency,
            gpu_rx_rate,
            gpu_tx_rate,
            mem_blocked_rate,
            mem_reply_link_util,
            delegations: self.delegations_sent,
            breakdown: MissBreakdown {
                // Every miss first reaches the LLC (llc_reads); the ones
                // that were then delegated are reclassified.
                llc_direct: llc_reads.saturating_sub(remote_hit + remote_miss),
                remote_hit,
                remote_miss,
            },
            oracle_locality: if self.oracle_total == 0 {
                0.0
            } else {
                self.oracle_remote as f64 / self.oracle_total as f64
            },
            l1_miss_rate: if l1_hits + l1_misses == 0 {
                0.0
            } else {
                l1_misses as f64 / (l1_hits + l1_misses) as f64
            },
            probes_sent: probes,
            request_packets: req_stats.injected_pkts[0],
            frq_same_line_fraction: if frq_total == 0 {
                0.0
            } else {
                frq_same as f64 / frq_total as f64
            },
            flit_hops: self.nets.total_flit_hops(),
            channel_bytes: self.cfg.noc.channel_bytes,
        }
    }
}

/// Drain one network's ejection queue at a GPU node, dispatching by
/// message kind. FRQ-bound messages (delegated replies, probes) are only
/// taken while the FRQ has space — otherwise they stay in the NI and
/// back-pressure the request network, exactly the bounded behavior the
/// paper's 8-entry FRQ implies.
fn drain_gpu(
    net: &mut Network,
    node: NodeId,
    core: CoreId,
    layout: &Layout,
    gpu: &mut GpuSubsystem,
    forwards: &mut Vec<(CoreId, GpuOut)>,
) {
    loop {
        let Some(head) = net.peek_ejected(node) else {
            return;
        };
        let needs_frq = matches!(
            head.kind,
            MsgKind::DelegatedReply | MsgKind::ProbeReq | MsgKind::FetchReq
        );
        if needs_frq && !gpu.frq_has_space(core) {
            match head.kind {
                // Delegated replies carry the reply obligation and must
                // not be dropped: leave them in the NI (back-pressure).
                MsgKind::DelegatedReply => return,
                // Probes and fetches are best-effort: a full FRQ NACKs
                // them instead of wedging the request network behind an
                // unserviced probe (the prober falls back to the LLC).
                _ => {
                    let pkt = net.pop_ejected(node).expect("peeked");
                    let line = pkt.addr.line(128);
                    let to = match layout.kind_of(pkt.src) {
                        NodeKind::Gpu(c) => c,
                        other => panic!("probe from non-GPU node {other}"),
                    };
                    forwards.push((core, GpuOut::ProbeMiss { to, line }));
                    continue;
                }
            }
        }
        let pkt = net.pop_ejected(node).expect("peeked");
        let line = pkt.addr.line(128);
        let msg = match pkt.kind {
            MsgKind::ReadReply => GpuIn::Data {
                line,
                from: match layout.kind_of(pkt.src) {
                    NodeKind::Gpu(c) => Some(c),
                    _ => None,
                },
            },
            MsgKind::WriteAck => GpuIn::WriteAck { line },
            MsgKind::ProbeMiss => GpuIn::ProbeMissReply { line },
            MsgKind::ProbeHit => GpuIn::ProbeHitReply {
                from: match layout.kind_of(pkt.src) {
                    NodeKind::Gpu(c) => c,
                    other => panic!("probe hit from non-GPU node {other}"),
                },
                line,
            },
            MsgKind::FetchReq => GpuIn::FetchReq {
                from: match layout.kind_of(pkt.requester) {
                    NodeKind::Gpu(c) => c,
                    other => panic!("fetch for non-GPU node {other}"),
                },
                line,
            },
            MsgKind::DelegatedReply => GpuIn::Delegated {
                line,
                requester: match layout.kind_of(pkt.requester) {
                    NodeKind::Gpu(c) => c,
                    other => panic!("delegation for non-GPU requester {other}"),
                },
            },
            MsgKind::ProbeReq => GpuIn::ProbeReq {
                from: match layout.kind_of(pkt.src) {
                    NodeKind::Gpu(c) => c,
                    other => panic!("probe from non-GPU node {other}"),
                },
                line,
            },
            other => panic!("GPU node got {other}"),
        };
        gpu.deliver(core, msg, forwards);
    }
}
