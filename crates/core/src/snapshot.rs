//! Versioned, byte-stable snapshots of a full [`System`](crate::System).
//!
//! A [`Snapshot`] captures everything that determines future simulation
//! behavior — config, benchmark names, cycle clock, packet sequencing,
//! every subsystem's architectural and statistical state, in-flight
//! network traffic, trace log, and telemetry session — behind the
//! `CLOGSNAP` versioned header from `clognet_proto::snap`. Restoring a
//! snapshot and running to cycle `N` is byte-identical to running the
//! original system straight to `N`, under every engine mode.
//!
//! Execution-mode knobs (fast-forward, idle-skip, the tick engine,
//! thread counts) are deliberately **not** part of a snapshot: they
//! never change results, so one snapshot can be resumed under any of
//! them. See DESIGN.md §12 for the wire format.

use clognet_proto::snap::{self, SnapError, SnapReader, SnapWriter};
use clognet_proto::{snapshot_key, Cycle, SystemConfig};

/// An opaque, self-describing snapshot of one [`System`](crate::System).
///
/// The identifying prefix (config, benchmark names, cycle) is parsed
/// eagerly so callers can inspect a snapshot — or compute its cache
/// key — without paying for a full restore.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) bytes: Vec<u8>,
    pub(crate) cfg: SystemConfig,
    pub(crate) gpu_bench: String,
    pub(crate) cpu_bench: String,
    pub(crate) cycle: Cycle,
}

impl Snapshot {
    /// Validate and adopt raw snapshot bytes (e.g. read from a file or
    /// received over the wire).
    ///
    /// # Errors
    ///
    /// Fails on a bad magic/version header or a truncated/corrupt
    /// identifying prefix. The body is validated lazily by
    /// [`System::restore`](crate::System::restore).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(&bytes)?;
        let cfg = snap::load_config(&mut r)?;
        let gpu_bench = r.str()?;
        let cpu_bench = r.str()?;
        let cycle = r.u64()?;
        Ok(Snapshot {
            bytes,
            cfg,
            gpu_bench,
            cpu_bench,
            cycle,
        })
    }

    /// The serialized form (header included) — what `clognet snapshot`
    /// writes to disk and the cluster replicates.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume into the serialized form.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// The configuration the snapshotted system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// GPU benchmark name.
    pub fn gpu_bench(&self) -> &str {
        &self.gpu_bench
    }

    /// CPU benchmark name.
    pub fn cpu_bench(&self) -> &str {
        &self.cpu_bench
    }

    /// The cycle the snapshot was taken at.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The content-address for snapshot caching: hashes the canonical
    /// config (execution knobs excluded), benchmark names, and cycle.
    pub fn key(&self) -> u64 {
        snapshot_key(&self.cfg, &self.gpu_bench, &self.cpu_bench, self.cycle)
    }
}

/// Writer-side entry point used by [`System::snapshot`](crate::System::snapshot); kept here so
/// the identifying-prefix layout lives in one file with its reader.
pub(crate) fn begin_snapshot(
    cfg: &SystemConfig,
    gpu_bench: &str,
    cpu_bench: &str,
    now: Cycle,
) -> SnapWriter {
    let mut w = SnapWriter::with_header();
    snap::save_config(&mut w, cfg);
    w.str(gpu_bench);
    w.str(cpu_bench);
    w.u64(now);
    w
}

/// Reader-side entry point used by [`System::restore`](crate::System::restore): re-validates
/// the header and skips the already-parsed identifying prefix.
pub(crate) fn body_reader(snapshot: &Snapshot) -> Result<SnapReader<'_>, SnapError> {
    let mut r = SnapReader::new(&snapshot.bytes)?;
    let _ = snap::load_config(&mut r)?;
    let _ = r.str()?;
    let _ = r.str()?;
    let _ = r.u64()?;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::System;
    use clognet_proto::snap::SNAP_VERSION;

    #[test]
    fn foreign_bytes_are_rejected() {
        assert!(matches!(
            Snapshot::from_bytes(b"not a snapshot at all".to_vec()),
            Err(SnapError::BadMagic)
        ));
        assert!(matches!(
            Snapshot::from_bytes(Vec::new()),
            Err(SnapError::Truncated)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let sys = System::new(SystemConfig::default(), "HS", "bodytrack");
        let mut bytes = sys.snapshot().into_bytes();
        // Bump the version field (bytes 8..12, little-endian).
        bytes[8..12].copy_from_slice(&(SNAP_VERSION + 1).to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(SnapError::BadVersion(v)) if v == SNAP_VERSION + 1
        ));
    }

    #[test]
    fn truncated_body_fails_restore_not_parse() {
        let mut sys = System::new(SystemConfig::default(), "HS", "bodytrack");
        sys.run(500);
        let full = sys.snapshot().into_bytes();
        let cut = full[..full.len() - 7].to_vec();
        // The identifying prefix is intact, so parsing succeeds...
        let snap = Snapshot::from_bytes(cut).expect("prefix intact");
        // ...but the body is short, so restore must fail cleanly.
        assert!(System::restore(&snap).is_err());
    }

    #[test]
    fn trailing_garbage_fails_restore() {
        let sys = System::new(SystemConfig::default(), "HS", "bodytrack");
        let mut bytes = sys.snapshot().into_bytes();
        bytes.extend_from_slice(&[0u8; 9]);
        let snap = Snapshot::from_bytes(bytes).expect("prefix intact");
        assert!(matches!(
            System::restore(&snap),
            Err(SnapError::TrailingBytes(9))
        ));
    }

    #[test]
    fn prefix_accessors_report_identity() {
        let cfg = SystemConfig::default();
        let mut sys = System::new(cfg.clone(), "HS", "bodytrack");
        sys.run(1_000);
        let snap = sys.snapshot();
        assert_eq!(snap.cycle(), 1_000);
        assert_eq!(snap.gpu_bench(), "HS");
        assert_eq!(snap.cpu_bench(), "bodytrack");
        assert_eq!(
            snap.key(),
            snapshot_key(&cfg, "HS", "bodytrack", 1_000),
            "key must match the serve-side derivation"
        );
        // Round-trips through bytes preserve identity and key.
        let back = Snapshot::from_bytes(snap.as_bytes().to_vec()).unwrap();
        assert_eq!(back.key(), snap.key());
    }
}
