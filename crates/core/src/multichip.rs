//! Multi-chip packages: N [`System`] chips composed under an
//! inter-chip [`FabricNetwork`].
//!
//! A [`MultiChipSystem`] owns one `System` per package slot plus the
//! fabric connecting them. Line addresses interleave across chips with
//! the *package* seed (every chip agrees on ownership); requests for a
//! line owned by another chip route — on the origin chip's ordinary
//! NoC — to a gateway memory node, cross the fabric encapsulated as
//! [`FabricMsg`]s, and are re-injected at the owner chip's gateway as
//! local requests whose requester *is* the gateway. The reply retraces
//! the path: it ejects at the owner-side gateway, crosses the fabric's
//! reply plane, and is re-injected at the origin-side gateway addressed
//! to the original requester. Delegation never applies to cross-chip
//! replies (the owner chip sees a memory-node requester, not a GPU
//! core) — the adapter is the paper's "reply path" made longer and
//! narrower, which is exactly what the fabric-degradation experiment
//! stresses.
//!
//! Determinism: chips tick in package-slot order inside one global
//! cycle, fabric handoffs drain in (chip, gateway, FIFO) order, and
//! every queue is bounded — reports are byte-identical across engine
//! modes, and a 1-chip package degenerates *structurally* to the plain
//! single-chip `System` (same object, no port, no fabric).

use crate::report::{MissBreakdown, Report};
use crate::snapshot::{self, Snapshot};
use crate::system::{System, TickEngine};
use clognet_fabric::{FabricMsg, FabricNetwork};
use clognet_noc::ShardError;
use clognet_proto::snap::{self as snap, SnapError};
use clognet_proto::{
    Addr, AddressMap, Cycle, FabricTopology, MsgKind, NodeId, Priority, Scheme, SystemConfig,
    TrafficClass,
};
use clognet_telemetry::{SeriesId, TelemetryConfig};
use std::collections::VecDeque;

/// Validate a prospective fabric configuration without building a
/// package — the CLI and serve/cluster layers reject a bad `--chips` /
/// `--fabric-*` combination with a clear message before any
/// construction work (the `validate_shards` of the fabric axis).
///
/// # Errors
///
/// Fails when the fabric config is degenerate: zero chips, zero link
/// width on either plane, zero queue depth, fewer than two gateways
/// (the ingress adapter needs a gateway distinct from any line's home
/// controller), more gateways than memory nodes, or a pair topology
/// spanning more than two chips.
pub fn validate_fabric(cfg: &SystemConfig) -> Result<(), String> {
    let Some(f) = &cfg.fabric else {
        return Ok(());
    };
    if f.chips == 0 {
        return Err("fabric chips must be at least 1".into());
    }
    if f.link_flits == 0 {
        return Err("fabric link width must be at least 1 flit/cycle".into());
    }
    if f.reply_link_flits == 0 {
        return Err("fabric reply link width must be at least 1 flit/cycle".into());
    }
    if f.queue_pkts == 0 {
        return Err("fabric queue depth must be at least 1 packet".into());
    }
    if f.gateways < 2 {
        return Err(
            "fabric gateway count must be at least 2 (a line's home controller \
             cannot proxy its own cross-chip traffic)"
                .into(),
        );
    }
    if f.gateways > cfg.n_mem {
        return Err(format!(
            "fabric gateway count {} exceeds the {} memory nodes per chip",
            f.gateways, cfg.n_mem
        ));
    }
    if f.topology == FabricTopology::Pair && f.chips > 2 {
        return Err(format!(
            "pair topology connects exactly 2 chips, got {}",
            f.chips
        ));
    }
    if f.chips > 1 && cfg.noc.virtual_nets.is_some() {
        // The gateway adapter separates cross-chip replies from local
        // requests by physical network; a shared-VC net mixes both
        // classes in one ejection queue, which the adapter cannot
        // disentangle. (Found by `clognet fuzz`.)
        return Err("virtual-net sharing (--vnets) is single-chip only; \
                    use separate request/reply networks with --chips"
            .into());
    }
    Ok(())
}

/// Package-level fabric traffic totals since construction or the last
/// [`MultiChipSystem::reset_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FabricSummary {
    /// Flits serialized onto request-plane links.
    pub req_flits: u64,
    /// Cycles request-plane pipe heads stalled on full downstream queues.
    pub req_blocked_cycles: u64,
    /// Flits serialized onto reply-plane links.
    pub rep_flits: u64,
    /// Cycles reply-plane pipe heads stalled on full downstream queues.
    pub rep_blocked_cycles: u64,
    /// Messages delivered to arrival queues on the request plane.
    pub delivered_req: u64,
    /// Messages delivered to arrival queues on the reply plane.
    pub delivered_rep: u64,
}

/// A cross-chip request the owner chip has accepted: when the matching
/// reply ejects at the owner-side gateway, it is re-encapsulated toward
/// `origin_chip`/`origin_node`. Matching is FIFO among entries with the
/// same (addr, prio, kind) — identical-key replies are interchangeable,
/// so the match is deterministic and order-insensitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReturnEntry {
    addr: Addr,
    prio: Priority,
    kind: MsgKind,
    origin_chip: usize,
    origin_node: NodeId,
}

fn reply_kind_of(req: MsgKind) -> MsgKind {
    match req {
        MsgKind::ReadReq => MsgKind::ReadReply,
        MsgKind::WriteReq => MsgKind::WriteAck,
        other => panic!("{other} crossed the fabric as a request"),
    }
}

fn chip_seed(package_seed: u64, chip: usize) -> u64 {
    package_seed ^ (chip as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// N chips under one inter-chip fabric, presenting the same driving
/// surface as a single [`System`].
///
/// With `cfg.chips() <= 1` the wrapper holds exactly one plain
/// `System` and no fabric — every call delegates, so reports,
/// snapshots, and engine behavior are *structurally* identical to the
/// single-chip path (the degenerate-case identity the property tests
/// enforce).
#[derive(Debug)]
pub struct MultiChipSystem {
    cfg: SystemConfig,
    gpu_bench: String,
    cpu_bench: String,
    chips: Vec<System>,
    fabric: Option<FabricNetwork>,
    /// `returns[chip][gateway]`: pending cross-chip reply obligations.
    returns: Vec<Vec<VecDeque<ReturnEntry>>>,
    gateways: usize,
    fast_forward: bool,
    /// Telemetry epoch length (0 = telemetry off).
    epoch_len: u64,
    /// Per-link fabric series ids: request-plane links then reply-plane
    /// links, each (flits, blocked-fraction, occupancy).
    fabric_series: Vec<(SeriesId, SeriesId, SeriesId)>,
    /// Per-link (cum_flits, blocked_cycles) at the previous epoch
    /// boundary, same ordering as `fabric_series`.
    fabric_prev: Vec<(u64, u64)>,
    /// Plane totals and delivered counts at the last `reset_stats`.
    base_req: (u64, u64),
    base_rep: (u64, u64),
    base_delivered: (u64, u64),
}

impl MultiChipSystem {
    /// Build a package running `gpu_bench`/`cpu_bench` on every chip.
    ///
    /// # Panics
    ///
    /// Panics if a benchmark name is unknown, the configuration is
    /// inconsistent, or the fabric config is invalid (callers should
    /// screen with [`validate_fabric`] first).
    pub fn new(cfg: SystemConfig, gpu_bench: &str, cpu_bench: &str) -> Self {
        let layout = cfg.layout();
        let map = AddressMap::new(cfg.n_mem, cfg.seed);
        Self::new_prebuilt(cfg, gpu_bench, cpu_bench, layout, map)
    }

    /// Build a package from a pre-derived layout and address map (the
    /// sweep fast path; see [`System::new_prebuilt`]). The layout is
    /// seed-independent and shared by every chip; per-chip address maps
    /// are derived from per-chip seeds, so `map` is used only by the
    /// degenerate single-chip path.
    ///
    /// # Panics
    ///
    /// As [`Self::new`].
    pub fn new_prebuilt(
        cfg: SystemConfig,
        gpu_bench: &str,
        cpu_bench: &str,
        layout: clognet_proto::Layout,
        map: AddressMap,
    ) -> Self {
        validate_fabric(&cfg).expect("invalid fabric configuration");
        let n = cfg.chips();
        if n <= 1 {
            let sys = System::new_prebuilt(cfg.clone(), gpu_bench, cpu_bench, layout, map);
            return Self::from_single(cfg, sys);
        }
        let fc = cfg.fabric.expect("chips > 1 implies a fabric config");
        let mut chips = Vec::with_capacity(n);
        for i in 0..n {
            let mut ccfg = cfg.clone();
            ccfg.seed = chip_seed(cfg.seed, i);
            let cmap = AddressMap::new(ccfg.n_mem, ccfg.seed);
            let mut sys = System::new_prebuilt(ccfg, gpu_bench, cpu_bench, layout.clone(), cmap);
            sys.attach_fabric_port(i, &fc, cfg.seed);
            chips.push(sys);
        }
        let fabric = FabricNetwork::new(&fc);
        let returns = (0..n)
            .map(|_| (0..fc.gateways).map(|_| VecDeque::new()).collect())
            .collect();
        MultiChipSystem {
            gpu_bench: gpu_bench.to_string(),
            cpu_bench: cpu_bench.to_string(),
            chips,
            fabric: Some(fabric),
            returns,
            gateways: fc.gateways,
            fast_forward: true,
            epoch_len: 0,
            fabric_series: Vec::new(),
            fabric_prev: Vec::new(),
            base_req: (0, 0),
            base_rep: (0, 0),
            base_delivered: (0, 0),
            cfg,
        }
    }

    fn from_single(cfg: SystemConfig, sys: System) -> Self {
        MultiChipSystem {
            gpu_bench: String::new(),
            cpu_bench: String::new(),
            chips: vec![sys],
            fabric: None,
            returns: Vec::new(),
            gateways: 0,
            fast_forward: true,
            epoch_len: 0,
            fabric_series: Vec::new(),
            fabric_prev: Vec::new(),
            base_req: (0, 0),
            base_rep: (0, 0),
            base_delivered: (0, 0),
            cfg,
        }
    }

    /// Current cycle (all chips share one clock).
    pub fn now(&self) -> Cycle {
        self.chips[0].now()
    }

    /// The package configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The per-chip systems, in package-slot order.
    pub fn chips(&self) -> &[System] {
        &self.chips
    }

    /// The fabric, when this is a true multi-chip package.
    pub fn fabric(&self) -> Option<&FabricNetwork> {
        self.fabric.as_ref()
    }

    /// Advance the whole package by one cycle.
    pub fn tick(&mut self) {
        if self.fabric.is_none() {
            self.chips[0].tick();
            return;
        }
        self.tick_package();
    }

    /// Run for `cycles` cycles. Fast-forward jumps the package clock
    /// only when *every* chip is quiescent and the fabric is empty —
    /// the global quiescence the sharded engine's barrier also relies
    /// on — so results stay byte-identical across engine modes.
    pub fn run(&mut self, cycles: u64) {
        if self.fabric.is_none() {
            self.chips[0].run(cycles);
            return;
        }
        let end = self.now() + cycles;
        while self.now() < end {
            if self.fast_forward {
                if let Some(span) = self.quiescent_span(end) {
                    for c in &mut self.chips {
                        c.advance_span(span);
                    }
                    continue;
                }
            }
            self.tick_package();
        }
    }

    /// The span every chip can provably skip, or `None` if any chip or
    /// the fabric has same-cycle work.
    fn quiescent_span(&mut self, end: Cycle) -> Option<u64> {
        // Pending return entries never block the jump on their own: an
        // entry is live only while its request is inside the owner chip
        // or the fabric, and both of those already veto quiescence.
        if !self.fabric.as_ref().expect("multi-chip").is_empty() {
            return None;
        }
        let now = self.now();
        let mut target = Cycle::MAX;
        for c in &mut self.chips {
            let (t, _) = c.quiescent_horizon(end)?;
            target = target.min(t);
        }
        debug_assert!(target > now);
        Some(target - now)
    }

    /// One global cycle of a true multi-chip package: deliver fabric
    /// arrivals, stage fabric telemetry on epoch boundaries, tick every
    /// chip in slot order, hand egress and gateway replies to the
    /// fabric, then tick the fabric.
    fn tick_package(&mut self) {
        let now = self.now();
        let n = self.chips.len();
        // 1. Fabric arrivals → gateway injection (requests, then
        //    replies; a blocked gateway leaves the queue head in place —
        //    arrival back-pressure).
        for c in 0..n {
            while let Some(msg) = self
                .fabric
                .as_ref()
                .expect("multi-chip")
                .peek_arrival(TrafficClass::Request, c)
            {
                let entry = ReturnEntry {
                    addr: msg.pkt.addr,
                    prio: msg.pkt.prio,
                    kind: reply_kind_of(msg.pkt.kind),
                    origin_chip: msg.src_chip,
                    origin_node: msg.origin,
                };
                let Some(gi) = self.chips[c].fabric_ingress_request(&msg.pkt) else {
                    break;
                };
                self.returns[c][gi].push_back(entry);
                self.fabric
                    .as_mut()
                    .expect("multi-chip")
                    .pop_arrival(TrafficClass::Request, c);
            }
            while let Some(msg) = self
                .fabric
                .as_ref()
                .expect("multi-chip")
                .peek_arrival(TrafficClass::Reply, c)
            {
                let origin = msg.origin;
                if !self.chips[c].fabric_ingress_reply(origin, &msg.pkt) {
                    break;
                }
                self.fabric
                    .as_mut()
                    .expect("multi-chip")
                    .pop_arrival(TrafficClass::Reply, c);
            }
        }
        // 2. Fabric telemetry staging, just before chip 0's epoch roll.
        //    (Fabric counters are sampled before this cycle's fabric
        //    tick — one sub-phase of skew, identical on every run.)
        if self.epoch_len > 0 && (now + 1).is_multiple_of(self.epoch_len) {
            self.stage_fabric_series();
        }
        // 3. Chips tick in package-slot order.
        for c in &mut self.chips {
            c.tick();
        }
        // 4. Chip egress → fabric send (requests), and owner-side
        //    gateway replies → fabric send (replies).
        for c in 0..n {
            while let Some(pkt) = self.chips[c].peek_egress() {
                let dst_chip = self.chips[c].fabric_chip_of(pkt.addr.line(128));
                let origin = pkt.requester;
                if !self.fabric.as_ref().expect("multi-chip").can_send(
                    TrafficClass::Request,
                    c,
                    dst_chip,
                ) {
                    break;
                }
                let pkt = self.chips[c].pop_egress().expect("peeked");
                let sent = self.fabric.as_mut().expect("multi-chip").try_send(
                    TrafficClass::Request,
                    FabricMsg::new(c, dst_chip, origin, pkt),
                );
                debug_assert!(sent, "can_send checked above");
            }
            for gi in 0..self.gateways {
                while let Some(rp) = self.chips[c].peek_gateway_reply(gi) {
                    let (addr, prio, kind) = (rp.addr, rp.prio, rp.kind);
                    let pos = self.returns[c][gi]
                        .iter()
                        .position(|e| e.addr == addr && e.prio == prio && e.kind == kind)
                        .unwrap_or_else(|| {
                            panic!(
                                "gateway reply without a return entry: chip {c} gw {gi} \
                                 kind {kind:?} prio {prio:?} addr {addr:?}; entries: {:?}",
                                self.returns[c][gi]
                            )
                        });
                    let e = self.returns[c][gi][pos];
                    if !self.fabric.as_ref().expect("multi-chip").can_send(
                        TrafficClass::Reply,
                        c,
                        e.origin_chip,
                    ) {
                        break;
                    }
                    let rp = self.chips[c].pop_gateway_reply(gi).expect("peeked");
                    let _ = self.returns[c][gi].remove(pos);
                    let sent = self.fabric.as_mut().expect("multi-chip").try_send(
                        TrafficClass::Reply,
                        FabricMsg::new(c, e.origin_chip, e.origin_node, rp),
                    );
                    debug_assert!(sent, "can_send checked above");
                }
            }
        }
        // 5. Fabric progress for this cycle.
        self.fabric.as_mut().expect("multi-chip").tick(now);
    }

    /// Enable/disable event-horizon fast-forward (on by default).
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
        for c in &mut self.chips {
            c.set_fast_forward(on);
        }
    }

    /// Cycles skipped by fast-forward (package-wide jumps are uniform,
    /// so chip 0's count is the package count).
    pub fn skipped_cycles(&self) -> u64 {
        self.chips[0].skipped_cycles()
    }

    /// Select the NoC tick engine on every chip.
    ///
    /// # Errors
    ///
    /// As [`System::set_tick_engine`]; all chips share one topology, so
    /// validation is uniform.
    pub fn set_tick_engine(&mut self, engine: TickEngine) -> Result<(), ShardError> {
        for c in &mut self.chips {
            c.set_tick_engine(engine)?;
        }
        Ok(())
    }

    /// The active tick engine.
    pub fn tick_engine(&self) -> TickEngine {
        self.chips[0].tick_engine()
    }

    /// Enable/disable the NoC idle-router fast path on every chip.
    pub fn set_noc_idle_skip(&mut self, on: bool) {
        for c in &mut self.chips {
            c.set_noc_idle_skip(on);
        }
    }

    /// Enable time-series telemetry. Chip 0 carries the package view;
    /// on a true multi-chip package, per-fabric-link series
    /// (`fabric.<plane>.<from>-<to>.{flits,blocked,occ}`) are staged
    /// into chip 0's sampler each epoch so `timeline` and the metrics
    /// export see inter-chip clogging.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.epoch_len = cfg.epoch_len;
        self.chips[0].enable_telemetry(cfg);
        if self.fabric.is_some() {
            self.register_fabric_series();
            self.reset_fabric_prev();
        }
    }

    /// The telemetry state (chip 0's), if enabled.
    pub fn telemetry(&self) -> Option<&crate::telemetry::SystemTelemetry> {
        self.chips[0].telemetry()
    }

    fn register_fabric_series(&mut self) {
        let fab = self.fabric.as_ref().expect("multi-chip");
        let mut names = Vec::new();
        for class in [TrafficClass::Request, TrafficClass::Reply] {
            let plane = match class {
                TrafficClass::Request => "req",
                TrafficClass::Reply => "rep",
            };
            for li in 0..fab.links_per_plane() {
                let s = fab.link_stat(class, li);
                names.push((
                    format!("fabric.{plane}.{}-{}.flits", s.from, s.to),
                    format!("fabric.{plane}.{}-{}.blocked", s.from, s.to),
                    format!("fabric.{plane}.{}-{}.occ", s.from, s.to),
                ));
            }
        }
        let t = self.chips[0]
            .telemetry_mut()
            .expect("telemetry just enabled");
        self.fabric_series = names
            .iter()
            .map(|(f, b, o)| {
                (
                    t.session.sampler.series(f),
                    t.session.sampler.series(b),
                    t.session.sampler.series(o),
                )
            })
            .collect();
    }

    fn reset_fabric_prev(&mut self) {
        let fab = self.fabric.as_ref().expect("multi-chip");
        self.fabric_prev.clear();
        for class in [TrafficClass::Request, TrafficClass::Reply] {
            for li in 0..fab.links_per_plane() {
                let s = fab.link_stat(class, li);
                self.fabric_prev.push((s.cum_flits, s.blocked_cycles));
            }
        }
    }

    fn stage_fabric_series(&mut self) {
        let fab = self.fabric.as_ref().expect("multi-chip");
        let links = fab.links_per_plane();
        let epoch = self.epoch_len.max(1) as f64;
        let mut staged = Vec::with_capacity(self.fabric_series.len());
        for (k, (class, li)) in [TrafficClass::Request, TrafficClass::Reply]
            .into_iter()
            .flat_map(|c| (0..links).map(move |l| (c, l)))
            .enumerate()
        {
            let s = fab.link_stat(class, li);
            let (pf, pb) = self.fabric_prev[k];
            staged.push((
                (s.cum_flits - pf) as f64,
                (s.blocked_cycles - pb) as f64 / epoch,
                (s.queued + s.piped) as f64,
            ));
            self.fabric_prev[k] = (s.cum_flits, s.blocked_cycles);
        }
        let t = self.chips[0].telemetry_mut().expect("telemetry on");
        for (&(fid, bid, oid), (f, b, o)) in self.fabric_series.iter().zip(staged) {
            t.session.sampler.set(fid, f);
            t.session.sampler.set(bid, b);
            t.session.sampler.set(oid, o);
        }
    }

    /// Seal episodes and fill the metric registry from the package
    /// aggregate report. Returns chip 0's telemetry.
    pub fn finish_telemetry(&mut self) -> Option<&crate::telemetry::SystemTelemetry> {
        let report = self.report();
        self.chips[0].finish_telemetry_with(&report);
        self.chips[0].telemetry()
    }

    /// Export the telemetry session as JSON (see
    /// [`System::export_metrics_json`]).
    pub fn export_metrics_json(&mut self) -> Option<String> {
        if self.fabric.is_none() {
            return self.chips[0].export_metrics_json();
        }
        let scheme = format!("{:?}", self.cfg.scheme);
        let seed = self.cfg.seed;
        let gpu_bench = self.gpu_bench.clone();
        let cpu_bench = self.cpu_bench.clone();
        let cycles = self.now();
        self.finish_telemetry()?;
        let t = self.chips[0].telemetry()?;
        Some(t.session.to_json(&[
            ("gpu_bench", gpu_bench),
            ("cpu_bench", cpu_bench),
            ("scheme", scheme),
            ("seed", seed.to_string()),
            ("cycles", cycles.to_string()),
            ("chips", self.chips.len().to_string()),
        ]))
    }

    /// Export the per-epoch series as CSV. `None` if telemetry is off.
    pub fn export_series_csv(&self) -> Option<String> {
        self.chips[0].export_series_csv()
    }

    /// Zero all statistics while keeping architectural state, on every
    /// chip and the fabric (fabric totals are re-baselined).
    pub fn reset_stats(&mut self) {
        for c in &mut self.chips {
            c.reset_stats();
        }
        if let Some(fab) = &self.fabric {
            self.base_req = fab.plane_totals(TrafficClass::Request);
            self.base_rep = fab.plane_totals(TrafficClass::Reply);
            self.base_delivered = fab.delivered();
        }
    }

    /// Fabric traffic totals since the last [`Self::reset_stats`].
    /// `None` on a single-chip package.
    pub fn fabric_summary(&self) -> Option<FabricSummary> {
        let fab = self.fabric.as_ref()?;
        let req = fab.plane_totals(TrafficClass::Request);
        let rep = fab.plane_totals(TrafficClass::Reply);
        let del = fab.delivered();
        Some(FabricSummary {
            req_flits: req.0 - self.base_req.0,
            req_blocked_cycles: req.1 - self.base_req.1,
            rep_flits: rep.0 - self.base_rep.0,
            rep_blocked_cycles: rep.1 - self.base_rep.1,
            delivered_req: del.0 - self.base_delivered.0,
            delivered_rep: del.1 - self.base_delivered.1,
        })
    }

    /// Apply a warm-applicable sweep parameter to every chip (see
    /// [`System::apply_warm_param`]).
    ///
    /// # Errors
    ///
    /// As [`System::apply_warm_param`].
    pub fn apply_warm_param(&mut self, key: &str, value: u64) -> Result<(), String> {
        for c in &mut self.chips {
            c.apply_warm_param(key, value)?;
        }
        // Mirror into the package config so snapshots stay coherent.
        let v = usize::try_from(value).map_err(|_| format!("{key}={value} out of range"))?;
        match key {
            "injbuf" => self.cfg.noc.mem_inj_buf_pkts = v,
            "drmax" => self.cfg.dr.max_per_cycle = v,
            _ => unreachable!("per-chip apply validated the key"),
        }
        Ok(())
    }

    /// Switch the delegation scheme on every chip.
    pub fn set_scheme(&mut self, scheme: Scheme) {
        self.cfg.scheme = scheme;
        for c in &mut self.chips {
            c.set_scheme(scheme);
        }
    }

    /// Per-chip adaptive-control decision logs, in package-slot order.
    /// Empty when the configuration carries no control policy; each
    /// chip runs its own controller, so the logs can diverge.
    pub fn decision_logs(&self) -> Vec<(usize, &clognet_control::DecisionLog)> {
        self.chips
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.decision_log().map(|l| (i, l)))
            .collect()
    }

    /// Escalations plus de-escalations recorded across all chips.
    pub fn control_actuations(&self) -> usize {
        self.decision_logs()
            .iter()
            .map(|(_, l)| l.escalations() + l.de_escalations())
            .sum()
    }

    /// The package-level report: a 1-chip package returns the inner
    /// chip's report verbatim; a true package sums event counts and
    /// averages per-chip rates (each chip has equal core counts, so the
    /// unweighted mean is the package mean).
    pub fn report(&self) -> Report {
        if self.fabric.is_none() {
            return self.chips[0].report();
        }
        let reports: Vec<Report> = self.chips.iter().map(|c| c.report()).collect();
        let n = reports.len() as f64;
        let mean = |get: fn(&Report) -> f64| reports.iter().map(get).sum::<f64>() / n;
        Report {
            cycles: reports[0].cycles,
            gpu_bench: reports[0].gpu_bench.clone(),
            cpu_bench: reports[0].cpu_bench.clone(),
            gpu_ipc: mean(|r| r.gpu_ipc),
            cpu_performance: mean(|r| r.cpu_performance),
            cpu_mem_latency: mean(|r| r.cpu_mem_latency),
            cpu_net_latency: mean(|r| r.cpu_net_latency),
            gpu_rx_rate: mean(|r| r.gpu_rx_rate),
            gpu_tx_rate: mean(|r| r.gpu_tx_rate),
            mem_blocked_rate: mean(|r| r.mem_blocked_rate),
            mem_reply_link_util: mean(|r| r.mem_reply_link_util),
            delegations: reports.iter().map(|r| r.delegations).sum(),
            breakdown: MissBreakdown {
                llc_direct: reports.iter().map(|r| r.breakdown.llc_direct).sum(),
                remote_hit: reports.iter().map(|r| r.breakdown.remote_hit).sum(),
                remote_miss: reports.iter().map(|r| r.breakdown.remote_miss).sum(),
            },
            oracle_locality: mean(|r| r.oracle_locality),
            l1_miss_rate: mean(|r| r.l1_miss_rate),
            probes_sent: reports.iter().map(|r| r.probes_sent).sum(),
            request_packets: reports.iter().map(|r| r.request_packets).sum(),
            frq_same_line_fraction: mean(|r| r.frq_same_line_fraction),
            flit_hops: reports.iter().map(|r| r.flit_hops).sum(),
            channel_bytes: reports[0].channel_bytes,
        }
    }

    /// Capture the complete package state as a versioned [`Snapshot`].
    /// A 1-chip package writes the plain single-chip format (tag
    /// `false`), so its snapshots interoperate with [`System`] exactly.
    pub fn snapshot(&self) -> Snapshot {
        let Some(fab) = &self.fabric else {
            return self.chips[0].snapshot();
        };
        let mut w =
            snapshot::begin_snapshot(&self.cfg, &self.gpu_bench, &self.cpu_bench, self.now());
        w.bool(true);
        w.usize(self.chips.len());
        for c in &self.chips {
            c.save_body(&mut w);
        }
        for per_chip in &self.returns {
            for q in per_chip {
                w.usize(q.len());
                for e in q {
                    w.u64(e.addr.0);
                    w.u8(match e.prio {
                        Priority::Cpu => 0,
                        Priority::Gpu => 1,
                    });
                    w.u8(snap::msg_kind_tag(e.kind));
                    w.usize(e.origin_chip);
                    w.u16(e.origin_node.0);
                }
            }
        }
        fab.save_state(&mut w);
        w.usize(self.fabric_prev.len());
        for (f, b) in &self.fabric_prev {
            w.u64(*f);
            w.u64(*b);
        }
        for v in [
            self.base_req.0,
            self.base_req.1,
            self.base_rep.0,
            self.base_rep.1,
            self.base_delivered.0,
            self.base_delivered.1,
        ] {
            w.u64(v);
        }
        Snapshot::from_bytes(w.into_bytes()).expect("just-written snapshot parses")
    }

    /// Rebuild a package from a [`Snapshot`] (single- or multi-chip
    /// format, as long as it matches the embedded config's chip count).
    ///
    /// # Errors
    ///
    /// Fails on a corrupt body, or with [`SnapError::ChipMismatch`]
    /// when the snapshot's chip arrangement disagrees with its own
    /// config — a single-chip body under a multi-chip config or vice
    /// versa (e.g. mismatched producer/consumer builds).
    pub fn restore(snapshot: &Snapshot) -> Result<Self, SnapError> {
        let cfg = snapshot.config().clone();
        let expected = cfg.chips().max(1);
        let mut r = snapshot::body_reader(snapshot)?;
        if !r.bool()? {
            if expected > 1 {
                return Err(SnapError::ChipMismatch {
                    snapshot: 1,
                    expected,
                });
            }
            let sys = System::restore(snapshot)?;
            return Ok(Self::from_single(cfg, sys));
        }
        let chips_in = r.usize()?;
        if expected <= 1 || chips_in != expected {
            return Err(SnapError::ChipMismatch {
                snapshot: chips_in,
                expected,
            });
        }
        if clognet_workloads::gpu_benchmark(snapshot.gpu_bench()).is_none() {
            return Err(SnapError::Corrupt("unknown GPU benchmark in snapshot"));
        }
        if clognet_workloads::cpu_benchmark(snapshot.cpu_bench()).is_none() {
            return Err(SnapError::Corrupt("unknown CPU benchmark in snapshot"));
        }
        let mut sys = Self::new(cfg, snapshot.gpu_bench(), snapshot.cpu_bench());
        for c in &mut sys.chips {
            c.set_now(snapshot.cycle());
            c.load_body(&mut r)?;
        }
        for per_chip in &mut sys.returns {
            for q in per_chip {
                let len = r.usize()?;
                q.clear();
                for _ in 0..len {
                    let addr = Addr(r.u64()?);
                    let prio = match r.u8()? {
                        0 => Priority::Cpu,
                        1 => Priority::Gpu,
                        t => {
                            return Err(SnapError::BadTag {
                                what: "priority",
                                tag: u64::from(t),
                            })
                        }
                    };
                    let kind = snap::msg_kind_from(r.u8()?)?;
                    let origin_chip = r.usize()?;
                    if origin_chip >= chips_in {
                        return Err(SnapError::Corrupt("return entry names a bad chip"));
                    }
                    let origin_node = NodeId(r.u16()?);
                    q.push_back(ReturnEntry {
                        addr,
                        prio,
                        kind,
                        origin_chip,
                        origin_node,
                    });
                }
            }
        }
        sys.fabric
            .as_mut()
            .expect("multi-chip")
            .load_state(&mut r)?;
        let prev_len = r.usize()?;
        sys.fabric_prev.clear();
        for _ in 0..prev_len {
            sys.fabric_prev.push((r.u64()?, r.u64()?));
        }
        sys.base_req = (r.u64()?, r.u64()?);
        sys.base_rep = (r.u64()?, r.u64()?);
        sys.base_delivered = (r.u64()?, r.u64()?);
        r.finish()?;
        if sys.chips[0].telemetry().is_some() {
            sys.epoch_len = sys.chips[0].telemetry().expect("checked").epoch_len();
            sys.register_fabric_series();
        }
        Ok(sys)
    }
}
