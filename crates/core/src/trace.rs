//! Event tracing: a bounded ring buffer of typed protocol events.
//!
//! Tracing makes the delegation protocol observable: every delegation,
//! remote hit/miss, DNF bounce, blocking transition, and coherence flush
//! can be captured with its cycle and actors, then queried or dumped.
//! Disabled by default (zero overhead beyond a branch); enable with
//! [`System::enable_trace`](crate::System::enable_trace).

use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{CoreId, Cycle, LineAddr, MemId};
use std::collections::VecDeque;

/// One traced protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A memory node converted a delegatable reply into a delegated
    /// reply on the request network.
    Delegated {
        /// The delegating memory node.
        mem: MemId,
        /// The pointer core asked to supply the data.
        target: CoreId,
        /// The core awaiting the data.
        requester: CoreId,
        /// The line.
        line: LineAddr,
    },
    /// A delegated reply hit in the remote L1 (data sent core-to-core).
    RemoteHit {
        /// The core that served the data.
        server: CoreId,
        /// The receiving core.
        requester: CoreId,
        /// The line.
        line: LineAddr,
    },
    /// A delegated reply found the line outstanding and attached to the
    /// MSHR (delayed hit).
    DelayedHit {
        /// The core holding the MSHR.
        server: CoreId,
        /// The receiving core.
        requester: CoreId,
        /// The line.
        line: LineAddr,
    },
    /// A delegated reply missed remotely and bounced back to the LLC
    /// with the DNF bit.
    RemoteMiss {
        /// The core that missed.
        server: CoreId,
        /// The original requester.
        requester: CoreId,
        /// The line.
        line: LineAddr,
    },
    /// A memory node transitioned into the blocked state.
    BlockedEnter {
        /// The node.
        mem: MemId,
    },
    /// A memory node unblocked.
    BlockedExit {
        /// The node.
        mem: MemId,
        /// Cycles it spent blocked.
        for_cycles: Cycle,
    },
    /// A GPU core flushed its L1 (kernel boundary); its LLC pointers
    /// were invalidated.
    Flush {
        /// The flushing core.
        core: CoreId,
        /// Pointers invalidated across all LLC slices.
        pointers: usize,
    },
}

impl Event {
    /// Short kind tag for filtering and display.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Delegated { .. } => "delegate",
            Event::RemoteHit { .. } => "remote-hit",
            Event::DelayedHit { .. } => "delayed-hit",
            Event::RemoteMiss { .. } => "remote-miss",
            Event::BlockedEnter { .. } => "blocked",
            Event::BlockedExit { .. } => "unblocked",
            Event::Flush { .. } => "flush",
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traced {
    /// Cycle the event occurred.
    pub at: Cycle,
    /// The event.
    pub event: Event,
}

impl std::fmt::Display for Traced {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>8}] {:<11} ", self.at, self.event.kind())?;
        match self.event {
            Event::Delegated {
                mem,
                target,
                requester,
                line,
            } => write!(f, "{mem} -> {target} (for {requester}) {line}"),
            Event::RemoteHit {
                server,
                requester,
                line,
            }
            | Event::DelayedHit {
                server,
                requester,
                line,
            }
            | Event::RemoteMiss {
                server,
                requester,
                line,
            } => write!(f, "{server} -> {requester} {line}"),
            Event::BlockedEnter { mem } => write!(f, "{mem}"),
            Event::BlockedExit { mem, for_cycles } => {
                write!(f, "{mem} after {for_cycles} cycles")
            }
            Event::Flush { core, pointers } => {
                write!(f, "{core} ({pointers} LLC pointers dropped)")
            }
        }
    }
}

/// Bounded event log (oldest events are discarded first).
#[derive(Debug)]
pub struct TraceLog {
    buf: VecDeque<Traced>,
    cap: usize,
    enabled: bool,
    total: u64,
}

impl TraceLog {
    /// Create a disabled log with room for `cap` events.
    pub fn new(cap: usize) -> Self {
        TraceLog {
            buf: VecDeque::with_capacity(cap.min(4096)),
            cap: cap.max(1),
            enabled: false,
            total: 0,
        }
    }

    /// Turn tracing on/off (the log keeps existing events).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is tracing active?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op while disabled).
    pub fn push(&mut self, at: Cycle, event: Event) {
        if !self.enabled {
            return;
        }
        self.total += 1;
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(Traced { at, event });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Traced> + '_ {
        self.buf.iter()
    }

    /// Total events observed since enabling (including discarded ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Retained events of one kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Traced> + 'a {
        self.buf.iter().filter(move |t| t.event.kind() == kind)
    }

    /// Serialize the log (capacity, enablement, totals, and every
    /// retained event in order).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.cap);
        w.bool(self.enabled);
        w.u64(self.total);
        w.usize(self.buf.len());
        for t in &self.buf {
            w.u64(t.at);
            save_event(w, &t.event);
        }
    }

    /// Rebuild a log captured by [`TraceLog::save_state`].
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let cap = r.usize()?;
        let enabled = r.bool()?;
        let total = r.u64()?;
        let n = r.usize()?;
        if n > cap {
            return Err(SnapError::Corrupt("trace log longer than its capacity"));
        }
        let mut log = TraceLog::new(cap);
        log.enabled = enabled;
        log.total = total;
        for _ in 0..n {
            let at = r.u64()?;
            let event = load_event(r)?;
            log.buf.push_back(Traced { at, event });
        }
        Ok(log)
    }
}

fn save_event(w: &mut SnapWriter, e: &Event) {
    match *e {
        Event::Delegated {
            mem,
            target,
            requester,
            line,
        } => {
            w.u8(0);
            w.u16(mem.0);
            w.u16(target.0);
            w.u16(requester.0);
            w.u64(line.0);
        }
        Event::RemoteHit {
            server,
            requester,
            line,
        } => {
            w.u8(1);
            w.u16(server.0);
            w.u16(requester.0);
            w.u64(line.0);
        }
        Event::DelayedHit {
            server,
            requester,
            line,
        } => {
            w.u8(2);
            w.u16(server.0);
            w.u16(requester.0);
            w.u64(line.0);
        }
        Event::RemoteMiss {
            server,
            requester,
            line,
        } => {
            w.u8(3);
            w.u16(server.0);
            w.u16(requester.0);
            w.u64(line.0);
        }
        Event::BlockedEnter { mem } => {
            w.u8(4);
            w.u16(mem.0);
        }
        Event::BlockedExit { mem, for_cycles } => {
            w.u8(5);
            w.u16(mem.0);
            w.u64(for_cycles);
        }
        Event::Flush { core, pointers } => {
            w.u8(6);
            w.u16(core.0);
            w.u64(pointers as u64);
        }
    }
}

fn load_event(r: &mut SnapReader<'_>) -> Result<Event, SnapError> {
    Ok(match r.u8()? {
        0 => Event::Delegated {
            mem: MemId(r.u16()?),
            target: CoreId(r.u16()?),
            requester: CoreId(r.u16()?),
            line: LineAddr(r.u64()?),
        },
        1 => Event::RemoteHit {
            server: CoreId(r.u16()?),
            requester: CoreId(r.u16()?),
            line: LineAddr(r.u64()?),
        },
        2 => Event::DelayedHit {
            server: CoreId(r.u16()?),
            requester: CoreId(r.u16()?),
            line: LineAddr(r.u64()?),
        },
        3 => Event::RemoteMiss {
            server: CoreId(r.u16()?),
            requester: CoreId(r.u16()?),
            line: LineAddr(r.u64()?),
        },
        4 => Event::BlockedEnter {
            mem: MemId(r.u16()?),
        },
        5 => Event::BlockedExit {
            mem: MemId(r.u16()?),
            for_cycles: r.u64()?,
        },
        6 => Event::Flush {
            core: CoreId(r.u16()?),
            pointers: {
                let v = r.u64()?;
                usize::try_from(v).map_err(|_| SnapError::Corrupt("flush pointer count"))?
            },
        },
        t => {
            return Err(SnapError::BadTag {
                what: "trace event",
                tag: u64::from(t),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new(8);
        log.push(1, Event::BlockedEnter { mem: MemId(0) });
        assert_eq!(log.total(), 0);
        assert_eq!(log.events().count(), 0);
    }

    #[test]
    fn ring_discards_oldest() {
        let mut log = TraceLog::new(3);
        log.set_enabled(true);
        for i in 0..5 {
            log.push(
                i,
                Event::BlockedEnter {
                    mem: MemId(i as u16),
                },
            );
        }
        assert_eq!(log.total(), 5);
        let at: Vec<Cycle> = log.events().map(|t| t.at).collect();
        assert_eq!(at, vec![2, 3, 4]);
    }

    #[test]
    fn kind_filter_and_display() {
        let mut log = TraceLog::new(16);
        log.set_enabled(true);
        log.push(
            10,
            Event::Delegated {
                mem: MemId(1),
                target: CoreId(2),
                requester: CoreId(3),
                line: LineAddr(0x40),
            },
        );
        log.push(
            12,
            Event::RemoteHit {
                server: CoreId(2),
                requester: CoreId(3),
                line: LineAddr(0x40),
            },
        );
        assert_eq!(log.of_kind("delegate").count(), 1);
        assert_eq!(log.of_kind("remote-hit").count(), 1);
        let s = log.events().next().unwrap().to_string();
        assert!(s.contains("delegate"), "{s}");
        assert!(s.contains("m1 -> c2"), "{s}");
    }

    #[test]
    fn blocked_exit_formats_duration() {
        let t = Traced {
            at: 99,
            event: Event::BlockedExit {
                mem: MemId(4),
                for_cycles: 17,
            },
        };
        assert!(t.to_string().contains("after 17 cycles"));
    }
}
