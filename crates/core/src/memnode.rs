//! Memory nodes: one LLC slice + one FR-FCFS memory controller behind a
//! finite reply *injection buffer* — the structure whose blocking is the
//! paper's network-clogging mechanism, and whose drain-by-delegation is
//! the paper's contribution.
//!
//! Per-cycle behavior (Section II, Figures 3–4):
//! 1. take requests from the request network **only while the injection
//!    buffer has room** — a full buffer *blocks* the node, denying even
//!    prioritized CPU requests entry;
//! 2. look requests up in the LLC (pipelined, `llc.latency` cycles);
//!    hits become replies in the injection buffer, misses go to DRAM;
//! 3. inject replies into the reply network, CPU replies first;
//! 4. under Delegated Replies, when the reply network cannot accept GPU
//!    traffic, convert *delegatable* replies (LLC hits whose core
//!    pointer names another GPU core, DNF clear) into 1-flit delegated
//!    replies on the under-utilized request network.

use clognet_cache::{LlcAccess, LlcSlice};
use clognet_dram::{DramController, DramRequest};
use clognet_proto::snap::{self, SnapError, SnapReader, SnapWriter};
use clognet_proto::{
    Addr, CoreId, Cycle, FxHashMap, LineAddr, MemId, MsgKind, NodeId, Packet, Priority,
    SystemConfig,
};
use std::collections::VecDeque;

/// A reply waiting in the memory node's injection buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingReply {
    /// Destination node.
    pub dst: NodeId,
    /// Reply kind ([`MsgKind::ReadReply`] or [`MsgKind::WriteAck`]).
    pub kind: MsgKind,
    /// Arbitration priority.
    pub prio: Priority,
    /// Address echoed back to the requester.
    pub addr: Addr,
    /// Line size of the requester (sets reply flit count: 128 B GPU
    /// lines → 9 flits, 64 B CPU lines → 5).
    pub line_bytes: u32,
    /// `Some(core)`: this reply may be delegated to `core` (LLC hit, a
    /// *different* GPU core was the last accessor, DNF clear).
    pub delegatable_to: Option<CoreId>,
}

/// A requester waiting on a DRAM fill.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    dst: NodeId,
    prio: Priority,
    addr: Addr,
    line_bytes: u32,
    gpu_core: Option<CoreId>,
}

/// Memory-node statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemNodeStats {
    /// Requests accepted from the network.
    pub requests: u64,
    /// LLC read hits.
    pub llc_hits: u64,
    /// LLC read misses (DRAM fetches).
    pub llc_misses: u64,
    /// Cycles the node was blocked (injection buffer full, refusing
    /// requests).
    pub blocked_cycles: u64,
    /// Replies delegated to GPU cores.
    pub delegations: u64,
    /// Replies injected into the reply network.
    pub injected_replies: u64,
    /// Writes processed.
    pub writes: u64,
    /// DNF requests answered directly.
    pub dnf_requests: u64,
}

/// One memory node.
#[derive(Debug)]
pub struct MemNode {
    /// Dense memory-node id.
    pub id: MemId,
    /// Grid node hosting this memory node.
    pub node: NodeId,
    llc: LlcSlice,
    dram: DramController,
    /// LLC lookup pipeline: (ready_at, reply).
    llc_pipe: VecDeque<(Cycle, PendingReply)>,
    /// The injection buffer (Figures 3–4).
    inj_buf: VecDeque<PendingReply>,
    /// Fills that completed while the injection buffer was full.
    fill_ready: VecDeque<PendingReply>,
    /// Outstanding DRAM reads: token → waiters (MSHR-style merging).
    dram_waiters: FxHashMap<u64, (LineAddr, Vec<Waiter>)>,
    /// line → token, for merging.
    line_tokens: FxHashMap<LineAddr, u64>,
    /// Dirty LLC victims awaiting a DRAM write slot.
    wb_pending: VecDeque<LineAddr>,
    /// Scratch buffer for DRAM completion tokens, reused every cycle so
    /// `tick_memory` stays allocation-free in steady state.
    dram_done: Vec<u64>,
    token_seq: u64,
    cap: usize,
    llc_latency: u32,
    llc_line_bytes: u32,
    /// Statistics.
    pub stats: MemNodeStats,
}

impl MemNode {
    /// Build a memory node from the system configuration.
    pub fn new(cfg: &SystemConfig, id: MemId, node: NodeId) -> Self {
        MemNode {
            id,
            node,
            llc: LlcSlice::new(cfg.llc.slice),
            // Scramble the DRAM map seed so bank selection decorrelates
            // from the controller-select hash (same fold + same seed
            // would confine node 0's lines to two banks).
            dram: DramController::new(
                cfg.dram.clone(),
                cfg.seed.rotate_left(17).wrapping_mul(0xD1B5_4A32_D192_ED03)
                    ^ (id.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            llc_pipe: VecDeque::new(),
            inj_buf: VecDeque::new(),
            fill_ready: VecDeque::new(),
            dram_waiters: FxHashMap::default(),
            line_tokens: FxHashMap::default(),
            wb_pending: VecDeque::new(),
            dram_done: Vec::new(),
            token_seq: 0,
            cap: cfg.noc.mem_inj_buf_pkts,
            llc_latency: cfg.llc.latency,
            llc_line_bytes: cfg.llc.slice.line_bytes,
            stats: MemNodeStats::default(),
        }
    }

    /// Direct LLC access (for tests and pointer maintenance).
    pub fn llc(&mut self) -> &mut LlcSlice {
        &mut self.llc
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> clognet_dram::DramStats {
        self.dram.stats()
    }

    /// Diagnostics: (injection buffer, LLC pipe, fills waiting, DRAM
    /// queue, DRAM waiters, writebacks pending).
    pub fn queue_depths(&self) -> (usize, usize, usize, usize, usize, usize) {
        (
            self.inj_buf.len(),
            self.llc_pipe.len(),
            self.fill_ready.len(),
            self.dram.queue_len(),
            self.dram_waiters.len(),
            self.wb_pending.len(),
        )
    }

    /// Occupancy that counts against the injection-buffer capacity:
    /// buffered replies plus lookups already in the LLC pipe.
    fn committed(&self) -> usize {
        self.inj_buf.len() + self.llc_pipe.len() + self.fill_ready.len()
    }

    /// Injection-buffer occupancy counted against capacity (buffered
    /// replies + in-flight LLC lookups + fills awaiting space) — the
    /// depth the clog-episode detector tracks.
    pub fn inj_depth(&self) -> usize {
        self.committed()
    }

    /// Is the node blocked (unable to accept another request)?
    pub fn blocked(&self) -> bool {
        self.committed() >= self.cap || !self.dram.can_enqueue()
    }

    /// Number of requests the node can still accept this cycle.
    pub fn accept_budget(&self) -> usize {
        // Conservative: every accepted request might be an LLC miss
        // needing a DRAM queue slot.
        self.cap
            .saturating_sub(self.committed())
            .min(self.dram.free_slots())
    }

    /// Process one request packet taken from the request network.
    ///
    /// # Panics
    ///
    /// Panics if handed a reply-class packet.
    pub fn process_request(
        &mut self,
        pkt: &Packet,
        now: Cycle,
        gpu_core_of: impl Fn(NodeId) -> Option<CoreId>,
    ) {
        self.stats.requests += 1;
        let line = pkt.addr.line(self.llc_line_bytes as u64);
        let requester_core = gpu_core_of(pkt.requester);
        let line_bytes = if pkt.prio == Priority::Cpu { 64 } else { 128 };
        match pkt.kind {
            MsgKind::ReadReq => {
                if pkt.dnf {
                    self.stats.dnf_requests += 1;
                }
                let access = match requester_core {
                    Some(core) => self.llc.read_gpu(line, core),
                    None => self.llc.read_cpu(line),
                };
                match access {
                    LlcAccess::Hit(prev) => {
                        self.stats.llc_hits += 1;
                        let delegatable_to = match (prev, requester_core, pkt.dnf) {
                            (Some(p), Some(me), false) if p != me => Some(p),
                            _ => None,
                        };
                        self.llc_pipe.push_back((
                            now + Cycle::from(self.llc_latency),
                            PendingReply {
                                dst: pkt.requester,
                                kind: MsgKind::ReadReply,
                                prio: pkt.prio,
                                addr: pkt.addr,
                                line_bytes,
                                delegatable_to,
                            },
                        ));
                    }
                    LlcAccess::Miss => {
                        self.stats.llc_misses += 1;
                        let waiter = Waiter {
                            dst: pkt.requester,
                            prio: pkt.prio,
                            addr: pkt.addr,
                            line_bytes,
                            gpu_core: requester_core,
                        };
                        if let Some(&tok) = self.line_tokens.get(&line) {
                            self.dram_waiters
                                .get_mut(&tok)
                                .expect("token live")
                                .1
                                .push(waiter);
                        } else {
                            self.token_seq += 1;
                            let tok = self.token_seq;
                            self.dram
                                .enqueue(
                                    DramRequest {
                                        line,
                                        is_write: false,
                                        cpu: pkt.prio == Priority::Cpu,
                                        token: tok,
                                    },
                                    now,
                                )
                                .expect("accept_budget checked dram space");
                            self.line_tokens.insert(line, tok);
                            self.dram_waiters.insert(tok, (line, vec![waiter]));
                        }
                    }
                }
            }
            MsgKind::WriteReq => {
                self.stats.writes += 1;
                if let Some(ev) = self.llc.write(line) {
                    if ev.dirty {
                        self.wb_pending.push_back(ev.line);
                    }
                }
                self.llc_pipe.push_back((
                    now + Cycle::from(self.llc_latency),
                    PendingReply {
                        dst: pkt.requester,
                        kind: MsgKind::WriteAck,
                        prio: pkt.prio,
                        addr: pkt.addr,
                        line_bytes,
                        delegatable_to: None,
                    },
                ));
            }
            other => panic!("memory node received {other}"),
        }
    }

    /// Advance DRAM and the LLC pipeline; move completed work into the
    /// injection buffer.
    pub fn tick_memory(&mut self, now: Cycle) {
        // Retire LLC pipeline entries whose latency elapsed.
        while let Some(&(ready, _)) = self.llc_pipe.front() {
            if ready > now {
                break;
            }
            let (_, reply) = self.llc_pipe.pop_front().expect("checked");
            self.inj_buf.push_back(reply);
        }
        // Stage dirty writebacks opportunistically.
        while let Some(&line) = self.wb_pending.front() {
            self.token_seq += 1;
            let req = DramRequest {
                line,
                is_write: true,
                cpu: false,
                token: self.token_seq,
            };
            match self.dram.enqueue(req, now) {
                Ok(()) => {
                    self.wb_pending.pop_front();
                }
                Err(_) => break,
            }
        }
        // DRAM completions fill the LLC and wake waiters. The token
        // buffer is owned scratch (taken/restored around the loop so the
        // borrow checker allows LLC/waiter mutation inside).
        let mut done = std::mem::take(&mut self.dram_done);
        done.clear();
        self.dram.tick_into(now, &mut done);
        for &tok in &done {
            let Some((line, waiters)) = self.dram_waiters.remove(&tok) else {
                continue; // a writeback completing
            };
            self.line_tokens.remove(&line);
            // Fill, pointing the line at the first GPU waiter (if any).
            let pointer = waiters.iter().find_map(|w| w.gpu_core);
            if let Some(ev) = self.llc.fill(line, pointer) {
                if ev.dirty {
                    self.wb_pending.push_back(ev.line);
                }
            }
            for w in waiters {
                self.fill_ready.push_back(PendingReply {
                    dst: w.dst,
                    kind: MsgKind::ReadReply,
                    prio: w.prio,
                    addr: w.addr,
                    line_bytes: w.line_bytes,
                    // Fresh fills go to the requester; nothing to
                    // delegate.
                    delegatable_to: None,
                });
            }
        }
        self.dram_done = done;
        // Fills move into the injection buffer as space allows (they were
        // already counted against capacity via `committed`).
        while let Some(r) = self.fill_ready.pop_front() {
            self.inj_buf.push_back(r);
        }
        if self.blocked() {
            self.stats.blocked_cycles += 1;
        }
    }

    /// Pick the next reply to inject: CPU replies anywhere in the buffer
    /// first (the priority the paper gives CPU traffic in the memory
    /// scheduler), then FIFO.
    pub fn next_reply(&mut self) -> Option<PendingReply> {
        if let Some(ix) = self.inj_buf.iter().position(|r| r.prio == Priority::Cpu) {
            return self.inj_buf.remove(ix);
        }
        self.inj_buf.pop_front()
    }

    /// Put back a reply that could not be injected this cycle.
    pub fn put_back(&mut self, r: PendingReply) {
        self.inj_buf.push_front(r);
    }

    /// Pop the first GPU reply, skipping CPU replies (used after a CPU
    /// reply failed to inject so GPU traffic is not head-blocked).
    pub fn next_gpu_reply(&mut self) -> Option<PendingReply> {
        let ix = self.inj_buf.iter().position(|r| r.prio == Priority::Gpu)?;
        self.inj_buf.remove(ix)
    }

    /// Remove the first delegatable GPU reply, for conversion into a
    /// delegated reply on the request network.
    pub fn take_delegatable(&mut self) -> Option<PendingReply> {
        let ix = self
            .inj_buf
            .iter()
            .position(|r| r.delegatable_to.is_some())?;
        self.inj_buf.remove(ix)
    }

    /// Invalidate all core pointers naming `core` (the core flushed its
    /// L1 at a kernel boundary).
    pub fn invalidate_pointers_of(&mut self, core: CoreId) -> usize {
        self.llc.invalidate_pointers_of(core)
    }

    /// Retarget the injection-buffer capacity (warm-start sweeps apply
    /// an `injbuf` variant to a restored snapshot through this). The
    /// buffer contents are untouched; an over-full buffer simply blocks
    /// until it drains below the new capacity.
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap;
    }

    /// Serialize all mutable state. Capacity and latency come from the
    /// configuration at rebuild time, so a restored node can be given a
    /// different `injbuf` capacity without invalidating the snapshot.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.llc.save_state(w);
        self.dram.save_state(w);
        w.usize(self.llc_pipe.len());
        for (ready, rep) in &self.llc_pipe {
            w.u64(*ready);
            save_reply(w, rep);
        }
        w.usize(self.inj_buf.len());
        for rep in &self.inj_buf {
            save_reply(w, rep);
        }
        w.usize(self.fill_ready.len());
        for rep in &self.fill_ready {
            save_reply(w, rep);
        }
        // Outstanding DRAM reads, sorted by token for a canonical order;
        // `line_tokens` is the inverse index and is rebuilt on load.
        let mut toks: Vec<u64> = self.dram_waiters.keys().copied().collect();
        toks.sort_unstable();
        w.usize(toks.len());
        for tok in toks {
            let (line, waiters) = &self.dram_waiters[&tok];
            w.u64(tok);
            w.u64(line.0);
            w.usize(waiters.len());
            for wt in waiters {
                w.u16(wt.dst.0);
                w.u8(match wt.prio {
                    Priority::Cpu => 0,
                    Priority::Gpu => 1,
                });
                w.u64(wt.addr.0);
                w.u32(wt.line_bytes);
                match wt.gpu_core {
                    Some(c) => {
                        w.bool(true);
                        w.u16(c.0);
                    }
                    None => w.bool(false),
                }
            }
        }
        w.usize(self.wb_pending.len());
        for line in &self.wb_pending {
            w.u64(line.0);
        }
        w.u64(self.token_seq);
        for v in [
            self.stats.requests,
            self.stats.llc_hits,
            self.stats.llc_misses,
            self.stats.blocked_cycles,
            self.stats.delegations,
            self.stats.injected_replies,
            self.stats.writes,
            self.stats.dnf_requests,
        ] {
            w.u64(v);
        }
    }

    /// Overlay state captured by [`MemNode::save_state`] onto a node
    /// freshly built from the same configuration.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.llc.load_state(r)?;
        self.dram.load_state(r)?;
        let n = r.usize()?;
        self.llc_pipe.clear();
        for _ in 0..n {
            let ready = r.u64()?;
            self.llc_pipe.push_back((ready, load_reply(r)?));
        }
        let n = r.usize()?;
        self.inj_buf.clear();
        for _ in 0..n {
            self.inj_buf.push_back(load_reply(r)?);
        }
        let n = r.usize()?;
        self.fill_ready.clear();
        for _ in 0..n {
            self.fill_ready.push_back(load_reply(r)?);
        }
        let n = r.usize()?;
        self.dram_waiters.clear();
        self.line_tokens.clear();
        for _ in 0..n {
            let tok = r.u64()?;
            let line = LineAddr(r.u64()?);
            let m = r.usize()?;
            let mut waiters = Vec::with_capacity(m);
            for _ in 0..m {
                let dst = NodeId(r.u16()?);
                let prio = match r.u8()? {
                    0 => Priority::Cpu,
                    1 => Priority::Gpu,
                    t => {
                        return Err(SnapError::BadTag {
                            what: "waiter priority",
                            tag: u64::from(t),
                        })
                    }
                };
                let addr = Addr(r.u64()?);
                let line_bytes = r.u32()?;
                let gpu_core = if r.bool()? {
                    Some(CoreId(r.u16()?))
                } else {
                    None
                };
                waiters.push(Waiter {
                    dst,
                    prio,
                    addr,
                    line_bytes,
                    gpu_core,
                });
            }
            self.line_tokens.insert(line, tok);
            self.dram_waiters.insert(tok, (line, waiters));
        }
        let n = r.usize()?;
        self.wb_pending.clear();
        for _ in 0..n {
            self.wb_pending.push_back(LineAddr(r.u64()?));
        }
        self.token_seq = r.u64()?;
        self.stats.requests = r.u64()?;
        self.stats.llc_hits = r.u64()?;
        self.stats.llc_misses = r.u64()?;
        self.stats.blocked_cycles = r.u64()?;
        self.stats.delegations = r.u64()?;
        self.stats.injected_replies = r.u64()?;
        self.stats.writes = r.u64()?;
        self.stats.dnf_requests = r.u64()?;
        Ok(())
    }

    /// Zero the statistics (warmup exclusion).
    pub fn reset_stats(&mut self) {
        self.stats = MemNodeStats::default();
    }

    /// Replies waiting (for quiescence checks).
    pub fn pending(&self) -> usize {
        self.committed() + self.dram_waiters.len() + self.wb_pending.len()
    }

    /// The earliest future cycle at which [`Self::tick_memory`] could
    /// change observable state absent new requests.
    ///
    /// `Some(now)` (same-cycle work) whenever replies wait for
    /// injection, fills or writebacks are staged, DRAM has queued or
    /// completing work, or the node is blocked (the per-cycle
    /// `blocked_cycles` counter must keep ticking). Otherwise the
    /// horizon is the earlier of the LLC pipeline head's ready time and
    /// the DRAM controller's own horizon (in-flight bursts, refresh).
    /// `None` means the node is fully drained and refresh is disabled.
    ///
    /// The writeback guard is deliberately conservative: staging bumps
    /// `token_seq` even when the DRAM queue refuses the request, so any
    /// pending writeback counts as same-cycle work.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.inj_buf.is_empty()
            || !self.fill_ready.is_empty()
            || !self.wb_pending.is_empty()
            || self.blocked()
        {
            return Some(now);
        }
        let mut horizon = self.dram.next_event(now);
        if let Some(&(ready, _)) = self.llc_pipe.front() {
            let t = ready.max(now);
            horizon = Some(horizon.map_or(t, |h: Cycle| h.min(t)));
        }
        horizon
    }
}

fn save_reply(w: &mut SnapWriter, rep: &PendingReply) {
    w.u16(rep.dst.0);
    w.u8(snap::msg_kind_tag(rep.kind));
    w.u8(match rep.prio {
        Priority::Cpu => 0,
        Priority::Gpu => 1,
    });
    w.u64(rep.addr.0);
    w.u32(rep.line_bytes);
    match rep.delegatable_to {
        Some(c) => {
            w.bool(true);
            w.u16(c.0);
        }
        None => w.bool(false),
    }
}

fn load_reply(r: &mut SnapReader<'_>) -> Result<PendingReply, SnapError> {
    let dst = NodeId(r.u16()?);
    let kind = snap::msg_kind_from(r.u8()?)?;
    let prio = match r.u8()? {
        0 => Priority::Cpu,
        1 => Priority::Gpu,
        t => {
            return Err(SnapError::BadTag {
                what: "reply priority",
                tag: u64::from(t),
            })
        }
    };
    let addr = Addr(r.u64()?);
    let line_bytes = r.u32()?;
    let delegatable_to = if r.bool()? {
        Some(CoreId(r.u16()?))
    } else {
        None
    };
    Ok(PendingReply {
        dst,
        kind,
        prio,
        addr,
        line_bytes,
        delegatable_to,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clognet_proto::PacketId;

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    fn node() -> MemNode {
        MemNode::new(&cfg(), MemId(0), NodeId(2))
    }

    fn read_pkt(addr: u64, from: NodeId, prio: Priority, dnf: bool) -> Packet {
        let mut p = Packet::new(
            PacketId(0),
            from,
            NodeId(2),
            MsgKind::ReadReq,
            prio,
            Addr::new(addr),
            128,
            16,
            0,
        );
        p.dnf = dnf;
        p
    }

    /// GPU nodes 20..60 host cores 0..40 for these tests.
    fn core_of(n: NodeId) -> Option<CoreId> {
        (n.0 >= 20).then(|| CoreId(n.0 - 20))
    }

    fn run_to_reply(m: &mut MemNode, upto: Cycle) -> Option<PendingReply> {
        for now in 0..upto {
            m.tick_memory(now);
            if let Some(r) = m.next_reply() {
                return Some(r);
            }
        }
        None
    }

    #[test]
    fn llc_miss_goes_to_dram_then_replies() {
        let mut m = node();
        m.process_request(
            &read_pkt(0x1000, NodeId(30), Priority::Gpu, false),
            0,
            core_of,
        );
        assert_eq!(m.stats.llc_misses, 1);
        let r = run_to_reply(&mut m, 200).expect("reply");
        assert_eq!(r.dst, NodeId(30));
        assert_eq!(r.kind, MsgKind::ReadReply);
        assert_eq!(r.delegatable_to, None, "fresh fills are not delegatable");
        // Line is now resident and pointed at core 10.
        assert_eq!(
            m.llc().pointer(Addr::new(0x1000).line(128)),
            Some(CoreId(10))
        );
    }

    #[test]
    fn second_reader_gets_delegatable_reply() {
        let mut m = node();
        m.process_request(
            &read_pkt(0x1000, NodeId(30), Priority::Gpu, false),
            0,
            core_of,
        );
        let _ = run_to_reply(&mut m, 200).expect("first reply");
        // Different core reads the same line: LLC hit, pointer = core 10.
        m.process_request(
            &read_pkt(0x1000, NodeId(31), Priority::Gpu, false),
            100,
            core_of,
        );
        let r = run_to_reply(&mut m, 200).expect("second reply");
        assert_eq!(r.delegatable_to, Some(CoreId(10)));
        // And the pointer moved to the new accessor (core 11).
        assert_eq!(
            m.llc().pointer(Addr::new(0x1000).line(128)),
            Some(CoreId(11))
        );
    }

    #[test]
    fn same_reader_is_not_delegatable() {
        let mut m = node();
        m.process_request(
            &read_pkt(0x1000, NodeId(30), Priority::Gpu, false),
            0,
            core_of,
        );
        let _ = run_to_reply(&mut m, 200);
        m.process_request(
            &read_pkt(0x1000, NodeId(30), Priority::Gpu, false),
            100,
            core_of,
        );
        let r = run_to_reply(&mut m, 200).expect("reply");
        assert_eq!(r.delegatable_to, None);
    }

    #[test]
    fn dnf_requests_are_never_delegated_and_repoint() {
        let mut m = node();
        m.process_request(
            &read_pkt(0x1000, NodeId(30), Priority::Gpu, false),
            0,
            core_of,
        );
        let _ = run_to_reply(&mut m, 200);
        // A remote miss bounced back with DNF, requester core 15.
        m.process_request(
            &read_pkt(0x1000, NodeId(35), Priority::Gpu, true),
            100,
            core_of,
        );
        let r = run_to_reply(&mut m, 200).expect("reply");
        assert_eq!(r.delegatable_to, None, "DNF forbids re-delegation");
        assert_eq!(r.dst, NodeId(35));
        assert_eq!(m.stats.dnf_requests, 1);
        assert_eq!(
            m.llc().pointer(Addr::new(0x1000).line(128)),
            Some(CoreId(15))
        );
    }

    #[test]
    fn cpu_requests_do_not_move_pointers() {
        let mut m = node();
        m.process_request(
            &read_pkt(0x1000, NodeId(30), Priority::Gpu, false),
            0,
            core_of,
        );
        let _ = run_to_reply(&mut m, 200);
        m.process_request(
            &read_pkt(0x1000, NodeId(5), Priority::Cpu, false),
            100,
            core_of,
        );
        let r = run_to_reply(&mut m, 300).expect("reply");
        assert_eq!(r.prio, Priority::Cpu);
        assert_eq!(r.line_bytes, 64, "CPU replies carry 64 B lines");
        assert_eq!(r.delegatable_to, None);
        assert_eq!(
            m.llc().pointer(Addr::new(0x1000).line(128)),
            Some(CoreId(10))
        );
    }

    #[test]
    fn writes_ack_and_kill_pointers() {
        let mut m = node();
        m.process_request(
            &read_pkt(0x1000, NodeId(30), Priority::Gpu, false),
            0,
            core_of,
        );
        let _ = run_to_reply(&mut m, 200);
        let mut w = read_pkt(0x1000, NodeId(31), Priority::Gpu, false);
        w.kind = MsgKind::WriteReq;
        m.process_request(&w, 100, core_of);
        let r = run_to_reply(&mut m, 200).expect("ack");
        assert_eq!(r.kind, MsgKind::WriteAck);
        assert_eq!(m.llc().pointer(Addr::new(0x1000).line(128)), None);
    }

    #[test]
    fn misses_to_same_line_merge() {
        let mut m = node();
        m.process_request(
            &read_pkt(0x2000, NodeId(30), Priority::Gpu, false),
            0,
            core_of,
        );
        m.process_request(
            &read_pkt(0x2000, NodeId(31), Priority::Gpu, false),
            0,
            core_of,
        );
        assert_eq!(m.stats.llc_misses, 2);
        // Both waiters complete from one DRAM fetch.
        let mut replies = 0;
        for now in 0..300 {
            m.tick_memory(now);
            while m.next_reply().is_some() {
                replies += 1;
            }
        }
        assert_eq!(replies, 2);
        assert_eq!(m.dram.stats().reads, 1, "merged to one DRAM read");
    }

    #[test]
    fn blocking_when_injection_buffer_fills() {
        let mut m = node();
        // Warm a bunch of lines so hits queue up.
        for i in 0..32u64 {
            m.process_request(
                &read_pkt(0x1000 + i * 128, NodeId(30), Priority::Gpu, false),
                0,
                core_of,
            );
            for now in 0..200 {
                m.tick_memory(now);
            }
            while m.next_reply().is_some() {}
        }
        // Hammer hits without draining replies.
        let mut accepted = 0;
        for i in 0..32u64 {
            if m.accept_budget() > 0 {
                m.process_request(
                    &read_pkt(0x1000 + i * 128, NodeId(31), Priority::Gpu, false),
                    1000,
                    core_of,
                );
                accepted += 1;
            }
            m.tick_memory(1000 + i);
        }
        assert!(accepted < 32, "node never blocked");
        assert!(m.blocked());
        assert!(m.stats.blocked_cycles > 0);
    }

    #[test]
    fn cpu_reply_bypasses_gpu_queue() {
        let mut m = node();
        for i in 0..4u64 {
            m.process_request(
                &read_pkt(0x1000 + i * 128, NodeId(30), Priority::Gpu, false),
                0,
                core_of,
            );
        }
        m.process_request(
            &read_pkt(0x9000, NodeId(5), Priority::Cpu, false),
            0,
            core_of,
        );
        for now in 0..300 {
            m.tick_memory(now);
        }
        let first = m.next_reply().expect("replies queued");
        assert_eq!(first.prio, Priority::Cpu, "CPU reply must jump the queue");
    }

    #[test]
    fn take_delegatable_extracts_only_delegatable() {
        let mut m = node();
        m.process_request(
            &read_pkt(0x1000, NodeId(30), Priority::Gpu, false),
            0,
            core_of,
        );
        let _ = run_to_reply(&mut m, 200);
        // Two more readers: one delegatable hit, one non-delegatable
        // (same core repeats).
        m.process_request(
            &read_pkt(0x1000, NodeId(31), Priority::Gpu, false),
            100,
            core_of,
        );
        m.process_request(
            &read_pkt(0x1000, NodeId(31), Priority::Gpu, false),
            100,
            core_of,
        );
        for now in 100..200 {
            m.tick_memory(now);
        }
        let d = m.take_delegatable().expect("one delegatable");
        assert_eq!(d.delegatable_to, Some(CoreId(10)));
        assert!(m.take_delegatable().is_none());
        assert!(m.next_reply().is_some(), "non-delegatable reply remains");
    }

    #[test]
    fn accept_budget_tracks_dram_space() {
        let cfg = SystemConfig {
            dram: clognet_proto::DramConfig {
                queue: 3,
                ..clognet_proto::DramConfig::default()
            },
            ..SystemConfig::default()
        };
        let mut m = MemNode::new(&cfg, MemId(0), NodeId(2));
        assert_eq!(m.accept_budget(), 3, "bounded by DRAM queue slots");
        // Three misses fill the DRAM queue.
        for i in 0..3u64 {
            m.process_request(
                &read_pkt(0x10_0000 + i * 128, NodeId(30), Priority::Gpu, false),
                0,
                core_of,
            );
        }
        assert_eq!(m.accept_budget(), 0);
        assert!(m.blocked());
        // Draining DRAM restores acceptance.
        for now in 0..300 {
            m.tick_memory(now);
        }
        assert!(m.accept_budget() > 0);
    }

    #[test]
    fn writeback_of_dirty_victims_reaches_dram() {
        let mut m = node();
        // Dirty a line via a write, then evict it by filling its set:
        // LLC is 16-way, so write 17 lines mapping to the same set.
        let sets = SystemConfig::default().llc.slice.sets();
        for i in 0..17u64 {
            let mut pkt = read_pkt(i * sets * 128, NodeId(30), Priority::Gpu, false);
            pkt.kind = MsgKind::WriteReq;
            m.process_request(&pkt, 0, core_of);
            for now in 0..50 {
                m.tick_memory(now);
            }
            while m.next_reply().is_some() {}
        }
        let mut wrote = false;
        for now in 0..2_000 {
            m.tick_memory(now);
            if m.dram_stats().writes > 0 {
                wrote = true;
                break;
            }
        }
        assert!(wrote, "dirty victim never written back");
    }

    #[test]
    fn reply_sizes_follow_requester_domain() {
        let mut m = node();
        m.process_request(
            &read_pkt(0x40, NodeId(30), Priority::Gpu, false),
            0,
            core_of,
        );
        m.process_request(&read_pkt(0x80, NodeId(3), Priority::Cpu, false), 0, core_of);
        let mut sizes = std::collections::HashMap::new();
        for now in 0..300 {
            m.tick_memory(now);
            while let Some(r) = m.next_reply() {
                sizes.insert(r.prio, r.line_bytes);
            }
        }
        assert_eq!(sizes.get(&Priority::Gpu), Some(&128));
        assert_eq!(sizes.get(&Priority::Cpu), Some(&64));
    }

    #[test]
    fn pending_counts_all_outstanding_work() {
        let mut m = node();
        assert_eq!(m.pending(), 0);
        m.process_request(
            &read_pkt(0x40, NodeId(30), Priority::Gpu, false),
            0,
            core_of,
        );
        assert!(m.pending() > 0);
        for now in 0..300 {
            m.tick_memory(now);
        }
        while m.next_reply().is_some() {}
        assert_eq!(m.pending(), 0, "work left behind: {:?}", m.queue_depths());
    }

    #[test]
    fn next_event_never_overshoots_state_changes() {
        let mut m = node();
        m.process_request(
            &read_pkt(0x5000, NodeId(30), Priority::Gpu, false),
            0,
            core_of,
        );
        // Walk to the reply strictly through reported horizons; at every
        // skipped cycle tick_memory must be a no-op on the depths.
        let mut now = 0u64;
        let mut guard = 0;
        while m.next_reply().is_none() {
            match m.next_event(now) {
                Some(t) if t <= now => {
                    m.tick_memory(now);
                    now += 1;
                }
                Some(t) => {
                    let before = m.queue_depths();
                    for skip in now..t {
                        m.tick_memory(skip);
                        assert_eq!(m.queue_depths(), before, "state changed at {skip} < {t}");
                    }
                    now = t;
                }
                None => panic!("drained without producing a reply"),
            }
            guard += 1;
            assert!(guard < 10_000, "reply never surfaced");
        }
        // Fully drained: only refresh remains on the horizon.
        for t in 0..400 {
            m.tick_memory(now + t);
        }
        while m.next_reply().is_some() {}
        let h = m.next_event(now + 400);
        assert!(h.is_none_or(|t| t > now + 400), "drained node has no work");
    }

    #[test]
    fn flush_invalidates_pointers() {
        let mut m = node();
        m.process_request(
            &read_pkt(0x1000, NodeId(30), Priority::Gpu, false),
            0,
            core_of,
        );
        let _ = run_to_reply(&mut m, 200);
        assert_eq!(m.invalidate_pointers_of(CoreId(10)), 1);
        m.process_request(
            &read_pkt(0x1000, NodeId(31), Priority::Gpu, false),
            300,
            core_of,
        );
        let r = run_to_reply(&mut m, 500).expect("reply");
        assert_eq!(r.delegatable_to, None, "flushed pointer must not delegate");
    }
}
