//! System-level telemetry wiring: per-epoch sampling of the clogging
//! signals (Figs. 5b/11/12), clog-episode folding, and registry export.
//!
//! Everything here lives behind `System`'s `Option<Box<SystemTelemetry>>`
//! so a disabled system pays one branch per cycle and allocates nothing
//! on the hot path.

use crate::memnode::MemNode;
use crate::nets::Nets;
use crate::report::Report;
use clognet_cpu::CpuSubsystem;
use clognet_gpu::GpuSubsystem;
use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{Cycle, Priority, TrafficClass};
use clognet_telemetry::{Episode, EpochSampler, SeriesId, Telemetry, TelemetryConfig};

/// Cumulative counters snapshotted at each epoch boundary so the
/// sampler records per-epoch deltas, not run-to-date totals.
#[derive(Debug, Clone, Default)]
struct Snapshot {
    /// Per memory node: reply-network flits over its router's busiest
    /// observation, summed over all non-local output ports.
    mem_reply_link_flits: Vec<Vec<u64>>,
    blocked_cycles: Vec<u64>,
    delegations: u64,
    remote_hits: u64,
    delayed_hits: u64,
    dnf_bounces: u64,
    row_hits: u64,
    row_misses: u64,
    gpu_retired: u64,
    cpu_processed: u64,
}

/// Telemetry state owned by a [`crate::System`].
#[derive(Debug)]
pub struct SystemTelemetry {
    /// The underlying session (registry + sampler + episodes).
    pub session: Telemetry,
    prev: Snapshot,
    // Chip-wide series.
    s_link_util_max: SeriesId,
    s_link_util_mean: SeriesId,
    s_delegated: SeriesId,
    s_remote_hit: SeriesId,
    s_delayed_hit: SeriesId,
    s_dnf_bounce: SeriesId,
    s_row_hit_rate: SeriesId,
    s_gpu_ipc: SeriesId,
    s_cpu_ipc: SeriesId,
    s_blocked_nodes: SeriesId,
    // Per-memory-node series (indexed by dense mem id).
    s_inj_depth: Vec<SeriesId>,
    s_blocked_frac: Vec<SeriesId>,
}

impl SystemTelemetry {
    /// Register every series up front so the per-epoch roll does no
    /// string work or allocation beyond the ring pushes.
    pub fn new(cfg: TelemetryConfig, n_mem: usize) -> Self {
        let mut session = Telemetry::new(cfg);
        let s = &mut session.sampler;
        let s_link_util_max = s.series("mem_reply_link_util_max");
        let s_link_util_mean = s.series("mem_reply_link_util_mean");
        let s_delegated = s.series("delegated");
        let s_remote_hit = s.series("remote_hit");
        let s_delayed_hit = s.series("delayed_hit");
        let s_dnf_bounce = s.series("dnf_bounce");
        let s_row_hit_rate = s.series("dram_row_hit_rate");
        let s_gpu_ipc = s.series("gpu_ipc");
        let s_cpu_ipc = s.series("cpu_ipc");
        let s_blocked_nodes = s.series("blocked_nodes");
        let s_inj_depth = (0..n_mem)
            .map(|i| s.series(&format!("mem{i}_inj_depth")))
            .collect();
        let s_blocked_frac = (0..n_mem)
            .map(|i| s.series(&format!("mem{i}_blocked_frac")))
            .collect();
        SystemTelemetry {
            session,
            prev: Snapshot {
                mem_reply_link_flits: Vec::new(),
                blocked_cycles: vec![0; n_mem],
                ..Snapshot::default()
            },
            s_link_util_max,
            s_link_util_mean,
            s_delegated,
            s_remote_hit,
            s_delayed_hit,
            s_dnf_bounce,
            s_row_hit_rate,
            s_gpu_ipc,
            s_cpu_ipc,
            s_blocked_nodes,
            s_inj_depth,
            s_blocked_frac,
        }
    }

    /// Cycles per epoch.
    pub fn epoch_len(&self) -> u64 {
        self.session.config.epoch_len
    }

    /// Seal one epoch: difference every cumulative counter against the
    /// last snapshot and push the per-epoch values into the rings.
    #[allow(clippy::too_many_arguments)]
    pub fn roll_epoch(
        &mut self,
        mems: &[MemNode],
        nets: &Nets,
        gpu: &GpuSubsystem,
        cpu: &CpuSubsystem,
        delegations_sent: u64,
    ) {
        let epoch = self.epoch_len() as f64;
        let sampler = &mut self.session.sampler;

        // Reply-link flit deltas at each memory node's router: the
        // clogged GPU-side links of Fig. 5b.
        let reply_net = nets.net(TrafficClass::Reply);
        let topo = reply_net.topo();
        let stats = reply_net.stats();
        if self.prev.mem_reply_link_flits.len() != mems.len() {
            self.prev.mem_reply_link_flits = mems
                .iter()
                .map(|m| {
                    let (r, _) = topo.attach_of(m.node);
                    vec![0; topo.port_count(r)]
                })
                .collect();
        }
        let (mut util_max, mut util_sum) = (0.0f64, 0.0f64);
        for (mi, m) in mems.iter().enumerate() {
            let (r, local) = topo.attach_of(m.node);
            let mut node_max = 0.0f64;
            for p in 0..topo.port_count(r) {
                let cum = stats.link_flits[r][p];
                let delta = cum.saturating_sub(self.prev.mem_reply_link_flits[mi][p]);
                self.prev.mem_reply_link_flits[mi][p] = cum;
                if p != local {
                    node_max = node_max.max(delta as f64 / epoch);
                }
            }
            util_max = util_max.max(node_max);
            util_sum += node_max;
        }
        sampler.set(self.s_link_util_max, util_max);
        sampler.set(self.s_link_util_mean, util_sum / mems.len().max(1) as f64);

        // Per-node injection depth (instantaneous) and blocked fraction
        // (delta of blocked_cycles over the epoch).
        let mut blocked_nodes = 0u32;
        for (mi, m) in mems.iter().enumerate() {
            sampler.set(self.s_inj_depth[mi], m.inj_depth() as f64);
            let cum = m.stats.blocked_cycles;
            let frac = cum.saturating_sub(self.prev.blocked_cycles[mi]) as f64 / epoch;
            self.prev.blocked_cycles[mi] = cum;
            sampler.set(self.s_blocked_frac[mi], frac);
            if m.blocked() {
                blocked_nodes += 1;
            }
        }
        sampler.set(self.s_blocked_nodes, f64::from(blocked_nodes));

        // Delegation outcomes this epoch.
        let (rh, dh, dnf) = gpu.delegation_outcomes();
        sampler.set(
            self.s_delegated,
            delegations_sent.saturating_sub(self.prev.delegations) as f64,
        );
        sampler.set(
            self.s_remote_hit,
            rh.saturating_sub(self.prev.remote_hits) as f64,
        );
        sampler.set(
            self.s_delayed_hit,
            dh.saturating_sub(self.prev.delayed_hits) as f64,
        );
        sampler.set(
            self.s_dnf_bounce,
            dnf.saturating_sub(self.prev.dnf_bounces) as f64,
        );
        self.prev.delegations = delegations_sent;
        self.prev.remote_hits = rh;
        self.prev.delayed_hits = dh;
        self.prev.dnf_bounces = dnf;

        // DRAM row hit rate across all controllers this epoch.
        let (mut hits, mut misses) = (0u64, 0u64);
        for m in mems {
            let d = m.dram_stats();
            hits += d.row_hits;
            misses += d.row_misses;
        }
        let dh_epoch = hits.saturating_sub(self.prev.row_hits);
        let dm_epoch = misses.saturating_sub(self.prev.row_misses);
        self.prev.row_hits = hits;
        self.prev.row_misses = misses;
        let total = dh_epoch + dm_epoch;
        sampler.set(
            self.s_row_hit_rate,
            if total == 0 {
                0.0
            } else {
                dh_epoch as f64 / total as f64
            },
        );

        // Throughput: GPU warp-instructions and CPU ops per cycle.
        let retired = gpu.total_retired();
        let processed = cpu.total_processed();
        sampler.set(
            self.s_gpu_ipc,
            retired.saturating_sub(self.prev.gpu_retired) as f64 / epoch,
        );
        sampler.set(
            self.s_cpu_ipc,
            processed.saturating_sub(self.prev.cpu_processed) as f64 / epoch,
        );
        self.prev.gpu_retired = retired;
        self.prev.cpu_processed = processed;

        sampler.commit_epoch();
    }

    /// Fill the registry from a finished [`Report`] plus the network
    /// latency histograms, so exports and `--json` output read every
    /// end-of-run metric from one typed store.
    pub fn populate_registry(&mut self, report: &Report, nets: &Nets, now: Cycle) {
        self.session.episodes.finish(now);
        let reg = &mut self.session.registry;
        let counters: [(&str, u64); 5] = [
            ("delegations", report.delegations),
            ("probes_sent", report.probes_sent),
            ("request_packets", report.request_packets),
            ("flit_hops", report.flit_hops),
            ("cycles", report.cycles),
        ];
        for (name, v) in counters {
            let id = reg.counter(name);
            let have = reg.counter_value(id);
            reg.add(id, v - have.min(v));
        }
        let gauges: [(&str, f64); 12] = [
            ("gpu_ipc", report.gpu_ipc),
            ("cpu_performance", report.cpu_performance),
            ("cpu_mem_latency", report.cpu_mem_latency),
            ("cpu_net_latency", report.cpu_net_latency),
            ("gpu_rx_rate", report.gpu_rx_rate),
            ("gpu_tx_rate", report.gpu_tx_rate),
            ("mem_blocked_rate", report.mem_blocked_rate),
            ("mem_reply_link_util", report.mem_reply_link_util),
            ("oracle_locality", report.oracle_locality),
            ("l1_miss_rate", report.l1_miss_rate),
            ("frq_same_line_fraction", report.frq_same_line_fraction),
            ("remote_hit_rate", report.breakdown.remote_hit_rate()),
        ];
        for (name, v) in gauges {
            let id = reg.gauge(name);
            reg.set(id, v);
        }
        for (name, class, prio) in [
            (
                "cpu_request_net_latency",
                TrafficClass::Request,
                Priority::Cpu,
            ),
            ("cpu_reply_net_latency", TrafficClass::Reply, Priority::Cpu),
            ("gpu_reply_net_latency", TrafficClass::Reply, Priority::Gpu),
        ] {
            let id = reg.histogram(name);
            let src = nets.net(class).stats().latency_histogram(class, prio);
            let dst = reg.hist_mut(id);
            *dst = clognet_telemetry::Histogram::new();
            dst.merge(src);
        }
    }

    /// Forget all delta baselines; call when the underlying cumulative
    /// statistics are zeroed (warmup exclusion), so the next epoch's
    /// deltas restart from zero instead of underflowing.
    pub(crate) fn on_stats_reset(&mut self) {
        self.prev = Snapshot {
            blocked_cycles: vec![0; self.s_inj_depth.len()],
            ..Snapshot::default()
        };
    }

    /// The per-epoch sampler (read-only).
    pub fn sampler(&self) -> &EpochSampler {
        &self.session.sampler
    }

    /// Serialize the telemetry session: config, sampler rings, episode
    /// lists, and the delta baselines. The registry is *not* captured —
    /// it is only populated from a finished [`Report`] at end of run.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.session.config.epoch_len);
        w.usize(self.session.config.ring_cap);
        w.u64(self.session.config.episode_min_duration);
        w.u64(self.session.config.episode_merge_gap);
        let (epochs, series) = self.session.sampler.export_state();
        w.u64(epochs);
        w.usize(series.len());
        for (name, ring, last) in &series {
            w.str(name);
            w.usize(ring.len());
            for &v in ring {
                w.f64(v);
            }
            w.f64(*last);
        }
        let (open, closed, last_closed) = self.session.episodes.export_state();
        w.usize(open.len());
        for ep in &open {
            match ep {
                Some(ep) => {
                    w.bool(true);
                    save_episode(w, ep);
                }
                None => w.bool(false),
            }
        }
        w.usize(closed.len());
        for ep in &closed {
            save_episode(w, ep);
        }
        w.usize(last_closed.len());
        for idx in &last_closed {
            w.opt_u64(idx.map(|i| i as u64));
        }
        w.usize(self.prev.mem_reply_link_flits.len());
        for row in &self.prev.mem_reply_link_flits {
            w.usize(row.len());
            for &v in row {
                w.u64(v);
            }
        }
        w.usize(self.prev.blocked_cycles.len());
        for &v in &self.prev.blocked_cycles {
            w.u64(v);
        }
        for v in [
            self.prev.delegations,
            self.prev.remote_hits,
            self.prev.delayed_hits,
            self.prev.dnf_bounces,
            self.prev.row_hits,
            self.prev.row_misses,
            self.prev.gpu_retired,
            self.prev.cpu_processed,
        ] {
            w.u64(v);
        }
    }

    /// Rebuild a telemetry session captured by
    /// [`SystemTelemetry::save_state`] for a system with `n_mem` memory
    /// nodes.
    pub fn load_state(r: &mut SnapReader<'_>, n_mem: usize) -> Result<Self, SnapError> {
        let cfg = TelemetryConfig {
            epoch_len: r.u64()?,
            ring_cap: r.usize()?,
            episode_min_duration: r.u64()?,
            episode_merge_gap: r.u64()?,
        };
        let mut t = SystemTelemetry::new(cfg, n_mem);
        let epochs = r.u64()?;
        let n = r.usize()?;
        let mut series = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?;
            let len = r.usize()?;
            if len > cfg.ring_cap {
                return Err(SnapError::Corrupt("sampler ring longer than its capacity"));
            }
            let mut ring = Vec::with_capacity(len);
            for _ in 0..len {
                ring.push(r.f64()?);
            }
            let last = r.f64()?;
            series.push((name, ring, last));
        }
        t.session.sampler.import_state(epochs, series);
        let n = r.usize()?;
        let mut open = Vec::with_capacity(n);
        for _ in 0..n {
            open.push(if r.bool()? {
                Some(load_episode(r)?)
            } else {
                None
            });
        }
        let n = r.usize()?;
        let mut closed = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            closed.push(load_episode(r)?);
        }
        let n_last = r.usize()?;
        let mut last_closed = Vec::with_capacity(n_last.min(1 << 16));
        for _ in 0..n_last {
            let idx = match r.opt_u64()? {
                Some(v) => {
                    let i = usize::try_from(v)
                        .map_err(|_| SnapError::Corrupt("merge index out of range"))?;
                    if i >= closed.len() {
                        return Err(SnapError::Corrupt("merge index past the closed list"));
                    }
                    Some(i)
                }
                None => None,
            };
            last_closed.push(idx);
        }
        t.session.episodes.import_state(open, closed, last_closed);
        let n = r.usize()?;
        let mut flits = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let m = r.usize()?;
            let mut row = Vec::with_capacity(m.min(1 << 16));
            for _ in 0..m {
                row.push(r.u64()?);
            }
            flits.push(row);
        }
        t.prev.mem_reply_link_flits = flits;
        if r.usize()? != n_mem {
            return Err(SnapError::Corrupt("telemetry blocked baseline length"));
        }
        for v in &mut t.prev.blocked_cycles {
            *v = r.u64()?;
        }
        t.prev.delegations = r.u64()?;
        t.prev.remote_hits = r.u64()?;
        t.prev.delayed_hits = r.u64()?;
        t.prev.dnf_bounces = r.u64()?;
        t.prev.row_hits = r.u64()?;
        t.prev.row_misses = r.u64()?;
        t.prev.gpu_retired = r.u64()?;
        t.prev.cpu_processed = r.u64()?;
        Ok(t)
    }
}

fn save_episode(w: &mut SnapWriter, ep: &Episode) {
    w.usize(ep.node);
    w.u64(ep.start);
    w.u64(ep.end);
    w.usize(ep.peak_depth);
    w.u64(ep.flits_shed);
}

fn load_episode(r: &mut SnapReader<'_>) -> Result<Episode, SnapError> {
    Ok(Episode {
        node: r.usize()?,
        start: r.u64()?,
        end: r.u64()?,
        peak_depth: r.usize()?,
        flits_shed: r.u64()?,
    })
}
