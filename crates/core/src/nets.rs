//! Physical-network arrangement: the baseline's separate request/reply
//! networks, or a single shared network with per-class virtual networks
//! (Section VII; AVCP in Fig. 6 varies the VC split).

use clognet_noc::{ClassAssignment, NetParams, Network, ShardError, ShardPool};
use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{Cycle, NodeId, Packet, Priority, SystemConfig, TrafficClass};
use std::sync::Arc;

/// The system's physical network(s).
#[allow(clippy::large_enum_variant)] // one-per-system; boxing buys nothing
#[derive(Debug)]
pub enum Nets {
    /// Physically separate request and reply networks (baseline).
    Separate {
        /// Request network.
        request: Network,
        /// Reply network.
        reply: Network,
    },
    /// One physical network carrying both classes on disjoint VCs.
    Shared(Network),
}

impl Nets {
    /// Build from the system configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        let base = |classes| NetParams {
            topology: cfg.noc.topology,
            width: cfg.mesh_width,
            height: cfg.mesh_height,
            classes,
            vc_buf_flits: cfg.noc.vc_buf_flits as u8,
            pipeline: cfg.noc.pipeline,
            routing_request: cfg.noc.routing_request,
            routing_reply: cfg.noc.routing_reply,
            eject_buf_flits: 4 * (1 + cfg.llc.slice.line_bytes / cfg.noc.channel_bytes) as usize,
            sa_iterations: cfg.noc.sa_iterations,
        };
        match cfg.noc.virtual_nets {
            None => Nets::Separate {
                request: Network::new(base(ClassAssignment::Single(
                    TrafficClass::Request,
                    cfg.noc.vcs,
                ))),
                reply: Network::new(base(ClassAssignment::Single(
                    TrafficClass::Reply,
                    cfg.noc.vcs,
                ))),
            },
            Some(v) => Nets::Shared(Network::new(base(ClassAssignment::Shared {
                request_vcs: v.request_vcs,
                reply_vcs: v.reply_vcs,
            }))),
        }
    }

    /// The network carrying `class`.
    pub fn net(&self, class: TrafficClass) -> &Network {
        match self {
            Nets::Separate { request, reply } => match class {
                TrafficClass::Request => request,
                TrafficClass::Reply => reply,
            },
            Nets::Shared(n) => n,
        }
    }

    /// Mutable access to the network carrying `class`.
    pub fn net_mut(&mut self, class: TrafficClass) -> &mut Network {
        match self {
            Nets::Separate { request, reply } => match class {
                TrafficClass::Request => request,
                TrafficClass::Reply => reply,
            },
            Nets::Shared(n) => n,
        }
    }

    /// Inject a packet on the network its class rides.
    ///
    /// # Errors
    ///
    /// Returns the packet if the NI has no free slot.
    pub fn try_inject(&mut self, pkt: Packet) -> Result<(), Packet> {
        let class = pkt.class();
        self.net_mut(class).try_inject(pkt)
    }

    /// Is (`class`, `prio`) injection blocked at `node`? (The delegation
    /// trigger when asked about GPU replies.)
    pub fn inject_blocked(&self, node: NodeId, class: TrafficClass, prio: Priority) -> bool {
        self.net(class).inject_blocked(node, class, prio)
    }

    /// Can a (`class`, `prio`) packet start injecting at `node`?
    pub fn can_inject(&self, node: NodeId, class: TrafficClass, prio: Priority) -> bool {
        self.net(class).can_inject(node, class, prio)
    }

    /// Enable/disable the idle-router fast path on all physical networks
    /// (reference mode for equivalence testing).
    pub fn set_idle_skip(&mut self, on: bool) {
        match self {
            Nets::Separate { request, reply } => {
                request.set_idle_skip(on);
                reply.set_idle_skip(on);
            }
            Nets::Shared(n) => n.set_idle_skip(on),
        }
    }

    /// Configure spatial sharding on all physical networks. One worker
    /// pool is shared between them: the networks tick strictly one at a
    /// time, so the baseline's request/reply pair reuses a single set
    /// of threads instead of spawning two.
    ///
    /// # Errors
    ///
    /// Fails when `n` shards cannot partition the topology (more than
    /// one shard requires a mesh whose row count `n` divides evenly);
    /// the engine is left unchanged on error.
    pub fn set_shards(&mut self, n: usize) -> Result<(), ShardError> {
        let pool = (n > 1).then(|| Arc::new(ShardPool::new(n)));
        match self {
            Nets::Separate { request, reply } => {
                request.set_shards_pooled(n, pool.clone())?;
                reply.set_shards_pooled(n, pool)
            }
            Nets::Shared(net) => net.set_shards_pooled(n, pool),
        }
    }

    /// Current shard count (1 = sequential engine).
    pub fn shards(&self) -> usize {
        match self {
            Nets::Separate { request, .. } => request.shards(),
            Nets::Shared(n) => n.shards(),
        }
    }

    /// Zero all network statistics (warmup exclusion).
    pub fn reset_stats(&mut self) {
        match self {
            Nets::Separate { request, reply } => {
                request.reset_stats();
                reply.reset_stats();
            }
            Nets::Shared(n) => n.reset_stats(),
        }
    }

    /// Advance all physical networks one cycle.
    pub fn tick(&mut self) {
        match self {
            Nets::Separate { request, reply } => {
                request.tick();
                reply.tick();
            }
            Nets::Shared(n) => n.tick(),
        }
    }

    /// Earliest future cycle any physical network can change state
    /// absent new injections (see the fast-forward contract in
    /// DESIGN.md). `Some(now)` means same-cycle work remains.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let merge = |a: Option<Cycle>, b: Option<Cycle>| match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, None) => x,
            (None, y) => y,
        };
        match self {
            Nets::Separate { request, reply } => {
                merge(request.next_event(now), reply.next_event(now))
            }
            Nets::Shared(n) => n.next_event(now),
        }
    }

    /// Jump all quiescent networks' clocks forward to `cycle`.
    pub fn advance_to(&mut self, cycle: Cycle) {
        match self {
            Nets::Separate { request, reply } => {
                request.advance_to(cycle);
                reply.advance_to(cycle);
            }
            Nets::Shared(n) => n.advance_to(cycle),
        }
    }

    /// Serialize all physical networks (request first for the separate
    /// arrangement). The arrangement itself is derived from the config
    /// and only tagged for validation.
    pub fn save_state(&self, w: &mut SnapWriter) {
        match self {
            Nets::Separate { request, reply } => {
                w.u8(0);
                request.save_state(w);
                reply.save_state(w);
            }
            Nets::Shared(n) => {
                w.u8(1);
                n.save_state(w);
            }
        }
    }

    /// Overlay state captured by [`Nets::save_state`] onto networks
    /// freshly built from the same configuration.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let tag = r.u8()?;
        match (tag, self) {
            (0, Nets::Separate { request, reply }) => {
                request.load_state(r)?;
                reply.load_state(r)
            }
            (1, Nets::Shared(n)) => n.load_state(r),
            (0 | 1, _) => Err(SnapError::Corrupt("network arrangement mismatch")),
            (t, _) => Err(SnapError::BadTag {
                what: "nets arrangement",
                tag: u64::from(t),
            }),
        }
    }

    /// Packets still inside any network.
    pub fn in_flight(&self) -> usize {
        match self {
            Nets::Separate { request, reply } => request.in_flight() + reply.in_flight(),
            Nets::Shared(n) => n.in_flight(),
        }
    }

    /// Sum of flit-hops over all links of all networks (energy input).
    pub fn total_flit_hops(&self) -> u64 {
        let sum = |n: &Network| -> u64 {
            n.stats()
                .link_flits
                .iter()
                .flat_map(|r| r.iter())
                .sum::<u64>()
        };
        match self {
            Nets::Separate { request, reply } => sum(request) + sum(reply),
            Nets::Shared(n) => sum(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clognet_proto::{Addr, MsgKind, PacketId, VirtualNetConfig};

    #[test]
    fn separate_networks_route_by_class() {
        let cfg = SystemConfig::default();
        let mut nets = Nets::new(&cfg);
        let req = Packet::new(
            PacketId(1),
            NodeId(10),
            NodeId(2),
            MsgKind::ReadReq,
            Priority::Gpu,
            Addr::new(0x100),
            128,
            16,
            0,
        );
        nets.try_inject(req).unwrap();
        for _ in 0..100 {
            nets.tick();
        }
        assert_eq!(
            nets.net_mut(TrafficClass::Request)
                .take_ejected(NodeId(2), 10)
                .len(),
            1
        );
        assert_eq!(nets.in_flight(), 0);
    }

    #[test]
    fn shared_network_carries_both() {
        let mut cfg = SystemConfig::default();
        cfg.noc.virtual_nets = Some(VirtualNetConfig {
            request_vcs: 2,
            reply_vcs: 2,
        });
        let mut nets = Nets::new(&cfg);
        let mk = |id, kind| {
            Packet::new(
                PacketId(id),
                NodeId(10),
                NodeId(2),
                kind,
                Priority::Gpu,
                Addr::new(0x100),
                128,
                16,
                0,
            )
        };
        nets.try_inject(mk(1, MsgKind::ReadReq)).unwrap();
        nets.try_inject(mk(2, MsgKind::ReadReply)).unwrap();
        for _ in 0..200 {
            nets.tick();
        }
        let got = nets
            .net_mut(TrafficClass::Request)
            .take_ejected(NodeId(2), 10);
        assert_eq!(got.len(), 2, "shared net delivers both classes");
        assert!(nets.total_flit_hops() > 0);
    }
}
