//! # clognet-core
//!
//! The paper's contribution, assembled: chip layouts, memory nodes with
//! finite injection buffers, the Delegated-Replies engine (core
//! pointers, blocking-triggered delegation on the request network, FRQ
//! service with remote hit / delayed hit / remote-miss-DNF outcomes),
//! the Realistic-Probing baseline, CPU-priority reply scheduling, and
//! the cycle loop tying the GPU/CPU subsystems to the NoC, LLC, and
//! DRAM substrates.
//!
//! ## Example
//!
//! ```
//! use clognet_core::System;
//! use clognet_proto::{Scheme, SystemConfig};
//!
//! let cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
//! let mut sys = System::new(cfg, "HS", "bodytrack");
//! sys.run(2_000);
//! let report = sys.report();
//! assert!(report.gpu_ipc > 0.0);
//! ```

pub mod memnode;
pub mod multichip;
pub mod nets;
pub mod report;
pub mod snapshot;
pub mod system;
pub mod telemetry;
pub mod trace;

pub use clognet_control::{Action, Decision, DecisionLog};
pub use clognet_telemetry::TelemetryConfig;
pub use memnode::{MemNode, MemNodeStats, PendingReply};
pub use multichip::{validate_fabric, FabricSummary, MultiChipSystem};
pub use nets::Nets;
pub use report::{MissBreakdown, Report};
pub use snapshot::Snapshot;
pub use system::{validate_shards, System, TickEngine};
pub use telemetry::SystemTelemetry;
pub use trace::{Event, TraceLog, Traced};
