//! End-of-run metrics, aligned with the paper's figures.

/// Fig. 14-style breakdown of GPU L1 misses.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MissBreakdown {
    /// Misses served directly by the LLC (or DRAM through it).
    pub llc_direct: u64,
    /// Misses served by a remote L1 (delegated hit, incl. delayed hits).
    pub remote_hit: u64,
    /// Misses delegated but missing remotely (bounced back with DNF).
    pub remote_miss: u64,
}

impl MissBreakdown {
    /// Total misses.
    pub fn total(&self) -> u64 {
        self.llc_direct + self.remote_hit + self.remote_miss
    }

    /// Fraction forwarded to remote cores (remote hit + remote miss).
    pub fn forwarded_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.remote_hit + self.remote_miss) as f64 / t as f64
        }
    }

    /// Of the forwarded misses, the fraction that hit remotely (the
    /// pointer-accuracy metric; 74.4% in the paper).
    pub fn remote_hit_rate(&self) -> f64 {
        let f = self.remote_hit + self.remote_miss;
        if f == 0 {
            0.0
        } else {
            self.remote_hit as f64 / f as f64
        }
    }
}

/// A complete run summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Cycles simulated.
    pub cycles: u64,
    /// GPU benchmark name.
    pub gpu_bench: String,
    /// CPU benchmark name.
    pub cpu_bench: String,
    /// Warp instructions retired per cycle, summed over GPU cores.
    pub gpu_ipc: f64,
    /// CPU progress relative to an unloaded core, in (0, 1].
    pub cpu_performance: f64,
    /// Mean CPU read round-trip latency (issue → data), cycles.
    pub cpu_mem_latency: f64,
    /// Mean CPU *network* latency (request + reply network residency),
    /// cycles — the Fig. 12 metric.
    pub cpu_net_latency: f64,
    /// Mean received reply-network data rate per GPU core, flits/cycle —
    /// the Fig. 11 metric.
    pub gpu_rx_rate: f64,
    /// Mean GPU core injection rate into the request network,
    /// flits/cycle.
    pub gpu_tx_rate: f64,
    /// Fraction of cycles the memory nodes were blocked — Fig. 5b.
    pub mem_blocked_rate: f64,
    /// Mean utilization of the busiest reply-network output link of each
    /// memory node (the clogged GPU-side links).
    pub mem_reply_link_util: f64,
    /// Replies delegated by memory nodes.
    pub delegations: u64,
    /// Fig. 14 breakdown.
    pub breakdown: MissBreakdown,
    /// Oracle inter-core locality: fraction of L1 misses whose line was
    /// resident in some remote L1 at miss time — Fig. 2.
    pub oracle_locality: f64,
    /// GPU L1 miss rate (misses / accesses).
    pub l1_miss_rate: f64,
    /// RP probes sent.
    pub probes_sent: u64,
    /// Request-network packets injected (for RP's traffic inflation).
    pub request_packets: u64,
    /// FRQ arrivals that matched a queued line (merge opportunity,
    /// ~4.8% in the paper).
    pub frq_same_line_fraction: f64,
    /// Total flit-hops over all links (energy input).
    pub flit_hops: u64,
    /// Channel width in bytes (energy input).
    pub channel_bytes: u32,
}

impl Report {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}+{}: GPU IPC {:.2}, CPU perf {:.3}, CPU net lat {:.1}, rx {:.3} fl/cy, blocked {:.1}%, delegations {}",
            self.gpu_bench,
            self.cpu_bench,
            self.gpu_ipc,
            self.cpu_performance,
            self.cpu_net_latency,
            self.gpu_rx_rate,
            self.mem_blocked_rate * 100.0,
            self.delegations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_fractions() {
        let b = MissBreakdown {
            llc_direct: 40,
            remote_hit: 45,
            remote_miss: 15,
        };
        assert_eq!(b.total(), 100);
        assert!((b.forwarded_fraction() - 0.6).abs() < 1e-12);
        assert!((b.remote_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = MissBreakdown::default();
        assert_eq!(b.forwarded_fraction(), 0.0);
        assert_eq!(b.remote_hit_rate(), 0.0);
    }

    #[test]
    fn summary_mentions_benchmarks() {
        let r = Report {
            gpu_bench: "HS".into(),
            cpu_bench: "vips".into(),
            ..Report::default()
        };
        assert!(r.summary().contains("HS+vips"));
    }
}
