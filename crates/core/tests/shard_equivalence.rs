//! Property test for the sharded tick engine: a spatially sharded run
//! ([`TickEngine::Sharded`]) must be *invisible* — same
//! [`Report`](clognet_core::Report), same telemetry series, same final
//! clock — compared to the sequential reference loop, across schemes
//! and with fast-forward both on and off (the two engines compose:
//! shards run in lockstep inside one network tick, so the quiescence
//! horizon stays global).

use clognet_core::{System, TickEngine};
use clognet_proto::{Scheme, SystemConfig};
use clognet_telemetry::TelemetryConfig;

fn assert_sharded_matches(cfg: SystemConfig, gpu: &str, cpu: &str, shards: usize, ff: bool) {
    let mut sharded = System::new(cfg.clone(), gpu, cpu);
    let mut reference = System::new(cfg, gpu, cpu);
    sharded
        .set_tick_engine(TickEngine::Sharded(shards))
        .expect("valid shard plan");
    assert_eq!(sharded.tick_engine(), TickEngine::Sharded(shards));
    for sys in [&mut sharded, &mut reference] {
        sys.set_fast_forward(ff);
        sys.enable_telemetry(TelemetryConfig {
            epoch_len: 256,
            ring_cap: 64,
            ..TelemetryConfig::default()
        });
    }
    sharded.run(400);
    reference.run(400);
    sharded.reset_stats();
    reference.reset_stats();
    for chunk in 0..3 {
        sharded.run(600);
        reference.run(600);
        assert_eq!(sharded.now(), reference.now(), "clocks diverged (ff={ff})");
        assert_eq!(
            sharded.report(),
            reference.report(),
            "{shards} shards changed the report at checkpoint {chunk} (ff={ff})"
        );
    }
    assert_eq!(
        sharded.export_series_csv(),
        reference.export_series_csv(),
        "{shards} shards changed the telemetry series (ff={ff})"
    );
}

#[test]
fn sharded_engine_matches_reference_across_schemes() {
    for (i, scheme) in [
        Scheme::Baseline,
        Scheme::DelegatedReplies,
        Scheme::rp_default(),
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = SystemConfig::default().with_scheme(scheme);
        // Alternate shard counts and fast-forward modes across schemes
        // to cover the matrix without tripling the runtime.
        let shards = [2, 4, 8][i % 3];
        assert_sharded_matches(cfg.clone(), "HS", "bodytrack", shards, i % 2 == 0);
    }
}

#[test]
fn sharded_engine_composes_with_fast_forward_both_ways() {
    let cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    for ff in [true, false] {
        assert_sharded_matches(cfg.clone(), "NN", "blackscholes", 4, ff);
    }
}

#[test]
fn invalid_shard_count_is_rejected_and_engine_unchanged() {
    let cfg = SystemConfig::default(); // 8x8 mesh
    let mut sys = System::new(cfg, "HS", "bodytrack");
    let err = sys.set_tick_engine(TickEngine::Sharded(3)).unwrap_err();
    assert!(err.0.contains("mesh rows"), "{err}");
    assert_eq!(sys.tick_engine(), TickEngine::Sequential);
    sys.run(200); // still runs fine on the unchanged engine
}
