//! Property tests for the snapshot/fork engine: snapshot-at-K →
//! restore → run-to-N must be **byte-identical** to a straight
//! run-to-N — same report, same telemetry series, and the same
//! serialized snapshot bytes at N — across topologies, schemes,
//! engine modes (fast-forward, idle-skip, sharding), and with warmup
//! stats-reset in the middle.

use clognet_core::{Snapshot, System, TickEngine};
use clognet_proto::{Scheme, SystemConfig, Topology, VirtualNetConfig};
use clognet_telemetry::TelemetryConfig;

/// Run `straight` to K+M in one go; fork `forked` at K through a full
/// serialize/parse/restore cycle, run both to K+M, and demand
/// byte-identical state at the end.
fn assert_roundtrip(cfg: SystemConfig, gpu: &str, cpu: &str, k: u64, m: u64) {
    let mut straight = System::new(cfg.clone(), gpu, cpu);
    let mut warm = System::new(cfg, gpu, cpu);
    straight.run(k);
    warm.run(k);
    let snap_bytes = warm.snapshot().into_bytes();
    let snap = Snapshot::from_bytes(snap_bytes).expect("snapshot parses");
    assert_eq!(snap.cycle(), k);
    let mut forked = System::restore(&snap).expect("snapshot restores");
    assert_eq!(forked.now(), k, "restored clock");
    straight.run(m);
    forked.run(m);
    assert_eq!(straight.now(), forked.now(), "clocks diverged");
    assert_eq!(straight.report(), forked.report(), "reports diverged");
    assert_eq!(
        straight.snapshot().as_bytes(),
        forked.snapshot().as_bytes(),
        "snapshot bytes at K+M diverged: restored state is not byte-stable"
    );
}

#[test]
fn roundtrip_across_schemes() {
    for scheme in [
        Scheme::Baseline,
        Scheme::DelegatedReplies,
        Scheme::rp_default(),
    ] {
        let cfg = SystemConfig::default().with_scheme(scheme);
        assert_roundtrip(cfg, "HS", "bodytrack", 1_500, 1_500);
    }
}

#[test]
fn roundtrip_across_topologies() {
    for topo in [Topology::Crossbar, Topology::FlattenedButterfly] {
        let mut cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
        cfg.noc.topology = topo;
        assert_roundtrip(cfg, "NN", "blackscholes", 1_000, 1_000);
    }
}

#[test]
fn roundtrip_on_shared_network() {
    let mut cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    cfg.noc.virtual_nets = Some(VirtualNetConfig {
        request_vcs: 2,
        reply_vcs: 2,
    });
    assert_roundtrip(cfg, "HS", "bodytrack", 1_200, 1_200);
}

/// A snapshot taken under one engine mode must restore into any other
/// with identical results: run the warmup sharded + fast-forward,
/// restore sequential + no-ff, and compare against a straight
/// sequential no-ff run.
#[test]
fn roundtrip_crosses_engine_modes() {
    let cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    let mut straight = System::new(cfg.clone(), "HS", "bodytrack");
    straight.set_fast_forward(false);
    straight.set_noc_idle_skip(false);
    straight.run(2_000);

    let mut warm = System::new(cfg, "HS", "bodytrack");
    warm.set_tick_engine(TickEngine::Sharded(4)).unwrap();
    warm.run(1_000);
    let snap = warm.snapshot();
    let mut forked = System::restore(&snap).expect("restore");
    assert_eq!(
        forked.tick_engine(),
        TickEngine::Sequential,
        "engine modes are not part of a snapshot"
    );
    forked.set_fast_forward(false);
    forked.set_noc_idle_skip(false);
    forked.run(1_000);
    assert_eq!(straight.now(), forked.now());
    assert_eq!(straight.report(), forked.report());
    // And the restored system can itself go sharded afterwards.
    forked.set_tick_engine(TickEngine::Sharded(2)).unwrap();
    forked.run(200);
}

/// Snapshot → restore → reset_stats → measure must equal
/// run-warmup → reset_stats → measure (the warm-start sweep pattern).
#[test]
fn roundtrip_preserves_warmup_reset_semantics() {
    let cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    let mut cold = System::new(cfg.clone(), "HS", "bodytrack");
    cold.run(2_000);
    cold.reset_stats();
    cold.run(1_000);

    let mut warm = System::new(cfg, "HS", "bodytrack");
    warm.run(2_000);
    let snap = warm.snapshot();
    let mut forked = System::restore(&snap).unwrap();
    forked.reset_stats();
    forked.run(1_000);

    assert_eq!(cold.report(), forked.report());
}

/// Telemetry sessions (sampler rings, episodes, delta baselines)
/// survive the round trip.
#[test]
fn roundtrip_carries_telemetry() {
    let cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    let tcfg = TelemetryConfig {
        epoch_len: 256,
        ring_cap: 64,
        ..TelemetryConfig::default()
    };
    let mut straight = System::new(cfg.clone(), "HS", "bodytrack");
    straight.enable_telemetry(tcfg);
    straight.run(2_000);

    let mut warm = System::new(cfg, "HS", "bodytrack");
    warm.enable_telemetry(tcfg);
    warm.run(1_000);
    let mut forked = System::restore(&warm.snapshot()).unwrap();
    forked.run(1_000);

    assert_eq!(straight.report(), forked.report());
    assert_eq!(
        straight.export_series_csv(),
        forked.export_series_csv(),
        "telemetry series diverged across the round trip"
    );
}

/// Warm-applied parameters: forking a warmup and retargeting `injbuf` /
/// `drmax` must equal a cold run that applies the same values at the
/// same cycle; structural parameters are rejected.
#[test]
fn warm_params_apply_and_structural_ones_are_rejected() {
    let cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    let mut cold = System::new(cfg.clone(), "HS", "bodytrack");
    cold.run(1_500);
    cold.apply_warm_param("injbuf", 4).unwrap();
    cold.apply_warm_param("drmax", 1).unwrap();
    cold.reset_stats();
    cold.run(1_500);

    let mut warm = System::new(cfg, "HS", "bodytrack");
    warm.run(1_500);
    let snap = warm.snapshot();
    let mut forked = System::restore(&snap).unwrap();
    forked.apply_warm_param("injbuf", 4).unwrap();
    forked.apply_warm_param("drmax", 1).unwrap();
    forked.reset_stats();
    forked.run(1_500);

    assert_eq!(cold.report(), forked.report());
    assert_eq!(forked.config().noc.mem_inj_buf_pkts, 4);
    assert_eq!(forked.config().dr.max_per_cycle, 1);

    let err = forked.apply_warm_param("width", 32).unwrap_err();
    assert!(err.contains("structural"), "{err}");
    assert!(forked.apply_warm_param("injbuf", 0).is_err());
}

/// Scheme warm-apply: forking one Baseline warmup into a
/// DelegatedReplies measurement must equal a cold run that switches
/// scheme at the same cycle.
#[test]
fn scheme_switches_warm_apply() {
    let cfg = SystemConfig::default().with_scheme(Scheme::Baseline);
    let mut cold = System::new(cfg.clone(), "HS", "bodytrack");
    cold.run(1_500);
    cold.set_scheme(Scheme::DelegatedReplies);
    cold.reset_stats();
    cold.run(1_500);

    let mut warm = System::new(cfg, "HS", "bodytrack");
    warm.run(1_500);
    let mut forked = System::restore(&warm.snapshot()).unwrap();
    forked.set_scheme(Scheme::DelegatedReplies);
    forked.reset_stats();
    forked.run(1_500);

    assert_eq!(cold.report(), forked.report());
    assert!(forked.report().delegations > 0 || cold.report().delegations == 0);
}
