//! Property tests for the multi-chip package engine
//! ([`MultiChipSystem`]): the 1-chip package must be *invisible* (byte-
//! identical to a plain [`System`] under every tick engine), multi-chip
//! packages must be engine-invariant the same way single chips are, and
//! package snapshots must round-trip — with typed rejection when a
//! snapshot and a restore target disagree about the chip count.

use clognet_core::{MultiChipSystem, System, TickEngine};
use clognet_proto::{FabricConfig, Scheme, SnapError, SystemConfig};
use clognet_telemetry::TelemetryConfig;

fn two_chip_cfg(scheme: Scheme) -> SystemConfig {
    let mut cfg = SystemConfig::default().with_scheme(scheme);
    cfg.fabric = Some(FabricConfig::default()); // 2 chips, pair fabric
    cfg
}

#[test]
fn one_chip_package_is_byte_identical_to_a_plain_system() {
    // The degenerate package must not merely be "close": reports,
    // clocks, telemetry series, and snapshot bytes all match the plain
    // single-chip engine exactly, under every engine mode.
    for (ff, shards) in [(true, 1), (false, 1), (true, 2), (false, 4)] {
        let cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
        let mut package = MultiChipSystem::new(cfg.clone(), "HS", "bodytrack");
        let mut plain = System::new(cfg, "HS", "bodytrack");
        package.set_fast_forward(ff);
        plain.set_fast_forward(ff);
        if shards > 1 {
            package
                .set_tick_engine(TickEngine::Sharded(shards))
                .expect("valid shard plan");
            plain
                .set_tick_engine(TickEngine::Sharded(shards))
                .expect("valid shard plan");
        }
        package.enable_telemetry(TelemetryConfig {
            epoch_len: 256,
            ring_cap: 64,
            ..TelemetryConfig::default()
        });
        plain.enable_telemetry(TelemetryConfig {
            epoch_len: 256,
            ring_cap: 64,
            ..TelemetryConfig::default()
        });
        package.run(700);
        plain.run(700);
        package.reset_stats();
        plain.reset_stats();
        package.run(1_300);
        plain.run(1_300);
        assert_eq!(package.now(), plain.now(), "clocks (ff={ff})");
        assert_eq!(package.report(), plain.report(), "report (ff={ff})");
        assert_eq!(
            package.export_series_csv(),
            plain.export_series_csv(),
            "telemetry series (ff={ff}, shards={shards})"
        );
        assert_eq!(
            package.snapshot().as_bytes(),
            plain.snapshot().as_bytes(),
            "snapshot bytes (ff={ff}, shards={shards})"
        );
        assert!(package.fabric_summary().is_none(), "1 chip has no fabric");
    }
}

fn assert_two_chip_engine_invariance(scheme: Scheme, shards: usize) {
    let cfg = two_chip_cfg(scheme);
    let mut reference = MultiChipSystem::new(cfg.clone(), "HS", "bodytrack");
    let mut no_ff = MultiChipSystem::new(cfg.clone(), "HS", "bodytrack");
    let mut sharded = MultiChipSystem::new(cfg, "HS", "bodytrack");
    no_ff.set_fast_forward(false);
    sharded
        .set_tick_engine(TickEngine::Sharded(shards))
        .expect("valid shard plan");
    for sys in [&mut reference, &mut no_ff, &mut sharded] {
        sys.enable_telemetry(TelemetryConfig {
            epoch_len: 256,
            ring_cap: 64,
            ..TelemetryConfig::default()
        });
        sys.run(500);
        sys.reset_stats();
        sys.run(1_500);
    }
    assert_eq!(reference.now(), no_ff.now());
    assert_eq!(reference.now(), sharded.now());
    assert_eq!(
        reference.report(),
        no_ff.report(),
        "fast-forward changed a 2-chip report under {scheme:?}"
    );
    assert_eq!(
        reference.report(),
        sharded.report(),
        "{shards} shards changed a 2-chip report under {scheme:?}"
    );
    assert_eq!(reference.export_series_csv(), no_ff.export_series_csv());
    assert_eq!(reference.export_series_csv(), sharded.export_series_csv());
    // The fabric is not decorative: the package actually moved
    // messages between chips in the measured span.
    let summary = reference.fabric_summary().expect("2 chips have a fabric");
    assert!(
        summary.delivered_req > 0 && summary.delivered_rep > 0,
        "no cross-chip traffic: {summary:?}"
    );
}

#[test]
fn two_chip_reports_are_engine_invariant_across_schemes() {
    assert_two_chip_engine_invariance(Scheme::Baseline, 2);
    assert_two_chip_engine_invariance(Scheme::DelegatedReplies, 4);
    assert_two_chip_engine_invariance(Scheme::rp_default(), 2);
}

#[test]
fn two_chip_snapshot_round_trips_byte_identically() {
    let cfg = two_chip_cfg(Scheme::DelegatedReplies);
    let mut source = MultiChipSystem::new(cfg, "MM", "canneal");
    source.run(900);
    let snap = source.snapshot();
    // A freshly restored package continues exactly where the source
    // does: same reports and same re-snapshot bytes, arbitrarily far.
    let mut restored = MultiChipSystem::restore(&snap).expect("2-chip snapshot restores");
    assert_eq!(restored.now(), source.now());
    for chunk in 0..2 {
        source.run(700);
        restored.run(700);
        assert_eq!(
            source.report(),
            restored.report(),
            "fork diverged at checkpoint {chunk}"
        );
    }
    assert_eq!(
        source.snapshot().as_bytes(),
        restored.snapshot().as_bytes(),
        "re-snapshot bytes diverged"
    );
    // The round trip also survives the byte-level codec.
    let bytes = snap.as_bytes().to_vec();
    let reparsed = clognet_core::Snapshot::from_bytes(bytes).expect("bytes parse");
    MultiChipSystem::restore(&reparsed).expect("reparsed snapshot restores");
}

#[test]
fn chip_count_mismatches_are_typed_errors_both_directions() {
    // A 2-chip snapshot refuses to restore into a plain System...
    let mut package = MultiChipSystem::new(two_chip_cfg(Scheme::Baseline), "HS", "bodytrack");
    package.run(300);
    let snap = package.snapshot();
    match System::restore(&snap) {
        Err(SnapError::ChipMismatch { snapshot, expected }) => {
            assert_eq!((snapshot, expected), (2, 1));
        }
        other => panic!("expected ChipMismatch, got {other:?}"),
    }
    // ...and a single-chip *body* under a 2-chip config refuses to
    // restore into a package (a plain System built from a fabric
    // config simulates one chip and snapshots as one).
    let mut lone = System::new(two_chip_cfg(Scheme::Baseline), "HS", "bodytrack");
    lone.run(300);
    let snap = lone.snapshot();
    match MultiChipSystem::restore(&snap) {
        Err(SnapError::ChipMismatch { snapshot, expected }) => {
            assert_eq!((snapshot, expected), (1, 2));
        }
        other => panic!("expected ChipMismatch, got {other:?}"),
    }
}

#[test]
fn degenerate_fabric_configs_are_rejected_up_front() {
    let reject = |mutate: fn(&mut FabricConfig)| {
        let mut cfg = SystemConfig::default();
        let mut f = FabricConfig::default();
        mutate(&mut f);
        cfg.fabric = Some(f);
        clognet_core::validate_fabric(&cfg).unwrap_err()
    };
    assert!(reject(|f| f.chips = 0).contains("chip"));
    assert!(reject(|f| f.link_flits = 0).contains("link width"));
    assert!(reject(|f| f.reply_link_flits = 0).contains("reply link width"));
    assert!(reject(|f| f.queue_pkts = 0).contains("queue"));
    assert!(reject(|f| f.gateways = 0).contains("gateway"));
    assert!(reject(|f| f.gateways = 1).contains("at least 2"));
    assert!(reject(|f| f.gateways = 999).contains("memory nodes"));
    assert!(reject(|f| f.chips = 3).contains("pair"));
    // A shared-VC net cannot host the gateway adapter: the fabric path
    // separates cross-chip replies from local requests by physical
    // network. (Composition found by `clognet fuzz`.)
    let mut cfg = SystemConfig {
        fabric: Some(FabricConfig::default()),
        ..SystemConfig::default()
    };
    cfg.noc.virtual_nets = Some(clognet_proto::VirtualNetConfig {
        request_vcs: 2,
        reply_vcs: 2,
    });
    assert!(clognet_core::validate_fabric(&cfg)
        .unwrap_err()
        .contains("vnets"));
    // No fabric at all is always fine.
    clognet_core::validate_fabric(&SystemConfig::default()).unwrap();
}
