//! System-level check that the NoC's idle-router fast path does not
//! change simulation results: a full run with the skip disabled
//! (reference mode via [`System::set_noc_idle_skip`]) produces a
//! [`Report`](clognet_core::Report) equal field-for-field to the
//! default fast-path run.

use clognet_core::System;
use clognet_proto::{Scheme, SystemConfig};

fn run(cfg: SystemConfig, idle_skip: bool) -> clognet_core::Report {
    let mut sys = System::new(cfg, "HS", "bodytrack");
    sys.set_noc_idle_skip(idle_skip);
    sys.run(1_000);
    sys.reset_stats();
    sys.run(3_000);
    sys.report()
}

#[test]
fn idle_skip_report_matches_reference() {
    for scheme in [Scheme::Baseline, Scheme::DelegatedReplies] {
        let cfg = SystemConfig::default().with_scheme(scheme);
        let fast = run(cfg.clone(), true);
        let reference = run(cfg, false);
        assert!(fast.gpu_ipc > 0.0, "simulation never ran");
        assert_eq!(
            fast, reference,
            "idle-skip fast path changed the {scheme:?} report"
        );
    }
}
