//! Property test for the event-horizon fast-forward engine: across
//! randomized configurations, workloads, and schemes, a fast-forwarded
//! run must be *invisible* — same [`Report`](clognet_core::Report),
//! same telemetry series, same final clock — compared to the per-cycle
//! reference loop ([`System::set_fast_forward`] off).
//!
//! This is also the `next_event` no-overshoot check in disguise: if any
//! component ever reported a horizon beyond a cycle where its state
//! would have changed, the skipped work would show up as a counter
//! mismatch in one of the checkpoint reports below.

use clognet_core::System;
use clognet_proto::{L1Org, Scheme, SystemConfig};
use clognet_rng::{Rng, SeedableRng, SmallRng};
use clognet_telemetry::TelemetryConfig;

/// Dead-cycle-dominated chip: a tiny mesh with a single one-warp GPU
/// core and an L1-resident CPU workload leaves the NoC empty most
/// cycles — exactly when fast-forward engages.
fn low_intensity(cfg: &mut SystemConfig) {
    cfg.mesh_width = 2;
    cfg.mesh_height = 2;
    cfg.n_gpu = 1;
    cfg.n_cpu = 1;
    cfg.n_mem = 2;
    cfg.gpu.warps_per_core = 1;
    cfg.gpu.issue_width = 1;
}

fn random_config(rng: &mut SmallRng) -> (SystemConfig, &'static str, &'static str) {
    let mut cfg = SystemConfig::default().with_scheme(match rng.gen_range(0..3u32) {
        0 => Scheme::Baseline,
        1 => Scheme::DelegatedReplies,
        _ => Scheme::rp_default(),
    });
    cfg.l1_org = if rng.gen_bool(0.5) {
        L1Org::Private
    } else {
        L1Org::DynEB
    };
    cfg.seed = rng.next_u64();
    // Bias toward low intensity so fast-forward actually engages; keep
    // full-intensity draws in the mix to cover the never-quiescent
    // regime (fast-forward must simply stay out of the way there).
    if rng.gen_bool(0.75) {
        low_intensity(&mut cfg);
    }
    let gpu = ["HS", "MM", "NN"][rng.gen_range(0..3usize)];
    let cpu = ["blackscholes", "swaptions", "canneal"][rng.gen_range(0..3usize)];
    (cfg, gpu, cpu)
}

/// Run both modes in lockstep chunks, comparing the report at every
/// checkpoint (fast-forward must also compose with repeated `run`
/// calls and with `reset_stats` between warmup and measurement).
fn assert_modes_equivalent(cfg: SystemConfig, gpu: &str, cpu: &str, telemetry: bool) -> u64 {
    // Small chips tick fast and need a long warmup to reach their
    // quiescence-prone steady state (cold L1 misses keep the NoC busy);
    // the Table-I chip gets a short window — it never quiesces anyway.
    let (warm, chunk_len) = if cfg.nodes() <= 16 {
        (20_000, 2_000)
    } else {
        (500, 400)
    };
    let mut fast = System::new(cfg.clone(), gpu, cpu);
    let mut reference = System::new(cfg, gpu, cpu);
    reference.set_fast_forward(false);
    if telemetry {
        let t = TelemetryConfig {
            epoch_len: 256,
            ring_cap: 64,
            ..TelemetryConfig::default()
        };
        fast.enable_telemetry(t);
        reference.enable_telemetry(t);
    }
    fast.run(warm);
    reference.run(warm);
    fast.reset_stats();
    reference.reset_stats();
    for chunk in 0..4 {
        fast.run(chunk_len);
        reference.run(chunk_len);
        assert_eq!(fast.now(), reference.now(), "clocks diverged");
        assert_eq!(
            fast.report(),
            reference.report(),
            "fast-forward changed the report at checkpoint {chunk}"
        );
    }
    if telemetry {
        assert_eq!(
            fast.export_series_csv(),
            reference.export_series_csv(),
            "fast-forward changed the telemetry series"
        );
    }
    assert_eq!(reference.skipped_cycles(), 0, "reference mode skipped");
    fast.skipped_cycles()
}

#[test]
fn randomized_configs_match_reference() {
    let mut rng = SmallRng::seed_from_u64(0xFF_FA57);
    let mut total_skipped = 0;
    for trial in 0..4 {
        let (cfg, gpu, cpu) = random_config(&mut rng);
        let label = format!(
            "trial {trial}: {:?}/{:?} {gpu}+{cpu} warps={}",
            cfg.scheme, cfg.l1_org, cfg.gpu.warps_per_core
        );
        let skipped = assert_modes_equivalent(cfg, gpu, cpu, trial % 2 == 0);
        println!("{label}: skipped {skipped}");
        total_skipped += skipped;
    }
    assert!(
        total_skipped > 0,
        "fast-forward never engaged across the randomized trials"
    );
}

#[test]
fn low_intensity_run_skips_most_cycles() {
    let mut cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    low_intensity(&mut cfg);
    let skipped = assert_modes_equivalent(cfg, "NN", "blackscholes", true);
    // 4 * 2000 measured cycles after warmup; dead cycles must dominate
    // (>= 40% skipped) for the bench speedup claim to hold.
    assert!(
        skipped > 3_200,
        "only {skipped} cycles skipped on a dead-cycle-dominated run"
    );
}
