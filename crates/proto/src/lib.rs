//! # clognet-proto
//!
//! Shared vocabulary for the `clognet` simulator: node/core identifiers,
//! physical addresses, network packets and message kinds, the chip layouts
//! of the paper's Figure 1, the randomized memory-controller address
//! mapping, and the configuration structures mirroring Table I of
//! *Delegated Replies: Alleviating Network Clogging in Heterogeneous
//! Architectures* (HPCA 2022).
//!
//! Every other crate in the workspace depends on this one; it has no
//! dependencies of its own.
//!
//! ## Example
//!
//! ```
//! use clognet_proto::{SystemConfig, NodeKind};
//!
//! let cfg = SystemConfig::default(); // Table I configuration
//! let layout = cfg.layout();
//! assert_eq!(layout.gpu_nodes().count(), 40);
//! assert_eq!(layout.cpu_nodes().count(), 16);
//! assert_eq!(layout.mem_nodes().count(), 8);
//! assert!(matches!(layout.kind_of(layout.mem_nodes().next().unwrap()),
//!                  NodeKind::Mem(_)));
//! ```

pub mod addr_map;
pub mod config;
pub mod fingerprint;
pub mod fxhash;
pub mod ids;
pub mod layout;
pub mod packet;
pub mod ring;
pub mod snap;

pub use addr_map::AddressMap;
pub use config::{
    CacheGeometry, ControlConfig, ControlPolicyKind, CpuConfig, CtaSched, DrKnobs, DramConfig,
    FabricConfig, FabricInterleave, FabricTopology, GpuConfig, L1Org, LayoutKind, LlcConfig,
    NocConfig, RoutingPolicy, Scheme, SystemConfig, Topology, VirtualNetConfig,
};
pub use fingerprint::{
    canonical_config, canonical_job, fingerprint_hex, job_fingerprint, snapshot_key,
    FINGERPRINT_VERSION,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{Addr, CoreId, Cycle, LineAddr, MemId, NodeId};
pub use layout::{Layout, NodeKind};
pub use packet::{MsgKind, Packet, PacketId, Priority, TrafficClass};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use snap::{SnapError, SnapReader, SnapWriter, SNAP_MAGIC, SNAP_VERSION};
