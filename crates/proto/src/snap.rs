//! Versioned binary snapshot encoding.
//!
//! The snapshot/restore engine serializes the complete mutable state of a
//! running simulation so a warmed-up `System` can be forked into many
//! parameter variants, resumed in a later process, or cached by the
//! simulation service. The encoding is deliberately simple and fully
//! deterministic:
//!
//! * every integer is written as a fixed-width little-endian value
//!   (`u8`/`u32`/`u64`); `usize` is widened to `u64`;
//! * `f64` round-trips through [`f64::to_bits`], so restored floats are
//!   bit-identical (the HARE routing scores are EWMAs);
//! * collections are written as a `u64` length followed by the elements
//!   in a canonical order (hash maps are always sorted by key before
//!   encoding);
//! * the stream starts with an 8-byte magic and a `u32` format version,
//!   so truncated or foreign bytes are rejected before any state is
//!   touched.
//!
//! Byte-stability is a hard requirement: the warm-start sweep machinery
//! certifies itself by `cmp`-ing reports from forked and cold runs, and
//! the serve-side snapshot cache keys entries by content fingerprint.
//! Anything order-dependent (hash-map iteration) must therefore never
//! leak into the encoding. See DESIGN §12 for the full field-order
//! specification.
//!
//! ## Example
//!
//! ```
//! use clognet_proto::snap::{SnapReader, SnapWriter};
//!
//! let mut w = SnapWriter::with_header();
//! w.u64(7);
//! w.str("hello");
//! w.f64(0.25);
//! let bytes = w.into_bytes();
//!
//! let mut r = SnapReader::new(&bytes).unwrap();
//! assert_eq!(r.u64().unwrap(), 7);
//! assert_eq!(r.str().unwrap(), "hello");
//! assert_eq!(r.f64().unwrap(), 0.25);
//! r.finish().unwrap();
//! ```

use crate::config::{
    CacheGeometry, ControlConfig, ControlPolicyKind, CpuConfig, CtaSched, DrKnobs, DramConfig,
    FabricConfig, FabricInterleave, FabricTopology, GpuConfig, L1Org, LayoutKind, LlcConfig,
    NocConfig, RoutingPolicy, Scheme, SystemConfig, Topology, VirtualNetConfig,
};
use crate::ids::{Addr, NodeId};
use crate::packet::{MsgKind, Packet, PacketId, Priority};
use std::fmt;

/// Magic bytes opening every snapshot stream.
pub const SNAP_MAGIC: [u8; 8] = *b"CLOGSNAP";

/// Snapshot format version. Bump whenever the field order or the set of
/// serialized fields changes; old snapshots are rejected rather than
/// misinterpreted.
///
/// * v1 — initial format.
/// * v2 — [`SystemConfig`] gained the optional inter-chip fabric tail,
///   and system bodies open with a chip-arrangement tag (single-chip
///   vs. multi-chip).
/// * v3 — [`SystemConfig`] gained the optional adaptive-control tail;
///   system bodies carry the controller state + decision log, and the
///   telemetry episode detector carries its configurable thresholds
///   plus merge bookkeeping.
pub const SNAP_VERSION: u32 = 3;

/// Why a snapshot byte stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before the expected field.
    Truncated,
    /// The stream does not start with [`SNAP_MAGIC`] — not a snapshot.
    BadMagic,
    /// The stream is a snapshot of an incompatible format version.
    BadVersion(u32),
    /// An enum tag outside the known range; `what` names the field.
    BadTag {
        /// The field being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// Decoding finished with unread bytes left over.
    TrailingBytes(usize),
    /// A decoded value violates a structural invariant (e.g. a slot
    /// index beyond the packet table).
    Corrupt(&'static str),
    /// The snapshot's chip arrangement does not match the restoring
    /// system: a single-chip snapshot fed to a multi-chip config, or
    /// vice versa, or a different chip count.
    ChipMismatch {
        /// Chips recorded in the snapshot (1 = single-chip body).
        snapshot: usize,
        /// Chips the restoring system expects.
        expected: usize,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "not a clognet snapshot (bad magic)"),
            SnapError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAP_VERSION})"
                )
            }
            SnapError::BadTag { what, tag } => write!(f, "invalid {what} tag {tag}"),
            SnapError::TrailingBytes(n) => write!(f, "{n} trailing bytes after snapshot"),
            SnapError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapError::ChipMismatch { snapshot, expected } => write!(
                f,
                "snapshot chip arrangement mismatch: snapshot has {snapshot} chip(s), \
                 system expects {expected}"
            ),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only encoder producing a snapshot byte stream (after the
/// caller-written header; see [`SnapWriter::header`]).
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Empty writer (no header yet).
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Writer opened with the magic + version header.
    pub fn with_header() -> Self {
        let mut w = SnapWriter::new();
        w.header();
        w
    }

    /// Write the magic + version header.
    pub fn header(&mut self) {
        self.buf.extend_from_slice(&SNAP_MAGIC);
        self.u32(SNAP_VERSION);
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i32` (two's complement, little-endian).
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` widened to `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write an `f64` via its IEEE-754 bit pattern (bit-exact).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a length-prefixed byte slice.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Write an `Option<u64>` as presence byte + value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }
}

/// Cursor decoding a snapshot byte stream produced by [`SnapWriter`].
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Open a reader and validate the magic + version header.
    pub fn new(buf: &'a [u8]) -> Result<Self, SnapError> {
        let mut r = SnapReader::raw(buf);
        r.check_header()?;
        Ok(r)
    }

    /// Open a reader with no header (for embedded sub-streams).
    pub fn raw(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    fn check_header(&mut self) -> Result<(), SnapError> {
        let magic = self.take(8)?;
        if magic != SNAP_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = self.u32()?;
        if version != SNAP_VERSION {
            return Err(SnapError::BadVersion(version));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `i32`.
    pub fn i32(&mut self) -> Result<i32, SnapError> {
        Ok(i32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a `usize` (written as `u64`).
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt("usize overflow"))
    }

    /// Read a `bool`; any byte other than 0/1 is an error.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapError::BadTag {
                what: "bool",
                tag: u64::from(t),
            }),
        }
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let n = self.usize()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::Corrupt("invalid utf-8"))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.usize()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Read an `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the whole stream was consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

fn tag_err(what: &'static str, tag: u8) -> SnapError {
    SnapError::BadTag {
        what,
        tag: u64::from(tag),
    }
}

/// Encode a [`Packet`] (all ten fields, including the stored flit count —
/// flit counts are captured, not re-derived, so snapshots survive config
/// overlays).
pub fn save_packet(w: &mut SnapWriter, p: &Packet) {
    w.u64(p.id.0);
    w.u16(p.src.0);
    w.u16(p.dst.0);
    w.u8(msg_kind_tag(p.kind));
    w.u8(match p.prio {
        Priority::Cpu => 0,
        Priority::Gpu => 1,
    });
    w.u64(p.addr.0);
    w.u8(p.flits);
    w.u64(p.created);
    w.u16(p.requester.0);
    w.bool(p.dnf);
}

/// Decode a [`Packet`] written by [`save_packet`].
pub fn load_packet(r: &mut SnapReader<'_>) -> Result<Packet, SnapError> {
    Ok(Packet {
        id: PacketId(r.u64()?),
        src: NodeId(r.u16()?),
        dst: NodeId(r.u16()?),
        kind: msg_kind_from(r.u8()?)?,
        prio: match r.u8()? {
            0 => Priority::Cpu,
            1 => Priority::Gpu,
            t => return Err(tag_err("priority", t)),
        },
        addr: Addr(r.u64()?),
        flits: r.u8()?,
        created: r.u64()?,
        requester: NodeId(r.u16()?),
        dnf: r.bool()?,
    })
}

/// The stable wire tag of a [`MsgKind`] (shared by packet and
/// reply-queue codecs).
pub fn msg_kind_tag(k: MsgKind) -> u8 {
    match k {
        MsgKind::ReadReq => 0,
        MsgKind::WriteReq => 1,
        MsgKind::ReadReply => 2,
        MsgKind::WriteAck => 3,
        MsgKind::DelegatedReply => 4,
        MsgKind::ProbeReq => 5,
        MsgKind::ProbeMiss => 6,
        MsgKind::ProbeHit => 7,
        MsgKind::FetchReq => 8,
    }
}

/// Decode a [`MsgKind`] wire tag written by [`msg_kind_tag`].
pub fn msg_kind_from(t: u8) -> Result<MsgKind, SnapError> {
    Ok(match t {
        0 => MsgKind::ReadReq,
        1 => MsgKind::WriteReq,
        2 => MsgKind::ReadReply,
        3 => MsgKind::WriteAck,
        4 => MsgKind::DelegatedReply,
        5 => MsgKind::ProbeReq,
        6 => MsgKind::ProbeMiss,
        7 => MsgKind::ProbeHit,
        8 => MsgKind::FetchReq,
        t => return Err(tag_err("msg_kind", t)),
    })
}

fn save_geometry(w: &mut SnapWriter, g: &CacheGeometry) {
    w.u64(g.capacity_bytes);
    w.u32(g.ways);
    w.u32(g.line_bytes);
}

fn load_geometry(r: &mut SnapReader<'_>) -> Result<CacheGeometry, SnapError> {
    Ok(CacheGeometry {
        capacity_bytes: r.u64()?,
        ways: r.u32()?,
        line_bytes: r.u32()?,
    })
}

/// Encode the full [`SystemConfig`] (every field, declaration order).
/// Execution-mode knobs (`--threads`, `--shards`, `--no-ff`) are not part
/// of `SystemConfig` and therefore never enter a snapshot.
pub fn save_config(w: &mut SnapWriter, c: &SystemConfig) {
    w.u8(match c.layout {
        LayoutKind::Baseline => 0,
        LayoutKind::EdgeB => 1,
        LayoutKind::ClusteredC => 2,
        LayoutKind::DistributedD => 3,
    });
    w.usize(c.mesh_width);
    w.usize(c.mesh_height);
    w.usize(c.n_gpu);
    w.usize(c.n_cpu);
    w.usize(c.n_mem);
    // gpu
    w.usize(c.gpu.warps_per_core);
    w.usize(c.gpu.issue_width);
    w.usize(c.gpu.threads_per_warp);
    save_geometry(w, &c.gpu.l1);
    w.usize(c.gpu.mshrs);
    w.usize(c.gpu.frq_entries);
    w.u32(c.gpu.l1_hit_latency);
    w.usize(c.gpu.l1_ports);
    w.usize(c.gpu.cluster_cores);
    w.usize(c.gpu.cluster_slices);
    w.u64(c.gpu.dyneb_epoch);
    w.opt_u64(c.gpu.flush_interval);
    // cpu
    save_geometry(w, &c.cpu.l1);
    w.usize(c.cpu.window);
    w.u32(c.cpu.l1_hit_latency);
    // llc
    save_geometry(w, &c.llc.slice);
    w.u32(c.llc.latency);
    w.usize(c.llc.ports);
    // dram
    w.usize(c.dram.banks);
    w.u32(c.dram.t_cl);
    w.u32(c.dram.t_rp);
    w.u32(c.dram.t_rc);
    w.u32(c.dram.t_ras);
    w.u32(c.dram.t_rcd);
    w.u32(c.dram.t_rrd);
    w.u32(c.dram.t_ccd);
    w.u32(c.dram.t_wr);
    w.u32(c.dram.t_refi);
    w.u32(c.dram.t_rfc);
    w.u32(c.dram.burst);
    w.usize(c.dram.queue);
    // noc
    w.u8(match c.noc.topology {
        Topology::Mesh => 0,
        Topology::Crossbar => 1,
        Topology::FlattenedButterfly => 2,
        Topology::Dragonfly => 3,
    });
    w.u8(routing_tag(c.noc.routing_request));
    w.u8(routing_tag(c.noc.routing_reply));
    w.u32(c.noc.channel_bytes);
    w.usize(c.noc.vcs);
    w.usize(c.noc.vc_buf_flits);
    w.u32(c.noc.pipeline);
    match c.noc.virtual_nets {
        Some(v) => {
            w.bool(true);
            w.usize(v.request_vcs);
            w.usize(v.reply_vcs);
        }
        None => w.bool(false),
    }
    w.usize(c.noc.mem_inj_buf_pkts);
    w.usize(c.noc.core_inj_buf_pkts);
    w.usize(c.noc.sa_iterations);
    // scheme
    match c.scheme {
        Scheme::Baseline => w.u8(0),
        Scheme::DelegatedReplies => w.u8(1),
        Scheme::RealisticProbing { fanout } => {
            w.u8(2);
            w.usize(fanout);
        }
    }
    // dr knobs
    w.bool(c.dr.delegate_always);
    w.bool(c.dr.delayed_hits);
    w.usize(c.dr.max_per_cycle);
    w.u8(match c.l1_org {
        L1Org::Private => 0,
        L1Org::DcL1 => 1,
        L1Org::DynEB => 2,
    });
    w.u8(match c.cta_sched {
        CtaSched::RoundRobin => 0,
        CtaSched::Distributed => 1,
    });
    w.u64(c.seed);
    // fabric (v2 tail)
    match &c.fabric {
        Some(fab) => {
            w.bool(true);
            w.usize(fab.chips);
            w.u8(match fab.topology {
                FabricTopology::Pair => 0,
                FabricTopology::Ring => 1,
                FabricTopology::All => 2,
            });
            w.u32(fab.link_flits);
            w.u32(fab.hop_latency);
            w.usize(fab.queue_pkts);
            w.usize(fab.gateways);
            w.u8(match fab.interleave {
                FabricInterleave::Hash => 0,
                FabricInterleave::Modulo => 1,
            });
            w.u32(fab.reply_link_flits);
            w.u32(fab.reply_hop_latency);
        }
        None => w.bool(false),
    }
    // control (v3 tail)
    match &c.control {
        Some(ctl) => {
            w.bool(true);
            w.u8(match ctl.policy {
                ControlPolicyKind::NoOp => 0,
                ControlPolicyKind::Hysteresis => 1,
            });
            w.u64(ctl.interval);
            w.u32(ctl.enter_blocked_pm);
            w.u32(ctl.exit_blocked_pm);
            w.u64(ctl.enter_episode);
            w.u64(ctl.exit_episode);
            w.u64(ctl.dwell);
        }
        None => w.bool(false),
    }
}

fn routing_tag(p: RoutingPolicy) -> u8 {
    match p {
        RoutingPolicy::DorXY => 0,
        RoutingPolicy::DorYX => 1,
        RoutingPolicy::DyXY => 2,
        RoutingPolicy::Footprint => 3,
        RoutingPolicy::Hare => 4,
    }
}

fn routing_from(t: u8) -> Result<RoutingPolicy, SnapError> {
    Ok(match t {
        0 => RoutingPolicy::DorXY,
        1 => RoutingPolicy::DorYX,
        2 => RoutingPolicy::DyXY,
        3 => RoutingPolicy::Footprint,
        4 => RoutingPolicy::Hare,
        t => return Err(tag_err("routing", t)),
    })
}

/// Decode a [`SystemConfig`] written by [`save_config`].
pub fn load_config(r: &mut SnapReader<'_>) -> Result<SystemConfig, SnapError> {
    let layout = match r.u8()? {
        0 => LayoutKind::Baseline,
        1 => LayoutKind::EdgeB,
        2 => LayoutKind::ClusteredC,
        3 => LayoutKind::DistributedD,
        t => return Err(tag_err("layout", t)),
    };
    let mesh_width = r.usize()?;
    let mesh_height = r.usize()?;
    let n_gpu = r.usize()?;
    let n_cpu = r.usize()?;
    let n_mem = r.usize()?;
    let gpu = GpuConfig {
        warps_per_core: r.usize()?,
        issue_width: r.usize()?,
        threads_per_warp: r.usize()?,
        l1: load_geometry(r)?,
        mshrs: r.usize()?,
        frq_entries: r.usize()?,
        l1_hit_latency: r.u32()?,
        l1_ports: r.usize()?,
        cluster_cores: r.usize()?,
        cluster_slices: r.usize()?,
        dyneb_epoch: r.u64()?,
        flush_interval: r.opt_u64()?,
    };
    let cpu = CpuConfig {
        l1: load_geometry(r)?,
        window: r.usize()?,
        l1_hit_latency: r.u32()?,
    };
    let llc = LlcConfig {
        slice: load_geometry(r)?,
        latency: r.u32()?,
        ports: r.usize()?,
    };
    let dram = DramConfig {
        banks: r.usize()?,
        t_cl: r.u32()?,
        t_rp: r.u32()?,
        t_rc: r.u32()?,
        t_ras: r.u32()?,
        t_rcd: r.u32()?,
        t_rrd: r.u32()?,
        t_ccd: r.u32()?,
        t_wr: r.u32()?,
        t_refi: r.u32()?,
        t_rfc: r.u32()?,
        burst: r.u32()?,
        queue: r.usize()?,
    };
    let topology = match r.u8()? {
        0 => Topology::Mesh,
        1 => Topology::Crossbar,
        2 => Topology::FlattenedButterfly,
        3 => Topology::Dragonfly,
        t => return Err(tag_err("topology", t)),
    };
    let routing_request = routing_from(r.u8()?)?;
    let routing_reply = routing_from(r.u8()?)?;
    let channel_bytes = r.u32()?;
    let vcs = r.usize()?;
    let vc_buf_flits = r.usize()?;
    let pipeline = r.u32()?;
    let virtual_nets = if r.bool()? {
        Some(VirtualNetConfig {
            request_vcs: r.usize()?,
            reply_vcs: r.usize()?,
        })
    } else {
        None
    };
    let noc = NocConfig {
        topology,
        routing_request,
        routing_reply,
        channel_bytes,
        vcs,
        vc_buf_flits,
        pipeline,
        virtual_nets,
        mem_inj_buf_pkts: r.usize()?,
        core_inj_buf_pkts: r.usize()?,
        sa_iterations: r.usize()?,
    };
    let scheme = match r.u8()? {
        0 => Scheme::Baseline,
        1 => Scheme::DelegatedReplies,
        2 => Scheme::RealisticProbing { fanout: r.usize()? },
        t => return Err(tag_err("scheme", t)),
    };
    let dr = DrKnobs {
        delegate_always: r.bool()?,
        delayed_hits: r.bool()?,
        max_per_cycle: r.usize()?,
    };
    let l1_org = match r.u8()? {
        0 => L1Org::Private,
        1 => L1Org::DcL1,
        2 => L1Org::DynEB,
        t => return Err(tag_err("l1_org", t)),
    };
    let cta_sched = match r.u8()? {
        0 => CtaSched::RoundRobin,
        1 => CtaSched::Distributed,
        t => return Err(tag_err("cta_sched", t)),
    };
    let seed = r.u64()?;
    let fabric = if r.bool()? {
        Some(FabricConfig {
            chips: r.usize()?,
            topology: match r.u8()? {
                0 => FabricTopology::Pair,
                1 => FabricTopology::Ring,
                2 => FabricTopology::All,
                t => return Err(tag_err("fabric_topology", t)),
            },
            link_flits: r.u32()?,
            hop_latency: r.u32()?,
            queue_pkts: r.usize()?,
            gateways: r.usize()?,
            interleave: match r.u8()? {
                0 => FabricInterleave::Hash,
                1 => FabricInterleave::Modulo,
                t => return Err(tag_err("fabric_interleave", t)),
            },
            reply_link_flits: r.u32()?,
            reply_hop_latency: r.u32()?,
        })
    } else {
        None
    };
    let control = if r.bool()? {
        Some(ControlConfig {
            policy: match r.u8()? {
                0 => ControlPolicyKind::NoOp,
                1 => ControlPolicyKind::Hysteresis,
                t => return Err(tag_err("control_policy", t)),
            },
            interval: r.u64()?,
            enter_blocked_pm: r.u32()?,
            exit_blocked_pm: r.u32()?,
            enter_episode: r.u64()?,
            exit_episode: r.u64()?,
            dwell: r.u64()?,
        })
    } else {
        None
    };
    Ok(SystemConfig {
        layout,
        mesh_width,
        mesh_height,
        n_gpu,
        n_cpu,
        n_mem,
        gpu,
        cpu,
        llc,
        dram,
        noc,
        scheme,
        dr,
        l1_org,
        cta_sched,
        seed,
        fabric,
        control,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::with_header();
        w.u8(0xAB);
        w.u16(0x1234);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i32(-7);
        w.usize(42);
        w.bool(true);
        w.f64(-0.125);
        w.str("warm");
        w.bytes(&[1, 2, 3]);
        w.opt_u64(None);
        w.opt_u64(Some(9));
        let b = w.into_bytes();
        let mut r = SnapReader::new(&b).unwrap();
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i32().unwrap(), -7);
        assert_eq!(r.usize().unwrap(), 42);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.str().unwrap(), "warm");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        r.finish().unwrap();
    }

    #[test]
    fn header_rejects_foreign_and_truncated_bytes() {
        assert_eq!(
            SnapReader::new(b"not a snapshot at all").unwrap_err(),
            SnapError::BadMagic
        );
        assert_eq!(
            SnapReader::new(&SNAP_MAGIC[..4]).unwrap_err(),
            SnapError::Truncated
        );
        let mut w = SnapWriter::new();
        w.buf.extend_from_slice(&SNAP_MAGIC);
        w.u32(SNAP_VERSION + 1);
        assert_eq!(
            SnapReader::new(&w.into_bytes()).unwrap_err(),
            SnapError::BadVersion(SNAP_VERSION + 1)
        );
    }

    #[test]
    fn truncated_body_is_an_error_not_a_panic() {
        let mut w = SnapWriter::with_header();
        w.u64(5);
        let b = w.into_bytes();
        let mut r = SnapReader::new(&b[..b.len() - 1]).unwrap();
        assert_eq!(r.u64().unwrap_err(), SnapError::Truncated);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn config_round_trips_all_fields() {
        let mut c = SystemConfig::default();
        c.layout = LayoutKind::DistributedD;
        c.scheme = Scheme::RealisticProbing { fanout: 3 };
        c.noc.topology = Topology::Dragonfly;
        c.noc.virtual_nets = Some(VirtualNetConfig {
            request_vcs: 2,
            reply_vcs: 3,
        });
        c.gpu.flush_interval = None;
        c.dr.delegate_always = true;
        c.seed = 0x1357_9BDF;
        c.fabric = Some(FabricConfig {
            chips: 3,
            topology: FabricTopology::Ring,
            link_flits: 2,
            hop_latency: 9,
            queue_pkts: 5,
            gateways: 4,
            interleave: FabricInterleave::Modulo,
            reply_link_flits: 1,
            reply_hop_latency: 40,
        });
        c.control = Some(ControlConfig {
            policy: ControlPolicyKind::Hysteresis,
            interval: 250,
            enter_blocked_pm: 400,
            exit_blocked_pm: 25,
            enter_episode: 1_500,
            exit_episode: 3_000,
            dwell: 3,
        });
        let mut w = SnapWriter::new();
        save_config(&mut w, &c);
        let b = w.into_bytes();
        let mut r = SnapReader::raw(&b);
        let back = load_config(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn packet_round_trips() {
        let p = Packet {
            id: PacketId(77),
            src: NodeId(3),
            dst: NodeId(9),
            kind: MsgKind::DelegatedReply,
            prio: Priority::Gpu,
            addr: Addr::new(0xABC0),
            flits: 9,
            created: 1234,
            requester: NodeId(5),
            dnf: true,
        };
        let mut w = SnapWriter::new();
        save_packet(&mut w, &p);
        let b = w.into_bytes();
        let mut r = SnapReader::raw(&b);
        assert_eq!(load_packet(&mut r).unwrap(), p);
        r.finish().unwrap();
    }

    #[test]
    fn encoding_is_byte_stable() {
        let c = SystemConfig::default();
        let enc = |c: &SystemConfig| {
            let mut w = SnapWriter::new();
            save_config(&mut w, c);
            w.into_bytes()
        };
        assert_eq!(enc(&c), enc(&c.clone()));
    }
}
