//! Randomized memory-controller address mapping.
//!
//! The paper partitions memory across the 8 memory controllers following
//! PAE's randomized address mapping (Liu+ ISCA'18), which XOR-folds
//! higher address bits into the controller-select bits so that strided
//! access patterns spread evenly over the controllers (avoiding the
//! "valley" pathology of plain modulo interleaving).

use crate::ids::{LineAddr, MemId};

/// Maps cache-line addresses to memory controllers (and to DRAM banks
/// within a controller) using an XOR-fold of the line address, seeded so
/// different experiments can de-correlate mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    n_mem: usize,
    seed: u64,
}

impl AddressMap {
    /// Create a map over `n_mem` controllers.
    ///
    /// # Panics
    ///
    /// Panics if `n_mem` is zero.
    pub fn new(n_mem: usize, seed: u64) -> Self {
        assert!(n_mem > 0, "need at least one memory controller");
        AddressMap { n_mem, seed }
    }

    /// Number of controllers.
    pub fn controllers(&self) -> usize {
        self.n_mem
    }

    /// PAE-style XOR-fold hash of a line address.
    fn fold(&self, line: LineAddr) -> u64 {
        let mut x = line.0 ^ self.seed;
        // xor-fold 48 bits down, mixing strides of common power-of-two
        // sizes into the low bits.
        x ^= x >> 7;
        x ^= x >> 13;
        x ^= x >> 23;
        // final avalanche (splitmix-style) for statistical balance
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 31;
        x
    }

    /// The home memory controller of a line.
    pub fn controller_of(&self, line: LineAddr) -> MemId {
        MemId((self.fold(line) % self.n_mem as u64) as u16)
    }

    /// The DRAM bank (within the home controller) of a line.
    pub fn bank_of(&self, line: LineAddr, banks: usize) -> usize {
        ((self.fold(line) / self.n_mem as u64) % banks as u64) as usize
    }

    /// The DRAM row of a line: consecutive lines of the same bank share a
    /// row (rows hold 2 KB = 16 lines of 128 B), which FR-FCFS exploits.
    pub fn row_of(&self, line: LineAddr, banks: usize) -> u64 {
        // Row locality: strip the controller/bank selection implied by
        // low-order locality, keep upper bits as the row id.
        let per_row_lines = 16;
        (line.0 / per_row_lines) / banks as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_in_range_and_deterministic() {
        let m = AddressMap::new(8, 42);
        for i in 0..10_000u64 {
            let l = LineAddr(i * 37 + 5);
            let c = m.controller_of(l);
            assert!(c.index() < 8);
            assert_eq!(c, m.controller_of(l), "deterministic");
        }
    }

    #[test]
    fn sequential_lines_spread_evenly() {
        let m = AddressMap::new(8, 7);
        let mut counts = [0usize; 8];
        let n = 64 * 1024;
        for i in 0..n {
            counts[m.controller_of(LineAddr(i)).index()] += 1;
        }
        let expect = n as usize / 8;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect * 9 / 10 && c < expect * 11 / 10,
                "controller {i} got {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn power_of_two_strides_spread_evenly() {
        // The reason for PAE-style randomization: strided streams must
        // not camp on one controller.
        let m = AddressMap::new(8, 7);
        for stride_log in [3u64, 6, 10] {
            let stride = 1 << stride_log;
            let mut counts = [0usize; 8];
            let n = 8 * 1024;
            for i in 0..n {
                counts[m.controller_of(LineAddr(i * stride)).index()] += 1;
            }
            let expect = n as usize / 8;
            for &c in &counts {
                assert!(
                    c > expect / 2 && c < expect * 2,
                    "stride {stride}: count {c} vs expected {expect}"
                );
            }
        }
    }

    #[test]
    fn banks_in_range() {
        let m = AddressMap::new(8, 1);
        for i in 0..1000u64 {
            assert!(m.bank_of(LineAddr(i * 11), 16) < 16);
        }
    }

    #[test]
    fn row_groups_consecutive_lines() {
        let m = AddressMap::new(8, 1);
        // Lines 0..16 belong to at most 2 distinct rows (row size 16
        // lines before bank division).
        let rows: std::collections::HashSet<u64> =
            (0..16).map(|i| m.row_of(LineAddr(i), 16)).collect();
        assert!(rows.len() <= 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_controllers_panics() {
        AddressMap::new(0, 0);
    }
}
