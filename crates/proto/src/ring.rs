//! Consistent-hash placement of job fingerprints onto cluster nodes.
//!
//! `clognet-cluster` shards the content-addressed result cache across
//! N service nodes. The shard key is the job fingerprint
//! ([`crate::fingerprint`]) — already a content address — and placement
//! must satisfy two properties:
//!
//! 1. **Agreement** — every node (and every client) that knows the same
//!    member list computes the same owner for a fingerprint, with no
//!    coordination. Placement is a pure function of (members, key).
//! 2. **Stability** — adding or removing one node remaps only the keys
//!    that node owned (plus its share of the ring), not the whole key
//!    space, so a node death invalidates one replica's worth of
//!    placement rather than the entire cluster cache.
//!
//! Classic consistent hashing delivers both: each node is hashed onto a
//! `u64` ring at [`DEFAULT_VNODES`] pseudo-random points (virtual
//! nodes, for balance), and a key is owned by the first node point at
//! or clockwise-after the key's own position. The *placement* of a key
//! is the owner plus the next `r` **distinct** nodes clockwise — the
//! replica set that `clognet-cluster` copies cache entries to.
//!
//! Hashes come from the in-tree [`FxHasher`]; node identity is the
//! advertised `host:port` string, so rings agree across processes as
//! long as every member is named by the same string everywhere.

use crate::fxhash::FxHasher;
use std::hash::Hasher;

/// Virtual nodes per member. Shared by every ring participant — the
/// server nodes and the `clognet fingerprint --owner` client-side
/// lookup must agree on this or on nothing.
pub const DEFAULT_VNODES: usize = 64;

fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// SplitMix64 finalizer: decorrelates key positions from raw
/// fingerprints (which FxHash already spreads, but whose low bits feed
/// the same hasher that places ring points).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring over named nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    /// Member names, sorted (index is the id used on `points`).
    nodes: Vec<String>,
    /// `(position, node index)`, sorted by position.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// An empty ring with `vnodes` virtual nodes per member
    /// (minimum 1).
    pub fn new(vnodes: usize) -> HashRing {
        HashRing {
            vnodes: vnodes.max(1),
            nodes: Vec::new(),
            points: Vec::new(),
        }
    }

    /// A ring populated from `nodes` (duplicates collapse).
    pub fn with_nodes<I, S>(nodes: I, vnodes: usize) -> HashRing
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ring = HashRing::new(vnodes);
        for n in nodes {
            ring.insert(n.as_ref());
        }
        ring
    }

    /// Add a member; a duplicate is a no-op.
    pub fn insert(&mut self, node: &str) {
        if self.nodes.iter().any(|n| n == node) {
            return;
        }
        self.nodes.push(node.to_string());
        self.nodes.sort();
        self.rebuild();
    }

    /// Remove a member; an unknown name is a no-op.
    pub fn remove(&mut self, node: &str) {
        let before = self.nodes.len();
        self.nodes.retain(|n| n != node);
        if self.nodes.len() != before {
            self.rebuild();
        }
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: &str) -> bool {
        self.nodes.iter().any(|n| n == node)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The member names, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            for v in 0..self.vnodes {
                let pos = hash_bytes(format!("{node}#{v}").as_bytes());
                self.points.push((pos, i as u32));
            }
        }
        // Position ties (vanishingly rare) resolve by node index so
        // every participant breaks them identically.
        self.points.sort_unstable();
    }

    /// Index into `points` of the first point at or after the key.
    fn successor_index(&self, fp: u64) -> usize {
        let key = mix(fp);
        match self.points.binary_search(&(key, 0)) {
            Ok(i) => i,
            Err(i) => i % self.points.len().max(1),
        }
    }

    /// The member that owns a fingerprint, or `None` on an empty ring.
    pub fn owner(&self, fp: u64) -> Option<&str> {
        self.placement(fp, 1).into_iter().next()
    }

    /// The first `count` **distinct** members clockwise from the
    /// fingerprint's position: the owner followed by its replica
    /// successors. Returns fewer when the ring has fewer members.
    pub fn placement(&self, fp: u64, count: usize) -> Vec<&str> {
        if self.points.is_empty() || count == 0 {
            return Vec::new();
        }
        let start = self.successor_index(fp) % self.points.len();
        let want = count.min(self.nodes.len());
        let mut out: Vec<&str> = Vec::with_capacity(want);
        for step in 0..self.points.len() {
            let (_, idx) = self.points[(start + step) % self.points.len()];
            let name = self.nodes[idx as usize].as_str();
            if !out.contains(&name) {
                out.push(name);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three() -> HashRing {
        HashRing::with_nodes(["127.0.0.1:9401", "127.0.0.1:9402", "127.0.0.1:9403"], 64)
    }

    #[test]
    fn placement_is_deterministic_across_instances() {
        let a = three();
        // Insertion order must not matter.
        let b = HashRing::with_nodes(["127.0.0.1:9403", "127.0.0.1:9401", "127.0.0.1:9402"], 64);
        for fp in 0..1_000u64 {
            assert_eq!(a.owner(fp), b.owner(fp), "fp {fp}");
            assert_eq!(a.placement(fp, 2), b.placement(fp, 2), "fp {fp}");
        }
    }

    #[test]
    fn placement_names_distinct_nodes_in_ring_order() {
        let ring = three();
        for fp in 0..200u64 {
            let p = ring.placement(fp, 3);
            assert_eq!(p.len(), 3);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "placement repeats a node: {p:?}");
            assert_eq!(p[0], ring.owner(fp).unwrap());
        }
        // Asking for more replicas than members truncates.
        assert_eq!(ring.placement(7, 10).len(), 3);
    }

    #[test]
    fn every_node_owns_a_meaningful_share() {
        let ring = three();
        let mut counts = std::collections::BTreeMap::new();
        for fp in 0..6_000u64 {
            *counts
                .entry(ring.owner(fp).unwrap().to_string())
                .or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 3, "all nodes reachable: {counts:?}");
        for (node, n) in &counts {
            assert!(
                *n >= 600,
                "{node} owns {n}/6000 keys — worse than 10%: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_node_only_remaps_its_keys() {
        let full = three();
        let mut reduced = three();
        reduced.remove("127.0.0.1:9402");
        for fp in 0..2_000u64 {
            let before = full.owner(fp).unwrap();
            let after = reduced.owner(fp).unwrap();
            if before != "127.0.0.1:9402" {
                assert_eq!(before, after, "fp {fp} moved although its owner survived");
            } else {
                // Orphaned keys land on the old placement's successor,
                // which is where the replica lives.
                assert_eq!(Some(after), full.placement(fp, 2).get(1).copied());
            }
        }
    }

    #[test]
    fn empty_and_single_node_rings() {
        let mut ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(42), None);
        assert!(ring.placement(42, 3).is_empty());
        ring.insert("only");
        assert_eq!(ring.owner(42), Some("only"));
        assert_eq!(ring.placement(42, 3), vec!["only"]);
        ring.remove("only");
        assert!(ring.is_empty());
        ring.remove("never-there");
        assert!(!ring.contains("only"));
    }

    #[test]
    fn duplicate_insert_is_a_no_op() {
        let mut ring = HashRing::new(16);
        ring.insert("a");
        ring.insert("a");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.nodes(), &["a".to_string()]);
    }
}
