//! A hand-rolled FxHash-style 64-bit hasher for the simulator's hot-path
//! maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 with a random
//! per-process key. That is the right default for hash-flooding
//! resistance, but the simulator's per-cycle paths (MSHR lookups, CPU
//! pending-miss merges, memory-node waiter tables) hash trusted,
//! simulator-generated `LineAddr`/`u64` keys millions of times per run —
//! there is no adversary, and SipHash's per-lookup cost is pure
//! overhead. [`FxHasher`] is the multiply-xor scheme popularized by the
//! Firefox/rustc `FxHashMap`: one wrapping multiply and a rotate per
//! 8-byte word, deterministic across processes (which also makes map
//! iteration order reproducible between runs — a property the
//! fast-forward equivalence tests rely on).
//!
//! No new dependency: this is ~30 lines of `std`-only code.
//!
//! ## Example
//!
//! ```
//! use clognet_proto::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m[&7], "seven");
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier: `2^64 / phi`, the 64-bit golden-ratio constant
/// used by Fibonacci hashing.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation applied after each multiply; spreads the (weak) low-bit
/// entropy of small integer keys into the bits `HashMap` uses for
/// bucket selection.
const ROTATE: u32 = 5;

/// A fast, deterministic, non-cryptographic 64-bit hasher
/// (multiply-xor, FxHash style). Not DoS-resistant — use only on
/// trusted keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`] — drop-in replacement for
/// `std::collections::HashMap` on hot paths with trusted keys.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&0xDEAD_BEEFu64), hash_of(&0xDEAD_BEEFu64));
        assert_eq!(hash_of(&"line"), hash_of(&"line"));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash_of(&i));
        }
        assert_eq!(seen.len(), 10_000, "sequential u64 keys must not collide");
    }

    #[test]
    fn small_keys_spread_into_high_bits() {
        // HashMap uses the top 7 bits for its SIMD tag; tiny keys must
        // not all share them.
        let tags: std::collections::HashSet<u64> = (0..128u64).map(|i| hash_of(&i) >> 57).collect();
        assert!(tags.len() > 32, "only {} distinct tags", tags.len());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.get(&1), Some(&10));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(5));
        assert!(!s.insert(5));
    }

    #[test]
    fn unaligned_byte_tails_hash_differently() {
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of(&[0u8; 9]), hash_of(&[0u8; 8]));
    }
}
