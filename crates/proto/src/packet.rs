//! Network packets and message kinds.
//!
//! A [`Packet`] is the unit of end-to-end communication; inside the NoC it
//! is serialized into flits (one 16-byte flit per channel-width chunk,
//! plus a head flit). The message vocabulary covers the baseline
//! protocol, Delegated Replies, and the Realistic Probing baseline.

use crate::ids::{Addr, Cycle, NodeId};
use std::fmt;

/// Globally unique packet identifier (monotonically assigned by the
/// component that creates the packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Which (physical or virtual) network a packet travels on.
///
/// The baseline uses physically separate request and reply networks;
/// the virtual-network configuration multiplexes both classes onto one
/// physical network using disjoint VC sets (Section VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Requests, probes and *delegated replies* (metadata-only, 1 flit).
    Request,
    /// Data-carrying replies (head + 8 data flits for a 128 B line).
    Reply,
}

impl TrafficClass {
    /// All classes, in scheduling order.
    pub const ALL: [TrafficClass; 2] = [TrafficClass::Request, TrafficClass::Reply];
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficClass::Request => write!(f, "req"),
            TrafficClass::Reply => write!(f, "rep"),
        }
    }
}

/// Arbitration priority. CPU traffic is prioritized over GPU traffic
/// throughout the memory system, including the NoC switch allocators
/// (Section II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive CPU traffic: always wins arbitration.
    Cpu,
    /// Bandwidth-hungry, latency-tolerant GPU traffic.
    Gpu,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::Cpu => write!(f, "CPU"),
            Priority::Gpu => write!(f, "GPU"),
        }
    }
}

/// The protocol-level meaning of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Core → memory node: load a cache line (1 flit).
    ReadReq,
    /// Core → memory node: write-through store, carries the line
    /// (head + data flits).
    WriteReq,
    /// Memory node or remote core → requester: the cache line
    /// (head + data flits).
    ReadReply,
    /// Memory node → writer: store acknowledgment (1 flit).
    WriteAck,
    /// Memory node → pointer core, on the *request* network: "you answer
    /// this one" (1 flit). `Packet::requester` holds the core that must
    /// receive the data; the sender id is overwritten with the requester
    /// id as described in Section IV ("NoC modifications").
    DelegatedReply,
    /// RP: core → remote L1, "do you have this line?" (1 flit).
    ProbeReq,
    /// RP: remote L1 → prober, probe miss (1 flit).
    ProbeMiss,
    /// RP: remote L1 → prober, "I have it" (1 flit); the prober follows
    /// up with a [`MsgKind::FetchReq`] to exactly one hitter, avoiding
    /// duplicate cache-line transfers.
    ProbeHit,
    /// RP: prober → chosen hitter, "send me the line" (1 flit).
    FetchReq,
}

impl MsgKind {
    /// The traffic class this kind travels on.
    pub fn class(self) -> TrafficClass {
        match self {
            MsgKind::ReadReq
            | MsgKind::WriteReq
            | MsgKind::DelegatedReply
            | MsgKind::FetchReq
            | MsgKind::ProbeReq => TrafficClass::Request,
            MsgKind::ReadReply | MsgKind::WriteAck | MsgKind::ProbeMiss | MsgKind::ProbeHit => {
                TrafficClass::Reply
            }
        }
    }

    /// Whether this packet carries a full cache line of data.
    pub fn carries_data(self) -> bool {
        matches!(self, MsgKind::WriteReq | MsgKind::ReadReply)
    }

    /// Number of flits for a given line size and channel width.
    ///
    /// Metadata-only messages are a single flit (a read request is 8 bytes,
    /// smaller than the 16-byte channel). Data messages add
    /// `line_bytes / channel_bytes` body flits: 9 flits for a 128 B line on
    /// 16 B channels, matching the paper's 9× bandwidth-demand reduction
    /// per delegated reply.
    pub fn flits(self, line_bytes: u32, channel_bytes: u32) -> u8 {
        if self.carries_data() {
            (1 + line_bytes.div_ceil(channel_bytes)) as u8
        } else {
            1
        }
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MsgKind::ReadReq => "ReadReq",
            MsgKind::WriteReq => "WriteReq",
            MsgKind::ReadReply => "ReadReply",
            MsgKind::WriteAck => "WriteAck",
            MsgKind::DelegatedReply => "DelegatedReply",
            MsgKind::ProbeReq => "ProbeReq",
            MsgKind::ProbeMiss => "ProbeMiss",
            MsgKind::ProbeHit => "ProbeHit",
            MsgKind::FetchReq => "FetchReq",
        };
        f.write_str(s)
    }
}

/// An end-to-end message. Flit-level state lives inside the NoC; the
/// packet itself is stored once and referenced by its flits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Injecting node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Protocol meaning.
    pub kind: MsgKind,
    /// Arbitration priority (CPU wins).
    pub prio: Priority,
    /// The (line-aligned) address the message concerns.
    pub addr: Addr,
    /// Serialized length in flits.
    pub flits: u8,
    /// Cycle the packet was handed to the network interface.
    pub created: Cycle,
    /// The node that ultimately needs the data. Equal to `src` for
    /// ordinary requests; for a [`MsgKind::DelegatedReply`] it names the
    /// core the remote L1 must reply to; for re-sent remote misses it is
    /// preserved so the LLC can repoint the line.
    pub requester: NodeId,
    /// Do-Not-Forward bit (Section IV): tells the LLC slice to answer
    /// directly instead of delegating again.
    pub dnf: bool,
}

impl Packet {
    /// Build a packet, deriving class and flit count from `kind`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        kind: MsgKind,
        prio: Priority,
        addr: Addr,
        line_bytes: u32,
        channel_bytes: u32,
        created: Cycle,
    ) -> Self {
        Packet {
            id,
            src,
            dst,
            kind,
            prio,
            addr,
            flits: kind.flits(line_bytes, channel_bytes),
            created,
            requester: src,
            dnf: false,
        }
    }

    /// The traffic class this packet travels on.
    pub fn class(&self) -> TrafficClass {
        self.kind.class()
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} {}->{} {} {} x{}]",
            self.id, self.kind, self.src, self.dst, self.prio, self.addr, self.flits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_is_nine_flits_on_table1_config() {
        // 128 B lines, 16 B channels: 1 head + 8 data flits.
        assert_eq!(MsgKind::ReadReply.flits(128, 16), 9);
        assert_eq!(MsgKind::WriteReq.flits(128, 16), 9);
    }

    #[test]
    fn cpu_reply_is_five_flits() {
        // 64 B CPU lines: 1 head + 4 data flits, as in the paper's
        // Section II ("8 (4) data flits ... 128 (64) byte lines").
        assert_eq!(MsgKind::ReadReply.flits(64, 16), 5);
    }

    #[test]
    fn metadata_messages_are_single_flit() {
        for k in [
            MsgKind::ReadReq,
            MsgKind::DelegatedReply,
            MsgKind::ProbeReq,
            MsgKind::ProbeMiss,
            MsgKind::ProbeHit,
            MsgKind::FetchReq,
            MsgKind::WriteAck,
        ] {
            assert_eq!(k.flits(128, 16), 1, "{k} should be 1 flit");
        }
    }

    #[test]
    fn classes_match_paper_networks() {
        // Delegated replies ride the *request* network (the key trick).
        assert_eq!(MsgKind::DelegatedReply.class(), TrafficClass::Request);
        assert_eq!(MsgKind::ReadReply.class(), TrafficClass::Reply);
        assert_eq!(MsgKind::WriteReq.class(), TrafficClass::Request);
    }

    #[test]
    fn packet_new_derives_fields() {
        let p = Packet::new(
            PacketId(1),
            NodeId(2),
            NodeId(3),
            MsgKind::ReadReq,
            Priority::Gpu,
            Addr::new(0x80),
            128,
            16,
            5,
        );
        assert_eq!(p.flits, 1);
        assert_eq!(p.requester, NodeId(2));
        assert!(!p.dnf);
        assert_eq!(p.class(), TrafficClass::Request);
    }

    #[test]
    fn cpu_priority_orders_before_gpu() {
        assert!(Priority::Cpu < Priority::Gpu);
    }
}
