//! Canonical configuration serialization and job fingerprints.
//!
//! The simulator is deterministic: a (configuration, workload, cycle
//! budget) triple fully determines the report it produces, byte for
//! byte. That makes deterministic runs memoizable — `clognet-serve`
//! keys its content-addressed result cache on a **fingerprint** of the
//! job, and a byte-identical report for a given fingerprint never needs
//! to be simulated twice.
//!
//! The fingerprint is [`FxHasher`](crate::fxhash::FxHasher) run over a
//! *canonical serialization*: every field of [`SystemConfig`] written
//! as `key=value;` in a fixed order, prefixed with a format-version
//! tag. Canonicalizing the resolved config (rather than the raw CLI
//! options) means spelling variants — `--scheme dr` vs
//! `--scheme delegated-replies`, `--layout b` vs `--layout edge` —
//! collapse to the same fingerprint.
//!
//! The version tag **must** be bumped whenever the simulation's
//! behavior changes (new config fields, algorithmic changes that move
//! reports): a stale cache entry served under a new behavior would
//! silently violate the cache's byte-identity contract.

use crate::config::{
    CacheGeometry, ControlPolicyKind, CtaSched, FabricInterleave, FabricTopology, L1Org,
    LayoutKind, RoutingPolicy, Scheme, SystemConfig, Topology,
};
use crate::fxhash::FxHasher;
use std::fmt::Write as _;
use std::hash::Hasher;

/// Bump on any change to the canonical format *or* to simulation
/// behavior that alters reports for an unchanged config.
///
/// v2: the GPU probe-wait deferred-flush scan now visits lines in sorted
/// order instead of hash-map iteration order (required for snapshot
/// restore to be byte-identical), which can reorder RP probe sends under
/// the per-cycle budget and therefore shift reports.
///
/// v3: [`SystemConfig`] gained the optional inter-chip fabric; every
/// `FabricConfig` field is an identity knob and enters the canonical
/// string (as `fabric=none;` when absent). The fabric has no
/// execution-mode knobs.
///
/// v4: [`SystemConfig`] gained the optional adaptive control loop;
/// every `ControlConfig` field is an identity knob (the controller
/// actuates `set_scheme` mid-run) and enters the canonical string (as
/// `control=none;` when absent). The controller has no execution-mode
/// knobs.
pub const FINGERPRINT_VERSION: u32 = 4;

fn push_kv(out: &mut String, key: &str, value: impl std::fmt::Display) {
    let _ = write!(out, "{key}={value};");
}

fn push_geometry(out: &mut String, prefix: &str, g: &CacheGeometry) {
    push_kv(out, &format!("{prefix}.capacity"), g.capacity_bytes);
    push_kv(out, &format!("{prefix}.ways"), g.ways);
    push_kv(out, &format!("{prefix}.line"), g.line_bytes);
}

fn scheme_tag(s: Scheme) -> String {
    match s {
        Scheme::Baseline => "baseline".to_string(),
        Scheme::DelegatedReplies => "dr".to_string(),
        Scheme::RealisticProbing { fanout } => format!("rp:{fanout}"),
    }
}

fn layout_tag(l: LayoutKind) -> &'static str {
    match l {
        LayoutKind::Baseline => "a",
        LayoutKind::EdgeB => "b",
        LayoutKind::ClusteredC => "c",
        LayoutKind::DistributedD => "d",
    }
}

fn topology_tag(t: Topology) -> &'static str {
    match t {
        Topology::Mesh => "mesh",
        Topology::Crossbar => "crossbar",
        Topology::FlattenedButterfly => "fbfly",
        Topology::Dragonfly => "dragonfly",
    }
}

fn routing_tag(r: RoutingPolicy) -> &'static str {
    match r {
        RoutingPolicy::DorXY => "xy",
        RoutingPolicy::DorYX => "yx",
        RoutingPolicy::DyXY => "dyxy",
        RoutingPolicy::Footprint => "footprint",
        RoutingPolicy::Hare => "hare",
    }
}

/// Serialize a [`SystemConfig`] canonically: every field, fixed order,
/// `key=value;` pairs, version-tagged. Two configs serialize to the
/// same string iff they are `==`.
pub fn canonical_config(cfg: &SystemConfig) -> String {
    let mut out = format!("clognet-fp-v{FINGERPRINT_VERSION};");
    push_kv(&mut out, "layout", layout_tag(cfg.layout));
    push_kv(&mut out, "mesh_width", cfg.mesh_width);
    push_kv(&mut out, "mesh_height", cfg.mesh_height);
    push_kv(&mut out, "n_gpu", cfg.n_gpu);
    push_kv(&mut out, "n_cpu", cfg.n_cpu);
    push_kv(&mut out, "n_mem", cfg.n_mem);
    // GPU core parameters.
    push_kv(&mut out, "gpu.warps", cfg.gpu.warps_per_core);
    push_kv(&mut out, "gpu.issue", cfg.gpu.issue_width);
    push_kv(&mut out, "gpu.tpw", cfg.gpu.threads_per_warp);
    push_geometry(&mut out, "gpu.l1", &cfg.gpu.l1);
    push_kv(&mut out, "gpu.mshrs", cfg.gpu.mshrs);
    push_kv(&mut out, "gpu.frq", cfg.gpu.frq_entries);
    push_kv(&mut out, "gpu.l1_lat", cfg.gpu.l1_hit_latency);
    push_kv(&mut out, "gpu.l1_ports", cfg.gpu.l1_ports);
    push_kv(&mut out, "gpu.cluster_cores", cfg.gpu.cluster_cores);
    push_kv(&mut out, "gpu.cluster_slices", cfg.gpu.cluster_slices);
    push_kv(&mut out, "gpu.dyneb_epoch", cfg.gpu.dyneb_epoch);
    match cfg.gpu.flush_interval {
        Some(v) => push_kv(&mut out, "gpu.flush", v),
        None => push_kv(&mut out, "gpu.flush", "none"),
    }
    // CPU core parameters.
    push_geometry(&mut out, "cpu.l1", &cfg.cpu.l1);
    push_kv(&mut out, "cpu.window", cfg.cpu.window);
    push_kv(&mut out, "cpu.l1_lat", cfg.cpu.l1_hit_latency);
    // LLC.
    push_geometry(&mut out, "llc.slice", &cfg.llc.slice);
    push_kv(&mut out, "llc.lat", cfg.llc.latency);
    push_kv(&mut out, "llc.ports", cfg.llc.ports);
    // DRAM.
    push_kv(&mut out, "dram.banks", cfg.dram.banks);
    push_kv(&mut out, "dram.t_cl", cfg.dram.t_cl);
    push_kv(&mut out, "dram.t_rp", cfg.dram.t_rp);
    push_kv(&mut out, "dram.t_rc", cfg.dram.t_rc);
    push_kv(&mut out, "dram.t_ras", cfg.dram.t_ras);
    push_kv(&mut out, "dram.t_rcd", cfg.dram.t_rcd);
    push_kv(&mut out, "dram.t_rrd", cfg.dram.t_rrd);
    push_kv(&mut out, "dram.t_ccd", cfg.dram.t_ccd);
    push_kv(&mut out, "dram.t_wr", cfg.dram.t_wr);
    push_kv(&mut out, "dram.t_refi", cfg.dram.t_refi);
    push_kv(&mut out, "dram.t_rfc", cfg.dram.t_rfc);
    push_kv(&mut out, "dram.burst", cfg.dram.burst);
    push_kv(&mut out, "dram.queue", cfg.dram.queue);
    // NoC.
    push_kv(&mut out, "noc.topology", topology_tag(cfg.noc.topology));
    push_kv(
        &mut out,
        "noc.route_req",
        routing_tag(cfg.noc.routing_request),
    );
    push_kv(
        &mut out,
        "noc.route_rep",
        routing_tag(cfg.noc.routing_reply),
    );
    push_kv(&mut out, "noc.channel", cfg.noc.channel_bytes);
    push_kv(&mut out, "noc.vcs", cfg.noc.vcs);
    push_kv(&mut out, "noc.vc_buf", cfg.noc.vc_buf_flits);
    push_kv(&mut out, "noc.pipeline", cfg.noc.pipeline);
    match cfg.noc.virtual_nets {
        Some(v) => push_kv(
            &mut out,
            "noc.vnets",
            format_args!("{}+{}", v.request_vcs, v.reply_vcs),
        ),
        None => push_kv(&mut out, "noc.vnets", "none"),
    }
    push_kv(&mut out, "noc.mem_inj", cfg.noc.mem_inj_buf_pkts);
    push_kv(&mut out, "noc.core_inj", cfg.noc.core_inj_buf_pkts);
    push_kv(&mut out, "noc.sa_iters", cfg.noc.sa_iterations);
    // Scheme and knobs.
    push_kv(&mut out, "scheme", scheme_tag(cfg.scheme));
    push_kv(&mut out, "dr.always", cfg.dr.delegate_always);
    push_kv(&mut out, "dr.delayed", cfg.dr.delayed_hits);
    push_kv(&mut out, "dr.max_per_cycle", cfg.dr.max_per_cycle);
    push_kv(
        &mut out,
        "l1_org",
        match cfg.l1_org {
            L1Org::Private => "private",
            L1Org::DcL1 => "dcl1",
            L1Org::DynEB => "dyneb",
        },
    );
    push_kv(
        &mut out,
        "cta",
        match cfg.cta_sched {
            CtaSched::RoundRobin => "rr",
            CtaSched::Distributed => "dist",
        },
    );
    push_kv(&mut out, "seed", cfg.seed);
    // Inter-chip fabric: all fields are identity knobs (DESIGN.md §13).
    match &cfg.fabric {
        Some(fab) => {
            push_kv(&mut out, "fabric.chips", fab.chips);
            push_kv(
                &mut out,
                "fabric.topology",
                match fab.topology {
                    FabricTopology::Pair => "pair",
                    FabricTopology::Ring => "ring",
                    FabricTopology::All => "all",
                },
            );
            push_kv(&mut out, "fabric.width", fab.link_flits);
            push_kv(&mut out, "fabric.latency", fab.hop_latency);
            push_kv(&mut out, "fabric.queue", fab.queue_pkts);
            push_kv(&mut out, "fabric.gateways", fab.gateways);
            push_kv(
                &mut out,
                "fabric.interleave",
                match fab.interleave {
                    FabricInterleave::Hash => "hash",
                    FabricInterleave::Modulo => "modulo",
                },
            );
            push_kv(&mut out, "fabric.reply_width", fab.reply_link_flits);
            push_kv(&mut out, "fabric.reply_latency", fab.reply_hop_latency);
        }
        None => push_kv(&mut out, "fabric", "none"),
    }
    // Adaptive control loop: all fields are identity knobs (DESIGN.md §14).
    match &cfg.control {
        Some(ctl) => {
            push_kv(
                &mut out,
                "control.policy",
                match ctl.policy {
                    ControlPolicyKind::NoOp => "noop",
                    ControlPolicyKind::Hysteresis => "hysteresis",
                },
            );
            push_kv(&mut out, "control.interval", ctl.interval);
            push_kv(&mut out, "control.enter_blocked", ctl.enter_blocked_pm);
            push_kv(&mut out, "control.exit_blocked", ctl.exit_blocked_pm);
            push_kv(&mut out, "control.enter_episode", ctl.enter_episode);
            push_kv(&mut out, "control.exit_episode", ctl.exit_episode);
            push_kv(&mut out, "control.dwell", ctl.dwell);
        }
        None => push_kv(&mut out, "control", "none"),
    }
    out
}

/// Serialize a complete job — config plus workload pairing and cycle
/// budget — canonically. This string *is* the cache key's preimage.
pub fn canonical_job(cfg: &SystemConfig, gpu: &str, cpu: &str, warm: u64, cycles: u64) -> String {
    let mut out = canonical_config(cfg);
    push_kv(&mut out, "job.gpu", gpu);
    push_kv(&mut out, "job.cpu", cpu);
    push_kv(&mut out, "job.warm", warm);
    push_kv(&mut out, "job.cycles", cycles);
    out
}

fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// 64-bit fingerprint of a job: FxHash over [`canonical_job`].
pub fn job_fingerprint(cfg: &SystemConfig, gpu: &str, cpu: &str, warm: u64, cycles: u64) -> u64 {
    hash_str(&canonical_job(cfg, gpu, cpu, warm, cycles))
}

/// Render a fingerprint the way the wire protocol and CLI print it:
/// 16 lowercase hex digits.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// 64-bit key of a warmup snapshot: FxHash over the canonical config,
/// the workload pairing, and the cycle the snapshot was taken at — but
/// *not* the measurement cycle budget, so jobs that differ only in how
/// long they run after warmup share the same snapshot. Execution-mode
/// knobs (`--threads`, `--shards`, `--no-ff`) never reach
/// [`canonical_config`] and so cannot move the key.
pub fn snapshot_key(cfg: &SystemConfig, gpu: &str, cpu: &str, cycle: u64) -> u64 {
    let mut out = canonical_config(cfg);
    push_kv(&mut out, "snap.gpu", gpu);
    push_kv(&mut out, "snap.cpu", cpu);
    push_kv(&mut out, "snap.cycle", cycle);
    hash_str(&out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_configs_fingerprint_identically() {
        let a = SystemConfig::default();
        let b = SystemConfig::default();
        assert_eq!(canonical_config(&a), canonical_config(&b));
        assert_eq!(
            job_fingerprint(&a, "HS", "bodytrack", 500, 2000),
            job_fingerprint(&b, "HS", "bodytrack", 500, 2000)
        );
    }

    #[test]
    fn every_job_dimension_moves_the_fingerprint() {
        let base = SystemConfig::default();
        let fp = job_fingerprint(&base, "HS", "bodytrack", 500, 2000);
        assert_ne!(fp, job_fingerprint(&base, "MM", "bodytrack", 500, 2000));
        assert_ne!(fp, job_fingerprint(&base, "HS", "canneal", 500, 2000));
        assert_ne!(fp, job_fingerprint(&base, "HS", "bodytrack", 501, 2000));
        assert_ne!(fp, job_fingerprint(&base, "HS", "bodytrack", 500, 2001));
        let mut cfg = base.clone();
        cfg.scheme = Scheme::DelegatedReplies;
        assert_ne!(fp, job_fingerprint(&cfg, "HS", "bodytrack", 500, 2000));
        let mut cfg = base.clone();
        cfg.seed = 7;
        assert_ne!(fp, job_fingerprint(&cfg, "HS", "bodytrack", 500, 2000));
        let mut cfg = base.clone();
        cfg.noc.channel_bytes = 32;
        assert_ne!(fp, job_fingerprint(&cfg, "HS", "bodytrack", 500, 2000));
    }

    #[test]
    fn canonical_string_is_versioned_and_covers_options() {
        let mut cfg = SystemConfig::default();
        cfg.noc.virtual_nets = Some(crate::config::VirtualNetConfig {
            request_vcs: 1,
            reply_vcs: 3,
        });
        cfg.gpu.flush_interval = None;
        let s = canonical_config(&cfg);
        assert!(s.starts_with("clognet-fp-v4;"));
        assert!(s.contains("noc.vnets=1+3;"));
        assert!(s.contains("gpu.flush=none;"));
        assert!(s.contains("scheme=baseline;"));
        assert!(s.contains("fabric=none;"));
        assert!(s.contains("control=none;"));
        // Optional fields must differ from their `none` spellings.
        assert_ne!(s, canonical_config(&SystemConfig::default()));
    }

    #[test]
    fn every_fabric_knob_is_an_identity_knob() {
        use crate::config::FabricConfig;
        let base = SystemConfig::default().with_fabric(FabricConfig::default());
        let fp = job_fingerprint(&base, "HS", "bodytrack", 500, 2000);
        let sk = snapshot_key(&base, "HS", "bodytrack", 500);
        // Attaching a fabric at all must move both keys.
        let plain = SystemConfig::default();
        assert_ne!(fp, job_fingerprint(&plain, "HS", "bodytrack", 500, 2000));
        assert_ne!(sk, snapshot_key(&plain, "HS", "bodytrack", 500));
        // Every FabricConfig field must move both keys.
        let variants: [fn(&mut FabricConfig); 9] = [
            |f| f.chips = 4,
            |f| f.topology = FabricTopology::Ring,
            |f| f.link_flits = 1,
            |f| f.hop_latency = 40,
            |f| f.queue_pkts = 3,
            |f| f.gateways = 1,
            |f| f.interleave = FabricInterleave::Modulo,
            |f| f.reply_link_flits = 1,
            |f| f.reply_hop_latency = 40,
        ];
        for v in variants {
            let mut cfg = base.clone();
            v(cfg.fabric.as_mut().unwrap());
            assert_ne!(fp, job_fingerprint(&cfg, "HS", "bodytrack", 500, 2000));
            assert_ne!(sk, snapshot_key(&cfg, "HS", "bodytrack", 500));
        }
    }

    #[test]
    fn every_control_knob_is_an_identity_knob() {
        use crate::config::ControlConfig;
        let base = SystemConfig::default().with_control(ControlConfig::default());
        let fp = job_fingerprint(&base, "HS", "bodytrack", 500, 2000);
        let sk = snapshot_key(&base, "HS", "bodytrack", 500);
        // Attaching a controller at all must move both keys.
        let plain = SystemConfig::default();
        assert_ne!(fp, job_fingerprint(&plain, "HS", "bodytrack", 500, 2000));
        assert_ne!(sk, snapshot_key(&plain, "HS", "bodytrack", 500));
        // Every ControlConfig field must move both keys.
        let variants: [fn(&mut ControlConfig); 7] = [
            |c| c.policy = ControlPolicyKind::NoOp,
            |c| c.interval = 250,
            |c| c.enter_blocked_pm = 999,
            |c| c.exit_blocked_pm = 1,
            |c| c.enter_episode = 77,
            |c| c.exit_episode = 7_777,
            |c| c.dwell = 9,
        ];
        for v in variants {
            let mut cfg = base.clone();
            v(cfg.control.as_mut().unwrap());
            assert_ne!(fp, job_fingerprint(&cfg, "HS", "bodytrack", 500, 2000));
            assert_ne!(sk, snapshot_key(&cfg, "HS", "bodytrack", 500));
        }
    }

    #[test]
    fn rp_fanout_is_part_of_the_scheme_tag() {
        let a = SystemConfig::default().with_scheme(Scheme::RealisticProbing { fanout: 4 });
        let b = SystemConfig::default().with_scheme(Scheme::RealisticProbing { fanout: 8 });
        assert_ne!(canonical_config(&a), canonical_config(&b));
    }

    #[test]
    fn hex_rendering_is_fixed_width() {
        assert_eq!(fingerprint_hex(0xAB), "00000000000000ab");
        assert_eq!(fingerprint_hex(u64::MAX), "ffffffffffffffff");
    }
}
