//! Configuration structures.
//!
//! [`SystemConfig::default`] reproduces Table I of the paper: 40 GPU
//! cores, 16 CPU cores, 8 memory nodes on an 8×8 mesh; 48 KB 4-way L1
//! with 128 B lines per GPU core; 8 MB 16-way LLC; FR-FCFS GDDR5 DRAM;
//! 128-bit channels, 2 VCs × 4 flits, iSLIP allocation with CPU priority.

use crate::layout::Layout;

/// Which Figure-1 layout to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Fig. 1a — memory column between CPUs and GPUs (the paper's
    /// baseline; isolates CPU/GPU traffic).
    Baseline,
    /// Fig. 1b — memory nodes at the die edge (top row).
    EdgeB,
    /// Fig. 1c — clustered CPU cores.
    ClusteredC,
    /// Fig. 1d — node types spread to distribute traffic.
    DistributedD,
}

impl LayoutKind {
    /// All layouts, in Figure-1 order.
    pub const ALL: [LayoutKind; 4] = [
        LayoutKind::Baseline,
        LayoutKind::EdgeB,
        LayoutKind::ClusteredC,
        LayoutKind::DistributedD,
    ];

    /// Short label used in figures ("Baseline", "B", "C", "D").
    pub fn label(self) -> &'static str {
        match self {
            LayoutKind::Baseline => "Baseline",
            LayoutKind::EdgeB => "B",
            LayoutKind::ClusteredC => "C",
            LayoutKind::DistributedD => "D",
        }
    }
}

/// NoC topology (Section VII evaluates all four).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// 2D mesh (baseline).
    Mesh,
    /// Single-stage crossbar with core-to-core links.
    Crossbar,
    /// Flattened butterfly (Kim+ MICRO'07): routers fully connected along
    /// each row and column.
    FlattenedButterfly,
    /// Dragonfly (Kim+ ISCA'08): fully-connected groups, one global link
    /// per router.
    Dragonfly,
}

impl Topology {
    /// All topologies, mesh first.
    pub const ALL: [Topology; 4] = [
        Topology::Mesh,
        Topology::Crossbar,
        Topology::FlattenedButterfly,
        Topology::Dragonfly,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Topology::Mesh => "Mesh",
            Topology::Crossbar => "Crossbar",
            Topology::FlattenedButterfly => "FButterfly",
            Topology::Dragonfly => "Dragonfly",
        }
    }
}

/// Per-class routing policy (mesh only; other topologies route minimally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingPolicy {
    /// Dimension-order, X first.
    DorXY,
    /// Dimension-order, Y first.
    DorYX,
    /// DyXY (Li+ DAC'06): minimal adaptive by neighbor congestion, with
    /// a dimension-order escape VC.
    DyXY,
    /// Footprint (Fu & Kim, ISCA'17): adaptivity regulated to
    /// recently-profitable output choices.
    Footprint,
    /// HARE (Jin+ 2019): history-aware endpoint-congestion adaptive
    /// routing.
    Hare,
}

impl RoutingPolicy {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            RoutingPolicy::DorXY => "XY",
            RoutingPolicy::DorYX => "YX",
            RoutingPolicy::DyXY => "DyXY",
            RoutingPolicy::Footprint => "Footprint",
            RoutingPolicy::Hare => "HARE",
        }
    }
}

/// Ablation knobs for the Delegated-Replies mechanism (defaults match
/// the paper's design; the ablation benches flip them one at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrKnobs {
    /// Delegate whenever a reply is delegatable, instead of only when
    /// the reply network is blocked. The paper argues against this: it
    /// exposes latency with no bandwidth benefit when the reply network
    /// has headroom (the G_E example of Fig. 4).
    pub delegate_always: bool,
    /// Support the *delayed hit* outcome (attach the remote request to
    /// the local MSHR). Disabling turns hits-under-miss into remote
    /// misses that bounce back to the LLC.
    pub delayed_hits: bool,
    /// Maximum delegations a memory node performs per cycle.
    pub max_per_cycle: usize,
}

impl Default for DrKnobs {
    fn default() -> Self {
        DrKnobs {
            delegate_always: false,
            delayed_hits: true,
            max_per_cycle: 2,
        }
    }
}

/// The architectural scheme under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// The carefully-designed baseline (CDR routing, CPU priority,
    /// traffic-isolating layout) with no remote-L1 mechanism.
    Baseline,
    /// The paper's contribution: speculative delegation of LLC-hit
    /// replies to the last-accessor core, triggered by reply-network
    /// back-pressure.
    DelegatedReplies,
    /// Realistic Probing (Ibrahim+ PACT'19): predict-and-probe remote
    /// L1s before going to the LLC. `fanout` is the number of remote L1s
    /// probed on a predicted-shared miss (the paper uses the authors'
    /// best configuration; probing all other cores guarantees finding a
    /// cached copy).
    RealisticProbing {
        /// Remote caches probed per predicted-shared miss.
        fanout: usize,
    },
}

impl Scheme {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::DelegatedReplies => "DR",
            Scheme::RealisticProbing { .. } => "RP",
        }
    }

    /// The paper's RP comparison point (the authors' best-performing
    /// configuration). Probing all 39 other caches would guarantee
    /// finding a copy but drowns the request network in probe traffic —
    /// the paper's "rock and a hard place"; four supplier-steered probes
    /// is the sweet spot in this implementation.
    pub fn rp_default() -> Scheme {
        Scheme::RealisticProbing { fanout: 4 }
    }
}

/// GPU L1 organization (Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1Org {
    /// Conventional private L1 per SM (baseline).
    Private,
    /// DC-L1 (Ibrahim+ HPCA'21): clusters of 8 cores share 4
    /// address-interleaved L1 slices.
    DcL1,
    /// DynEB (Ibrahim+ PACT'20): epoch-based dynamic choice between
    /// shared and private organization by delivered effective bandwidth.
    DynEB,
}

impl L1Org {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            L1Org::Private => "Private",
            L1Org::DcL1 => "DC-L1",
            L1Org::DynEB => "DynEB",
        }
    }
}

/// CTA (thread-block) scheduling policy (Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtaSched {
    /// Round-robin CTA issue across SMs (baseline, Table I).
    RoundRobin,
    /// Distributed/locality-aware CTA scheduling: consecutive CTAs go to
    /// neighboring SMs of the same cluster.
    Distributed,
}

impl CtaSched {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            CtaSched::RoundRobin => "RR",
            CtaSched::Distributed => "Dist",
        }
    }
}

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheGeometry {
    /// Number of sets. Set counts need not be a power of two (the 48 KB
    /// 4-way 128 B GPU L1 has 96 sets); indexing uses modulo.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> u64 {
        let lines = self.capacity_bytes / self.line_bytes as u64;
        assert!(
            lines.is_multiple_of(self.ways as u64),
            "capacity must divide into ways"
        );
        lines / self.ways as u64
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / self.line_bytes as u64
    }
}

/// GPU core parameters (Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Concurrent warps per SM (48 in Table I).
    pub warps_per_core: usize,
    /// Warp instructions issued per cycle (2 GTO schedulers per core in
    /// Table I).
    pub issue_width: usize,
    /// Threads per warp (32).
    pub threads_per_warp: usize,
    /// Private L1 geometry (48 KB, 4-way, 128 B lines).
    pub l1: CacheGeometry,
    /// L1 MSHR entries.
    pub mshrs: usize,
    /// Forwarded Request Queue entries (Section IV: 8).
    pub frq_entries: usize,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u32,
    /// Maximum L1 lookups per cycle (one bank).
    pub l1_ports: usize,
    /// DC-L1/DynEB cluster size (8 cores share 4 slices).
    pub cluster_cores: usize,
    /// Shared-L1 slices per cluster.
    pub cluster_slices: usize,
    /// DynEB adaptation epoch in cycles.
    pub dyneb_epoch: u64,
    /// Software-coherence L1 flush interval in cycles (kernel
    /// boundaries), staggered per core; `None` disables flushes.
    pub flush_interval: Option<u64>,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            warps_per_core: 48,
            issue_width: 2,
            threads_per_warp: 32,
            l1: CacheGeometry {
                capacity_bytes: 48 * 1024,
                ways: 4,
                line_bytes: 128,
            },
            mshrs: 64,
            frq_entries: 8,
            l1_hit_latency: 4,
            l1_ports: 2,
            cluster_cores: 8,
            cluster_slices: 4,
            dyneb_epoch: 4096,
            flush_interval: Some(30_000),
        }
    }
}

/// CPU core parameters (Table I) and trace-replayer knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Private L1 geometry (32 KB, 4-way, 64 B lines).
    pub l1: CacheGeometry,
    /// In-flight memory request window of the replayer (models MLP).
    pub window: usize,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u32,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            l1: CacheGeometry {
                capacity_bytes: 32 * 1024,
                ways: 4,
                line_bytes: 64,
            },
            window: 8,
            l1_hit_latency: 2,
        }
    }
}

/// Shared LLC parameters (Table I: 8 MB total, 1 MB per memory node).
#[derive(Debug, Clone, PartialEq)]
pub struct LlcConfig {
    /// Geometry of one slice (1 MB, 16-way, 128 B lines).
    pub slice: CacheGeometry,
    /// LLC access latency in cycles.
    pub latency: u32,
    /// Lookups per cycle per slice.
    pub ports: usize,
}

impl Default for LlcConfig {
    fn default() -> Self {
        LlcConfig {
            slice: CacheGeometry {
                capacity_bytes: 1024 * 1024,
                ways: 16,
                line_bytes: 128,
            },
            latency: 20,
            ports: 1,
        }
    }
}

/// GDDR5 timing and controller parameters (Table I, in DRAM command
/// cycles at the interface clock).
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Banks per memory controller (16).
    pub banks: usize,
    /// CAS latency.
    pub t_cl: u32,
    /// Precharge.
    pub t_rp: u32,
    /// Row cycle.
    pub t_rc: u32,
    /// Row active.
    pub t_ras: u32,
    /// RAS-to-CAS.
    pub t_rcd: u32,
    /// Activate-to-activate (different banks).
    pub t_rrd: u32,
    /// Column-to-column.
    pub t_ccd: u32,
    /// Write recovery.
    pub t_wr: u32,
    /// Average refresh interval (all-bank refresh is issued once per
    /// tREFI; 0 disables refresh).
    pub t_refi: u32,
    /// Refresh cycle time: the channel is unavailable for tRFC after a
    /// refresh is issued.
    pub t_rfc: u32,
    /// Data-bus cycles per 128 B line burst; together with `t_ccd` this
    /// sets per-controller bandwidth (~29.5 GB/s each, 236 GB/s total).
    pub burst: u32,
    /// Controller read queue capacity.
    pub queue: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 16,
            t_cl: 12,
            t_rp: 12,
            t_rc: 40,
            t_ras: 28,
            t_rcd: 12,
            t_rrd: 6,
            t_ccd: 2,
            t_wr: 12,
            t_refi: 5_460, // ~3.9 us at 1.4 GHz
            t_rfc: 180,    // ~130 ns
            burst: 6,
            queue: 64,
        }
    }
}

/// Virtual-network configuration for the shared-physical-network mode
/// (Section VII "Virtual networks" and the AVCP study of Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualNetConfig {
    /// VCs assigned to the (virtual) request network.
    pub request_vcs: usize,
    /// VCs assigned to the (virtual) reply network.
    pub reply_vcs: usize,
}

/// NoC parameters (Table I) plus the study knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct NocConfig {
    /// Topology.
    pub topology: Topology,
    /// Routing used by request-class packets (CDR: YX for requests).
    pub routing_request: RoutingPolicy,
    /// Routing used by reply-class packets (CDR: XY for replies).
    pub routing_reply: RoutingPolicy,
    /// Channel (flit) width in bytes (16 = 128-bit).
    pub channel_bytes: u32,
    /// Virtual channels per class per input port (2 in Table I).
    pub vcs: usize,
    /// Buffer depth per VC in flits (4 in Table I).
    pub vc_buf_flits: usize,
    /// Router pipeline depth in cycles (4-stage: RC, VA, SA, ST).
    pub pipeline: u32,
    /// `Some` = single physical network with per-class virtual networks;
    /// `None` = physically separate request and reply networks (baseline).
    pub virtual_nets: Option<VirtualNetConfig>,
    /// Memory-node injection buffer capacity in packets; when full, the
    /// node blocks (stops accepting requests) — the clogging mechanism.
    pub mem_inj_buf_pkts: usize,
    /// Core-side network-interface injection queue in packets.
    pub core_inj_buf_pkts: usize,
    /// iSLIP switch-allocation iterations per cycle (1 in Table I's
    /// class of routers; more iterations densify the crossbar matching).
    pub sa_iterations: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            topology: Topology::Mesh,
            // The baseline uses CDR: YX-order requests, XY-order replies.
            routing_request: RoutingPolicy::DorYX,
            routing_reply: RoutingPolicy::DorXY,
            channel_bytes: 16,
            vcs: 2,
            vc_buf_flits: 4,
            pipeline: 4,
            virtual_nets: None,
            mem_inj_buf_pkts: 16,
            core_inj_buf_pkts: 16,
            sa_iterations: 1,
        }
    }
}

/// Inter-chip fabric topology (second-level interconnect above the
/// per-chip NoCs; see DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricTopology {
    /// Point-to-point pair: exactly two chips joined by one
    /// bidirectional link (two directed links).
    Pair,
    /// Unidirectional-distance ring: each chip links to both neighbors;
    /// routing takes the shorter direction (ties go clockwise).
    Ring,
    /// Fully-connected package: a directed link between every ordered
    /// chip pair; every message is a single hop.
    All,
}

impl FabricTopology {
    /// All fabric topologies, smallest first.
    pub const ALL: [FabricTopology; 3] = [
        FabricTopology::Pair,
        FabricTopology::Ring,
        FabricTopology::All,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            FabricTopology::Pair => "Pair",
            FabricTopology::Ring => "Ring",
            FabricTopology::All => "All",
        }
    }
}

/// How cache lines are interleaved across chips in a multi-chip package.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricInterleave {
    /// Seeded XOR-fold hash of the line address (the same family as the
    /// on-chip [`AddressMap`](crate::AddressMap)); spreads hot sets.
    Hash,
    /// Plain modulo of the line address — adversarially simple striping,
    /// useful for constructing worst-case cross-chip traffic.
    Modulo,
}

impl FabricInterleave {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            FabricInterleave::Hash => "Hash",
            FabricInterleave::Modulo => "Modulo",
        }
    }
}

/// Inter-chip fabric parameters. All of these are **identity knobs**:
/// every field changes simulated behavior, so every field participates
/// in the canonical fingerprint and in snapshots. The fabric has no
/// execution-mode knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Number of chips in the package (each one a full `System`).
    pub chips: usize,
    /// Inter-chip topology.
    pub topology: FabricTopology,
    /// Request-plane link bandwidth in flits per cycle per directed link.
    pub link_flits: u32,
    /// Request-plane per-hop latency in cycles.
    pub hop_latency: u32,
    /// Link-controller queue depth in packets (per directed link);
    /// full queues back-pressure the sender hop-by-hop.
    pub queue_pkts: usize,
    /// Gateway count per chip: the first `gateways` memory nodes (in
    /// dense `MemId` order) carry cross-chip traffic on and off chip.
    pub gateways: usize,
    /// Line-address interleaving across chips.
    pub interleave: FabricInterleave,
    /// Reply-plane link bandwidth in flits per cycle per directed link
    /// (the headline experiment degrades this independently).
    pub reply_link_flits: u32,
    /// Reply-plane per-hop latency in cycles.
    pub reply_hop_latency: u32,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            chips: 2,
            topology: FabricTopology::Pair,
            link_flits: 4,
            hop_latency: 4,
            queue_pkts: 8,
            gateways: 2,
            interleave: FabricInterleave::Hash,
            reply_link_flits: 4,
            reply_hop_latency: 4,
        }
    }
}

/// Which adaptive-control policy drives the epoch-boundary control
/// loop (see DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlPolicyKind {
    /// Observe and log at every decision boundary, never actuate. A
    /// run under this policy produces byte-identical reports to an
    /// uncontrolled run — the control-loop equivalent of a no-op.
    NoOp,
    /// Hysteresis threshold ladder: escalate
    /// Baseline → Realistic Probing → Delegated Replies when clogging
    /// signals cross the *enter* thresholds, de-escalate when they fall
    /// below the *exit* thresholds. (The middle rung stands in for the
    /// paper's AVCP point: a mitigation that spends request-network
    /// bandwidth rather than reply-network delegation.)
    Hysteresis,
}

impl ControlPolicyKind {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            ControlPolicyKind::NoOp => "NoOp",
            ControlPolicyKind::Hysteresis => "Hysteresis",
        }
    }
}

/// Adaptive-control parameters. All of these are **identity knobs**:
/// the controller actuates `set_scheme` mid-run, so every field changes
/// simulated behavior and every field participates in the canonical
/// fingerprint and in snapshots. The controller has no execution-mode
/// knobs.
///
/// Blocked-fraction thresholds are expressed in per-mille (‰, 0..=1000)
/// of a decision interval so the config stays `Eq`/`Hash`-able.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlConfig {
    /// Which policy evaluates the telemetry snapshot.
    pub policy: ControlPolicyKind,
    /// Decision interval in cycles: the controller observes and (maybe)
    /// actuates only at multiples of this, mirroring telemetry epochs.
    pub interval: u64,
    /// Escalate when any memory node spent at least this fraction
    /// (per-mille) of the last interval blocked.
    pub enter_blocked_pm: u32,
    /// De-escalate when every node's blocked fraction (per-mille) over
    /// the last interval is below this.
    pub exit_blocked_pm: u32,
    /// Escalate when a blocked streak (consecutive hot intervals on one
    /// node) has lasted at least this many cycles — the episode-duration
    /// trigger.
    pub enter_episode: u64,
    /// A streak must be fully cold for de-escalation; this many cycles
    /// of sustained calm are required before stepping down.
    pub exit_episode: u64,
    /// Minimum decision intervals between scheme changes (dwell), so
    /// the ladder cannot thrash within one clog episode.
    pub dwell: u64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            policy: ControlPolicyKind::Hysteresis,
            interval: 500,
            enter_blocked_pm: 250,
            exit_blocked_pm: 50,
            enter_episode: 1_000,
            exit_episode: 2_000,
            dwell: 2,
        }
    }
}

impl ControlConfig {
    /// The static no-op policy with default observation cadence.
    pub fn noop() -> Self {
        ControlConfig {
            policy: ControlPolicyKind::NoOp,
            ..ControlConfig::default()
        }
    }
}

/// The complete simulated-system configuration (Table I defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Chip layout family.
    pub layout: LayoutKind,
    /// Mesh width.
    pub mesh_width: usize,
    /// Mesh height.
    pub mesh_height: usize,
    /// GPU core count (40).
    pub n_gpu: usize,
    /// CPU core count (16).
    pub n_cpu: usize,
    /// Memory node count (8).
    pub n_mem: usize,
    /// GPU core parameters.
    pub gpu: GpuConfig,
    /// CPU core parameters.
    pub cpu: CpuConfig,
    /// LLC parameters.
    pub llc: LlcConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// NoC parameters.
    pub noc: NocConfig,
    /// Scheme under test.
    pub scheme: Scheme,
    /// Delegated-Replies ablation knobs.
    pub dr: DrKnobs,
    /// GPU L1 organization.
    pub l1_org: L1Org,
    /// CTA scheduling policy.
    pub cta_sched: CtaSched,
    /// Random seed for the address-mapping hash and workloads.
    pub seed: u64,
    /// Inter-chip fabric; `None` = single-chip system (the default, and
    /// byte-identical to builds that predate the fabric).
    pub fabric: Option<FabricConfig>,
    /// Adaptive control loop; `None` = static scheme for the whole run
    /// (the default, and byte-identical to builds that predate the
    /// controller).
    pub control: Option<ControlConfig>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            layout: LayoutKind::Baseline,
            mesh_width: 8,
            mesh_height: 8,
            n_gpu: 40,
            n_cpu: 16,
            n_mem: 8,
            gpu: GpuConfig::default(),
            cpu: CpuConfig::default(),
            llc: LlcConfig::default(),
            dram: DramConfig::default(),
            noc: NocConfig::default(),
            scheme: Scheme::Baseline,
            dr: DrKnobs::default(),
            l1_org: L1Org::Private,
            cta_sched: CtaSched::RoundRobin,
            seed: 0x0C10_64E7,
            fabric: None,
            control: None,
        }
    }
}

impl SystemConfig {
    /// Resolve the configured [`Layout`].
    ///
    /// # Panics
    ///
    /// Panics if the node counts do not tile the mesh.
    pub fn layout(&self) -> Layout {
        Layout::build(
            self.layout,
            self.mesh_width,
            self.mesh_height,
            self.n_gpu,
            self.n_cpu,
            self.n_mem,
        )
    }

    /// Total node count (per chip).
    pub fn nodes(&self) -> usize {
        self.mesh_width * self.mesh_height
    }

    /// Number of chips in the package (1 when no fabric is configured).
    pub fn chips(&self) -> usize {
        self.fabric.as_ref().map_or(1, |f| f.chips)
    }

    /// Attach an inter-chip fabric.
    pub fn with_fabric(mut self, fabric: FabricConfig) -> Self {
        self.fabric = Some(fabric);
        self
    }

    /// Attach an adaptive control loop.
    pub fn with_control(mut self, control: ControlConfig) -> Self {
        self.control = Some(control);
        self
    }

    /// Set CDR routing orders `(request, reply)`.
    pub fn with_routing(mut self, request: RoutingPolicy, reply: RoutingPolicy) -> Self {
        self.noc.routing_request = request;
        self.noc.routing_reply = reply;
        self
    }

    /// Set the scheme under test.
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Per-layout best routing, as established in Section V: the
    /// baseline uses YX-XY CDR; layouts B and C use XY-YX; layout D uses
    /// XY-XY (different orders do not help when traffic is not
    /// separable).
    pub fn best_routing_for(layout: LayoutKind) -> (RoutingPolicy, RoutingPolicy) {
        match layout {
            LayoutKind::Baseline => (RoutingPolicy::DorYX, RoutingPolicy::DorXY),
            LayoutKind::EdgeB | LayoutKind::ClusteredC => {
                (RoutingPolicy::DorXY, RoutingPolicy::DorYX)
            }
            LayoutKind::DistributedD => (RoutingPolicy::DorXY, RoutingPolicy::DorXY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = SystemConfig::default();
        assert_eq!(c.n_gpu, 40);
        assert_eq!(c.n_cpu, 16);
        assert_eq!(c.n_mem, 8);
        assert_eq!(c.gpu.warps_per_core, 48);
        assert_eq!(c.gpu.mshrs, 64);
        assert_eq!(c.gpu.l1.capacity_bytes, 48 * 1024);
        assert_eq!(c.gpu.l1.ways, 4);
        assert_eq!(c.gpu.l1.line_bytes, 128);
        assert_eq!(c.cpu.l1.line_bytes, 64);
        assert_eq!(c.llc.slice.capacity_bytes, 1024 * 1024);
        assert_eq!(c.llc.slice.ways, 16);
        assert_eq!(c.dram.banks, 16);
        assert_eq!(c.dram.t_cl, 12);
        assert_eq!(c.dram.t_rc, 40);
        assert_eq!(c.noc.channel_bytes, 16);
        assert_eq!(c.noc.vcs, 2);
        assert_eq!(c.noc.vc_buf_flits, 4);
        // CDR baseline: YX requests, XY replies.
        assert_eq!(c.noc.routing_request, RoutingPolicy::DorYX);
        assert_eq!(c.noc.routing_reply, RoutingPolicy::DorXY);
    }

    #[test]
    fn cache_geometry_sets() {
        let g = CacheGeometry {
            capacity_bytes: 48 * 1024,
            ways: 4,
            line_bytes: 128,
        };
        assert_eq!(g.lines(), 384);
        assert_eq!(g.sets(), 96);
    }

    #[test]
    fn llc_geometry_is_power_of_two_sets() {
        let c = LlcConfig::default();
        assert_eq!(c.slice.sets(), 512);
    }

    #[test]
    fn builder_methods() {
        let c = SystemConfig::default()
            .with_scheme(Scheme::DelegatedReplies)
            .with_routing(RoutingPolicy::DorXY, RoutingPolicy::DorYX);
        assert_eq!(c.scheme, Scheme::DelegatedReplies);
        assert_eq!(c.noc.routing_request, RoutingPolicy::DorXY);
    }

    #[test]
    fn fabric_defaults_and_chip_count() {
        let c = SystemConfig::default();
        assert!(c.fabric.is_none());
        assert_eq!(c.chips(), 1);
        let f = FabricConfig::default();
        assert_eq!(f.chips, 2);
        assert_eq!(f.topology, FabricTopology::Pair);
        assert_eq!(f.link_flits, 4);
        assert_eq!(f.reply_link_flits, 4);
        let c = c.with_fabric(f);
        assert_eq!(c.chips(), 2);
    }

    #[test]
    fn control_defaults_and_builder() {
        let c = SystemConfig::default();
        assert!(c.control.is_none());
        let ctl = ControlConfig::default();
        assert_eq!(ctl.policy, ControlPolicyKind::Hysteresis);
        assert_eq!(ctl.interval, 500);
        assert!(ctl.enter_blocked_pm > ctl.exit_blocked_pm);
        assert_eq!(ControlConfig::noop().policy, ControlPolicyKind::NoOp);
        let c = c.with_control(ctl);
        assert_eq!(c.control, Some(ctl));
    }

    #[test]
    fn labels_are_short() {
        assert_eq!(Scheme::DelegatedReplies.label(), "DR");
        assert_eq!(Topology::Mesh.label(), "Mesh");
        assert_eq!(LayoutKind::EdgeB.label(), "B");
        assert_eq!(RoutingPolicy::Hare.label(), "HARE");
        assert_eq!(L1Org::DcL1.label(), "DC-L1");
        assert_eq!(CtaSched::RoundRobin.label(), "RR");
    }
}
