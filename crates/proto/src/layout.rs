//! Chip layouts (the paper's Figure 1).
//!
//! A [`Layout`] assigns a [`NodeKind`] — GPU core, CPU core, or memory
//! node — to every position of the node grid. Four layouts are modeled:
//!
//! * **Baseline** (Fig. 1a): CPU columns on the left, one (or more) memory
//!   column between the CPUs and the GPUs, GPU columns on the right. This
//!   isolates CPU and GPU traffic except inside memory-node routers.
//! * **B** (Fig. 1b): memory nodes occupy the top row (die-edge memory
//!   controllers), CPU columns on the left, GPU columns on the right, with
//!   one mixed column.
//! * **C** (Fig. 1c): CPU cores clustered in a square block in the
//!   top-left corner (minimizing CPU-to-CPU hops), memory nodes in a
//!   2-row block below them (GPU traffic multiplexes onto 4 column links).
//! * **D** (Fig. 1d): memory nodes and CPU cores spread across the chip to
//!   distribute traffic, as in prior work (Kayiran+ MICRO'14, BiNoCHS).
//!
//! The generators are parameterized over grid size and node counts so the
//! paper's node-count (10×10, 12×12) and node-mix sensitivity studies can
//! reuse them.

use crate::config::LayoutKind;
use crate::ids::{CoreId, MemId, NodeId};
use std::fmt;

/// What occupies a grid position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A GPU core (SM + private L1).
    Gpu(CoreId),
    /// A CPU core (latency-sensitive).
    Cpu(CoreId),
    /// A memory node: one LLC slice + one memory controller.
    Mem(MemId),
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Gpu(c) => write!(f, "G{}", c.0),
            NodeKind::Cpu(c) => write!(f, "C{}", c.0),
            NodeKind::Mem(m) => write!(f, "M{}", m.0),
        }
    }
}

/// A fully-resolved chip layout: grid dimensions plus the kind of every
/// node, with dense per-kind core numbering in row-major encounter order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    kind: LayoutKind,
    width: usize,
    height: usize,
    nodes: Vec<NodeKind>,
    gpu_nodes: Vec<NodeId>,
    cpu_nodes: Vec<NodeId>,
    mem_nodes: Vec<NodeId>,
}

impl Layout {
    /// Build a layout.
    ///
    /// # Panics
    ///
    /// Panics if `n_gpu + n_cpu + n_mem != width * height`, or if the
    /// requested counts cannot be placed by the chosen generator (e.g.
    /// more memory nodes than grid rows for [`LayoutKind::Baseline`]).
    pub fn build(
        kind: LayoutKind,
        width: usize,
        height: usize,
        n_gpu: usize,
        n_cpu: usize,
        n_mem: usize,
    ) -> Self {
        assert_eq!(
            n_gpu + n_cpu + n_mem,
            width * height,
            "node counts must tile the {width}x{height} grid"
        );
        let raw = match kind {
            LayoutKind::Baseline => assign_baseline(width, height, n_cpu, n_mem),
            LayoutKind::EdgeB => assign_edge_b(width, height, n_cpu, n_mem),
            LayoutKind::ClusteredC => assign_clustered_c(width, height, n_cpu, n_mem),
            LayoutKind::DistributedD => assign_distributed_d(width, height, n_cpu, n_mem),
        };
        // Densely number each kind in row-major encounter order.
        let (mut g, mut c, mut m) = (0u16, 0u16, 0u16);
        let mut nodes = Vec::with_capacity(raw.len());
        let (mut gpu_nodes, mut cpu_nodes, mut mem_nodes) = (vec![], vec![], vec![]);
        for (i, r) in raw.iter().enumerate() {
            let id = NodeId(i as u16);
            nodes.push(match r {
                RawKind::Gpu => {
                    gpu_nodes.push(id);
                    g += 1;
                    NodeKind::Gpu(CoreId(g - 1))
                }
                RawKind::Cpu => {
                    cpu_nodes.push(id);
                    c += 1;
                    NodeKind::Cpu(CoreId(c - 1))
                }
                RawKind::Mem => {
                    mem_nodes.push(id);
                    m += 1;
                    NodeKind::Mem(MemId(m - 1))
                }
            });
        }
        assert_eq!(gpu_nodes.len(), n_gpu, "{kind:?} placed wrong GPU count");
        assert_eq!(cpu_nodes.len(), n_cpu, "{kind:?} placed wrong CPU count");
        assert_eq!(mem_nodes.len(), n_mem, "{kind:?} placed wrong mem count");
        Layout {
            kind,
            width,
            height,
            nodes,
            gpu_nodes,
            cpu_nodes,
            mem_nodes,
        }
    }

    /// Which layout family this is.
    pub fn kind(&self) -> LayoutKind {
        self.kind
    }

    /// Grid width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The kind of node at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn kind_of(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()]
    }

    /// Grid coordinates `(x, y)` = (column, row) of a node.
    pub fn coords(&self, id: NodeId) -> (usize, usize) {
        (id.index() % self.width, id.index() / self.width)
    }

    /// The node at grid coordinates `(x, y)`.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        assert!(x < self.width && y < self.height);
        NodeId((y * self.width + x) as u16)
    }

    /// All GPU nodes, in dense [`CoreId`] order.
    pub fn gpu_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.gpu_nodes.iter().copied()
    }

    /// All CPU nodes, in dense [`CoreId`] order.
    pub fn cpu_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.cpu_nodes.iter().copied()
    }

    /// All memory nodes, in dense [`MemId`] order.
    pub fn mem_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.mem_nodes.iter().copied()
    }

    /// The node hosting GPU core `c`.
    pub fn gpu_node(&self, c: CoreId) -> NodeId {
        self.gpu_nodes[c.index()]
    }

    /// The node hosting CPU core `c`.
    pub fn cpu_node(&self, c: CoreId) -> NodeId {
        self.cpu_nodes[c.index()]
    }

    /// The node hosting memory node `m`.
    pub fn mem_node(&self, m: MemId) -> NodeId {
        self.mem_nodes[m.index()]
    }

    /// Manhattan hop distance between two nodes on the mesh.
    pub fn mesh_hops(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Render the grid as ASCII art (one row per line), for debugging and
    /// the layout-explorer example.
    pub fn ascii(&self) -> String {
        let mut s = String::new();
        for y in 0..self.height {
            for x in 0..self.width {
                let k = self.kind_of(self.node_at(x, y));
                let ch = match k {
                    NodeKind::Gpu(_) => 'G',
                    NodeKind::Cpu(_) => 'C',
                    NodeKind::Mem(_) => 'M',
                };
                s.push(ch);
                if x + 1 < self.width {
                    s.push(' ');
                }
            }
            s.push('\n');
        }
        s
    }
}

#[derive(Clone, Copy, PartialEq)]
enum RawKind {
    Gpu,
    Cpu,
    Mem,
}

/// Baseline (Fig. 1a): CPU columns left, memory column(s) in the middle,
/// GPU columns right. CPU cells fill column-major from the left; memory
/// cells fill the next column(s) top-down; everything else is GPU.
fn assign_baseline(w: usize, h: usize, n_cpu: usize, n_mem: usize) -> Vec<RawKind> {
    let mut grid = vec![RawKind::Gpu; w * h];
    let mut placed_cpu = 0;
    let mut col = 0;
    'cpu: for x in 0..w {
        for y in 0..h {
            if placed_cpu == n_cpu {
                break 'cpu;
            }
            grid[y * w + x] = RawKind::Cpu;
            placed_cpu += 1;
            col = x;
        }
    }
    // Memory starts in the first column after the last (possibly
    // partially-filled) CPU column.
    let mem_start_col = if n_cpu == 0 { 0 } else { col + 1 };
    let mut placed_mem = 0;
    'mem: for x in mem_start_col..w {
        for y in 0..h {
            if placed_mem == n_mem {
                break 'mem;
            }
            grid[y * w + x] = RawKind::Mem;
            placed_mem += 1;
        }
    }
    assert_eq!(placed_mem, n_mem, "grid too small for memory column");
    grid
}

/// Layout B (Fig. 1b): memory nodes occupy the top row left-to-right;
/// below it, CPU columns fill from the left, the remainder of a mixed
/// column is GPU, and the rest is GPU.
fn assign_edge_b(w: usize, h: usize, n_cpu: usize, n_mem: usize) -> Vec<RawKind> {
    assert!(n_mem <= w, "layout B puts all memory nodes in the top row");
    let mut grid = vec![RawKind::Gpu; w * h];
    for cell in grid.iter_mut().take(n_mem) {
        *cell = RawKind::Mem;
    }
    let mut placed = 0;
    'cpu: for x in 0..w {
        for y in 1..h {
            if placed == n_cpu {
                break 'cpu;
            }
            grid[y * w + x] = RawKind::Cpu;
            placed += 1;
        }
    }
    assert_eq!(placed, n_cpu, "grid too small for CPU columns");
    grid
}

/// Layout C (Fig. 1c): a square-ish CPU cluster in the top-left corner and
/// a block of memory nodes directly below it (4 columns wide on the
/// baseline, so vertical GPU traffic multiplexes onto 4 links).
fn assign_clustered_c(w: usize, h: usize, n_cpu: usize, n_mem: usize) -> Vec<RawKind> {
    let mut grid = vec![RawKind::Gpu; w * h];
    // CPU cluster: smallest square that holds n_cpu, filled row-major.
    let side = (n_cpu as f64).sqrt().ceil() as usize;
    let side = side.min(w);
    let mut placed = 0;
    let mut cluster_rows = 0;
    'cpu: for y in 0..h {
        for x in 0..side {
            if placed == n_cpu {
                break 'cpu;
            }
            grid[y * w + x] = RawKind::Cpu;
            placed += 1;
            cluster_rows = y + 1;
        }
    }
    assert_eq!(placed, n_cpu, "grid too small for CPU cluster");
    // Memory block below the cluster, `side` columns wide.
    let mut placed_mem = 0;
    'mem: for y in cluster_rows..h {
        for x in 0..side {
            if placed_mem == n_mem {
                break 'mem;
            }
            grid[y * w + x] = RawKind::Mem;
            placed_mem += 1;
        }
    }
    assert_eq!(placed_mem, n_mem, "grid too small for memory block");
    grid
}

/// Layout D (Fig. 1d): memory nodes one per row alternating between a
/// left-of-center and right-of-center column; CPU cores spread evenly
/// over the remaining cells; GPUs elsewhere.
fn assign_distributed_d(w: usize, h: usize, n_cpu: usize, n_mem: usize) -> Vec<RawKind> {
    let mut grid = vec![RawKind::Gpu; w * h];
    let (lc, rc) = (w / 4, w - 1 - w / 4);
    let mut placed_mem = 0;
    let mut y = 0;
    while placed_mem < n_mem {
        let x = if (y / h).is_multiple_of(2) {
            // first pass: alternate left/right per row
            if y % 2 == 0 {
                lc
            } else {
                rc
            }
        } else {
            // additional passes (n_mem > h): swap sides
            if y % 2 == 0 {
                rc
            } else {
                lc
            }
        };
        let cell = (y % h) * w + x;
        if grid[cell] == RawKind::Gpu {
            grid[cell] = RawKind::Mem;
            placed_mem += 1;
        }
        y += 1;
    }
    // Spread CPUs with an even stride over the remaining cells.
    let free: Vec<usize> = (0..w * h).filter(|&i| grid[i] == RawKind::Gpu).collect();
    assert!(free.len() >= n_cpu, "grid too small for CPUs");
    for k in 0..n_cpu {
        let idx = k * free.len() / n_cpu + free.len() / (2 * n_cpu);
        grid[free[idx]] = RawKind::Cpu;
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(l: &Layout) -> (usize, usize, usize) {
        (
            l.gpu_nodes().count(),
            l.cpu_nodes().count(),
            l.mem_nodes().count(),
        )
    }

    #[test]
    fn baseline_matches_paper() {
        let l = Layout::build(LayoutKind::Baseline, 8, 8, 40, 16, 8);
        assert_eq!(counts(&l), (40, 16, 8));
        // Memory nodes form column 2 (between CPUs and GPUs).
        for m in l.mem_nodes() {
            assert_eq!(l.coords(m).0, 2);
        }
        // CPUs live strictly left of memory, GPUs strictly right.
        for c in l.cpu_nodes() {
            assert!(l.coords(c).0 < 2);
        }
        for g in l.gpu_nodes() {
            assert!(l.coords(g).0 > 2);
        }
    }

    #[test]
    fn edge_b_matches_paper() {
        let l = Layout::build(LayoutKind::EdgeB, 8, 8, 40, 16, 8);
        assert_eq!(counts(&l), (40, 16, 8));
        // All memory nodes in the top row.
        for m in l.mem_nodes() {
            assert_eq!(l.coords(m).1, 0);
        }
        // Two full CPU columns plus 2 cores in a mixed column.
        let mixed: Vec<_> = l.cpu_nodes().filter(|&c| l.coords(c).0 == 2).collect();
        assert_eq!(mixed.len(), 2);
    }

    #[test]
    fn clustered_c_matches_paper() {
        let l = Layout::build(LayoutKind::ClusteredC, 8, 8, 40, 16, 8);
        assert_eq!(counts(&l), (40, 16, 8));
        // CPU cluster is the 4x4 top-left block.
        for c in l.cpu_nodes() {
            let (x, y) = l.coords(c);
            assert!(x < 4 && y < 4, "CPU at ({x},{y}) outside cluster");
        }
        // Memory block spans 4 columns (rows 4-5), so vertical GPU traffic
        // multiplexes onto 4 links.
        for m in l.mem_nodes() {
            let (x, y) = l.coords(m);
            assert!(x < 4 && (y == 4 || y == 5));
        }
    }

    #[test]
    fn distributed_d_spreads_nodes() {
        let l = Layout::build(LayoutKind::DistributedD, 8, 8, 40, 16, 8);
        assert_eq!(counts(&l), (40, 16, 8));
        // One memory node per row.
        for y in 0..8 {
            let in_row = l.mem_nodes().filter(|&m| l.coords(m).1 == y).count();
            assert_eq!(in_row, 1, "row {y}");
        }
        // CPUs are not all in one half of the chip.
        let left = l.cpu_nodes().filter(|&c| l.coords(c).0 < 4).count();
        assert!((4..=12).contains(&left), "CPUs clumped: {left} on the left");
    }

    #[test]
    fn scaled_meshes_build() {
        for (w, h) in [(10, 10), (12, 12)] {
            let n = w * h;
            let (mem, cpu) = (h, 2 * h);
            let gpu = n - mem - cpu;
            for kind in [
                LayoutKind::Baseline,
                LayoutKind::EdgeB,
                LayoutKind::ClusteredC,
                LayoutKind::DistributedD,
            ] {
                let l = Layout::build(kind, w, h, gpu, cpu, mem);
                assert_eq!(counts(&l), (gpu, cpu, mem), "{kind:?} {w}x{h}");
            }
        }
    }

    #[test]
    fn node_mix_variants_build() {
        // Section VII node-mix sweep on the baseline layout.
        for (gpu, cpu, mem) in [(48, 8, 8), (32, 24, 8), (52, 8, 4), (40, 8, 16)] {
            let l = Layout::build(LayoutKind::Baseline, 8, 8, gpu, cpu, mem);
            assert_eq!(counts(&l), (gpu, cpu, mem));
        }
    }

    #[test]
    fn core_numbering_is_dense_and_stable() {
        let l = Layout::build(LayoutKind::Baseline, 8, 8, 40, 16, 8);
        for (i, n) in l.gpu_nodes().enumerate() {
            assert_eq!(l.kind_of(n), NodeKind::Gpu(CoreId(i as u16)));
            assert_eq!(l.gpu_node(CoreId(i as u16)), n);
        }
        for (i, n) in l.mem_nodes().enumerate() {
            assert_eq!(l.kind_of(n), NodeKind::Mem(MemId(i as u16)));
        }
    }

    #[test]
    fn coords_round_trip() {
        let l = Layout::build(LayoutKind::Baseline, 8, 8, 40, 16, 8);
        for i in 0..64 {
            let n = NodeId(i);
            let (x, y) = l.coords(n);
            assert_eq!(l.node_at(x, y), n);
        }
    }

    #[test]
    fn ascii_renders_grid() {
        let l = Layout::build(LayoutKind::Baseline, 8, 8, 40, 16, 8);
        let art = l.ascii();
        assert_eq!(art.lines().count(), 8);
        assert!(art.lines().next().unwrap().starts_with("C C M G"));
    }

    #[test]
    fn mesh_hops_is_manhattan() {
        let l = Layout::build(LayoutKind::Baseline, 8, 8, 40, 16, 8);
        assert_eq!(l.mesh_hops(l.node_at(0, 0), l.node_at(3, 4)), 7);
        assert_eq!(l.mesh_hops(l.node_at(5, 5), l.node_at(5, 5)), 0);
    }
}
