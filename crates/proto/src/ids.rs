//! Strongly-typed identifiers used throughout the simulator.
//!
//! Newtypes keep node indices, core indices, memory-controller indices,
//! byte addresses, and cache-line addresses from being confused with one
//! another (C-NEWTYPE).

use std::fmt;

/// A simulation cycle count. The whole chip runs in a single clock domain
/// (the GPU clock, 1.4 GHz in the paper's Table I).
pub type Cycle = u64;

/// Index of a node (router endpoint) on the chip. The baseline
/// architecture is an 8×8 grid, so node ids run 0..64 in row-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node's numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u16)
    }
}

/// Index of a compute core (CPU or GPU), dense within its own kind:
/// GPU cores are `CoreId(0..40)`, CPU cores `CoreId(0..16)` in the
/// baseline. The pairing with a [`NodeId`] is defined by the chip layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u16);

impl CoreId {
    /// The core's numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Index of a memory node (LLC slice + memory controller), `0..8` in the
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MemId(pub u16);

impl MemId {
    /// The memory node's numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A 48-bit physical byte address (the paper assumes a 48-bit address
/// space, following Rogers et al., MICRO 2012).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Mask to 48 bits on construction.
    pub fn new(raw: u64) -> Self {
        Addr(raw & 0xFFFF_FFFF_FFFF)
    }

    /// The cache-line address for a given line size (must be a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `line_bytes` is not a power of two.
    pub fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 >> line_bytes.trailing_zeros())
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line-granular address (byte address divided by the line size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Convert back to the byte address of the first byte in the line.
    pub fn to_addr(self, line_bytes: u64) -> Addr {
        Addr::new(self.0 << line_bytes.trailing_zeros())
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_masks_to_48_bits() {
        let a = Addr::new(u64::MAX);
        assert_eq!(a.0, 0xFFFF_FFFF_FFFF);
    }

    #[test]
    fn line_addr_round_trip() {
        let a = Addr::new(0x1234_5680);
        let l = a.line(128);
        assert_eq!(l.to_addr(128).0, 0x1234_5680 & !127);
    }

    #[test]
    fn line_strips_offset_bits() {
        assert_eq!(Addr::new(0x100).line(128), Addr::new(0x17f).line(128));
        assert_ne!(Addr::new(0x100).line(128), Addr::new(0x180).line(128));
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(CoreId(7).to_string(), "c7");
        assert_eq!(MemId(1).to_string(), "m1");
        assert_eq!(Addr::new(16).to_string(), "0x10");
        assert_eq!(LineAddr(2).to_string(), "L0x2");
    }

    #[test]
    fn node_id_from_usize() {
        let n: NodeId = 12usize.into();
        assert_eq!(n.index(), 12);
    }
}
