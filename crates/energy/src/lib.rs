//! # clognet-energy
//!
//! A DSENT/CACTI-style analytical area and energy model for the NoC and
//! the Delegated-Replies hardware, calibrated at a 22 nm node to the
//! paper's absolute figures:
//!
//! * baseline dual mesh (2 × 64 routers, 16 B channels, 2 VC × 4 flits):
//!   **2.27 mm²**;
//! * double-bandwidth mesh (32 B channels): **5.76 mm²** (2.5×, because
//!   the router-internal crossbar is quadratic in channel width × port
//!   count while buffers grow linearly);
//! * 40 FRQs of 8 entries: **0.092 mm²**;
//! * 6-bit core pointers in LLC tags + MSHRs: **0.08 mm²**;
//! * total Delegated-Replies overhead: **0.172 mm²** (≈5 % of the extra
//!   area a double-bandwidth NoC costs).
//!
//! Dynamic energy is charged per flit-hop (router traversal + 4.3 mm
//! link); static/background power is proportional to area plus a fixed
//! system term, so shorter execution time reduces total system energy —
//! the paper's 13.6 % total-energy saving is mostly runtime-driven.

use clognet_proto::{CacheGeometry, Topology};

/// mm² per (port² · byte²): router crossbar, quadratic in both.
const K_XBAR: f64 = 0.002_383 / 3_200.0;
/// Fraction of the linear area term spent on buffers (rest is links).
const LINEAR_BUF_SHARE: f64 = 0.6;
/// Baseline linear area coefficient: mm² per channel byte for the dual
/// mesh (buffers + links). Derived from the calibration pair.
const K_LINEAR: f64 = 0.103_8;
/// Baseline dual-mesh structural counts used to normalize the linear
/// coefficients.
const BASE_BUF_UNITS: f64 = 2.0 * 64.0 * 5.0 * 2.0 * 4.0; // nets*routers*ports*vcs*flits
const BASE_LINK_UNITS: f64 = 2.0 * 224.0 * 4.3; // nets * directed links * mm

/// SRAM density: mm² per bit at 22 nm (calibrated so 6-bit pointers over
/// the 8 MB LLC's 65 536 lines cost 0.08 mm²).
const K_SRAM_BIT: f64 = 0.08 / (6.0 * 65_536.0);
/// FRQ queue cell: mm² per entry (40 cores × 8 entries = 0.092 mm²).
const K_FRQ_ENTRY: f64 = 0.092 / 320.0;

/// Dynamic energy per flit per router traversal, J/byte (22 nm ballpark:
/// ~0.6 pJ/bit → 4.8 pJ/byte).
const E_ROUTER_BYTE: f64 = 4.8e-12;
/// Dynamic link energy, J/byte/mm (~0.15 pJ/bit/mm).
const E_LINK_BYTE_MM: f64 = 1.2e-12;
/// NoC link length in mm (Section VI).
pub const LINK_MM: f64 = 4.3;
/// Static NoC power per mm² (W/mm², leakage at 22 nm).
const P_STATIC_MM2: f64 = 0.08;
/// Fixed rest-of-system power (cores + caches + DRAM I/O), watts. Only
/// relative energies matter; this sets how strongly runtime dominates.
pub const P_SYSTEM_FIXED: f64 = 120.0;
/// System clock (GPU clock, Table I).
pub const CLOCK_HZ: f64 = 1.4e9;

/// Structural description of one physical network for the area model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetShape {
    /// Topology (determines router/port/link counts on the grid).
    pub topology: Topology,
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Channel width in bytes.
    pub channel_bytes: u32,
    /// VCs per port.
    pub vcs: usize,
    /// Buffer depth per VC in flits.
    pub vc_buf_flits: usize,
}

impl NetShape {
    /// (sum over routers of ports², total VC buffer units, directed-link
    /// mm) for this network.
    fn structure(&self) -> (f64, f64, f64) {
        let (w, h) = (self.width as f64, self.height as f64);
        let n = w * h;
        match self.topology {
            Topology::Mesh => {
                let ports = 5.0;
                let links = 2.0 * (w * (h - 1.0) + h * (w - 1.0));
                (
                    n * ports * ports,
                    n * ports * self.vcs as f64 * self.vc_buf_flits as f64,
                    links * LINK_MM,
                )
            }
            Topology::Crossbar => {
                let ports = n;
                (
                    ports * ports,
                    ports * self.vcs as f64 * self.vc_buf_flits as f64,
                    // Long global wires to every node: roughly a quarter
                    // of the die perimeter each.
                    n * (w + h) / 4.0 * LINK_MM,
                )
            }
            Topology::FlattenedButterfly => {
                let ports = 1.0 + (w - 1.0) + (h - 1.0);
                // Row/column express links, average span (w+1)/3 hops.
                let links = n * (ports - 1.0);
                (
                    n * ports * ports,
                    n * ports * self.vcs as f64 * self.vc_buf_flits as f64,
                    links * LINK_MM * (w + 1.0) / 3.0 / 2.0,
                )
            }
            Topology::Dragonfly => {
                let ports = 1.0 + (w - 1.0) + 1.0;
                let intra = n * (w - 1.0);
                let global = h * (h - 1.0);
                (
                    n * ports * ports,
                    n * ports * self.vcs as f64 * self.vc_buf_flits as f64,
                    (intra * LINK_MM + global * 2.5 * LINK_MM) / 2.0,
                )
            }
        }
    }

    /// Area of this network in mm².
    pub fn area_mm2(&self) -> f64 {
        let (xbar_units, buf_units, link_mm) = self.structure();
        let wb = self.channel_bytes as f64;
        let xbar = K_XBAR * xbar_units * wb * wb;
        let k_buf = K_LINEAR * LINEAR_BUF_SHARE / BASE_BUF_UNITS;
        let k_link = K_LINEAR * (1.0 - LINEAR_BUF_SHARE) / BASE_LINK_UNITS;
        let buf = k_buf * buf_units * wb;
        let link = k_link * link_mm * wb;
        xbar + buf + link
    }
}

/// Delegated-Replies hardware overhead (Section IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrArea {
    /// Core pointers in LLC tags and MSHRs, mm².
    pub pointers_mm2: f64,
    /// Forwarded Request Queues, mm².
    pub frqs_mm2: f64,
}

impl DrArea {
    /// Compute the overhead for a system with `n_gpu` cores, `n_mem` LLC
    /// slices of `llc_slice` geometry, and `frq_entries` FRQ slots.
    pub fn compute(
        n_gpu: usize,
        n_mem: usize,
        llc_slice: CacheGeometry,
        frq_entries: usize,
    ) -> Self {
        let pointer_bits = (n_gpu as f64).log2().ceil().max(1.0);
        let lines = llc_slice.lines() as f64 * n_mem as f64;
        DrArea {
            pointers_mm2: K_SRAM_BIT * pointer_bits * lines,
            frqs_mm2: K_FRQ_ENTRY * (n_gpu * frq_entries) as f64,
        }
    }

    /// Total overhead, mm².
    pub fn total_mm2(&self) -> f64 {
        self.pointers_mm2 + self.frqs_mm2
    }
}

/// Dynamic + static energy accounting for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyReport {
    /// NoC dynamic energy, joules.
    pub noc_dynamic_j: f64,
    /// NoC static energy, joules.
    pub noc_static_j: f64,
    /// Rest-of-system energy (runtime-proportional), joules.
    pub system_j: f64,
}

impl EnergyReport {
    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.noc_dynamic_j + self.noc_static_j + self.system_j
    }
}

/// Compute the energy of a run.
///
/// * `flit_hops` — total router traversals summed over all flits (the
///   NoC stats' per-link flit counts are exactly this);
/// * `channel_bytes` — flit width;
/// * `noc_area_mm2` — from [`NetShape::area_mm2`] (sum both networks);
/// * `cycles` — run length.
pub fn energy(flit_hops: u64, channel_bytes: u32, noc_area_mm2: f64, cycles: u64) -> EnergyReport {
    let t = cycles as f64 / CLOCK_HZ;
    let per_hop = channel_bytes as f64 * (E_ROUTER_BYTE + E_LINK_BYTE_MM * LINK_MM);
    EnergyReport {
        noc_dynamic_j: flit_hops as f64 * per_hop,
        noc_static_j: P_STATIC_MM2 * noc_area_mm2 * t,
        system_j: P_SYSTEM_FIXED * t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clognet_proto::LlcConfig;

    fn mesh(channel: u32) -> NetShape {
        NetShape {
            topology: Topology::Mesh,
            width: 8,
            height: 8,
            channel_bytes: channel,
            vcs: 2,
            vc_buf_flits: 4,
        }
    }

    #[test]
    fn baseline_dual_mesh_matches_paper() {
        let a = 2.0 * mesh(16).area_mm2();
        assert!((a - 2.27).abs() < 0.03, "baseline NoC {a:.3} mm² != 2.27");
    }

    #[test]
    fn double_bandwidth_mesh_matches_paper() {
        let a = 2.0 * mesh(32).area_mm2();
        assert!((a - 5.76).abs() < 0.08, "2x NoC {a:.3} mm² != 5.76");
        // The paper's headline: 2.5x the baseline.
        let ratio = a / (2.0 * mesh(16).area_mm2());
        assert!((ratio - 2.54).abs() < 0.1, "ratio {ratio:.2}");
    }

    #[test]
    fn dr_overhead_matches_paper() {
        let llc = LlcConfig::default();
        let dr = DrArea::compute(40, 8, llc.slice, 8);
        assert!((dr.pointers_mm2 - 0.08).abs() < 0.005, "{dr:?}");
        assert!((dr.frqs_mm2 - 0.092).abs() < 0.005, "{dr:?}");
        assert!((dr.total_mm2() - 0.172).abs() < 0.01);
        // ~5% of the double-bandwidth area *increase*.
        let extra = 2.0 * (mesh(32).area_mm2() - mesh(16).area_mm2());
        let share = dr.total_mm2() / extra;
        assert!((0.03..0.08).contains(&share), "share {share:.3}");
    }

    #[test]
    fn pointer_bits_follow_core_count() {
        let llc = LlcConfig::default();
        let small = DrArea::compute(32, 8, llc.slice, 8); // 5 bits
        let big = DrArea::compute(64, 8, llc.slice, 8); // 6 bits
        assert!(small.pointers_mm2 < big.pointers_mm2);
    }

    #[test]
    fn energy_scales_with_traffic_and_time() {
        let area = 2.0 * mesh(16).area_mm2();
        let quiet = energy(1_000, 16, area, 100_000);
        let busy = energy(10_000_000, 16, area, 100_000);
        assert!(busy.noc_dynamic_j > 100.0 * quiet.noc_dynamic_j);
        assert_eq!(busy.noc_static_j, quiet.noc_static_j);
        let long = energy(1_000, 16, area, 200_000);
        assert!((long.system_j / quiet.system_j - 2.0).abs() < 1e-9);
        assert!(quiet.total_j() > 0.0);
    }

    #[test]
    fn alternative_topologies_have_defined_area() {
        for t in Topology::ALL {
            let a = NetShape {
                topology: t,
                ..mesh(16)
            }
            .area_mm2();
            assert!(a > 0.0, "{t:?}");
        }
        // A 64-port crossbar costs more than a mesh of the same width
        // (its central switch is quadratic in port count).
        let xbar = NetShape {
            topology: Topology::Crossbar,
            ..mesh(16)
        }
        .area_mm2();
        assert!(xbar > mesh(16).area_mm2());
    }
}
