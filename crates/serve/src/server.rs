//! The persistent simulation server.
//!
//! A TCP listener accepts connections and speaks the NDJSON protocol of
//! [`crate::wire`]; `run` requests are admitted into a **bounded**
//! queue on a [`WorkerPool`], memoized through the content-addressed
//! [`ResultCache`], and subject to per-job cycle and wall-time limits.
//! Robustness contract:
//!
//! * **Admission control** — a full queue yields a structured
//!   `overloaded` rejection immediately, never a hang.
//! * **Limits** — a job whose cycle budget exceeds `max_job_cycles` is
//!   rejected up front (`cycle_limit`); a job that outlives its
//!   wall-time deadline is cut off (`timeout`).
//! * **Graceful drain** — a `shutdown` request stops admissions, lets
//!   every in-flight job finish and deliver its response, then joins
//!   the workers.
//! * **Observability** — a `stats` request exposes queue depth, cache
//!   hit rate, and per-worker utilization through a
//!   [`clognet_telemetry`] registry.
//!
//! The simulation itself is injected as a [`JobHandler`], keeping this
//! crate independent of `clognet-core`: the CLI installs a handler that
//! builds a `System` per job, and the tests install stubs that fail,
//! stall, or count invocations on demand.

use crate::cache::{ResultCache, SnapshotCache};
use crate::json::Json;
use crate::wire::{error_response, ok_response, run_response, ErrorCode, JobSpec, MAX_FRAME_BYTES};
use clognet_bench::runner::WorkerPool;
use clognet_proto::fingerprint_hex;
use clognet_telemetry::export::{json_f64, registry_to_json};
use clognet_telemetry::Registry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One read from a [`FrameReader`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// A complete line landed in the caller's buffer.
    Line,
    /// The line exceeded [`MAX_FRAME_BYTES`] before its newline; the
    /// stream cannot be resynchronized and should be answered with a
    /// structured error and closed.
    Oversized,
    /// The line was complete but not valid UTF-8; answer with a
    /// structured error and keep reading.
    BadUtf8,
    /// Peer closed the connection.
    Eof,
}

/// Length-capped NDJSON frame reader shared by the single-node server
/// and the cluster node: one frame per line, at most
/// [`MAX_FRAME_BYTES`] each, malformed bytes reported as values rather
/// than torn connections.
pub struct FrameReader<R: Read> {
    inner: std::io::Take<BufReader<R>>,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a stream's read half.
    pub fn new(stream: R) -> FrameReader<R> {
        FrameReader {
            inner: BufReader::new(stream).take(MAX_FRAME_BYTES as u64 + 1),
            buf: Vec::new(),
        }
    }

    /// Read the next frame into `line` (cleared first; the trailing
    /// newline is kept, matching `read_line`).
    ///
    /// # Errors
    ///
    /// Socket-level failures only; protocol violations come back as
    /// [`Frame`] variants.
    pub fn read_frame(&mut self, line: &mut String) -> std::io::Result<Frame> {
        line.clear();
        self.buf.clear();
        let n = self.inner.read_until(b'\n', &mut self.buf)?;
        if n == 0 {
            return Ok(Frame::Eof);
        }
        if self.inner.limit() == 0 && self.buf.last() != Some(&b'\n') {
            return Ok(Frame::Oversized);
        }
        self.inner.set_limit(MAX_FRAME_BYTES as u64 + 1);
        match std::str::from_utf8(&self.buf) {
            Ok(s) => {
                line.push_str(s);
                Ok(Frame::Line)
            }
            Err(_) => Ok(Frame::BadUtf8),
        }
    }
}

/// Answer one connection frame-by-frame: read with `reader`, dispatch
/// complete lines through `dispatch`, and reply with the structured
/// errors the frame contract specifies for oversized or non-UTF-8
/// input. Returns when the peer disconnects or the stream dies.
pub fn serve_frames<R, F>(reader: R, mut writer: impl Write, dispatch: F)
where
    R: Read,
    F: Fn(&str) -> String,
{
    let mut frames = FrameReader::new(reader);
    let mut line = String::new();
    loop {
        let response = match frames.read_frame(&mut line) {
            Err(_) | Ok(Frame::Eof) => return,
            Ok(Frame::Oversized) => {
                let oversized = error_response(
                    ErrorCode::BadRequest,
                    &format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
                );
                let _ = writer
                    .write_all(oversized.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush());
                return; // Cannot resynchronize mid-line.
            }
            Ok(Frame::BadUtf8) => error_response(ErrorCode::BadRequest, "frame is not UTF-8"),
            Ok(Frame::Line) => {
                if line.trim().is_empty() {
                    continue;
                }
                dispatch(line.trim())
            }
        };
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

/// A job failure produced by a [`JobHandler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Wire error code the failure maps to.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl JobError {
    /// A `bad_request` failure.
    pub fn bad_request(message: impl Into<String>) -> JobError {
        JobError {
            code: ErrorCode::BadRequest,
            message: message.into(),
        }
    }
}

/// The simulation behind the service: fingerprinting (for the cache
/// key) and execution (for misses). Implementations must be
/// deterministic — `run` must return byte-identical output for
/// fingerprint-equal specs — or the cache contract is void.
///
/// The three snapshot hooks are optional (defaults disable the
/// snapshot tier): a handler that implements them lets the server
/// memoize warmup state, so a job that misses the result cache but
/// shares its warmup prefix with an earlier job resumes mid-flight
/// instead of re-simulating the warmup. Snapshot-resumed runs must be
/// byte-identical to straight runs — the same contract as the result
/// cache.
pub trait JobHandler: Send + Sync + 'static {
    /// The canonical fingerprint of a spec (resolving option spelling
    /// variants), or a `bad_request` explaining what is invalid.
    ///
    /// # Errors
    ///
    /// Invalid benchmark names or configuration options.
    fn fingerprint(&self, spec: &JobSpec) -> Result<u64, JobError>;

    /// Execute the job, checking `deadline` at reasonable intervals
    /// and returning a `timeout` failure when exceeded.
    ///
    /// # Errors
    ///
    /// Invalid specs or an exceeded deadline.
    fn run(&self, spec: &JobSpec, deadline: Instant) -> Result<String, JobError>;

    /// The snapshot-cache key of this job's warmup prefix, or `None`
    /// when the job has no cacheable prefix (no warmup, or the handler
    /// does not support snapshots). Execution-mode knobs must not
    /// change the key — the same exclusion rule as the fingerprint.
    fn snapshot_key(&self, _spec: &JobSpec) -> Option<u64> {
        None
    }

    /// Execute the job and also return the serialized warmup snapshot
    /// for caching, when one is worth keeping. The default runs
    /// without producing a snapshot.
    ///
    /// # Errors
    ///
    /// Same as [`JobHandler::run`].
    fn run_with_snapshot(
        &self,
        spec: &JobSpec,
        deadline: Instant,
    ) -> Result<(String, Option<Vec<u8>>), JobError> {
        self.run(spec, deadline).map(|report| (report, None))
    }

    /// Execute the job resuming from a cached warmup snapshot
    /// (simulating only the measured window). A handler that cannot
    /// use the snapshot — or finds it corrupt — must fall back to a
    /// full run rather than fail the job. The default ignores the
    /// snapshot entirely.
    ///
    /// # Errors
    ///
    /// Same as [`JobHandler::run`].
    fn run_from_snapshot(
        &self,
        spec: &JobSpec,
        _snapshot: &[u8],
        deadline: Instant,
    ) -> Result<String, JobError> {
        self.run(spec, deadline)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Worker threads simulating jobs.
    pub workers: usize,
    /// Jobs that may wait for a worker before admission control
    /// rejects with `overloaded`.
    pub queue_cap: usize,
    /// Reports retained by the content-addressed cache.
    pub cache_cap: usize,
    /// Warmup snapshots retained by the snapshot tier. Snapshots are
    /// hundreds of kilobytes each, so this bound is much tighter than
    /// `cache_cap`.
    pub snap_cache_cap: usize,
    /// Per-job cycle budget (`warm + cycles`) ceiling.
    pub max_job_cycles: u64,
    /// Per-job end-to-end wall-time limit (queue wait + simulation).
    pub job_timeout: Duration,
    /// How long `shutdown` waits for in-flight requests to finish.
    pub drain_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 16,
            cache_cap: 1024,
            snap_cache_cap: 64,
            max_job_cycles: 10_000_000,
            job_timeout: Duration::from_secs(120),
            drain_timeout: Duration::from_secs(60),
        }
    }
}

/// A pool job: the spec, the cached warmup snapshot to resume from
/// (when the snapshot tier hit), and the wall-time deadline.
type PoolJob = (JobSpec, Option<Arc<Vec<u8>>>, Instant);
/// A pool result: the report, plus a fresh warmup snapshot to cache
/// when the handler produced one.
type PoolResult = Result<(String, Option<Vec<u8>>), JobError>;

struct Inner {
    cfg: ServeConfig,
    handler: Arc<dyn JobHandler>,
    /// `None` once draining has begun.
    pool: Mutex<Option<WorkerPool<PoolJob, PoolResult>>>,
    cache: Mutex<ResultCache>,
    snapshots: Mutex<SnapshotCache>,
    metrics: Mutex<Registry>,
    shutdown: AtomicBool,
    /// `run` requests admitted but not yet answered.
    inflight: AtomicUsize,
    /// Connection threads currently serving a peer.
    conns: AtomicUsize,
    local_addr: SocketAddr,
}

/// The server: bind with [`Server::bind`], then either block in
/// [`Server::run`] (the CLI) or detach with [`Server::spawn`] (tests,
/// embedding).
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

/// Handle to a spawned server thread.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the server to drain and exit.
    ///
    /// # Errors
    ///
    /// The accept loop's I/O error, if it died on one.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the server thread.
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().expect("server thread panicked")
    }
}

impl Server {
    /// Bind the listener and start the worker pool.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(cfg: ServeConfig, handler: Arc<dyn JobHandler>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let pool_handler = Arc::clone(&handler);
        let pool = WorkerPool::new(
            cfg.workers,
            cfg.queue_cap,
            move |(spec, snap, deadline): PoolJob| match snap {
                Some(bytes) => pool_handler
                    .run_from_snapshot(&spec, &bytes, deadline)
                    .map(|report| (report, None)),
                None => pool_handler.run_with_snapshot(&spec, deadline),
            },
        );
        let cache = ResultCache::new(cfg.cache_cap);
        let snapshots = SnapshotCache::new(cfg.snap_cache_cap);
        let inner = Arc::new(Inner {
            cfg,
            handler,
            pool: Mutex::new(Some(pool)),
            cache: Mutex::new(cache),
            snapshots: Mutex::new(snapshots),
            metrics: Mutex::new(Registry::new()),
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
            local_addr,
        });
        Ok(Server { listener, inner })
    }

    /// The bound address (resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Accept and serve connections until a `shutdown` request, then
    /// drain and return. Each connection gets its own thread; requests
    /// within a connection are answered in order.
    ///
    /// # Errors
    ///
    /// A fatal accept-loop I/O error.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break; // Woken by the shutdown self-connect.
            }
            let Ok(stream) = stream else {
                continue; // Transient accept error; keep serving.
            };
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || handle_connection(&inner, stream));
        }
        drop(self.listener); // Closed before the drain, not after.
        drain(&self.inner);
        Ok(())
    }

    /// Run on a background thread; returns once the socket is bound
    /// (it already is) so clients can connect immediately.
    ///
    /// # Errors
    ///
    /// This call itself cannot fail; the handle's `join` reports the
    /// serve loop's outcome.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr();
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle { addr, thread })
    }
}

/// How long `drain` waits for connection threads to flush their final
/// responses before the process is allowed to exit. The thread writing
/// the `shutdown` acknowledgment is detached, so without this grace a
/// CLI server could exit mid-write and the client would see a closed
/// connection instead of the ack. Peers that idle past the grace (a
/// client holding its connection open) are abandoned, as before.
const CONN_FLUSH_GRACE: Duration = Duration::from_millis(300);

/// Wait (bounded) for in-flight requests, drain the pool, then give
/// connection threads a short grace to flush final responses.
fn drain(inner: &Inner) {
    let deadline = Instant::now() + inner.cfg.drain_timeout;
    while inner.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let pool = inner.pool.lock().expect("pool lock poisoned").take();
    if let Some(pool) = pool {
        pool.shutdown();
    }
    let grace = Instant::now() + CONN_FLUSH_GRACE;
    while inner.conns.load(Ordering::SeqCst) > 0 && Instant::now() < grace {
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn handle_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    inner.conns.fetch_add(1, Ordering::SeqCst);
    serve_frames(read_half, stream, |line| dispatch(inner, line));
    inner.conns.fetch_sub(1, Ordering::SeqCst);
}

fn count(inner: &Inner, name: &str) {
    let mut m = inner.metrics.lock().expect("metrics lock poisoned");
    let id = m.counter(name);
    m.add(id, 1);
}

fn dispatch(inner: &Arc<Inner>, line: &str) -> String {
    count(inner, "requests_total");
    let parsed = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            count(inner, "bad_requests");
            return error_response(ErrorCode::BadRequest, &format!("malformed JSON: {e}"));
        }
    };
    match parsed.get("op").and_then(Json::as_str) {
        Some("ping") => ok_response("ping"),
        Some("run") => handle_run(inner, &parsed),
        Some("stats") => stats_response(inner),
        Some("shutdown") => {
            inner.shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so it notices the flag.
            let _ = TcpStream::connect(inner.local_addr);
            ok_response("shutdown")
        }
        Some(other) => {
            count(inner, "bad_requests");
            error_response(
                ErrorCode::BadRequest,
                &format!("unknown op `{other}` (ping|run|stats|shutdown)"),
            )
        }
        None => {
            count(inner, "bad_requests");
            error_response(ErrorCode::BadRequest, "request missing string `op`")
        }
    }
}

fn handle_run(inner: &Arc<Inner>, request: &Json) -> String {
    if inner.shutdown.load(Ordering::SeqCst) {
        return error_response(ErrorCode::ShuttingDown, "server is draining");
    }
    let spec = match JobSpec::from_json(request) {
        Ok(s) => s,
        Err(e) => {
            count(inner, "bad_requests");
            return error_response(ErrorCode::BadRequest, &e);
        }
    };
    let budget = spec.warm.saturating_add(spec.cycles);
    if budget > inner.cfg.max_job_cycles {
        count(inner, "jobs_rejected_cycle_limit");
        return error_response(
            ErrorCode::CycleLimit,
            &format!(
                "job wants {budget} cycles; per-job limit is {}",
                inner.cfg.max_job_cycles
            ),
        );
    }
    let fp = match inner.handler.fingerprint(&spec) {
        Ok(fp) => fp,
        Err(e) => {
            count(inner, "bad_requests");
            return error_response(e.code, &e.message);
        }
    };
    let hex = fingerprint_hex(fp);
    if let Some(report) = inner.cache.lock().expect("cache lock poisoned").lookup(fp) {
        count(inner, "cache_hits");
        return run_response(&hex, true, &report);
    }
    count(inner, "cache_misses");
    // Result miss: try the snapshot tier — a cached warmup prefix lets
    // the worker resume mid-flight and simulate only the measured
    // window.
    let skey = inner.handler.snapshot_key(&spec);
    let snap = skey.and_then(|k| {
        inner
            .snapshots
            .lock()
            .expect("snapshot cache lock poisoned")
            .lookup(k)
    });
    if skey.is_some() {
        count(
            inner,
            if snap.is_some() {
                "snapshot_hits"
            } else {
                "snapshot_misses"
            },
        );
    }
    let resumed = snap.is_some();
    // Admit into the bounded queue.
    let deadline = Instant::now() + inner.cfg.job_timeout;
    let submitted = {
        let pool = inner.pool.lock().expect("pool lock poisoned");
        match pool.as_ref() {
            None => return error_response(ErrorCode::ShuttingDown, "server is draining"),
            Some(p) => p.try_submit((spec, snap, deadline)),
        }
    };
    let rx = match submitted {
        Ok(rx) => rx,
        Err(_) => {
            count(inner, "jobs_rejected_overload");
            return error_response(
                ErrorCode::Overloaded,
                &format!(
                    "job queue full ({} waiting, {} workers); retry later",
                    inner.cfg.queue_cap, inner.cfg.workers
                ),
            );
        }
    };
    count(inner, "jobs_admitted");
    inner.inflight.fetch_add(1, Ordering::SeqCst);
    // Grace past the deadline so a handler that honors it always wins
    // the race against this receive timeout.
    let wait = inner.cfg.job_timeout + Duration::from_secs(2);
    let outcome = rx.recv_timeout(wait);
    inner.inflight.fetch_sub(1, Ordering::SeqCst);
    match outcome {
        Ok(Ok((report, fresh_snap))) => {
            count(inner, "jobs_completed");
            if resumed {
                count(inner, "jobs_resumed_from_snapshot");
            }
            inner
                .cache
                .lock()
                .expect("cache lock poisoned")
                .insert(fp, report.clone());
            if let (Some(k), Some(bytes)) = (skey, fresh_snap) {
                inner
                    .snapshots
                    .lock()
                    .expect("snapshot cache lock poisoned")
                    .insert(k, Arc::new(bytes));
            }
            run_response(&hex, false, &report)
        }
        Ok(Err(e)) => {
            count(inner, "jobs_failed");
            error_response(e.code, &e.message)
        }
        Err(_) => {
            count(inner, "jobs_timed_out");
            error_response(
                ErrorCode::Timeout,
                &format!(
                    "no result within {:.1}s (per-job wall-time limit)",
                    wait.as_secs_f64()
                ),
            )
        }
    }
}

fn stats_response(inner: &Arc<Inner>) -> String {
    let (depth, workers, utilization) = {
        let pool = inner.pool.lock().expect("pool lock poisoned");
        match pool.as_ref() {
            Some(p) => (p.depth(), p.threads(), p.utilization()),
            None => (0, 0, Vec::new()),
        }
    };
    let (entries, hit_rate, hits, misses) = {
        let c = inner.cache.lock().expect("cache lock poisoned");
        (c.len(), c.hit_rate(), c.hits(), c.misses())
    };
    let (snap_entries, snap_bytes, snap_hits, snap_misses) = {
        let s = inner
            .snapshots
            .lock()
            .expect("snapshot cache lock poisoned");
        (s.len(), s.bytes(), s.hits(), s.misses())
    };
    let registry_json = {
        let mut m = inner.metrics.lock().expect("metrics lock poisoned");
        // Mirror the instantaneous values into gauges so exported
        // registries are self-contained.
        let g = m.gauge("queue_depth");
        m.set(g, depth as f64);
        let g = m.gauge("cache_hit_rate");
        m.set(g, hit_rate);
        let g = m.gauge("cache_entries");
        m.set(g, entries as f64);
        for (w, u) in utilization.iter().enumerate() {
            let g = m.gauge(&format!("worker{w}_utilization"));
            m.set(g, *u);
        }
        registry_to_json(&m)
    };
    let util_arr: Vec<String> = utilization.iter().map(|&u| json_f64(u)).collect();
    format!(
        "{{\"ok\":true,\"op\":\"stats\",\"queue_depth\":{depth},\"workers\":{workers},\
         \"utilization\":[{}],\"cache_entries\":{entries},\"cache_hits\":{hits},\
         \"cache_misses\":{misses},\"cache_hit_rate\":{},\
         \"snapshot_entries\":{snap_entries},\"snapshot_bytes\":{snap_bytes},\
         \"snapshot_hits\":{snap_hits},\"snapshot_misses\":{snap_misses},\
         \"registry\":{registry_json}}}",
        util_arr.join(","),
        json_f64(hit_rate)
    )
}
