//! # clognet-serve
//!
//! A persistent simulation service for the clognet simulator. Every
//! experiment harness in this workspace used to be a one-shot process,
//! rebuilding identical (configuration, workload, scheme) simulations
//! on every invocation; this crate turns the simulator into a
//! long-lived service that many experiment consumers share:
//!
//! * a TCP server speaking **newline-delimited JSON** ([`wire`]),
//! * jobs scheduled on a bounded [`clognet_bench::runner::WorkerPool`]
//!   with explicit `overloaded` admission-control rejections,
//! * results memoized in a **content-addressed cache** ([`cache`])
//!   keyed by the canonical job fingerprint of
//!   [`clognet_proto::fingerprint`] — the simulator is deterministic,
//!   so a byte-identical report for a given fingerprint never needs to
//!   be simulated twice,
//! * warmup state memoized in a second-tier **snapshot cache**
//!   ([`cache::SnapshotCache`]) keyed by
//!   [`clognet_proto::snapshot_key`] — a job that misses the result
//!   cache but shares its warmup prefix with a cached snapshot resumes
//!   mid-flight and simulates only the measured window,
//! * per-job cycle and wall-time limits, graceful drain on shutdown,
//!   and a `stats` request backed by a [`clognet_telemetry`] registry,
//! * a [`client`] that retries transient connect failures with capped
//!   exponential backoff whose jitter is seeded through
//!   [`clognet_rng`] — deterministic end to end.
//!
//! The crate is `std`-only (matching the `clognet-rng` / `clognet-bench`
//! precedent) and independent of `clognet-core`: the simulation is
//! injected as a [`server::JobHandler`], which the CLI implements on
//! top of `System` and the tests implement as stubs.
//!
//! ## Example
//!
//! ```
//! use clognet_serve::client::{Client, RetryPolicy};
//! use clognet_serve::server::{JobError, JobHandler, ServeConfig, Server};
//! use clognet_serve::wire::JobSpec;
//! use std::sync::Arc;
//! use std::time::Instant;
//!
//! struct Echo;
//! impl JobHandler for Echo {
//!     fn fingerprint(&self, spec: &JobSpec) -> Result<u64, JobError> {
//!         Ok(spec.cycles)
//!     }
//!     fn run(&self, spec: &JobSpec, _deadline: Instant) -> Result<String, JobError> {
//!         Ok(format!("{{\"gpu\":\"{}\"}}", spec.gpu))
//!     }
//! }
//!
//! let server = Server::bind(ServeConfig::default(), Arc::new(Echo)).unwrap();
//! let addr = server.local_addr().to_string();
//! let handle = server.spawn().unwrap();
//! let mut client = Client::connect(&addr, &RetryPolicy::default()).unwrap();
//! let first = client.submit(&JobSpec::new("HS", "bodytrack")).unwrap();
//! let second = client.submit(&JobSpec::new("HS", "bodytrack")).unwrap();
//! assert!(!first.cache_hit && second.cache_hit);
//! assert_eq!(first.report, second.report);
//! client.shutdown().unwrap();
//! handle.join().unwrap();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod json;
pub mod server;
pub mod wire;

pub use cache::{ResultCache, SnapshotCache};
pub use client::{Client, ClientError, RetryPolicy};
pub use json::Json;
pub use server::{Frame, FrameReader, JobError, JobHandler, ServeConfig, Server, ServerHandle};
pub use wire::{
    ErrorCode, ForwardFrame, JobSpec, PeerExchange, ReplicateFrame, Response, RunResult,
    SnapshotFrame, MAX_FRAME_BYTES,
};
