//! A minimal recursive-descent JSON parser.
//!
//! The workspace takes no external dependencies, and until now it only
//! ever *wrote* JSON (`clognet-telemetry`'s hand-rolled exporters). The
//! service needs to *read* it too: every request on the wire is one
//! JSON object per line. This is a small, strict RFC 8259 subset
//! parser — objects, arrays, strings (with `\uXXXX` escapes), numbers
//! as `f64`, booleans, null. Duplicate object keys keep the last value,
//! and object iteration order is sorted (BTreeMap), which the
//! round-trip tests rely on for determinism.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers up to 2^53 survive exactly).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys sorted.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse one complete JSON document; trailing whitespace allowed,
    /// trailing garbage is an error.
    ///
    /// # Errors
    ///
    /// A message naming the byte offset of the problem.
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// The object's field, if this is an object and the field exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one exactly (non-negative
    /// integer within 2^53, so the f64 detour is lossless).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(a));
        }
        loop {
            self.skip_ws();
            a.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(a));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        if self.i + 4 > self.b.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u16::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape at {}", self.i))?;
        self.i += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            // Surrogate pair?
                            if (0xD800..0xDC00).contains(&hi) {
                                if self.peek() == Some(b'\\')
                                    && self.b.get(self.i + 1) == Some(&b'u')
                                {
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00);
                                    out.push(char::from_u32(c).ok_or("bad surrogate pair")?);
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else {
                                out.push(char::from_u32(hi as u32).ok_or("bad \\u code point")?);
                            }
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.i));
                }
                Some(_) => {
                    // Consume a maximal run of plain bytes in one shot.
                    // Every stop byte (`"`, `\`, control) is ASCII, so
                    // the run never splits a multi-byte scalar and both
                    // slice ends are UTF-8 boundaries.
                    let start = self.i;
                    while matches!(self.b.get(self.i), Some(&b) if b != b'"' && b != b'\\' && b >= 0x20)
                    {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| "invalid UTF-8".to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#).unwrap();
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Bool(true)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn unescapes_strings() {
        let v = Json::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé");
        // Surrogate pair for U+1F600.
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
    }

    #[test]
    fn round_trips_telemetry_escaping() {
        use clognet_telemetry::export::json_escape;
        for raw in ["plain", "a\"b\\c", "tab\there", "nl\nnl", "\u{1}ctl"] {
            let doc = format!("{{\"k\":\"{}\"}}", json_escape(raw));
            let v = Json::parse(&doc).unwrap();
            assert_eq!(v.get("k").unwrap().as_str().unwrap(), raw, "doc {doc}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
            "nul",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn u64_extraction_is_exact_or_none() {
        assert_eq!(Json::parse("15000").unwrap().as_u64(), Some(15_000));
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
    }
}
