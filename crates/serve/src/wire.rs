//! Wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line, over a plain TCP
//! stream. Requests are flat objects with an `op` discriminator:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"run","gpu":"HS","cpu":"bodytrack","warm":500,"cycles":2000,"scheme":"dr"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`: `{"ok":true,...}` on success,
//! `{"ok":false,"error":"<code>","message":"..."}` on failure. A `run`
//! success carries the job's `fingerprint` (16 hex digits), a `cache`
//! marker (`"hit"` or `"miss"`), and the full report document as a JSON
//! **string** — escaping and unescaping through the shared routines is
//! lossless, which is what lets the client reprint a cached report
//! byte-identically to an inline `clognet run --json`.
//!
//! Any request key other than `op`/`gpu`/`cpu`/`warm`/`cycles` is
//! treated as a configuration option, exactly as if passed to
//! `clognet run --key value`; the server-side handler validates them.

use crate::json::Json;
use clognet_telemetry::export::json_escape;
use std::collections::BTreeMap;

/// Wire error codes (the `error` field of a failure response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, unknown op, missing/invalid fields, unknown
    /// benchmark or configuration option.
    BadRequest,
    /// Admission control: the job queue is full. Retry later.
    Overloaded,
    /// The job's cycle budget exceeds the server's per-job limit.
    CycleLimit,
    /// The job exceeded the server's per-job wall-time limit.
    Timeout,
    /// The server is draining; no new jobs are accepted.
    ShuttingDown,
    /// The worker pool failed to deliver a result (should not happen).
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::CycleLimit => "cycle_limit",
            ErrorCode::Timeout => "timeout",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parse the wire spelling.
    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "overloaded" => ErrorCode::Overloaded,
            "cycle_limit" => ErrorCode::CycleLimit,
            "timeout" => ErrorCode::Timeout,
            "shutting_down" => ErrorCode::ShuttingDown,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A simulation job as it travels on the wire: the workload pairing,
/// the cycle budget, and free-form configuration options (the same
/// `--key value` vocabulary as `clognet run`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// GPU benchmark name (Table II).
    pub gpu: String,
    /// CPU benchmark name (PARSEC).
    pub cpu: String,
    /// Warmup cycles (statistics excluded).
    pub warm: u64,
    /// Measured cycles.
    pub cycles: u64,
    /// Configuration options: `scheme`, `layout`, `seed`, ...
    pub opts: BTreeMap<String, String>,
}

impl JobSpec {
    /// A spec with the `clognet run` defaults for everything but the
    /// workload pairing.
    pub fn new(gpu: &str, cpu: &str) -> JobSpec {
        JobSpec {
            gpu: gpu.to_string(),
            cpu: cpu.to_string(),
            warm: 6_000,
            cycles: 15_000,
            opts: BTreeMap::new(),
        }
    }

    /// Build from a parsed request (or batch-file) object. Workload
    /// names default like `clognet run` (HS + bodytrack); unknown keys
    /// become options, with numeric values rendered back to strings.
    ///
    /// # Errors
    ///
    /// Non-object input, non-string workload names, non-integer cycle
    /// counts, or option values that are not scalars.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let obj = v.as_obj().ok_or("job must be a JSON object")?;
        let mut spec = JobSpec::new("HS", "bodytrack");
        for (k, val) in obj {
            match k.as_str() {
                "op" => {}
                "gpu" => spec.gpu = val.as_str().ok_or("`gpu` must be a string")?.to_string(),
                "cpu" => spec.cpu = val.as_str().ok_or("`cpu` must be a string")?.to_string(),
                "warm" => {
                    spec.warm = val
                        .as_u64()
                        .ok_or("`warm` must be a non-negative integer")?
                }
                "cycles" => {
                    spec.cycles = val
                        .as_u64()
                        .ok_or("`cycles` must be a non-negative integer")?
                }
                _ => {
                    let s = match val {
                        Json::Str(s) => s.clone(),
                        Json::Bool(b) => b.to_string(),
                        Json::Num(n) if n.fract() == 0.0 => format!("{}", *n as i64),
                        Json::Num(n) => format!("{n}"),
                        _ => return Err(format!("option `{k}` must be a scalar")),
                    };
                    spec.opts.insert(k.clone(), s);
                }
            }
        }
        Ok(spec)
    }

    /// Serialize as a `run` request line (no trailing newline).
    pub fn to_request_line(&self) -> String {
        let mut out = format!(
            "{{\"op\":\"run\",\"gpu\":\"{}\",\"cpu\":\"{}\",\"warm\":{},\"cycles\":{}",
            json_escape(&self.gpu),
            json_escape(&self.cpu),
            self.warm,
            self.cycles
        );
        for (k, v) in &self.opts {
            out.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        out.push('}');
        out
    }
}

/// A successful `run` response, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// The job fingerprint, 16 hex digits.
    pub fingerprint: String,
    /// Whether the report came from the content-addressed cache.
    pub cache_hit: bool,
    /// The report document, byte-identical to `clognet run --json`.
    pub report: String,
}

/// Build a successful `run` response line.
pub fn run_response(fingerprint: &str, cache_hit: bool, report: &str) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"run\",\"fingerprint\":\"{}\",\"cache\":\"{}\",\"report\":\"{}\"}}",
        json_escape(fingerprint),
        if cache_hit { "hit" } else { "miss" },
        json_escape(report)
    )
}

/// Build a failure response line.
pub fn error_response(code: ErrorCode, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"message\":\"{}\"}}",
        code.as_str(),
        json_escape(message)
    )
}

/// Build a trivial success response (`ping`, `shutdown`).
pub fn ok_response(op: &str) -> String {
    format!("{{\"ok\":true,\"op\":\"{}\"}}", json_escape(op))
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `run` success.
    Run(RunResult),
    /// Any other success, with the parsed body for field access.
    Ok(Json),
    /// Failure.
    Error {
        /// The error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Decode one response line.
///
/// # Errors
///
/// Malformed JSON or a response missing its required fields.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = Json::parse(line)?;
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => {}
        Some(false) => {
            let code = v
                .get("error")
                .and_then(Json::as_str)
                .and_then(ErrorCode::from_wire)
                .ok_or("error response without a known `error` code")?;
            let message = v
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            return Ok(Response::Error { code, message });
        }
        None => return Err("response missing boolean `ok`".into()),
    }
    if v.get("op").and_then(Json::as_str) == Some("run") {
        let fingerprint = v
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("run response missing `fingerprint`")?
            .to_string();
        let cache_hit = match v.get("cache").and_then(Json::as_str) {
            Some("hit") => true,
            Some("miss") => false,
            _ => return Err("run response missing `cache`".into()),
        };
        let report = v
            .get("report")
            .and_then(Json::as_str)
            .ok_or("run response missing `report`")?
            .to_string();
        return Ok(Response::Run(RunResult {
            fingerprint,
            cache_hit,
            report,
        }));
    }
    Ok(Response::Ok(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_round_trips_through_its_request_line() {
        let mut spec = JobSpec::new("MM", "canneal");
        spec.warm = 100;
        spec.cycles = 400;
        spec.opts.insert("scheme".into(), "dr".into());
        spec.opts.insert("seed".into(), "7".into());
        let line = spec.to_request_line();
        let parsed = JobSpec::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn job_spec_defaults_match_clognet_run() {
        let spec = JobSpec::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(spec.gpu, "HS");
        assert_eq!(spec.cpu, "bodytrack");
        assert_eq!(spec.warm, 6_000);
        assert_eq!(spec.cycles, 15_000);
        assert!(spec.opts.is_empty());
    }

    #[test]
    fn numeric_and_boolean_options_become_strings() {
        let v = Json::parse(r#"{"gpu":"HS","seed":9,"no-ff":true}"#).unwrap();
        let spec = JobSpec::from_json(&v).unwrap();
        assert_eq!(spec.opts.get("seed").map(String::as_str), Some("9"));
        assert_eq!(spec.opts.get("no-ff").map(String::as_str), Some("true"));
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(JobSpec::from_json(&Json::parse("[1]").unwrap()).is_err());
        assert!(JobSpec::from_json(&Json::parse(r#"{"gpu":3}"#).unwrap()).is_err());
        assert!(JobSpec::from_json(&Json::parse(r#"{"warm":-1}"#).unwrap()).is_err());
        assert!(JobSpec::from_json(&Json::parse(r#"{"x":[1]}"#).unwrap()).is_err());
    }

    #[test]
    fn run_response_round_trips_reports_byte_identically() {
        let report = "{\"scheme\":\"DR\",\"weird\":\"a\\\"b\\\\c\",\"gpu_ipc\":12.25}";
        let line = run_response("00ff00ff00ff00ff", true, report);
        match parse_response(&line).unwrap() {
            Response::Run(r) => {
                assert!(r.cache_hit);
                assert_eq!(r.fingerprint, "00ff00ff00ff00ff");
                assert_eq!(r.report, report);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_responses_carry_codes() {
        let line = error_response(ErrorCode::Overloaded, "queue full (8 deep)");
        match parse_response(&line).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::Overloaded);
                assert!(message.contains("queue full"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            ErrorCode::from_wire("cycle_limit"),
            Some(ErrorCode::CycleLimit)
        );
        assert_eq!(ErrorCode::from_wire("bogus"), None);
    }

    #[test]
    fn plain_ok_responses_parse_as_ok() {
        match parse_response(&ok_response("ping")).unwrap() {
            Response::Ok(v) => assert_eq!(v.get("op").unwrap().as_str(), Some("ping")),
            other => panic!("unexpected {other:?}"),
        }
    }
}
